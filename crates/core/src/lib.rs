//! # jc-core — Distributed AMUSE: the paper's contribution (§5)
//!
//! *"To create a version of AMUSE capable of running in a Jungle Computing
//! System we added an Ibis Channel to the worker startup and communication
//! code. The AMUSE coupler connects with a local Ibis daemon to start and
//! communicate with remote workers. [...] Workers are started by the daemon
//! with JavaGAT, while wide-area communication is done using IPL. [...] the
//! daemon uses IPL to communicate over the wide area connection to a proxy
//! process running alongside the worker."*
//!
//! The moving parts, matching Fig 5:
//!
//! * [`daemon::IbisDaemon`] — an actor on the user's machine. The coupler
//!   (which runs *outside* the simulation, like the Python process outside
//!   the JVM) reaches it over a modeled loopback socket. It starts workers
//!   through JavaGAT ([`jc_gat`]), routes RPC envelopes to worker proxies
//!   over SmartSockets-planned connections, and collects replies.
//! * [`proxy::WorkerProxy`] — the per-worker proxy actor: executes the real
//!   kernel *in place* (small-N physics), charges virtual time from the
//!   calibrated performance model, models the intra-worker MPI traffic of
//!   multi-node workers, and replies to the daemon.
//! * [`channel::IbisChannel`] — implements [`jc_amuse::Channel`], so the
//!   unmodified BRIDGE drives workers across the simulated jungle. `call`
//!   injects an envelope and runs the event loop until the reply lands;
//!   `submit`/`collect` on two channels gives genuinely parallel evolves.
//! * [`perfmodel`] — the calibration: sustained device throughputs for the
//!   paper's hardware and per-model work budgets chosen so the §6.2 lab
//!   scenarios land near the published 353 / 89 / 84 / 62.4 s/iteration
//!   (EXPERIMENTS.md records paper-vs-measured).
//! * [`scenarios`] — the Fig 12 lab topology, the Fig 9 SC11 topology, and
//!   the four-scenario runner behind Table 1.
//! * [`loopback`] — a real (wall-clock) in-memory loopback channel
//!   benchmark backing the §5 ">8 Gbit/s even on a modest laptop" claim.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unreachable_pub)]

// The SoA compute layer and the unified parallel chunking core live in
// the leaf crate `jc_compute` (the kernel crates sit below this one, so
// they cannot depend on the runtime); re-exported here so runtime-level
// callers address them as `jc_core::soa` / `jc_core::par`.
pub use jc_compute::par;
pub use jc_compute::soa;

pub mod channel;
pub mod daemon;
pub mod discovery;
pub mod envreg;
pub mod loopback;
pub mod perfmodel;
pub mod proxy;
pub mod scenarios;

pub use channel::IbisChannel;
pub use daemon::{DaemonHandle, IbisDaemon, WorkerId};
pub use discovery::{discover, Discovered, Requirements};
pub use perfmodel::{ModelKind, PerfProfile};
pub use proxy::WorkerProxy;
pub use scenarios::{run_scenario, Scenario, ScenarioResult};
