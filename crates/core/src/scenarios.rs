//! The §6 evaluation scenarios: lab conditions (Fig 12, Table 1 numbers)
//! and the SC11 demonstration (Figs 9–11).

use crate::channel::IbisChannel;
use crate::daemon::{IbisDaemon, RegisterWorker, WorkerId};
use crate::perfmodel::{byte_scale, devices, production, ModelKind, PerfProfile};
use crate::proxy::{BusyLedger, WorkerProxy};
use jc_amuse::bridge::{Bridge, BridgeConfig};
use jc_amuse::checkpoint::{Checkpoint, Role};
use jc_amuse::cluster::EmbeddedCluster;
use jc_amuse::worker::ModelWorker;
use jc_deploy::build::Deployment;
use jc_deploy::descriptor::{GpuEntry, GridDescription, LinkEntry, ResourceEntry};
use jc_gat::broker::SubmitRequest;
use jc_gat::{GatEvent, JobDescription, JobState, MiddlewareKind, ProcessSeat};
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{Actor, ActorId, Ctx, Msg, Sim, SimConfig, SimDuration};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The four §6.2 lab scenarios.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Fi + PhiGRAPE(CPU) on the quad-core desktop (353 s/iter in the
    /// paper).
    CpuOnly,
    /// Octgrav + PhiGRAPE(GPU) on the desktop's GeForce 9600GT (89 s).
    LocalGpu,
    /// Octgrav moved to a Tesla C2050 on the LGM cluster, 30 km away
    /// (84 s — "using the compute power of a GPU 30 kilometers away is
    /// faster than using a GPU located inside our own machine").
    RemoteGpu,
    /// The full Fig 12 jungle: Gadget on 8 DAS-4 (VU) nodes, SSE at UvA,
    /// Octgrav on 2 GPU nodes at TU Delft, PhiGRAPE on the LGM (62.4 s).
    FullJungle,
}

impl Scenario {
    /// All four, in paper order.
    pub fn all() -> [Scenario; 4] {
        [Scenario::CpuOnly, Scenario::LocalGpu, Scenario::RemoteGpu, Scenario::FullJungle]
    }

    /// The runtime the paper reports, seconds per iteration.
    pub fn paper_seconds(self) -> f64 {
        match self {
            Scenario::CpuOnly => 353.0,
            Scenario::LocalGpu => 89.0,
            Scenario::RemoteGpu => 84.0,
            Scenario::FullJungle => 62.4,
        }
    }

    /// Label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::CpuOnly => "CPU only (Fi + phiGRAPE-CPU)",
            Scenario::LocalGpu => "local GPU (Octgrav + phiGRAPE-GPU)",
            Scenario::RemoteGpu => "remote GPU (Octgrav on LGM)",
            Scenario::FullJungle => "full jungle (4 sites)",
        }
    }
}

/// The Fig 12 lab grid.
pub fn lab_grid() -> GridDescription {
    GridDescription {
        resources: vec![
            ResourceEntry {
                name: "Desktop (VU)".into(),
                location: "Amsterdam, NL".into(),
                firewall: "open".into(),
                nodes: 1,
                cores_per_node: 4,
                gflops_per_core: devices::CORE2_CORE,
                gpus: vec![GpuEntry {
                    model: "GeForce 9600GT".into(),
                    gflops: devices::GEFORCE_9600GT,
                    pcie_gibps: 4.0,
                }],
                middlewares: vec!["local".into(), "ssh".into()],
                hub: true,
                client: true,
                fabric_latency_us: 20,
                fabric_gbps: 9.0,
                memory_gib: 8,
            },
            ResourceEntry {
                name: "DAS-4 (VU)".into(),
                location: "Amsterdam, NL".into(),
                firewall: "open".into(),
                nodes: 8,
                cores_per_node: 8,
                gflops_per_core: devices::DAS4_NODE / 8.0,
                gpus: vec![],
                middlewares: vec!["pbs".into(), "ssh".into()],
                hub: true,
                client: false,
                fabric_latency_us: 50,
                fabric_gbps: 10.0,
                memory_gib: 24,
            },
            ResourceEntry {
                name: "DAS-4 (UvA)".into(),
                location: "Amsterdam, NL".into(),
                firewall: "open".into(),
                nodes: 1,
                cores_per_node: 8,
                gflops_per_core: devices::DAS4_NODE / 8.0,
                gpus: vec![],
                middlewares: vec!["pbs".into(), "ssh".into()],
                hub: true,
                client: false,
                fabric_latency_us: 50,
                fabric_gbps: 10.0,
                memory_gib: 24,
            },
            ResourceEntry {
                name: "DAS-4 (TUD)".into(),
                location: "Delft, NL".into(),
                firewall: "open".into(),
                nodes: 2,
                cores_per_node: 8,
                gflops_per_core: devices::DAS4_NODE / 8.0,
                gpus: vec![GpuEntry {
                    model: "GTX480".into(),
                    gflops: devices::DAS4_GTX480,
                    pcie_gibps: 4.0,
                }],
                middlewares: vec!["pbs".into(), "ssh".into()],
                hub: true,
                client: false,
                fabric_latency_us: 50,
                fabric_gbps: 10.0,
                memory_gib: 24,
            },
            ResourceEntry {
                name: "LGM (LU)".into(),
                location: "Leiden, NL".into(),
                firewall: "open".into(),
                nodes: 1,
                cores_per_node: 8,
                gflops_per_core: devices::DAS4_NODE / 8.0,
                gpus: vec![GpuEntry {
                    model: "Tesla C2050".into(),
                    gflops: devices::TESLA_C2050,
                    pcie_gibps: 4.0,
                }],
                middlewares: vec!["sge".into(), "ssh".into()],
                hub: true,
                client: false,
                fabric_latency_us: 50,
                fabric_gbps: 10.0,
                memory_gib: 24,
            },
        ],
        links: vec![
            LinkEntry {
                a: "Desktop (VU)".into(),
                b: "DAS-4 (VU)".into(),
                latency_ms: 0.2,
                gbps: 1.0,
                label: "1GbE".into(),
            },
            LinkEntry {
                a: "DAS-4 (VU)".into(),
                b: "DAS-4 (UvA)".into(),
                latency_ms: 0.3,
                gbps: 10.0,
                label: "10G lightpath (STARplane)".into(),
            },
            LinkEntry {
                a: "DAS-4 (VU)".into(),
                b: "DAS-4 (TUD)".into(),
                latency_ms: 0.5,
                gbps: 10.0,
                label: "10G lightpath (STARplane)".into(),
            },
            LinkEntry {
                a: "DAS-4 (TUD)".into(),
                b: "LGM (LU)".into(),
                latency_ms: 0.5,
                gbps: 1.0,
                label: "1G lightpath".into(),
            },
        ],
    }
}

/// The Fig 9 SC11 grid: the lab grid with the client replaced by a laptop
/// in Seattle behind a transatlantic 1G lightpath, plus the SARA render
/// cluster driving the tiled display.
pub fn sc11_grid() -> GridDescription {
    let mut g = lab_grid();
    // the desktop stays as a resource but is no longer the client
    for r in &mut g.resources {
        if r.client {
            r.client = false;
        }
    }
    g.resources.push(ResourceEntry {
        name: "Laptop (Seattle)".into(),
        location: "Seattle, WA, USA".into(),
        firewall: "firewalled".into(),
        nodes: 1,
        cores_per_node: 2,
        gflops_per_core: 1.0,
        gpus: vec![],
        middlewares: vec!["local".into()],
        hub: true,
        client: true,
        fabric_latency_us: 20,
        fabric_gbps: 9.0,
        memory_gib: 4,
    });
    g.resources.push(ResourceEntry {
        name: "RVS (SARA)".into(),
        location: "Amsterdam, NL".into(),
        firewall: "open".into(),
        nodes: 16,
        cores_per_node: 8,
        gflops_per_core: 2.0,
        gpus: vec![GpuEntry { model: "render GPU".into(), gflops: 200.0, pcie_gibps: 4.0 }],
        middlewares: vec!["ssh".into()],
        hub: true,
        client: false,
        fabric_latency_us: 50,
        fabric_gbps: 10.0,
        memory_gib: 48,
    });
    g.links.push(LinkEntry {
        a: "Laptop (Seattle)".into(),
        b: "DAS-4 (VU)".into(),
        latency_ms: 45.0,
        gbps: 1.0,
        label: "transatlantic 1G lightpath".into(),
    });
    g.links.push(LinkEntry {
        a: "RVS (SARA)".into(),
        b: "DAS-4 (VU)".into(),
        latency_ms: 0.3,
        gbps: 10.0,
        label: "2 x transatlantic 10G lightpath (render)".into(),
    });
    g
}

/// Where one worker goes.
struct Placement {
    resource: &'static str,
    nodes: u32,
    adapter: MiddlewareKind,
    gflops: f64,
    device_tag: u8,
    mpi_ranks: u32,
    kind: ModelKind,
    label: &'static str,
}

fn placements(s: Scenario) -> [Placement; 4] {
    use MiddlewareKind::*;
    use ModelKind::*;
    const CPU: u8 = 0;
    const GPU: u8 = 1;
    match s {
        Scenario::CpuOnly => [
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Coupling,
                label: "fi",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Gravity,
                label: "phigrape-cpu",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Hydro,
                label: "gadget",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Stellar,
                label: "sse",
            },
        ],
        Scenario::LocalGpu => [
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::GEFORCE_9600GT,
                device_tag: GPU,
                mpi_ranks: 1,
                kind: Coupling,
                label: "octgrav",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::GEFORCE_9600GT,
                device_tag: GPU,
                mpi_ranks: 1,
                kind: Gravity,
                label: "phigrape-gpu",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Hydro,
                label: "gadget",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Stellar,
                label: "sse",
            },
        ],
        Scenario::RemoteGpu => [
            Placement {
                resource: "LGM (LU)",
                nodes: 1,
                adapter: Ssh,
                gflops: devices::TESLA_C2050,
                device_tag: GPU,
                mpi_ranks: 1,
                kind: Coupling,
                label: "octgrav",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::GEFORCE_9600GT,
                device_tag: GPU,
                mpi_ranks: 1,
                kind: Gravity,
                label: "phigrape-gpu",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Hydro,
                label: "gadget",
            },
            Placement {
                resource: "Desktop (VU)",
                nodes: 1,
                adapter: Local,
                gflops: devices::CORE2_QUAD,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Stellar,
                label: "sse",
            },
        ],
        Scenario::FullJungle => [
            Placement {
                resource: "DAS-4 (TUD)",
                nodes: 2,
                adapter: Pbs,
                gflops: 2.0 * devices::DAS4_GTX480,
                device_tag: GPU,
                mpi_ranks: 1,
                kind: Coupling,
                label: "octgrav",
            },
            Placement {
                resource: "LGM (LU)",
                nodes: 1,
                adapter: Ssh,
                gflops: devices::TESLA_C2050,
                device_tag: GPU,
                mpi_ranks: 1,
                kind: Gravity,
                label: "phigrape-gpu",
            },
            Placement {
                resource: "DAS-4 (VU)",
                nodes: 8,
                adapter: Pbs,
                gflops: 8.0 * devices::DAS4_NODE,
                device_tag: CPU,
                mpi_ranks: 8,
                kind: Hydro,
                label: "gadget",
            },
            Placement {
                resource: "DAS-4 (UvA)",
                nodes: 1,
                adapter: Pbs,
                gflops: devices::DAS4_NODE,
                device_tag: CPU,
                mpi_ranks: 1,
                kind: Stellar,
                label: "sse",
            },
        ],
    }
}

/// An idle MPI-rank actor (ranks 1..n of a multi-node worker).
struct IdleRank;
impl Actor for IdleRank {
    fn handle(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
    fn name(&self) -> String {
        "mpi-rank".into()
    }
}

/// Submits the worker jobs and records their seats.
struct Starter {
    submissions: Vec<(u64, ActorId, Option<JobDescription>, MiddlewareKind)>,
    seats: Rc<RefCell<HashMap<u64, Vec<ProcessSeat>>>>,
    failures: Rc<RefCell<Vec<String>>>,
}

impl Actor for Starter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (job, broker, desc, adapter) in &mut self.submissions {
            let desc = desc.take().expect("submitted once");
            let stage = desc.stage_in_bytes;
            ctx.send_net(
                *broker,
                stage + 512,
                TrafficClass::Staging,
                SubmitRequest {
                    job: jc_gat::GatJobId(*job),
                    desc,
                    reply_to: ctx.id(),
                    adapter: *adapter,
                },
            );
        }
    }

    fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
        if let Ok((_, ev)) = msg.downcast::<GatEvent>() {
            match ev.state {
                JobState::Running => {
                    self.seats.borrow_mut().insert(ev.job.0, ev.seats);
                }
                JobState::SubmissionError | JobState::Killed => {
                    self.failures.borrow_mut().push(format!("{:?}: {}", ev.job, ev.detail));
                }
                _ => {}
            }
        }
    }
    fn name(&self) -> String {
        "starter".into()
    }
}

/// Result of running a scenario.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Which scenario.
    pub scenario: Scenario,
    /// Measured virtual seconds per iteration (mean over iterations).
    pub seconds_per_iteration: f64,
    /// The paper's figure for the same setup.
    pub paper_seconds: f64,
    /// RPC calls per iteration.
    pub calls_per_iteration: f64,
    /// Bytes that crossed wide-area links (IPL class), total.
    pub wan_ipl_bytes: u64,
    /// Modeled MPI bytes inside multi-node workers.
    pub mpi_bytes: u64,
    /// Supernovae during the measured iterations.
    pub supernovae: u32,
    /// Worker failures survived (checkpoint-restore replays). Always 0
    /// unless failure injection with recovery is active.
    pub recoveries: u32,
}

/// A deployed, measured world (kept so callers can render monitor views).
pub struct ScenarioRun {
    /// The result row.
    pub result: ScenarioResult,
    /// The simulator after the run (topology + metrics intact).
    pub sim: Rc<RefCell<Sim>>,
    /// The deployment's realm (for the resource map view).
    pub realm: jc_gat::GatRealm,
    /// Overlay (for the Fig 10 view).
    pub overlay: Rc<jc_smartsockets::Overlay>,
    /// Job rows for the Fig 10 job table.
    pub jobs: Vec<jc_deploy::monitor::JobRow>,
}

/// Toy problem size used for the real physics inside the modeled run.
pub const TOY_STARS: usize = 48;
/// Toy gas particle count.
pub const TOY_GAS: usize = 192;
/// Bridge substeps per outer iteration in the scenario runs.
pub const SUBSTEPS: u32 = 8;

/// Run a lab scenario for `iterations` outer iterations on the Fig 12
/// grid; returns measurements plus the live world.
pub fn run_scenario(scenario: Scenario, iterations: u32) -> ScenarioRun {
    run_on_grid(lab_grid(), scenario, iterations)
}

/// Run the SC11 demonstration setup (FullJungle placements, coupler in
/// Seattle).
pub fn run_sc11(iterations: u32) -> ScenarioRun {
    run_on_grid(sc11_grid(), Scenario::FullJungle, iterations)
}

/// Reproduce the paper's §5 fault-tolerance limitation: crash the host of
/// the first (coupling) worker mid-run and observe that "the entire
/// simulation crashes" — the coupled run aborts. Returns true when the
/// run panicked as the paper describes.
pub fn run_crash_demo() -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_on_grid_inner(lab_grid(), Scenario::RemoteGpu, 1, Some(0), false);
    }))
    .is_err()
}

/// Beyond the paper: the same mid-run host crash as [`run_crash_demo`],
/// *survived*. The crashed node is restored (empty), a fresh worker
/// proxy is placed and re-registered with the daemon, the bridge swaps
/// in a channel to it, restores its last checkpoint, and replays the
/// failed iteration — the failure-scenario axis the jungle premise
/// demands. The returned result has `recoveries >= 1`.
pub fn run_failover_demo(iterations: u32) -> ScenarioRun {
    run_on_grid_inner(lab_grid(), Scenario::RemoteGpu, iterations, Some(0), true)
}

fn run_on_grid(grid: GridDescription, scenario: Scenario, iterations: u32) -> ScenarioRun {
    run_on_grid_inner(grid, scenario, iterations, None, false)
}

fn run_on_grid_inner(
    grid: GridDescription,
    scenario: Scenario,
    iterations: u32,
    crash_worker: Option<u32>,
    recover: bool,
) -> ScenarioRun {
    assert!(iterations > 0);
    let mut deployment =
        Deployment::build(grid, SimConfig { seed: 7, ..Default::default() }).expect("valid grid");
    assert!(deployment.converge_overlay(10_000_000), "overlay converged");
    let client_host = deployment.client_host;
    let overlay = deployment.overlay.clone();
    let realm = deployment.realm.clone();

    // the daemon on the user's machine
    let daemon = IbisDaemon::install(&mut deployment.sim, client_host, Some(overlay.clone()));

    // toy cluster: real physics at small N
    let cluster = EmbeddedCluster::build(TOY_STARS, TOY_GAS, 0.5, 42);
    let use_gpu = scenario != Scenario::CpuOnly;
    let (g, h, c, s) = cluster.local_workers(use_gpu);
    let workers: [(Box<dyn ModelWorker>, ModelKind); 4] = [
        (c, ModelKind::Coupling),
        (g, ModelKind::Gravity),
        (h, ModelKind::Hydro),
        (s, ModelKind::Stellar),
    ];

    let ledger: BusyLedger = Default::default();
    let seats: Rc<RefCell<HashMap<u64, Vec<ProcessSeat>>>> = Default::default();
    let failures: Rc<RefCell<Vec<String>>> = Default::default();
    let mut submissions = Vec::new();
    let mut jobs = Vec::new();
    let place = placements(scenario);
    let gas_scale = byte_scale(TOY_GAS, production::N_GAS);
    let star_scale = byte_scale(TOY_STARS, production::N_STARS);

    for (wid, ((worker, kind), p)) in workers.into_iter().zip(&place).enumerate() {
        assert_eq!(p.kind, kind, "placement order matches worker order");
        let resource = realm.resource(p.resource).expect("resource in grid");
        let cell: Rc<RefCell<Option<Box<dyn ModelWorker>>>> = Rc::new(RefCell::new(Some(worker)));
        let id = WorkerId(wid as u32);
        let profile = PerfProfile { kind: p.kind, substeps: SUBSTEPS };
        let scale = match p.kind {
            ModelKind::Hydro | ModelKind::Coupling => gas_scale,
            _ => star_scale,
        };
        let (gflops, tag, ranks, label, ledger_c) =
            (p.gflops, p.device_tag, p.mpi_ranks, p.label, ledger.clone());
        let factory = move |rank: u32, _total: u32, _host| -> Box<dyn Actor> {
            if rank == 0 {
                Box::new(WorkerProxy::new(
                    id,
                    cell.clone(),
                    gflops,
                    profile,
                    tag,
                    ledger_c.clone(),
                    scale,
                    ranks,
                    label,
                ))
            } else {
                Box::new(IdleRank)
            }
        };
        let mut desc = JobDescription::simple(p.label, factory);
        desc.nodes = p.nodes;
        desc.stage_in_bytes = 4 << 20; // model binary + input tables
        submissions.push((wid as u64, resource.broker, Some(desc), p.adapter));
        jobs.push(jc_deploy::monitor::JobRow {
            name: p.label.to_string(),
            resource: p.resource.to_string(),
            nodes: p.nodes,
            state: JobState::Running,
        });
    }

    deployment.sim.add_actor(
        client_host,
        Box::new(Starter { submissions, seats: seats.clone(), failures: failures.clone() }),
    );
    // drive until all four workers are seated
    while seats.borrow().len() < 4 {
        assert!(failures.borrow().is_empty(), "worker start failed: {:?}", failures.borrow());
        assert!(deployment.sim.step(), "sim idle before workers started");
    }
    // register worker routes with the daemon
    for wid in 0..4u64 {
        let proxy = seats.borrow()[&wid][0].actor;
        deployment.sim.post(
            daemon.actor,
            RegisterWorker { id: WorkerId(wid as u32), proxy },
            SimDuration::ZERO,
        );
    }
    while daemon.shared.borrow().routes.len() < 4 {
        assert!(deployment.sim.step(), "sim idle before registration completed");
    }

    // failure injection: kill a worker's host shortly after startup — the
    // §5 limitation demo (see run_crash_demo)
    if let Some(w) = crash_worker {
        let host = seats.borrow()[&(w as u64)][0].host;
        let at = deployment.sim.now() + SimDuration::from_secs(1);
        deployment.sim.crash_host_at(host, at);
    }

    let sim = Rc::new(RefCell::new(deployment.sim));
    let mk_channel = |wid: u32, scale: f64, name: &str| {
        IbisChannel::new(sim.clone(), daemon.clone(), WorkerId(wid), scale, name)
    };
    let coupling = mk_channel(0, gas_scale, place[0].label);
    let gravity = mk_channel(1, star_scale, place[1].label);
    let hydro = mk_channel(2, gas_scale, place[2].label);
    let stellar = mk_channel(3, star_scale, place[3].label);

    let mut cfg: BridgeConfig = cluster.bridge_config();
    cfg.substeps = SUBSTEPS;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(gravity),
        Box::new(hydro),
        Box::new(coupling),
        Some(Box::new(stellar)),
        cfg,
    );

    // measure
    let t0 = sim.borrow().now();
    let calls0 = total_calls(&bridge);
    let mut supernovae = 0;
    let mut recoveries = 0u32;
    let mut checkpoint: Option<Checkpoint> = None;
    for _ in 0..iterations {
        let rep = if !recover {
            bridge.iteration()
        } else {
            if checkpoint.is_none() {
                checkpoint = Some(bridge.snapshot().expect("initial checkpoint"));
            }
            match bridge.try_iteration() {
                Ok(rep) => rep,
                Err(e) => {
                    // a worker died mid-iteration: restore its node,
                    // re-place a fresh proxy, re-register the route,
                    // rewind to the checkpoint, replay
                    recoveries += 1;
                    let w = crash_worker.expect("only the injected worker dies") as usize;
                    let host = seats.borrow()[&(w as u64)][0].host;
                    sim.borrow_mut().restore_host_now(host);
                    let (g2, h2, c2, s2) = cluster.local_workers(use_gpu);
                    let p = &place[w];
                    let fresh: Box<dyn ModelWorker> = match p.kind {
                        ModelKind::Coupling => c2,
                        ModelKind::Gravity => g2,
                        ModelKind::Hydro => h2,
                        ModelKind::Stellar => s2,
                    };
                    let scale = match p.kind {
                        ModelKind::Hydro | ModelKind::Coupling => gas_scale,
                        _ => star_scale,
                    };
                    let proxy = WorkerProxy::new(
                        WorkerId(w as u32),
                        Rc::new(RefCell::new(Some(fresh))),
                        p.gflops,
                        PerfProfile { kind: p.kind, substeps: SUBSTEPS },
                        p.device_tag,
                        ledger.clone(),
                        scale,
                        p.mpi_ranks,
                        p.label,
                    );
                    let actor = sim.borrow_mut().add_actor(host, Box::new(proxy));
                    sim.borrow_mut().post(
                        daemon.actor,
                        RegisterWorker { id: WorkerId(w as u32), proxy: actor },
                        SimDuration::ZERO,
                    );
                    while daemon.shared.borrow().routes.get(&WorkerId(w as u32)) != Some(&actor) {
                        assert!(sim.borrow_mut().step(), "sim idle before re-registration");
                    }
                    let role = match p.kind {
                        ModelKind::Coupling => Role::Coupling,
                        ModelKind::Gravity => Role::Gravity,
                        ModelKind::Hydro => Role::Hydro,
                        ModelKind::Stellar => Role::Stellar,
                    };
                    bridge.replace_channel(role, Box::new(mk_channel(w as u32, scale, p.label)));
                    bridge
                        .restore(checkpoint.as_ref().expect("checkpoint taken"))
                        .expect("restore after failover");
                    bridge
                        .try_iteration()
                        .unwrap_or_else(|e2| panic!("replay failed after {e}: {e2}"))
                }
            }
        };
        if recover {
            checkpoint = Some(bridge.snapshot().expect("refresh checkpoint"));
        }
        supernovae += rep.supernovae;
    }
    let t1 = sim.borrow().now();
    let calls1 = total_calls(&bridge);

    let seconds = (t1 - t0).as_secs_f64() / iterations as f64;
    let (wan_ipl, mpi) = {
        let sim_ref = sim.borrow();
        let m = sim_ref.metrics();
        let mut ipl = 0;
        let mut mpi = 0;
        for (_, class, bytes) in m.link_traffic() {
            match class {
                TrafficClass::Ipl => ipl += bytes,
                TrafficClass::Mpi => mpi += bytes,
                _ => {}
            }
        }
        (ipl, mpi)
    };

    ScenarioRun {
        result: ScenarioResult {
            scenario,
            seconds_per_iteration: seconds,
            paper_seconds: scenario.paper_seconds(),
            calls_per_iteration: (calls1 - calls0) as f64 / iterations as f64,
            wan_ipl_bytes: wan_ipl,
            mpi_bytes: mpi,
            supernovae,
            recoveries,
        },
        sim,
        realm,
        overlay,
        jobs,
    }
}

fn total_calls(bridge: &Bridge) -> u64 {
    let (g, h, c, s) = bridge.channel_stats();
    g.calls + h.calls + c.calls + s.map(|x| x.calls).unwrap_or(0)
}

/// Render the Table 1 rows (paper vs. measured) as fixed-width text.
pub fn format_table1(results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>12} {:>12} {:>9} {:>8}\n",
        "SCENARIO", "PAPER s/it", "MODEL s/it", "SPEEDUP", "CALLS/it"
    ));
    let base = results.first().map(|r| r.seconds_per_iteration).unwrap_or(1.0);
    for r in results {
        out.push_str(&format!(
            "{:<38} {:>12.1} {:>12.1} {:>8.1}x {:>8.0}\n",
            r.scenario.label(),
            r.paper_seconds,
            r.seconds_per_iteration,
            base / r.seconds_per_iteration,
            r.calls_per_iteration,
        ));
    }
    out
}
