//! Real (wall-clock) loopback-channel measurement.
//!
//! §5: "The connection is created using a local loopback socket.
//! Benchmarks show that this connection is over 8 Gbit/second even on a
//! modest laptop, has an extremely small latency". This module measures
//! the equivalent coupler↔daemon byte pipe of this reproduction: an
//! in-memory channel between two OS threads.

use crossbeam::channel as xchan;
use std::time::Instant;

/// Loopback measurement results.
#[derive(Clone, Copy, Debug)]
pub struct LoopbackReport {
    /// Sustained one-way throughput, Gbit/s.
    pub gbit_per_s: f64,
    /// Mean round-trip latency for minimal messages, microseconds.
    pub rtt_us: f64,
    /// Bytes transferred in the throughput phase.
    pub bytes: u64,
}

/// Pump `count` messages of `msg_bytes` through a thread-to-thread pipe
/// and ping-pong `pings` minimal messages, reporting throughput and
/// latency.
pub fn measure(msg_bytes: usize, count: usize, pings: usize) -> LoopbackReport {
    assert!(msg_bytes > 0 && count > 0 && pings > 0);
    // throughput: one-way stream, receiver drains and acknowledges the end
    let (tx, rx) = xchan::bounded::<Vec<u8>>(16);
    let (done_tx, done_rx) = xchan::bounded::<u64>(1);
    let sink = std::thread::spawn(move || {
        let mut total = 0u64;
        while let Ok(buf) = rx.recv() {
            total += buf.len() as u64;
        }
        let _ = done_tx.send(total);
    });
    let payload = vec![0u8; msg_bytes];
    let t0 = Instant::now();
    for _ in 0..count {
        tx.send(payload.clone()).expect("sink alive");
    }
    drop(tx);
    let total = done_rx.recv().expect("sink reports");
    let dt = t0.elapsed().as_secs_f64();
    sink.join().expect("sink joins");
    let gbit = total as f64 * 8.0 / dt / 1e9;

    // latency: ping-pong minimal messages
    let (ptx, prx) = xchan::bounded::<u8>(1);
    let (qtx, qrx) = xchan::bounded::<u8>(1);
    let echo = std::thread::spawn(move || {
        while let Ok(b) = prx.recv() {
            if qtx.send(b).is_err() {
                break;
            }
        }
    });
    let t0 = Instant::now();
    for _ in 0..pings {
        ptx.send(1).expect("echo alive");
        let _ = qrx.recv().expect("echo answers");
    }
    let rtt = t0.elapsed().as_secs_f64() / pings as f64 * 1e6;
    drop(ptx);
    echo.join().expect("echo joins");

    LoopbackReport { gbit_per_s: gbit, rtt_us: rtt, bytes: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_moves_all_bytes() {
        let r = measure(1 << 16, 64, 16);
        assert_eq!(r.bytes, 64 * (1 << 16));
        assert!(r.gbit_per_s > 0.1, "throughput {} Gbit/s", r.gbit_per_s);
        assert!(r.rtt_us < 10_000.0, "rtt {} us", r.rtt_us);
    }
}
