//! The Ibis channel: [`jc_amuse::Channel`] over the simulated jungle.

use crate::daemon::{DaemonHandle, WorkerId};
use crate::proxy::CallEnvelope;
use jc_amuse::channel::ChannelStats;
use jc_amuse::worker::{Request, Response};
use jc_amuse::Channel;
use jc_netsim::{Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

static NEXT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The coupler side of the Ibis channel for one worker.
///
/// `call` injects an envelope through the daemon's loopback and *drives the
/// event loop* until the reply lands — the coupler blocking on a
/// synchronous RPC, with virtual time advancing by exactly the modeled
/// communication + compute cost. `submit`/`collect` inject without
/// draining, so two channels submitted back-to-back run their workers in
/// parallel virtual time (the Fig 7 parallel evolve).
pub struct IbisChannel {
    sim: Rc<RefCell<Sim>>,
    daemon: DaemonHandle,
    worker: WorkerId,
    /// Request byte scale (toy payload → production payload).
    byte_scale: f64,
    stats: ChannelStats,
    pending: Option<(u64, u64)>, // (seq, scaled request bytes)
    name: String,
}

impl IbisChannel {
    /// Open a channel to a registered worker.
    pub fn new(
        sim: Rc<RefCell<Sim>>,
        daemon: DaemonHandle,
        worker: WorkerId,
        byte_scale: f64,
        name: impl Into<String>,
    ) -> IbisChannel {
        assert!(
            daemon.shared.borrow().routes.contains_key(&worker),
            "worker {worker:?} not registered with the daemon"
        );
        IbisChannel {
            sim,
            daemon,
            worker,
            byte_scale,
            stats: ChannelStats::default(),
            pending: None,
            name: name.into(),
        }
    }

    fn inject(&mut self, req: Request) -> (u64, u64) {
        let seq = NEXT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let bytes = ((req.wire_size() as f64) * self.byte_scale) as u64;
        let env = CallEnvelope {
            worker: self.worker,
            seq,
            request: req,
            wire_bytes: bytes,
            reply_to: self.daemon.actor,
        };
        self.sim.borrow_mut().post(self.daemon.actor, env, SimDuration::ZERO);
        (seq, bytes)
    }

    fn drain_until(&mut self, seq: u64) -> Response {
        loop {
            if let Some(resp) = self.daemon.shared.borrow_mut().replies.remove(&seq) {
                return resp;
            }
            let stepped = self.sim.borrow_mut().step();
            if !stepped {
                // The event queue drained without the reply arriving:
                // the worker (or a host on its route) is dead. Reported
                // as an RPC failure, not a panic, so the bridge's
                // recovery loop can heal and replay (the §5 crash demo
                // still aborts — its bridge asserts on the error).
                return Response::Error(format!(
                    "simulation idle before reply seq {seq} arrived (worker dead?)"
                ));
            }
        }
    }
}

impl Channel for IbisChannel {
    fn call(&mut self, req: Request) -> Response {
        let (seq, req_bytes) = self.inject(req);
        let resp = self.drain_until(seq);
        self.stats.calls += 1;
        self.stats.bytes_out += req_bytes;
        self.stats.bytes_in += ((resp.wire_size() as f64) * self.byte_scale) as u64;
        self.stats.flops += resp.flops();
        resp
    }

    fn submit(&mut self, req: Request) {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        let p = self.inject(req);
        self.pending = Some(p);
    }

    fn collect(&mut self) -> Response {
        let (seq, req_bytes) = self.pending.take().expect("no outstanding call");
        let resp = self.drain_until(seq);
        self.stats.calls += 1;
        self.stats.bytes_out += req_bytes;
        self.stats.bytes_in += ((resp.wire_size() as f64) * self.byte_scale) as u64;
        self.stats.flops += resp.flops();
        resp
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn worker_name(&self) -> String {
        self.name.clone()
    }
}
