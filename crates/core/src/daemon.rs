//! The Ibis daemon: the coupler's gateway into the jungle (Fig 5).

use crate::proxy::{CallEnvelope, ReplyEnvelope};
use jc_amuse::worker::Response;
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{Actor, ActorId, Ctx, Msg, Sim};
use jc_smartsockets::{
    hub::unwrap_message, ConnectionPlan, Overlay, VirtualAddress, VirtualSocket,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Identifies a worker registered with the daemon.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WorkerId(pub u32);

/// State shared between the daemon actor (inside the sim) and the coupler
/// (outside) — standing in for the daemon's loopback socket endpoints.
#[derive(Default)]
pub struct DaemonShared {
    /// Collected replies by sequence number.
    pub replies: HashMap<u64, Response>,
    /// Worker registry: route established once the proxy is known.
    pub routes: HashMap<WorkerId, ActorId>,
}

/// Handle the coupler keeps (see [`crate::IbisChannel`]).
#[derive(Clone)]
pub struct DaemonHandle {
    /// The daemon actor.
    pub actor: ActorId,
    /// Shared loopback state.
    pub shared: Rc<RefCell<DaemonShared>>,
}

/// Message from the coupler side: register a worker's proxy endpoint.
pub struct RegisterWorker {
    /// The worker id.
    pub id: WorkerId,
    /// Its proxy actor (from the GAT job's seats).
    pub proxy: ActorId,
}

/// The daemon actor: routes envelopes to proxies over planned connections.
pub struct IbisDaemon {
    shared: Rc<RefCell<DaemonShared>>,
    sockets: HashMap<WorkerId, VirtualSocket>,
    overlay: Option<Rc<Overlay>>,
}

impl IbisDaemon {
    /// Create the daemon plus its shared state; install with
    /// [`IbisDaemon::install`].
    pub fn new(overlay: Option<Rc<Overlay>>) -> (IbisDaemon, Rc<RefCell<DaemonShared>>) {
        let shared = Rc::new(RefCell::new(DaemonShared::default()));
        (IbisDaemon { shared: shared.clone(), sockets: HashMap::new(), overlay }, shared)
    }

    /// Install the daemon on the client host of a simulation.
    pub fn install(
        sim: &mut Sim,
        host: jc_netsim::HostId,
        overlay: Option<Rc<Overlay>>,
    ) -> DaemonHandle {
        let (daemon, shared) = IbisDaemon::new(overlay);
        let actor = sim.add_actor(host, Box::new(daemon));
        DaemonHandle { actor, shared }
    }
}

impl Actor for IbisDaemon {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // worker registration (from the coupler, via loopback)
        let msg = match msg.downcast::<RegisterWorker>() {
            Ok((_, reg)) => {
                let me = ctx.host();
                let remote = ctx.host_of(reg.proxy);
                let plan = ConnectionPlan::plan(
                    ctx.topo(),
                    self.overlay.as_deref(),
                    VirtualAddress::new(me, 9000),
                    VirtualAddress::new(remote, 9000 + reg.id.0 as u16),
                );
                assert!(
                    plan.is_usable(),
                    "daemon cannot reach worker {:?} on host {:?}: {:?}",
                    reg.id,
                    remote,
                    plan.kind
                );
                self.sockets.insert(reg.id, VirtualSocket::new(plan, reg.proxy));
                self.shared.borrow_mut().routes.insert(reg.id, reg.proxy);
                return;
            }
            Err(m) => m,
        };
        // calls from the coupler: forward over the WAN
        let msg = match msg.downcast::<CallEnvelope>() {
            Ok((_, env)) => {
                let sock = self.sockets.get_mut(&env.worker).expect("call to unregistered worker");
                let bytes = env.wire_bytes;
                sock.send(ctx, bytes, TrafficClass::Ipl, env);
                return;
            }
            Err(m) => m,
        };
        // replies from proxies (possibly relayed through hubs)
        if let Ok((_, rep)) = unwrap_message::<ReplyEnvelope>(msg) {
            self.shared.borrow_mut().replies.insert(rep.seq, rep.response);
        }
    }

    fn name(&self) -> String {
        "ibis-daemon".into()
    }
}
