//! Worker proxies: the remote half of the Ibis channel (Fig 5).
//!
//! "Once the worker is started the daemon uses IPL to communicate over the
//! wide area connection to a proxy process running alongside the worker.
//! The proxy communicates using a loopback connection with the worker
//! process." The proxy here executes the real kernel in place (the physics
//! is genuine, at reduced particle count), while *virtual time* is charged
//! from the calibrated performance model — so one run produces both the
//! paper's physics and its timing shape.

use crate::daemon::WorkerId;
use crate::perfmodel::PerfProfile;
use jc_amuse::worker::{ModelWorker, Request, Response};
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{Actor, ActorId, Ctx, Msg, SimDuration, SimTime};
use jc_smartsockets::hub::unwrap_message;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Serialization point of a shared execution resource: `(host, tag)` pairs
/// share one queue. Tag 0 = CPU, 1 = GPU — PhiGRAPE and Octgrav sharing
/// the desktop's single GeForce serialize on it (scenario 2), while the
/// CPU-side Gadget overlaps.
pub type BusyLedger = Rc<RefCell<HashMap<(jc_netsim::HostId, u8), SimTime>>>;

/// RPC envelope: coupler → daemon → proxy.
pub struct CallEnvelope {
    /// Target worker.
    pub worker: WorkerId,
    /// Sequence number (matches the reply).
    pub seq: u64,
    /// The request.
    pub request: Request,
    /// Wire size (already scaled to production payloads).
    pub wire_bytes: u64,
    /// Where the reply goes (the daemon — carried explicitly because a
    /// relayed envelope arrives "from" the last hub, not the daemon).
    pub reply_to: ActorId,
}

/// RPC reply: proxy → daemon.
pub struct ReplyEnvelope {
    /// Source worker.
    pub worker: WorkerId,
    /// Sequence number.
    pub seq: u64,
    /// The response.
    pub response: Response,
    /// Wire size (scaled).
    pub wire_bytes: u64,
}

struct PendingReply {
    daemon: ActorId,
    env: ReplyEnvelope,
}

/// The proxy actor.
pub struct WorkerProxy {
    id: WorkerId,
    worker: Rc<RefCell<Option<Box<dyn ModelWorker>>>>,
    taken: Option<Box<dyn ModelWorker>>,
    /// Sustained GFLOP/s of the resource slice this worker got.
    gflops: f64,
    profile: PerfProfile,
    /// Which shared execution resource this worker occupies.
    device_tag: u8,
    ledger: BusyLedger,
    /// Reply byte scale (toy → production).
    byte_scale: f64,
    /// MPI ranks inside this worker (Gadget's internal parallelism);
    /// > 1 adds modeled intra-site MPI traffic per evolve.
    mpi_ranks: u32,
    label: String,
}

impl WorkerProxy {
    /// Build a proxy. `worker` is shared with the job factory so only
    /// rank 0 takes it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: WorkerId,
        worker: Rc<RefCell<Option<Box<dyn ModelWorker>>>>,
        gflops: f64,
        profile: PerfProfile,
        device_tag: u8,
        ledger: BusyLedger,
        byte_scale: f64,
        mpi_ranks: u32,
        label: impl Into<String>,
    ) -> WorkerProxy {
        assert!(gflops > 0.0 && byte_scale > 0.0 && mpi_ranks >= 1);
        WorkerProxy {
            id,
            worker,
            taken: None,
            gflops,
            profile,
            device_tag,
            ledger,
            byte_scale,
            mpi_ranks,
            label: label.into(),
        }
    }

    fn model_mpi_traffic(&self, ctx: &mut Ctx<'_>, resp: &Response) {
        if self.mpi_ranks <= 1 {
            return;
        }
        // Intra-worker ghost exchange: proportional to the (scaled)
        // snapshot size, once per evolve call, spread over the site link.
        let bytes = ((resp.wire_size() as f64) * self.byte_scale * 0.2) as u64;
        let site = {
            let host = ctx.host();
            ctx.topo().host(host).site
        };
        let link = ctx.topo().links().find(|(_, l)| l.a == site && l.b == site).map(|(id, _)| id);
        if let Some(link) = link {
            ctx.metrics().record_link(link, TrafficClass::Mpi, bytes.max(1));
        }
    }
}

impl Actor for WorkerProxy {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        self.taken = self.worker.borrow_mut().take();
        assert!(self.taken.is_some(), "worker object already taken (two rank-0 proxies?)");
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // deferred reply send (after modeled compute completes)
        let msg = match msg.downcast::<PendingReply>() {
            Ok((_, p)) => {
                let bytes = p.env.wire_bytes;
                ctx.send_net(p.daemon, bytes, TrafficClass::Ipl, p.env);
                return;
            }
            Err(m) => m,
        };
        let Ok((_, env)) = unwrap_message::<CallEnvelope>(msg) else {
            return;
        };
        let daemon = env.reply_to;
        let worker = self.taken.as_mut().expect("proxy started");
        let is_evolve = matches!(env.request, Request::EvolveTo(_));
        // real execution (loopback hop to the worker process)
        let work_gflop = self.profile.work_gflop(&env.request);
        let response = worker.handle(env.request);
        // modeled duration on this worker's resource slice, serialized on
        // the shared (host, device) ledger
        let dur = SimDuration::from_secs_f64(work_gflop / self.gflops);
        let now = ctx.now();
        let host = ctx.host();
        let mut ledger = self.ledger.borrow_mut();
        let free_at = ledger.entry((host, self.device_tag)).or_insert(now);
        let start = if *free_at > now { *free_at } else { now };
        let end = start + dur;
        *free_at = end;
        drop(ledger);
        ctx.metrics().add_host_busy(host, dur);
        if is_evolve {
            self.model_mpi_traffic(ctx, &response);
        }
        // loopback worker↔proxy hop + compute completion, then reply
        let loopback = ctx.topo().loopback_latency;
        let delay = (end - now) + loopback * 2;
        let wire_bytes = ((response.wire_size() as f64) * self.byte_scale) as u64;
        let env = ReplyEnvelope { worker: self.id, seq: env.seq, response, wire_bytes };
        ctx.schedule_self(delay, PendingReply { daemon, env });
    }

    fn name(&self) -> String {
        format!("proxy:{}", self.label)
    }
}
