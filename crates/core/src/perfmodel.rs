//! The calibrated performance model.
//!
//! The paper's lab machines are gone; their sustained throughputs on these
//! kernels are modeled here. The per-iteration work budgets (`WORK_*`) are
//! calibrated against the four §6.2 scenario runtimes — see DESIGN.md
//! ("Performance-model calibration") and EXPERIMENTS.md for the
//! paper-vs-measured table. The *shape* constraints the calibration must
//! preserve: CPU-only is ~4× slower than a local GPU; a faster remote GPU
//! (Tesla C2050, 30 km away) slightly beats the slow local GPU (GeForce
//! 9600GT); the fully distributed jungle wins overall.

use jc_amuse::worker::Request;

/// Sustained double-precision GFLOP/s on the paper's kernels (calibrated,
/// not peak).
pub mod devices {
    /// Intel Core2 quad desktop (§6.2's "basic machine"), all four cores.
    pub const CORE2_QUAD: f64 = 4.0;
    /// One Core2 core.
    pub const CORE2_CORE: f64 = 1.0;
    /// NVIDIA GeForce 9600GT (the desktop GPU).
    pub const GEFORCE_9600GT: f64 = 60.0;
    /// NVIDIA Tesla C2050 (the LGM node GPU).
    pub const TESLA_C2050: f64 = 300.0;
    /// One DAS-4 GPU node (GTX480-class) used for Octgrav at TU Delft.
    pub const DAS4_GTX480: f64 = 150.0;
    /// One DAS-4 compute node (dual quad-core Xeon), all cores.
    pub const DAS4_NODE: f64 = 16.0;
}

/// Per-outer-iteration work budgets in GFLOP, calibrated to §6.2 (see the
/// module docs). The coupling (Fi/Octgrav) budget dominates on the CPU —
/// "We determined that the Fi coupler model was dominating the runtime in
/// the first scenario".
pub mod work {
    /// Coupling model (tree gravity between gas and stars), per iteration.
    pub const COUPLING_GFLOP: f64 = 412.0;
    /// Gravitational dynamics (PhiGRAPE), per iteration.
    pub const GRAVITY_GFLOP: f64 = 672.0;
    /// Gas dynamics (Gadget), per iteration.
    pub const GAS_GFLOP: f64 = 328.0;
    /// Stellar evolution (SSE): "nearly trivial" lookups.
    pub const SSE_GFLOP: f64 = 0.01;
}

/// The production problem size the calibration assumes (the paper's
/// simulation), versus which toy payload bytes are scaled up.
pub mod production {
    /// Gas particles in the production run.
    pub const N_GAS: usize = 100_000;
    /// Stars in the production run.
    pub const N_STARS: usize = 1_000;
}

/// Which model a worker runs (selects its work budget).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelKind {
    /// PhiGRAPE gravitational dynamics.
    Gravity,
    /// Gadget gas dynamics.
    Hydro,
    /// Octgrav / Fi coupling.
    Coupling,
    /// SSE stellar evolution.
    Stellar,
}

/// Per-worker performance profile: turns one RPC request into modeled
/// GFLOP of work, given the bridge's substep structure.
#[derive(Clone, Copy, Debug)]
pub struct PerfProfile {
    /// The model this worker runs.
    pub kind: ModelKind,
    /// Bridge substeps per outer iteration (work is spread across them).
    pub substeps: u32,
}

impl PerfProfile {
    /// Modeled work of one request, in GFLOP.
    ///
    /// * `EvolveTo` carries the model's per-iteration budget divided by the
    ///   substep count (gravity/hydro evolve once per substep).
    /// * `ComputeKick` is called 4× per substep (two kicks × two
    ///   directions), so the coupling budget is divided accordingly.
    /// * Everything else (snapshots, kicks, bookkeeping) is minor.
    pub fn work_gflop(&self, req: &Request) -> f64 {
        let s = self.substeps as f64;
        match (self.kind, req) {
            (ModelKind::Gravity, Request::EvolveTo(_)) => work::GRAVITY_GFLOP / s,
            (ModelKind::Hydro, Request::EvolveTo(_)) => work::GAS_GFLOP / s,
            (ModelKind::Coupling, Request::ComputeKick { .. }) => work::COUPLING_GFLOP / (4.0 * s),
            (ModelKind::Stellar, Request::EvolveStars(_)) => work::SSE_GFLOP,
            // snapshot serialization cost etc.
            (_, Request::GetParticles) => 0.001,
            (_, Request::Kick(_)) | (_, Request::SetMasses(_)) => 0.001,
            _ => 0.0001,
        }
    }
}

/// Byte-scale factor from a toy particle count up to the production size.
pub fn byte_scale(toy_n: usize, production_n: usize) -> f64 {
    assert!(toy_n > 0);
    production_n as f64 / toy_n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_analytic_sum_matches_paper() {
        // CPU-only: everything serialized on the Core2 quad.
        let t =
            (work::COUPLING_GFLOP + work::GRAVITY_GFLOP + work::GAS_GFLOP) / devices::CORE2_QUAD;
        assert!((t - 353.0).abs() < 2.0, "S1 analytic = {t}");
    }

    #[test]
    fn scenario2_analytic_matches_paper() {
        // coupling on the 9600GT, then gravity (GPU) || gas (CPU).
        let t = work::COUPLING_GFLOP / devices::GEFORCE_9600GT
            + (work::GRAVITY_GFLOP / devices::GEFORCE_9600GT)
                .max(work::GAS_GFLOP / devices::CORE2_QUAD);
        assert!((t - 89.0).abs() < 2.0, "S2 analytic = {t}");
    }

    #[test]
    fn scenario3_analytic_close_to_paper() {
        // coupling moves to the remote Tesla; compute drops ~5.5 s, WAN
        // chatter (modeled by netsim at run time) eats some of it back.
        let t = work::COUPLING_GFLOP / devices::TESLA_C2050
            + (work::GRAVITY_GFLOP / devices::GEFORCE_9600GT)
                .max(work::GAS_GFLOP / devices::CORE2_QUAD);
        assert!(t > 80.0 && t < 84.5, "S3 analytic (compute only) = {t}");
    }

    #[test]
    fn work_profile_splits_budgets_over_substeps() {
        let p = PerfProfile { kind: ModelKind::Coupling, substeps: 8 };
        let kick =
            Request::ComputeKick { targets: vec![], source_pos: vec![], source_mass: vec![] };
        // 4 kicks per substep × 8 substeps = 32 calls per iteration
        assert!((p.work_gflop(&kick) * 32.0 - work::COUPLING_GFLOP).abs() < 1e-9);
        let g = PerfProfile { kind: ModelKind::Gravity, substeps: 8 };
        assert!((g.work_gflop(&Request::EvolveTo(0.0)) * 8.0 - work::GRAVITY_GFLOP).abs() < 1e-9);
    }

    #[test]
    fn byte_scale_sanity() {
        assert_eq!(byte_scale(1_000, 100_000), 100.0);
    }
}
