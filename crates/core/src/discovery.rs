//! Automatic resource discovery — the paper's fifth requirement (§4.3) and
//! declared future work (§7).
//!
//! *"Fifth and last is a requirement that is high on the wish list of
//! users: the automatic discovery of suitable resources. Given the list of
//! resources a user has access to, ideally, software should find suitable
//! resources itself, without any intervention from the user."*
//!
//! Given the user's grid file and each worker's requirements, the matcher
//! scores every resource and picks the best placement: GPU workers go to
//! the fastest GPU site, multi-node workers to the resource with enough
//! nodes and the highest aggregate throughput, trivial workers to whatever
//! is left closest to the client. Resources may be used by multiple
//! workers, but node demand is tracked so a resource is never
//! oversubscribed.

use crate::perfmodel::devices;
use jc_deploy::descriptor::{GridDescription, ResourceEntry};
use std::collections::HashMap;

/// What a worker needs from a resource.
#[derive(Clone, Debug)]
pub struct Requirements {
    /// Worker name (for reporting).
    pub worker: String,
    /// Needs a GPU-equipped node.
    pub needs_gpu: bool,
    /// Number of nodes required.
    pub nodes: u32,
    /// Minimum aggregate GFLOP/s the worker should get (0 = any).
    pub min_gflops: f64,
}

impl Requirements {
    /// Convenience constructor.
    pub fn new(
        worker: impl Into<String>,
        needs_gpu: bool,
        nodes: u32,
        min_gflops: f64,
    ) -> Requirements {
        assert!(nodes > 0);
        Requirements { worker: worker.into(), needs_gpu, nodes, min_gflops }
    }
}

/// A discovered placement.
#[derive(Clone, Debug, PartialEq)]
pub struct Discovered {
    /// Worker name.
    pub worker: String,
    /// Chosen resource name.
    pub resource: String,
    /// Aggregate GFLOP/s the worker gets there.
    pub gflops: f64,
}

/// Discovery errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiscoveryError {
    /// No resource satisfies the requirements.
    NoSuitableResource {
        /// Which worker could not be placed.
        worker: String,
    },
}

impl std::fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveryError::NoSuitableResource { worker } => {
                write!(f, "no suitable resource for worker {worker:?}")
            }
        }
    }
}

impl std::error::Error for DiscoveryError {}

/// Aggregate GFLOP/s a worker would get on `nodes` nodes of a resource.
fn resource_gflops(r: &ResourceEntry, nodes: u32, use_gpu: bool) -> f64 {
    if use_gpu {
        r.gpus.iter().map(|g| g.gflops).sum::<f64>() * nodes as f64
    } else {
        r.cores_per_node as f64 * r.gflops_per_core * nodes as f64
    }
}

/// Match every worker to the best available resource. Workers are placed
/// in the order given; demanding workers should come first (the caller
/// usually sorts by `min_gflops` descending, which
/// [`discover_for_cluster_run`] does).
pub fn discover(
    grid: &GridDescription,
    requirements: &[Requirements],
) -> Result<Vec<Discovered>, DiscoveryError> {
    // remaining free nodes per resource (client machines participate too —
    // running locally is a valid placement, as scenarios 1–3 show)
    let mut free: HashMap<&str, u32> =
        grid.resources.iter().map(|r| (r.name.as_str(), r.nodes.max(1))).collect();
    let mut out = Vec::with_capacity(requirements.len());
    for req in requirements {
        let mut best: Option<(&ResourceEntry, f64)> = None;
        for r in &grid.resources {
            if req.needs_gpu && r.gpus.is_empty() {
                continue;
            }
            if free[r.name.as_str()] < req.nodes {
                continue;
            }
            if r.middlewares.is_empty() {
                continue; // unreachable resource: nothing to submit through
            }
            let gf = resource_gflops(r, req.nodes, req.needs_gpu);
            if gf < req.min_gflops {
                continue;
            }
            if best.map(|(_, bgf)| gf > bgf).unwrap_or(true) {
                best = Some((r, gf));
            }
        }
        let (r, gf) =
            best.ok_or_else(|| DiscoveryError::NoSuitableResource { worker: req.worker.clone() })?;
        *free.get_mut(r.name.as_str()).expect("seen above") -= req.nodes;
        out.push(Discovered { worker: req.worker.clone(), resource: r.name.clone(), gflops: gf });
    }
    Ok(out)
}

/// The embedded-cluster run's standard worker requirements, demanding
/// workers first: coupling (GPU), gravity (GPU), gas (8 nodes), stellar.
pub fn discover_for_cluster_run(grid: &GridDescription) -> Result<Vec<Discovered>, DiscoveryError> {
    discover(
        grid,
        &[
            Requirements::new("phigrape", true, 1, devices::GEFORCE_9600GT),
            Requirements::new("octgrav", true, 1, devices::GEFORCE_9600GT),
            Requirements::new("gadget", false, 8, 64.0),
            Requirements::new("sse", false, 1, 0.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::lab_grid;

    #[test]
    fn cluster_run_discovers_the_fig12_placement() {
        let grid = lab_grid();
        let placed = discover_for_cluster_run(&grid).expect("placeable");
        let by_worker: HashMap<&str, &Discovered> =
            placed.iter().map(|d| (d.worker.as_str(), d)).collect();
        // gravity grabs the fastest GPU: the LGM Tesla
        assert_eq!(by_worker["phigrape"].resource, "LGM (LU)");
        // coupling gets the next-best GPU node: a TUD GTX480
        assert_eq!(by_worker["octgrav"].resource, "DAS-4 (TUD)");
        // the 8-node gas job can only fit on DAS-4 (VU)
        assert_eq!(by_worker["gadget"].resource, "DAS-4 (VU)");
        // sse goes to the fastest remaining CPU resource
        assert!(!by_worker["sse"].resource.is_empty());
    }

    #[test]
    fn gpu_requirement_is_respected() {
        let grid = lab_grid();
        let placed = discover(&grid, &[Requirements::new("render", true, 1, 0.0)]).unwrap();
        // any resource chosen must actually have GPUs
        let r = grid.resource(&placed[0].resource).unwrap();
        assert!(!r.gpus.is_empty());
    }

    #[test]
    fn impossible_requirements_error() {
        let grid = lab_grid();
        let err = discover(&grid, &[Requirements::new("huge", false, 64, 0.0)]).unwrap_err();
        assert_eq!(err, DiscoveryError::NoSuitableResource { worker: "huge".into() });
        let err = discover(&grid, &[Requirements::new("exa", true, 1, 1.0e9)]).unwrap_err();
        assert!(matches!(err, DiscoveryError::NoSuitableResource { .. }));
    }

    #[test]
    fn node_demand_is_tracked_across_workers() {
        let grid = lab_grid();
        // two 1-node GPU workers: LGM has one node, TUD has two — both
        // must be placed without double-booking LGM's single node
        let placed = discover(
            &grid,
            &[Requirements::new("a", true, 1, 100.0), Requirements::new("b", true, 1, 100.0)],
        )
        .unwrap();
        assert_eq!(placed[0].resource, "LGM (LU)");
        assert_eq!(placed[1].resource, "DAS-4 (TUD)");
    }
}
