//! The registry of `JC_*` environment variables.
//!
//! Environment knobs are invisible API: a `std::env::var("JC_…")` read
//! buried in a kernel changes behavior with no type to grep for and no
//! place a user can discover it. Every `JC_*` variable the workspace
//! reads must have an entry here, and the `env-registry` lint in
//! `jc-lint` enforces the loop in both directions: an unregistered read
//! fails the gate, and so does a registered entry that is never read
//! (dead knob) or not documented in the README.
//!
//! This table is data, not mechanism — call sites keep reading the
//! environment directly (usually through a `OnceLock` so the knob is
//! sampled once). The registry exists so the full set of knobs is one
//! reviewable, documented list.

/// Every `JC_*` environment variable the workspace reads, with a
/// one-line description. Keep alphabetized.
pub const JC_ENV: &[(&str, &str)] = &[
    (
        "JC_CHAOS_SEED",
        "Seed for the deterministic fault-injection plan (jc_amuse::chaos::FaultPlan::from_env); \
         unset or unparsable means no faults.",
    ),
    (
        "JC_LOCKSTEP",
        "Set to 1/true to force ShardedChannel fan-out back to serial lock-step calls even when \
         every shard channel supports pipelining; escape hatch and A/B baseline.",
    ),
    (
        "JC_NET_TIMEOUT_MS",
        "Socket-channel read/write timeout in milliseconds (connects, drains, and retry-enabled \
         channels); defaults to 5000.",
    ),
    (
        "JC_POOL_SIZE",
        "Warm-host count for the multi-session service pool (jc_service::ServiceConfig::from_env); \
         defaults to 2.",
    ),
    (
        "JC_SESSION_DEADLINE_MS",
        "Default per-session deadline budget for the multi-session service, measured from \
         submission (queue time counts); 0 or unset means no deadline.",
    ),
    (
        "JC_THREADS",
        "Worker-thread count for the parallel chunking core (and the rayon shim); \
         defaults to the number of available CPUs.",
    ),
];

/// Look up the description for a registered variable.
pub fn describe(name: &str) -> Option<&'static str> {
    JC_ENV.iter().find(|(n, _)| *n == name).map(|(_, d)| *d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_alphabetized_and_described() {
        for pair in JC_ENV.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{} out of order", pair[1].0);
        }
        for (name, desc) in JC_ENV {
            assert!(name.starts_with("JC_"), "{name} is not a JC_ knob");
            assert!(!desc.trim().is_empty(), "{name} lacks a description");
        }
    }

    #[test]
    fn describe_finds_registered_knobs() {
        assert!(describe("JC_THREADS").is_some());
        assert!(describe("JC_NONEXISTENT").is_none());
    }
}
