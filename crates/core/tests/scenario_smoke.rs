//! End-to-end: the four lab scenarios and the SC11 run produce the paper's
//! ordering and rough factors.

use jc_core::scenarios::{
    format_table1, run_crash_demo, run_failover_demo, run_sc11, run_scenario,
};
use jc_core::Scenario;

#[test]
fn lab_scenarios_reproduce_paper_shape() {
    let results: Vec<_> = Scenario::all().into_iter().map(|s| run_scenario(s, 1).result).collect();
    println!("{}", format_table1(&results));
    let secs: Vec<f64> = results.iter().map(|r| r.seconds_per_iteration).collect();
    // ordering: CPU-only slowest, each subsequent scenario faster
    assert!(secs[0] > secs[1], "local GPU beats CPU: {secs:?}");
    assert!(secs[1] > secs[2], "remote Tesla beats local 9600GT: {secs:?}");
    assert!(secs[2] > secs[3], "full jungle wins: {secs:?}");
    // rough factors: S1 within 15% of paper, S2/S3 within 20%
    assert!((secs[0] - 353.0).abs() / 353.0 < 0.15, "S1 = {}", secs[0]);
    assert!((secs[1] - 89.0).abs() / 89.0 < 0.20, "S2 = {}", secs[1]);
    assert!((secs[2] - 84.0).abs() / 84.0 < 0.20, "S3 = {}", secs[2]);
    // the paper's S4 is 62.4 s; our prototype parallelizes/overlaps better
    // and lands much lower — assert only that it wins and stays sub-S3.
    assert!(secs[3] < 62.4, "S4 = {}", secs[3]);
    // distributed scenarios moved real bytes across the WAN
    assert!(results[2].wan_ipl_bytes > 1 << 20);
    assert!(results[3].mpi_bytes > 0, "8-rank Gadget models MPI traffic");
}

#[test]
fn sc11_transatlantic_run_completes() {
    let run = run_sc11(1);
    assert!(run.result.seconds_per_iteration > 0.0);
    // the coupler sits in Seattle: transatlantic traffic must exist
    assert!(run.result.wan_ipl_bytes > 1 << 20);
}

#[test]
fn crash_without_recovery_still_aborts_like_the_paper() {
    // §5: "if one worker crashes, the entire simulation crashes"
    assert!(run_crash_demo(), "the unprotected run must abort");
}

#[test]
fn failover_demo_survives_the_same_crash() {
    // the same injected host crash, with restore + re-place + replay:
    // the run completes and reports at least one recovery
    let run = run_failover_demo(2);
    assert!(run.result.recoveries >= 1, "the crash must actually fire mid-run");
    assert!(run.result.seconds_per_iteration > 0.0);
    assert_eq!(run.result.scenario, Scenario::RemoteGpu);
}
