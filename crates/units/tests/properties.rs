//! Property-based tests for the unit algebra.

use jc_units::{astro, si, Dim, NBodyConverter, Quantity};
use proptest::prelude::*;

fn small_exp() -> impl Strategy<Value = i8> {
    -4i8..=4
}

fn arb_dim() -> impl Strategy<Value = Dim> {
    (small_exp(), small_exp(), small_exp()).prop_map(|(l, m, t)| Dim::lmt(l, m, t))
}

proptest! {
    /// Dim forms an abelian group under `+` with identity NONE.
    #[test]
    fn dim_group_laws(a in arb_dim(), b in arb_dim(), c in arb_dim()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + Dim::NONE, a);
        prop_assert_eq!(a + (-a), Dim::NONE);
    }

    /// pow distributes over the group operation.
    #[test]
    fn dim_pow_is_repeated_add(a in arb_dim(), n in 0i8..=4) {
        let mut acc = Dim::NONE;
        for _ in 0..n { acc = acc + a; }
        prop_assert_eq!(a.pow(n), acc);
    }

    /// Converting value -> unit -> value round-trips.
    #[test]
    fn quantity_conversion_round_trip(v in -1.0e6f64..1.0e6) {
        let q = Quantity::new(v, astro::PARSEC);
        let out = q.value_in(astro::PARSEC).unwrap();
        prop_assert!((out - v).abs() <= 1e-9 * v.abs().max(1.0));
    }

    /// Multiplication of quantities adds dimensions.
    #[test]
    fn quantity_mul_dims(a in arb_dim(), b in arb_dim(), x in 0.1f64..10.0, y in 0.1f64..10.0) {
        let qa = Quantity::from_si(x, a);
        let qb = Quantity::from_si(y, b);
        prop_assert_eq!((qa * qb).dim(), a + b);
        prop_assert_eq!((qa / qb).dim(), a - b);
    }

    /// Incompatible additions always error; compatible ones never do.
    #[test]
    fn addition_checked(a in arb_dim(), b in arb_dim(), x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let qa = Quantity::from_si(x, a);
        let qb = Quantity::from_si(y, b);
        prop_assert_eq!(qa.checked_add(qb).is_ok(), a == b);
    }

    /// N-body conversion round-trips for any (L, M, T) dimension.
    #[test]
    fn nbody_round_trip(d in arb_dim(), v in 0.001f64..1000.0) {
        let conv = NBodyConverter::new(
            Quantity::new(100.0, astro::MSUN),
            Quantity::new(0.5, astro::PARSEC),
        ).unwrap();
        let q = Quantity::from_si(v, d);
        let code = conv.to_nbody(q).unwrap();
        let back = conv.to_physical(code, d).unwrap();
        let rel = (back.si_value() - v).abs() / v;
        prop_assert!(rel < 1e-9, "rel err {rel}");
    }

    /// sqrt of q*q recovers |q| and halves the dimension.
    #[test]
    fn sqrt_of_square(d in arb_dim(), v in 0.0f64..1.0e3) {
        let q = Quantity::from_si(v, d);
        let sq = q * q;
        let root = sq.sqrt().unwrap();
        prop_assert_eq!(root.dim(), d);
        prop_assert!((root.si_value() - v).abs() < 1e-6 * v.max(1.0));
    }
}

#[test]
fn si_prefix_sanity() {
    assert_eq!(si::KILOMETER.conversion_factor_to(si::CENTIMETER).unwrap(), 1.0e5);
}
