//! Astronomical units and constants used by the AMUSE-style kernels.

use crate::dimension::Dim;
use crate::quantity::Quantity;
use crate::unit::Unit;

/// Astronomical unit (mean Earth–Sun distance).
pub const AU: Unit = Unit::new("AU", Dim::LENGTH, 1.495_978_707e11);
/// Parsec.
pub const PARSEC: Unit = Unit::new("pc", Dim::LENGTH, 3.085_677_581_49e16);
/// Kiloparsec.
pub const KPC: Unit = Unit::new("kpc", Dim::LENGTH, 3.085_677_581_49e19);
/// Light-year.
pub const LIGHTYEAR: Unit = Unit::new("ly", Dim::LENGTH, 9.460_730_472_58e15);
/// Solar radius.
pub const RSUN: Unit = Unit::new("RSun", Dim::LENGTH, 6.957e8);

/// Solar mass.
pub const MSUN: Unit = Unit::new("MSun", Dim::MASS, 1.988_47e30);

/// Julian year.
pub const YEAR: Unit = Unit::new("yr", Dim::TIME, 3.155_76e7);
/// Megayear.
pub const MYR: Unit = Unit::new("Myr", Dim::TIME, 3.155_76e13);
/// Gigayear.
pub const GYR: Unit = Unit::new("Gyr", Dim::TIME, 3.155_76e16);

/// Kilometres per second (the customary stellar-velocity unit).
pub const KMS: Unit = Unit::new("km/s", Dim::lmt(1, 0, -1), 1.0e3);

/// Solar luminosity.
pub const LSUN: Unit = Unit::new("LSun", Dim::lmt(2, 1, -3), 3.828e26);

/// Dimension of the gravitational constant: L^3 M^-1 T^-2.
pub const G_DIM: Dim = Dim::lmt(3, -1, -2);

/// Newton's gravitational constant in SI (m^3 kg^-1 s^-2).
pub const G_SI: f64 = 6.674_30e-11;

/// Newton's gravitational constant as a checked quantity.
pub fn g() -> Quantity {
    Quantity::from_si(G_SI, G_DIM)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::si;

    #[test]
    fn parsec_in_lightyears() {
        let f = PARSEC.conversion_factor_to(LIGHTYEAR).unwrap();
        assert!((f - 3.2616).abs() < 1e-3, "1 pc = {f} ly");
    }

    #[test]
    fn kms_is_1000_m_per_s() {
        assert_eq!(KMS.conversion_factor_to(si::METER_PER_SECOND).unwrap(), 1000.0);
    }

    #[test]
    fn g_has_right_dimension() {
        let q = g();
        assert_eq!(q.dim(), G_DIM);
    }

    #[test]
    fn myr_in_years() {
        assert!((MYR.conversion_factor_to(YEAR).unwrap() - 1.0e6).abs() < 1.0);
    }
}
