//! # jc-units — checked physical units and quantities
//!
//! Reproduction of the AMUSE unit system described in §4.1 of the paper:
//! *"AMUSE implements all functionality required to perform astrophysical
//! simulations, for example by supporting automatic unit conversion. With the
//! large number of units used in astronomy, checked conversion of all these
//! units is a requirement for combining different models."*
//!
//! Every value exchanged between coupled models is a [`Quantity`]: a scalar
//! stored internally in SI base units together with its [`Dim`]ension.
//! Arithmetic between quantities is dimension-checked at runtime; converting
//! a quantity to a unit with a different dimension is an error
//! ([`UnitError::Incompatible`]). This is exactly the failure mode the AMUSE
//! coupler guards against when models written by different groups are glued
//! together.
//!
//! The crate also provides the `nbody_system` converter ([`NBodyConverter`])
//! used by gravitational-dynamics codes: those codes work in dimensionless
//! Hénon units (G = 1), and the converter maps between those and physical
//! units given a mass and length scale.
//!
//! ```
//! use jc_units::{Quantity, astro, si};
//!
//! let m = Quantity::new(1.0, astro::MSUN);
//! let v = Quantity::new(10.0, astro::KMS);
//! let e = m * v * v; // mass * velocity^2 is an energy
//! assert!(e.value_in(si::JOULE).unwrap() > 0.0);
//! assert!(e.value_in(si::METER).is_err()); // checked conversion
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod astro;
pub mod dimension;
pub mod nbody;
pub mod quantity;
pub mod si;
pub mod unit;

pub use dimension::Dim;
pub use nbody::NBodyConverter;
pub use quantity::{Quantity, VectorQuantity};
pub use unit::{Unit, UnitError};
