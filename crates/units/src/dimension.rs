//! Physical dimensions as integer exponents over the seven SI base units.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Number of SI base dimensions tracked.
pub const NUM_BASE: usize = 7;

/// A physical dimension: integer exponents over the SI base units
/// (length, mass, time, electric current, temperature, amount, luminous
/// intensity).
///
/// `Dim` forms an abelian group under multiplication of quantities:
/// multiplying quantities adds exponents, dividing subtracts them. The
/// group laws are property-tested in this crate's test suite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Dim {
    /// Exponents in the order: m, kg, s, A, K, mol, cd.
    pub exps: [i8; NUM_BASE],
}

impl Dim {
    /// The dimensionless dimension (all exponents zero).
    pub const NONE: Dim = Dim { exps: [0; NUM_BASE] };
    /// Length (metre).
    pub const LENGTH: Dim = Dim::base(0);
    /// Mass (kilogram).
    pub const MASS: Dim = Dim::base(1);
    /// Time (second).
    pub const TIME: Dim = Dim::base(2);
    /// Electric current (ampere).
    pub const CURRENT: Dim = Dim::base(3);
    /// Thermodynamic temperature (kelvin).
    pub const TEMPERATURE: Dim = Dim::base(4);
    /// Amount of substance (mole).
    pub const AMOUNT: Dim = Dim::base(5);
    /// Luminous intensity (candela).
    pub const LUMINOUS: Dim = Dim::base(6);

    /// A base dimension with exponent 1 at position `i`.
    const fn base(i: usize) -> Dim {
        let mut exps = [0i8; NUM_BASE];
        exps[i] = 1;
        Dim { exps }
    }

    /// Construct a dimension from explicit `(length, mass, time)` exponents;
    /// the remaining base dimensions are zero. This covers every unit used
    /// by the astrophysics kernels.
    pub const fn lmt(length: i8, mass: i8, time: i8) -> Dim {
        Dim { exps: [length, mass, time, 0, 0, 0, 0] }
    }

    /// True when all exponents are zero.
    pub fn is_dimensionless(&self) -> bool {
        self.exps.iter().all(|&e| e == 0)
    }

    /// Raise the dimension to an integer power.
    pub fn pow(self, n: i8) -> Dim {
        let mut exps = [0i8; NUM_BASE];
        for (o, e) in exps.iter_mut().zip(self.exps) {
            *o = e * n;
        }
        Dim { exps }
    }

    /// Inverse dimension (all exponents negated).
    pub fn inv(self) -> Dim {
        -self
    }
}

impl Mul for Dim {
    type Output = Dim;
    // Multiplying quantities adds their dimension exponents.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: Dim) -> Dim {
        self + rhs
    }
}

impl Add for Dim {
    type Output = Dim;
    fn add(self, rhs: Dim) -> Dim {
        let mut exps = [0i8; NUM_BASE];
        for (e, (a, b)) in exps.iter_mut().zip(self.exps.iter().zip(&rhs.exps)) {
            *e = a + b;
        }
        Dim { exps }
    }
}

impl Sub for Dim {
    type Output = Dim;
    fn sub(self, rhs: Dim) -> Dim {
        self + (-rhs)
    }
}

impl Neg for Dim {
    type Output = Dim;
    fn neg(self) -> Dim {
        let mut exps = [0i8; NUM_BASE];
        for (e, a) in exps.iter_mut().zip(&self.exps) {
            *e = -a;
        }
        Dim { exps }
    }
}

const SYMBOLS: [&str; NUM_BASE] = ["m", "kg", "s", "A", "K", "mol", "cd"];

impl fmt::Debug for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dimensionless() {
            return write!(f, "1");
        }
        let mut first = true;
        for (sym, &e) in SYMBOLS.iter().zip(&self.exps) {
            if e != 0 {
                if !first {
                    write!(f, " ")?;
                }
                first = false;
                if e == 1 {
                    write!(f, "{sym}")?;
                } else {
                    write!(f, "{sym}^{e}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_dims_are_distinct() {
        let dims = [
            Dim::LENGTH,
            Dim::MASS,
            Dim::TIME,
            Dim::CURRENT,
            Dim::TEMPERATURE,
            Dim::AMOUNT,
            Dim::LUMINOUS,
        ];
        for (i, a) in dims.iter().enumerate() {
            for (j, b) in dims.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }

    #[test]
    fn energy_dimension() {
        // E = M L^2 T^-2
        let energy = Dim::MASS + Dim::LENGTH.pow(2) - Dim::TIME.pow(2);
        assert_eq!(energy, Dim::lmt(2, 1, -2));
        assert_eq!(energy.to_string(), "m^2 kg s^-2");
    }

    #[test]
    fn mul_is_add_of_exponents() {
        assert_eq!(Dim::LENGTH * Dim::LENGTH, Dim::LENGTH.pow(2));
        assert_eq!(Dim::LENGTH * Dim::LENGTH.inv(), Dim::NONE);
    }

    #[test]
    fn display_dimensionless() {
        assert_eq!(Dim::NONE.to_string(), "1");
    }

    #[test]
    fn pow_zero_is_identity_element() {
        assert_eq!(Dim::MASS.pow(0), Dim::NONE);
    }
}
