//! N-body (Hénon) unit converter, mirroring AMUSE's `nbody_system`.
//!
//! Gravitational-dynamics kernels work in dimensionless units where
//! G = 1, total mass ~ 1 and the virial radius ~ 1. The coupler converts
//! between those and physical units using a [`NBodyConverter`] defined by a
//! chosen mass scale and length scale — exactly AMUSE's
//! `nbody_system.nbody_to_si(mass, length)`.

use crate::astro;
use crate::dimension::Dim;
use crate::quantity::Quantity;
use crate::unit::UnitError;

/// Converts between dimensionless N-body units (G = 1) and physical units.
#[derive(Clone, Copy, Debug)]
pub struct NBodyConverter {
    mass_si: f64,   // kg per n-body mass unit
    length_si: f64, // m per n-body length unit
    time_si: f64,   // s per n-body time unit (derived so that G = 1)
}

impl NBodyConverter {
    /// Build a converter from a mass scale and a length scale.
    ///
    /// The time unit follows from requiring G = 1 in code units:
    /// `t* = sqrt(L^3 / (G M))`.
    pub fn new(mass: Quantity, length: Quantity) -> Result<NBodyConverter, UnitError> {
        if mass.dim() != Dim::MASS {
            return Err(UnitError::Incompatible { left: mass.dim(), right: Dim::MASS });
        }
        if length.dim() != Dim::LENGTH {
            return Err(UnitError::Incompatible { left: length.dim(), right: Dim::LENGTH });
        }
        let mass_si = mass.si_value();
        let length_si = length.si_value();
        let time_si = (length_si.powi(3) / (astro::G_SI * mass_si)).sqrt();
        Ok(NBodyConverter { mass_si, length_si, time_si })
    }

    /// Seconds per N-body time unit.
    pub fn time_unit_si(&self) -> f64 {
        self.time_si
    }

    /// Metres per N-body length unit.
    pub fn length_unit_si(&self) -> f64 {
        self.length_si
    }

    /// Kilograms per N-body mass unit.
    pub fn mass_unit_si(&self) -> f64 {
        self.mass_si
    }

    /// Metres/second per N-body velocity unit.
    pub fn velocity_unit_si(&self) -> f64 {
        self.length_si / self.time_si
    }

    /// Joules per N-body energy unit.
    pub fn energy_unit_si(&self) -> f64 {
        self.mass_si * (self.length_si / self.time_si).powi(2)
    }

    /// Convert a physical quantity to a dimensionless code value.
    ///
    /// The quantity's dimension determines the conversion: each base
    /// exponent is divided out by the corresponding code scale. Only
    /// (length, mass, time) dimensions are convertible.
    pub fn to_nbody(&self, q: Quantity) -> Result<f64, UnitError> {
        let d = q.dim();
        for &e in &d.exps[3..] {
            if e != 0 {
                return Err(UnitError::Incompatible { left: d, right: Dim::NONE });
            }
        }
        let scale = self.length_si.powi(d.exps[0] as i32)
            * self.mass_si.powi(d.exps[1] as i32)
            * self.time_si.powi(d.exps[2] as i32);
        Ok(q.si_value() / scale)
    }

    /// Convert a dimensionless code value with a known dimension back to a
    /// physical quantity.
    pub fn to_physical(&self, value: f64, dim: Dim) -> Result<Quantity, UnitError> {
        for &e in &dim.exps[3..] {
            if e != 0 {
                return Err(UnitError::Incompatible { left: dim, right: Dim::NONE });
            }
        }
        let scale = self.length_si.powi(dim.exps[0] as i32)
            * self.mass_si.powi(dim.exps[1] as i32)
            * self.time_si.powi(dim.exps[2] as i32);
        Ok(Quantity::from_si(value * scale, dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::si;

    fn converter() -> NBodyConverter {
        NBodyConverter::new(Quantity::new(1000.0, astro::MSUN), Quantity::new(1.0, astro::PARSEC))
            .unwrap()
    }

    #[test]
    fn mass_scale_round_trip() {
        let c = converter();
        let m = Quantity::new(500.0, astro::MSUN);
        let code = c.to_nbody(m).unwrap();
        assert!((code - 0.5).abs() < 1e-12);
        let back = c.to_physical(code, Dim::MASS).unwrap();
        assert!((back.value_in(astro::MSUN).unwrap() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn g_equals_one_in_code_units() {
        let c = converter();
        let g = astro::g();
        let code_g = c.to_nbody(g).unwrap();
        assert!((code_g - 1.0).abs() < 1e-12, "G in code units = {code_g}");
    }

    #[test]
    fn velocity_scale_consistent() {
        let c = converter();
        // v* = L*/t*
        let v = c.velocity_unit_si();
        assert!((v - c.length_unit_si() / c.time_unit_si()).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_scale_dimensions() {
        assert!(NBodyConverter::new(
            Quantity::new(1.0, astro::PARSEC),
            Quantity::new(1.0, astro::PARSEC)
        )
        .is_err());
    }

    #[test]
    fn rejects_temperature() {
        let c = converter();
        let t = Quantity::new(300.0, si::KELVIN);
        assert!(c.to_nbody(t).is_err());
    }

    #[test]
    fn crossing_time_is_order_myr_for_cluster() {
        // A 1000 MSun, 1 pc cluster has an n-body time unit of ~0.1-1 Myr.
        let c = converter();
        let t_myr = c.time_unit_si() / astro::MYR.si_factor;
        assert!(t_myr > 0.01 && t_myr < 10.0, "t* = {t_myr} Myr");
    }
}
