//! Units: a named scale factor attached to a dimension.

use crate::dimension::Dim;
use std::fmt;

/// Error type for checked unit operations.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// Two quantities (or a quantity and a target unit) have different
    /// dimensions; conversion or addition is refused. Carries the two
    /// dimensions for diagnostics — the AMUSE coupler surfaces these to the
    /// simulation script author.
    Incompatible {
        /// Dimension of the left-hand side / source quantity.
        left: Dim,
        /// Dimension of the right-hand side / target unit.
        right: Dim,
    },
    /// A value failed a validity check (NaN or infinite) when crossing a
    /// model boundary. The coupler checks for "illegal values" (§4.1).
    IllegalValue {
        /// Human-readable description of the offending value.
        what: String,
    },
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::Incompatible { left, right } => {
                write!(f, "incompatible dimensions: {left} vs {right}")
            }
            UnitError::IllegalValue { what } => write!(f, "illegal value: {what}"),
        }
    }
}

impl std::error::Error for UnitError {}

/// A unit of measure: a dimension plus the factor converting one of this
/// unit into SI base units, plus a human-readable symbol.
///
/// Units are small `Copy` values; derived units can be formed with
/// [`Unit::mul`], [`Unit::div`] and [`Unit::pow`] (these produce units with
/// a generic symbol, which is fine for intermediate computation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Unit {
    /// Symbol, e.g. `"MSun"` or `"km/s"`.
    pub symbol: &'static str,
    /// Dimension of the unit.
    pub dim: Dim,
    /// How many SI base units one of this unit is (e.g. 1 parsec =
    /// 3.0857e16 m, so `si_factor = 3.0857e16`).
    pub si_factor: f64,
}

impl Unit {
    /// Define a new unit.
    pub const fn new(symbol: &'static str, dim: Dim, si_factor: f64) -> Unit {
        Unit { symbol, dim, si_factor }
    }

    /// Product of two units (symbol is lost; dimension and factor compose).
    #[allow(clippy::should_implement_trait)] // const-friendly named method, like `uom`
    pub fn mul(self, rhs: Unit) -> Unit {
        Unit {
            symbol: "<derived>",
            dim: self.dim + rhs.dim,
            si_factor: self.si_factor * rhs.si_factor,
        }
    }

    /// Quotient of two units.
    #[allow(clippy::should_implement_trait)] // const-friendly named method, like `uom`
    pub fn div(self, rhs: Unit) -> Unit {
        Unit {
            symbol: "<derived>",
            dim: self.dim - rhs.dim,
            si_factor: self.si_factor / rhs.si_factor,
        }
    }

    /// Integer power of a unit.
    pub fn pow(self, n: i8) -> Unit {
        Unit { symbol: "<derived>", dim: self.dim.pow(n), si_factor: self.si_factor.powi(n as i32) }
    }

    /// Factor converting a value expressed in `self` into `other`.
    ///
    /// Errors when the dimensions differ — this is the "checked conversion"
    /// the paper calls a requirement for combining models.
    pub fn conversion_factor_to(self, other: Unit) -> Result<f64, UnitError> {
        if self.dim != other.dim {
            return Err(UnitError::Incompatible { left: self.dim, right: other.dim });
        }
        Ok(self.si_factor / other.si_factor)
    }

    /// True if the two units measure the same dimension.
    pub fn compatible(self, other: Unit) -> bool {
        self.dim == other.dim
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::si;

    #[test]
    fn conversion_factor_km_to_m() {
        assert_eq!(si::KILOMETER.conversion_factor_to(si::METER).unwrap(), 1000.0);
    }

    #[test]
    fn incompatible_conversion_is_error() {
        let err = si::KILOMETER.conversion_factor_to(si::SECOND).unwrap_err();
        match err {
            UnitError::Incompatible { left, right } => {
                assert_eq!(left, Dim::LENGTH);
                assert_eq!(right, Dim::TIME);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn derived_unit_composition() {
        let speed = si::METER.div(si::SECOND);
        assert_eq!(speed.dim, Dim::lmt(1, 0, -1));
        assert_eq!(speed.si_factor, 1.0);
        let area = si::KILOMETER.pow(2);
        assert_eq!(area.dim, Dim::lmt(2, 0, 0));
        assert_eq!(area.si_factor, 1.0e6);
    }

    #[test]
    fn display_uses_symbol() {
        assert_eq!(si::JOULE.to_string(), "J");
    }
}
