//! SI base and derived units.

use crate::dimension::Dim;
use crate::unit::Unit;

/// Dimensionless "unit" (factor 1).
pub const NONE: Unit = Unit::new("", Dim::NONE, 1.0);

// --- base units -----------------------------------------------------------

/// Metre.
pub const METER: Unit = Unit::new("m", Dim::LENGTH, 1.0);
/// Kilogram.
pub const KILOGRAM: Unit = Unit::new("kg", Dim::MASS, 1.0);
/// Second.
pub const SECOND: Unit = Unit::new("s", Dim::TIME, 1.0);
/// Ampere.
pub const AMPERE: Unit = Unit::new("A", Dim::CURRENT, 1.0);
/// Kelvin.
pub const KELVIN: Unit = Unit::new("K", Dim::TEMPERATURE, 1.0);
/// Mole.
pub const MOLE: Unit = Unit::new("mol", Dim::AMOUNT, 1.0);
/// Candela.
pub const CANDELA: Unit = Unit::new("cd", Dim::LUMINOUS, 1.0);

// --- scaled length/mass/time ----------------------------------------------

/// Kilometre.
pub const KILOMETER: Unit = Unit::new("km", Dim::LENGTH, 1.0e3);
/// Centimetre.
pub const CENTIMETER: Unit = Unit::new("cm", Dim::LENGTH, 1.0e-2);
/// Gram.
pub const GRAM: Unit = Unit::new("g", Dim::MASS, 1.0e-3);
/// Minute.
pub const MINUTE: Unit = Unit::new("min", Dim::TIME, 60.0);
/// Hour.
pub const HOUR: Unit = Unit::new("hour", Dim::TIME, 3600.0);
/// Day.
pub const DAY: Unit = Unit::new("day", Dim::TIME, 86_400.0);

// --- derived units ----------------------------------------------------------

/// Hertz (1/s).
pub const HERTZ: Unit = Unit::new("Hz", Dim::lmt(0, 0, -1), 1.0);
/// Newton (kg m / s^2).
pub const NEWTON: Unit = Unit::new("N", Dim::lmt(1, 1, -2), 1.0);
/// Joule (kg m^2 / s^2).
pub const JOULE: Unit = Unit::new("J", Dim::lmt(2, 1, -2), 1.0);
/// Watt (J/s).
pub const WATT: Unit = Unit::new("W", Dim::lmt(2, 1, -3), 1.0);
/// Pascal (N/m^2).
pub const PASCAL: Unit = Unit::new("Pa", Dim::lmt(-1, 1, -2), 1.0);
/// Metres per second.
pub const METER_PER_SECOND: Unit = Unit::new("m/s", Dim::lmt(1, 0, -1), 1.0);
/// Kilograms per cubic metre.
pub const KG_PER_M3: Unit = Unit::new("kg/m^3", Dim::lmt(-3, 1, 0), 1.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newton_is_kg_m_per_s2() {
        let derived = KILOGRAM.mul(METER).div(SECOND.pow(2));
        assert_eq!(derived.dim, NEWTON.dim);
        assert_eq!(derived.si_factor, NEWTON.si_factor);
    }

    #[test]
    fn joule_is_newton_meter() {
        let derived = NEWTON.mul(METER);
        assert_eq!(derived.dim, JOULE.dim);
    }

    #[test]
    fn day_in_seconds() {
        assert_eq!(DAY.conversion_factor_to(SECOND).unwrap(), 86_400.0);
    }
}
