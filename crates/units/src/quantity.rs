//! Dimension-checked scalar and 3-vector quantities.

use crate::dimension::Dim;
use crate::unit::{Unit, UnitError};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A scalar physical quantity: a value stored in SI base units plus its
/// dimension.
///
/// All arithmetic is dimension-checked. Multiplication and division always
/// succeed (dimensions compose); addition, subtraction and comparison return
/// `Err(UnitError::Incompatible)` when the dimensions differ. To keep call
/// sites readable, `*` and `/` are also offered on `Result<Quantity, _>` so
/// checked expressions chain: `(m * v * v)` is a `Result`.
#[derive(Clone, Copy, PartialEq)]
pub struct Quantity {
    value_si: f64,
    dim: Dim,
}

impl Quantity {
    /// Create a quantity from a value expressed in `unit`.
    pub fn new(value: f64, unit: Unit) -> Quantity {
        Quantity { value_si: value * unit.si_factor, dim: unit.dim }
    }

    /// Create a quantity directly from an SI value and dimension.
    pub fn from_si(value_si: f64, dim: Dim) -> Quantity {
        Quantity { value_si, dim }
    }

    /// A dimensionless quantity.
    pub fn scalar(value: f64) -> Quantity {
        Quantity { value_si: value, dim: Dim::NONE }
    }

    /// Zero with the dimension of `unit`.
    pub fn zero(unit: Unit) -> Quantity {
        Quantity { value_si: 0.0, dim: unit.dim }
    }

    /// The dimension of this quantity.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Raw SI value (use sparingly; prefer [`Quantity::value_in`]).
    pub fn si_value(&self) -> f64 {
        self.value_si
    }

    /// Convert to a value expressed in `unit`, checking dimensions.
    pub fn value_in(&self, unit: Unit) -> Result<f64, UnitError> {
        if self.dim != unit.dim {
            return Err(UnitError::Incompatible { left: self.dim, right: unit.dim });
        }
        Ok(self.value_si / unit.si_factor)
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Quantity) -> Result<Quantity, UnitError> {
        if self.dim != rhs.dim {
            return Err(UnitError::Incompatible { left: self.dim, right: rhs.dim });
        }
        Ok(Quantity { value_si: self.value_si + rhs.value_si, dim: self.dim })
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Quantity) -> Result<Quantity, UnitError> {
        self.checked_add(-rhs)
    }

    /// Integer power.
    pub fn powi(self, n: i8) -> Quantity {
        Quantity { value_si: self.value_si.powi(n as i32), dim: self.dim.pow(n) }
    }

    /// Square root; dimension exponents must all be even.
    pub fn sqrt(self) -> Result<Quantity, UnitError> {
        let mut exps = [0i8; crate::dimension::NUM_BASE];
        for (o, &e) in exps.iter_mut().zip(&self.dim.exps) {
            if e % 2 != 0 {
                return Err(UnitError::IllegalValue {
                    what: format!("sqrt of dimension {} with odd exponent", self.dim),
                });
            }
            *o = e / 2;
        }
        Ok(Quantity { value_si: self.value_si.sqrt(), dim: Dim { exps } })
    }

    /// Validate the value is finite — the coupler's "checking for illegal
    /// values" (§4.1) applied at model boundaries.
    pub fn validated(self) -> Result<Quantity, UnitError> {
        if self.value_si.is_finite() {
            Ok(self)
        } else {
            Err(UnitError::IllegalValue { what: format!("non-finite value {}", self.value_si) })
        }
    }

    /// Checked comparison.
    pub fn partial_cmp_checked(&self, rhs: &Quantity) -> Result<std::cmp::Ordering, UnitError> {
        if self.dim != rhs.dim {
            return Err(UnitError::Incompatible { left: self.dim, right: rhs.dim });
        }
        self.value_si
            .partial_cmp(&rhs.value_si)
            .ok_or_else(|| UnitError::IllegalValue { what: "NaN in comparison".into() })
    }
}

impl fmt::Debug for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.value_si, self.dim)
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.value_si, self.dim)
    }
}

impl Neg for Quantity {
    type Output = Quantity;
    fn neg(self) -> Quantity {
        Quantity { value_si: -self.value_si, dim: self.dim }
    }
}

impl Mul for Quantity {
    type Output = Quantity;
    fn mul(self, rhs: Quantity) -> Quantity {
        Quantity { value_si: self.value_si * rhs.value_si, dim: self.dim + rhs.dim }
    }
}

impl Div for Quantity {
    type Output = Quantity;
    fn div(self, rhs: Quantity) -> Quantity {
        Quantity { value_si: self.value_si / rhs.value_si, dim: self.dim - rhs.dim }
    }
}

impl Mul<f64> for Quantity {
    type Output = Quantity;
    fn mul(self, rhs: f64) -> Quantity {
        Quantity { value_si: self.value_si * rhs, dim: self.dim }
    }
}

impl Div<f64> for Quantity {
    type Output = Quantity;
    fn div(self, rhs: f64) -> Quantity {
        Quantity { value_si: self.value_si / rhs, dim: self.dim }
    }
}

impl Add for Quantity {
    type Output = Result<Quantity, UnitError>;
    fn add(self, rhs: Quantity) -> Result<Quantity, UnitError> {
        self.checked_add(rhs)
    }
}

impl Sub for Quantity {
    type Output = Result<Quantity, UnitError>;
    fn sub(self, rhs: Quantity) -> Result<Quantity, UnitError> {
        self.checked_sub(rhs)
    }
}

// Chaining helpers so `(m * v * v)` style expressions work where an
// intermediate is already a Result.
impl Mul<Quantity> for Result<Quantity, UnitError> {
    type Output = Result<Quantity, UnitError>;
    fn mul(self, rhs: Quantity) -> Result<Quantity, UnitError> {
        self.map(|q| q * rhs)
    }
}

impl Div<Quantity> for Result<Quantity, UnitError> {
    type Output = Result<Quantity, UnitError>;
    fn div(self, rhs: Quantity) -> Result<Quantity, UnitError> {
        self.map(|q| q / rhs)
    }
}

/// A 3-vector quantity (position, velocity, acceleration, …) with a single
/// shared dimension.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VectorQuantity {
    /// SI components.
    pub value_si: [f64; 3],
    dim: Dim,
}

impl VectorQuantity {
    /// Create from components expressed in `unit`.
    pub fn new(value: [f64; 3], unit: Unit) -> VectorQuantity {
        VectorQuantity {
            value_si: [
                value[0] * unit.si_factor,
                value[1] * unit.si_factor,
                value[2] * unit.si_factor,
            ],
            dim: unit.dim,
        }
    }

    /// Create from SI components.
    pub fn from_si(value_si: [f64; 3], dim: Dim) -> VectorQuantity {
        VectorQuantity { value_si, dim }
    }

    /// The dimension of the vector.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Convert components into `unit`, checking dimensions.
    pub fn value_in(&self, unit: Unit) -> Result<[f64; 3], UnitError> {
        if self.dim != unit.dim {
            return Err(UnitError::Incompatible { left: self.dim, right: unit.dim });
        }
        Ok([
            self.value_si[0] / unit.si_factor,
            self.value_si[1] / unit.si_factor,
            self.value_si[2] / unit.si_factor,
        ])
    }

    /// Euclidean norm as a scalar quantity.
    pub fn norm(&self) -> Quantity {
        let [x, y, z] = self.value_si;
        Quantity::from_si((x * x + y * y + z * z).sqrt(), self.dim)
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: VectorQuantity) -> Result<VectorQuantity, UnitError> {
        if self.dim != rhs.dim {
            return Err(UnitError::Incompatible { left: self.dim, right: rhs.dim });
        }
        Ok(VectorQuantity {
            value_si: [
                self.value_si[0] + rhs.value_si[0],
                self.value_si[1] + rhs.value_si[1],
                self.value_si[2] + rhs.value_si[2],
            ],
            dim: self.dim,
        })
    }

    /// Scale by a scalar quantity (e.g. velocity * time -> displacement).
    pub fn scale(self, s: Quantity) -> VectorQuantity {
        VectorQuantity {
            value_si: [
                self.value_si[0] * s.si_value(),
                self.value_si[1] * s.si_value(),
                self.value_si[2] * s.si_value(),
            ],
            dim: self.dim + s.dim(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{astro, si};

    #[test]
    fn kinetic_energy_checks_out() {
        let m = Quantity::new(2.0, si::KILOGRAM);
        let v = Quantity::new(3.0, si::METER_PER_SECOND);
        let e = m * v * v * 0.5;
        assert_eq!(e.value_in(si::JOULE).unwrap(), 9.0);
    }

    #[test]
    fn adding_mass_to_length_fails() {
        let m = Quantity::new(1.0, si::KILOGRAM);
        let l = Quantity::new(1.0, si::METER);
        assert!((m + l).is_err());
    }

    #[test]
    fn msun_to_kg() {
        let m = Quantity::new(1.0, astro::MSUN);
        assert!((m.value_in(si::KILOGRAM).unwrap() - 1.98847e30).abs() < 1e25);
    }

    #[test]
    fn sqrt_even_exponents() {
        let a = Quantity::new(9.0, si::METER.pow(2));
        assert_eq!(a.sqrt().unwrap().value_in(si::METER).unwrap(), 3.0);
    }

    #[test]
    fn sqrt_odd_exponent_fails() {
        let a = Quantity::new(9.0, si::METER);
        assert!(a.sqrt().is_err());
    }

    #[test]
    fn validated_rejects_nan() {
        assert!(Quantity::scalar(f64::NAN).validated().is_err());
        assert!(Quantity::scalar(1.0).validated().is_ok());
    }

    #[test]
    fn vector_norm_and_conversion() {
        let v = VectorQuantity::new([3.0, 4.0, 0.0], astro::KMS);
        assert_eq!(v.norm().value_in(astro::KMS).unwrap(), 5.0);
        assert_eq!(v.value_in(si::METER_PER_SECOND).unwrap(), [3000.0, 4000.0, 0.0]);
        assert!(v.value_in(si::METER).is_err());
    }

    #[test]
    fn vector_scale_changes_dimension() {
        let v = VectorQuantity::new([1.0, 0.0, 0.0], si::METER_PER_SECOND);
        let dt = Quantity::new(10.0, si::SECOND);
        let dx = v.scale(dt);
        assert_eq!(dx.value_in(si::METER).unwrap(), [10.0, 0.0, 0.0]);
    }
}
