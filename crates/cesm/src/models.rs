//! Component models: atmosphere, ocean, land, sea-ice (active + data).

/// A scalar field on the shared lat-lon exchange grid.
#[derive(Clone, Debug, PartialEq)]
pub struct GridField {
    /// Grid width (longitude cells).
    pub nx: usize,
    /// Grid height (latitude cells).
    pub ny: usize,
    /// Row-major values.
    pub data: Vec<f64>,
}

impl GridField {
    /// A constant field.
    pub fn constant(nx: usize, ny: usize, v: f64) -> GridField {
        GridField { nx, ny, data: vec![v; nx * ny] }
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Sum (the conserved quantity in flux exchange).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Pointwise addition.
    pub fn add(&mut self, other: &GridField) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// One diffusion sweep with coefficient `k` (the "physics" of the toy
    /// components — smooths the field while conserving its sum on the
    /// periodic grid).
    pub fn diffuse(&mut self, k: f64) {
        let (nx, ny) = (self.nx, self.ny);
        let src = self.data.clone();
        for j in 0..ny {
            for i in 0..nx {
                let c = src[j * nx + i];
                let e = src[j * nx + (i + 1) % nx];
                let w = src[j * nx + (i + nx - 1) % nx];
                let n = src[((j + 1) % ny) * nx + i];
                let s = src[((j + ny - 1) % ny) * nx + i];
                self.data[j * nx + i] = c + k * (e + w + n + s - 4.0 * c);
            }
        }
    }
}

/// Which climate component a model implements.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ComponentKind {
    /// Atmosphere (CAM-like).
    Atmosphere,
    /// Ocean (POP-like).
    Ocean,
    /// Land (CLM-like).
    Land,
    /// Sea ice (CICE-like).
    SeaIce,
}

impl ComponentKind {
    /// All four components.
    pub fn all() -> [ComponentKind; 4] {
        [
            ComponentKind::Atmosphere,
            ComponentKind::Ocean,
            ComponentKind::Land,
            ComponentKind::SeaIce,
        ]
    }

    /// Relative compute cost per step (atmosphere dominates, as in CESM
    /// performance studies).
    pub fn relative_cost(self) -> f64 {
        match self {
            ComponentKind::Atmosphere => 1.0,
            ComponentKind::Ocean => 0.6,
            ComponentKind::Land => 0.15,
            ComponentKind::SeaIce => 0.1,
        }
    }
}

/// A coupled component: steps its internal state and exchanges flux fields
/// with the coupler.
pub trait Component {
    /// Which component this is.
    fn kind(&self) -> ComponentKind;
    /// Advance internal state by one coupling interval, given the flux the
    /// coupler sent.
    fn step(&mut self, incoming: &GridField) -> GridField;
    /// Is this a data (replay) component?
    fn is_data(&self) -> bool {
        false
    }
}

/// An active component: a diffusive reservoir that absorbs a fraction of
/// the incoming flux and re-emits the rest.
pub struct ActiveComponent {
    kind: ComponentKind,
    /// Internal state field.
    pub state: GridField,
    absorb: f64,
    diffusivity: f64,
}

impl ActiveComponent {
    /// Create with an initial uniform state.
    pub fn new(kind: ComponentKind, nx: usize, ny: usize, initial: f64) -> ActiveComponent {
        let (absorb, diffusivity) = match kind {
            ComponentKind::Atmosphere => (0.3, 0.2),
            ComponentKind::Ocean => (0.7, 0.05),
            ComponentKind::Land => (0.5, 0.01),
            ComponentKind::SeaIce => (0.2, 0.02),
        };
        ActiveComponent { kind, state: GridField::constant(nx, ny, initial), absorb, diffusivity }
    }
}

impl Component for ActiveComponent {
    fn kind(&self) -> ComponentKind {
        self.kind
    }

    fn step(&mut self, incoming: &GridField) -> GridField {
        // absorb a fraction of incoming flux into the state...
        let mut absorbed = incoming.clone();
        for v in &mut absorbed.data {
            *v *= self.absorb;
        }
        self.state.add(&absorbed);
        self.state.diffuse(self.diffusivity);
        // ...and emit a flux proportional to the state
        let mut out = self.state.clone();
        for v in &mut out.data {
            *v *= 0.1;
        }
        for (s, o) in self.state.data.iter_mut().zip(&out.data) {
            *s -= o;
        }
        out
    }
}

/// A data component: replays a fixed flux series, ignoring input — CESM's
/// "data implementations [...] simply replay precomputed data".
pub struct DataComponent {
    kind: ComponentKind,
    series: Vec<GridField>,
    cursor: usize,
}

impl DataComponent {
    /// Create from a replay series (cycled when exhausted).
    pub fn new(kind: ComponentKind, series: Vec<GridField>) -> DataComponent {
        assert!(!series.is_empty());
        DataComponent { kind, series, cursor: 0 }
    }
}

impl Component for DataComponent {
    fn kind(&self) -> ComponentKind {
        self.kind
    }

    fn step(&mut self, _incoming: &GridField) -> GridField {
        let out = self.series[self.cursor % self.series.len()].clone();
        self.cursor += 1;
        out
    }

    fn is_data(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_conserves_sum() {
        let mut f = GridField::constant(8, 8, 0.0);
        f.data[0] = 100.0;
        let s0 = f.sum();
        for _ in 0..50 {
            f.diffuse(0.2);
        }
        assert!((f.sum() - s0).abs() < 1e-9);
        // and spreads out
        assert!(f.data[0] < 50.0);
    }

    #[test]
    fn active_component_absorbs_and_emits() {
        let mut c = ActiveComponent::new(ComponentKind::Ocean, 4, 4, 10.0);
        let incoming = GridField::constant(4, 4, 1.0);
        let out = c.step(&incoming);
        assert!(out.mean() > 0.0);
        assert_eq!(out.nx, 4);
    }

    #[test]
    fn data_component_replays_and_cycles() {
        let series = vec![GridField::constant(2, 2, 1.0), GridField::constant(2, 2, 2.0)];
        let mut d = DataComponent::new(ComponentKind::SeaIce, series);
        let dummy = GridField::constant(2, 2, 99.0);
        assert_eq!(d.step(&dummy).mean(), 1.0);
        assert_eq!(d.step(&dummy).mean(), 2.0);
        assert_eq!(d.step(&dummy).mean(), 1.0, "cycles");
        assert!(d.is_data());
    }

    #[test]
    fn atmosphere_is_most_expensive() {
        let costs: Vec<f64> = ComponentKind::all().iter().map(|k| k.relative_cost()).collect();
        assert!(costs[0] >= *costs.iter().skip(1).fold(&0.0, |a, b| if b > a { b } else { a }));
    }
}
