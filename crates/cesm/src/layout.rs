//! Node layouts: partitioned vs. shared component placement.
//!
//! "Because the computational requirements of each model (and the coupler)
//! vary depending on the experiment, it may take a user quite a bit of
//! experimenting to find an efficient configuration for distributing the
//! models over the available compute nodes." This module provides the cost
//! model behind that experimenting — and behind the paper's planned tool
//! "to automatically find an optimal configuration".

use crate::models::ComponentKind;
use std::collections::HashMap;

/// A node layout: how many of the `total_nodes` each component (and the
/// coupler) gets. Components mapped to the same node share it.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Total nodes in the allocation.
    pub total_nodes: u32,
    /// Component → nodes assigned (node ids 0..total).
    pub assignment: HashMap<ComponentKind, Vec<u32>>,
    /// Nodes assigned to the coupler itself.
    pub coupler_nodes: Vec<u32>,
}

/// Cost estimate for one coupling interval under a layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayoutCost {
    /// Makespan: time of the slowest node (components run concurrently,
    /// sharing nodes serializes them).
    pub makespan: f64,
    /// Mean node utilization in [0, 1].
    pub utilization: f64,
}

impl Layout {
    /// Fully partitioned layout: nodes split proportionally to component
    /// cost, remainder to the coupler.
    pub fn partitioned(total_nodes: u32) -> Layout {
        assert!(total_nodes >= 5, "need at least one node per component + coupler");
        let kinds = ComponentKind::all();
        let total_cost: f64 = kinds.iter().map(|k| k.relative_cost()).sum();
        let mut assignment = HashMap::new();
        let mut next = 0u32;
        let budget = total_nodes - 1; // one node reserved for the coupler
        for (i, k) in kinds.iter().enumerate() {
            let share = if i == kinds.len() - 1 {
                budget - next // whatever is left
            } else {
                ((k.relative_cost() / total_cost) * budget as f64).round().max(1.0) as u32
            };
            let share = share.max(1).min(budget - next.min(budget - 1));
            assignment.insert(*k, (next..next + share).collect());
            next += share;
        }
        Layout { total_nodes, assignment, coupler_nodes: vec![total_nodes - 1] }
    }

    /// Fully shared layout: every component runs on all nodes.
    pub fn shared(total_nodes: u32) -> Layout {
        assert!(total_nodes >= 1);
        let all: Vec<u32> = (0..total_nodes).collect();
        let mut assignment = HashMap::new();
        for k in ComponentKind::all() {
            assignment.insert(k, all.clone());
        }
        Layout { total_nodes, assignment, coupler_nodes: all }
    }

    /// Cost of one coupling interval: each component's work (relative cost,
    /// perfectly parallel over its nodes) is charged to each of its nodes;
    /// a node's time is the sum of its shares; the makespan is the max.
    pub fn cost(&self) -> LayoutCost {
        let mut node_time = vec![0.0f64; self.total_nodes as usize];
        for (k, nodes) in &self.assignment {
            assert!(!nodes.is_empty(), "{k:?} has no nodes");
            let per_node = k.relative_cost() / nodes.len() as f64;
            for &n in nodes {
                node_time[n as usize] += per_node;
            }
        }
        // coupler cost: 10% of total component cost, parallel over its nodes
        let cpl: f64 = 0.1 * ComponentKind::all().iter().map(|k| k.relative_cost()).sum::<f64>();
        for &n in &self.coupler_nodes {
            node_time[n as usize] += cpl / self.coupler_nodes.len() as f64;
        }
        let makespan = node_time.iter().cloned().fold(0.0, f64::max);
        let busy: f64 = node_time.iter().sum();
        LayoutCost { makespan, utilization: busy / (makespan * self.total_nodes as f64) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_layout_has_full_utilization() {
        let c = Layout::shared(8).cost();
        assert!((c.utilization - 1.0).abs() < 1e-9, "{c:?}");
    }

    #[test]
    fn partitioned_layout_covers_all_components() {
        let l = Layout::partitioned(12);
        for k in ComponentKind::all() {
            assert!(!l.assignment[&k].is_empty());
        }
        let c = l.cost();
        assert!(c.makespan > 0.0 && c.utilization <= 1.0);
    }

    #[test]
    fn sharing_beats_bad_partitioning_on_makespan() {
        // with few nodes, sharing balances load better than a partition
        let shared = Layout::shared(5).cost();
        let part = Layout::partitioned(5).cost();
        assert!(shared.makespan <= part.makespan + 1e-9, "{shared:?} vs {part:?}");
    }

    #[test]
    fn more_nodes_reduce_shared_makespan() {
        let small = Layout::shared(4).cost();
        let big = Layout::shared(16).cost();
        assert!(big.makespan < small.makespan);
    }
}
