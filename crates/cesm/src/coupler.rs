//! The central flux coupler (CPL).

use crate::models::{Component, ComponentKind, GridField};
use std::collections::HashMap;

/// Global diagnostics after a coupling step.
#[derive(Clone, Debug)]
pub struct ClimateState {
    /// Coupling steps completed.
    pub steps: u64,
    /// Global mean of the last exchange field.
    pub global_mean: f64,
    /// Total flux routed through the coupler so far (conservation ledger).
    pub routed_flux: f64,
}

/// The parallel coupler: collects each component's outgoing flux, merges,
/// and redistributes. (In CESM the coupler itself runs on part of the
/// nodes; its cost shows up in [`crate::layout`].)
pub struct Coupler {
    components: Vec<Box<dyn Component>>,
    nx: usize,
    ny: usize,
    steps: u64,
    routed: f64,
    prev_fluxes: Option<Vec<GridField>>,
}

impl Coupler {
    /// Build a coupler over a set of components sharing an `nx × ny`
    /// exchange grid. All four component kinds must be present exactly
    /// once (CESM's fixed architecture).
    pub fn new(components: Vec<Box<dyn Component>>, nx: usize, ny: usize) -> Coupler {
        let mut seen: HashMap<ComponentKind, usize> = HashMap::new();
        for c in &components {
            *seen.entry(c.kind()).or_default() += 1;
        }
        for k in ComponentKind::all() {
            assert_eq!(seen.get(&k).copied().unwrap_or(0), 1, "need exactly one {k:?}");
        }
        Coupler { components, nx, ny, steps: 0, routed: 0.0, prev_fluxes: None }
    }

    /// One coupling step: every component receives the merged flux of the
    /// *others* (no self-coupling), steps, and returns its new flux.
    pub fn step(&mut self) -> ClimateState {
        let n = self.components.len();
        // gather previous fluxes: on the first step everyone gets zeros
        let mut outgoing: Vec<GridField> = Vec::with_capacity(n);
        let zero = GridField::constant(self.nx, self.ny, 0.0);
        // two-phase: compute each component's output given merged input of
        // the others' *previous* output (stored from last step or zero)
        let prev: Vec<GridField> = match &self.prev_fluxes {
            Some(p) => p.clone(),
            None => vec![zero.clone(); n],
        };
        for (i, c) in self.components.iter_mut().enumerate() {
            let mut incoming = zero.clone();
            for (j, f) in prev.iter().enumerate() {
                if i != j {
                    incoming.add(f);
                }
            }
            self.routed += incoming.sum().abs();
            outgoing.push(c.step(&incoming));
        }
        let mean: f64 = outgoing.iter().map(|f| f.mean()).sum::<f64>() / n as f64;
        self.prev_fluxes = Some(outgoing);
        self.steps += 1;
        ClimateState { steps: self.steps, global_mean: mean, routed_flux: self.routed }
    }

    /// Run `n` steps, returning the final state.
    pub fn run(&mut self, n: u64) -> ClimateState {
        let mut last =
            ClimateState { steps: self.steps, global_mean: 0.0, routed_flux: self.routed };
        for _ in 0..n {
            last = self.step();
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ActiveComponent, DataComponent};

    fn full_set(nx: usize, ny: usize) -> Vec<Box<dyn Component>> {
        vec![
            Box::new(ActiveComponent::new(ComponentKind::Atmosphere, nx, ny, 10.0)),
            Box::new(ActiveComponent::new(ComponentKind::Ocean, nx, ny, 20.0)),
            Box::new(ActiveComponent::new(ComponentKind::Land, nx, ny, 5.0)),
            Box::new(ActiveComponent::new(ComponentKind::SeaIce, nx, ny, 1.0)),
        ]
    }

    #[test]
    fn coupled_run_is_stable() {
        let mut cpl = Coupler::new(full_set(8, 8), 8, 8);
        let s = cpl.run(50);
        assert_eq!(s.steps, 50);
        assert!(s.global_mean.is_finite());
        assert!(s.global_mean >= 0.0 && s.global_mean < 1e6, "no blow-up: {}", s.global_mean);
        assert!(s.routed_flux > 0.0);
    }

    #[test]
    #[should_panic]
    fn missing_component_rejected() {
        let comps: Vec<Box<dyn Component>> =
            vec![Box::new(ActiveComponent::new(ComponentKind::Atmosphere, 4, 4, 1.0))];
        Coupler::new(comps, 4, 4);
    }

    #[test]
    fn data_ocean_variant_works() {
        let series = vec![GridField::constant(8, 8, 0.5)];
        let comps: Vec<Box<dyn Component>> = vec![
            Box::new(ActiveComponent::new(ComponentKind::Atmosphere, 8, 8, 10.0)),
            Box::new(DataComponent::new(ComponentKind::Ocean, series)),
            Box::new(ActiveComponent::new(ComponentKind::Land, 8, 8, 5.0)),
            Box::new(ActiveComponent::new(ComponentKind::SeaIce, 8, 8, 1.0)),
        ];
        let mut cpl = Coupler::new(comps, 8, 8);
        let s = cpl.run(10);
        assert!(s.global_mean.is_finite());
    }

    #[test]
    fn deterministic_repeat() {
        let run = || {
            let mut cpl = Coupler::new(full_set(6, 6), 6, 6);
            cpl.run(20).global_mean
        };
        assert_eq!(run(), run());
    }
}
