//! # jc-cesm — a miniature Community Earth System Model (§4.2)
//!
//! The paper's second 3MK example: *"CESM couples models for atmosphere,
//! oceans, land and sea-ice into a single simulation of the earth's
//! climate [...] the central coupler of CESM is designed to run in
//! parallel [...] The compute nodes can either be partitioned, each running
//! (part of) one model, shared, each running (part of) multiple models, or
//! use a combination of both."*
//!
//! This crate implements the structural skeleton that makes the paper's
//! point that AMUSE and CESM are "remarkably similar": four grid-based
//! component models exchanging fluxes through a central coupler, *active*
//! and *data* variants of each component (the data variant replays
//! precomputed output), and node-layout configurations whose cost model
//! shows why "it may take a user quite a bit of experimenting to find an
//! efficient configuration".

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod coupler;
pub mod layout;
pub mod models;

pub use coupler::{ClimateState, Coupler};
pub use layout::{Layout, LayoutCost};
pub use models::{Component, ComponentKind, DataComponent, GridField};
