//! Fixture tests: every lint has a fail fixture whose exact diagnostics
//! are pinned (file, line, lint), a pass fixture that stays quiet, and
//! the real workspace itself must be clean.

use jc_lint::lints::{determinism, env_registry, no_alloc, unsafe_audit, wire};
use jc_lint::{Diagnostic, SourceFile};
use std::path::PathBuf;

/// The lint crate's own directory (fixtures live under `tests/fixtures`).
fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Load a fixture file, lexing it under the given virtual path (the
/// determinism lint keys its scope off the path).
fn fixture(rel: &str, virtual_path: &str) -> SourceFile {
    let disk = crate_dir().join("tests/fixtures").join(rel);
    let text = std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", disk.display()));
    SourceFile::parse(virtual_path, &text)
}

/// The (line, lint) pairs of `diags`, in order.
fn lines(diags: &[Diagnostic]) -> Vec<(u32, &'static str)> {
    diags.iter().map(|d| (d.line, d.lint)).collect()
}

#[test]
fn unsafe_audit_fail_fixture_exact_diagnostics() {
    let f = fixture("fail/unsafe_audit.rs", "fixture.rs");
    let mut sites = Vec::new();
    let d = unsafe_audit::check(&f, &mut sites);
    assert_eq!(
        lines(&d),
        vec![(8, "unsafe-audit"), (9, "unsafe-audit"), (13, "unsafe-audit")],
        "{d:#?}"
    );
    // only the audited sites at the bottom of the fixture land in the
    // ledger inventory; the three unaudited ones are diagnostics instead
    assert_eq!(sites.len(), 2);
}

#[test]
fn unsafe_audit_pass_fixture_is_quiet() {
    let f = fixture("pass/unsafe_audit.rs", "fixture.rs");
    let mut sites = Vec::new();
    let d = unsafe_audit::check(&f, &mut sites);
    assert!(d.is_empty(), "{d:#?}");
    assert_eq!(sites.len(), 3, "all sites inventoried even when audited");
}

#[test]
fn wire_fail_fixture_exact_diagnostics() {
    let w = fixture("fail/wire/wire.rs", wire::WIRE_PATH);
    let worker = fixture("fail/wire/worker.rs", wire::WORKER_PATH);
    let socket = fixture("fail/wire/socket.rs", wire::SOCKET_PATH);
    let reactor = fixture("fail/wire/reactor.rs", wire::REACTOR_PATH);
    let d = wire::check(&w, Some(&worker), Some(&socket), Some(&reactor));
    let msgs: Vec<&str> = d.iter().map(|x| x.message.as_str()).collect();
    assert_eq!(d.len(), 9, "{d:#?}");
    // SHUTDOWN (declared at fixture line 8): missing version + decode arm
    assert!(d.iter().any(|x| x.line == 8
        && x.path == wire::WIRE_PATH
        && x.message.contains("`SHUTDOWN` is not named in `opcode_version`")));
    assert!(d.iter().any(|x| x.line == 8
        && x.path == wire::WIRE_PATH
        && x.message.contains("`SHUTDOWN` has no arm in `decode_request`")));
    // wire_size drift, reported against the worker model
    assert!(msgs.iter().any(|m| m.contains("`Request::Stop` is encoded but missing")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("wire_size models `Request::Legacy`")), "{msgs:?}");
    // seq field: set_seq hardcodes the offset instead of naming SEQ_OFFSET
    assert!(
        d.iter().any(|x| x.path == wire::WIRE_PATH
            && x.message.contains("`set_seq` does not name `SEQ_OFFSET`")),
        "{msgs:?}"
    );
    // the socket fixture stamps but never recognizes or deduplicates
    assert!(
        d.iter().any(|x| x.path == wire::SOCKET_PATH
            && x.message.contains("`frame_seq` is never referenced")),
        "{msgs:?}"
    );
    assert!(
        d.iter()
            .any(|x| x.path == wire::SOCKET_PATH
                && x.message.contains("`last_seq` is never referenced")),
        "{msgs:?}"
    );
    // the reactor fixture encodes through the shared surface but
    // hand-parses replies and never stamps sequence numbers
    assert!(
        d.iter().any(|x| x.path == wire::REACTOR_PATH
            && x.message.contains("`decode_response` is never referenced")),
        "{msgs:?}"
    );
    assert!(
        d.iter()
            .any(|x| x.path == wire::REACTOR_PATH
                && x.message.contains("`set_seq` is never referenced")),
        "{msgs:?}"
    );
}

#[test]
fn wire_pass_fixture_is_quiet() {
    let w = fixture("pass/wire/wire.rs", wire::WIRE_PATH);
    let worker = fixture("pass/wire/worker.rs", wire::WORKER_PATH);
    let socket = fixture("pass/wire/socket.rs", wire::SOCKET_PATH);
    let reactor = fixture("pass/wire/reactor.rs", wire::REACTOR_PATH);
    let d = wire::check(&w, Some(&worker), Some(&socket), Some(&reactor));
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn no_alloc_fail_fixture_exact_diagnostics() {
    let f = fixture("fail/no_alloc.rs", "fixture.rs");
    let d = no_alloc::check(&f);
    assert_eq!(lines(&d), vec![(8, "no-alloc"), (10, "no-alloc"), (12, "no-alloc")], "{d:#?}");
    assert!(d[0].message.contains("`vec!`"));
    assert!(d[1].message.contains("`.to_vec()`"));
    assert!(d[2].message.contains("`format!`"));
}

#[test]
fn no_alloc_pass_fixture_is_quiet() {
    let f = fixture("pass/no_alloc.rs", "fixture.rs");
    let d = no_alloc::check(&f);
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn determinism_fail_fixture_exact_diagnostics() {
    let path = "crates/nbody/src/fixture.rs";
    assert!(determinism::in_scope(path), "fixture path must be replay-critical");
    let f = fixture("fail/determinism.rs", path);
    let d = determinism::check(&f);
    assert_eq!(
        lines(&d),
        vec![(5, "determinism"), (7, "determinism"), (8, "determinism"), (9, "determinism")],
        "{d:#?}"
    );
}

#[test]
fn determinism_pass_fixture_is_quiet() {
    let f = fixture("pass/determinism.rs", "crates/nbody/src/fixture.rs");
    let d = determinism::check(&f);
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn determinism_pool_fail_fixture_exact_diagnostics() {
    // The persistent worker pool is replay-critical: a hash-keyed
    // worker registry or a wall-clock deadline in its internals would
    // silently break the pooled-equals-scoped bitwise contract.
    let path = "crates/compute/src/pool.rs";
    assert!(determinism::in_scope(path), "pool internals must be replay-critical scope");
    let f = fixture("fail/determinism_pool.rs", path);
    let d = determinism::check(&f);
    assert_eq!(
        lines(&d),
        vec![(8, "determinism"), (12, "determinism"), (15, "determinism"), (18, "determinism")],
        "{d:#?}"
    );
}

#[test]
fn determinism_pool_pass_fixture_is_quiet() {
    let f = fixture("pass/determinism_pool.rs", "crates/compute/src/pool.rs");
    let d = determinism::check(&f);
    assert!(d.is_empty(), "{d:#?}");
}

#[test]
fn env_registry_fail_fixture_exact_diagnostics() {
    let code = fixture("fail/env/code.rs", "crates/x/src/lib.rs");
    let registry = fixture("fail/env/envreg.rs", env_registry::REGISTRY_PATH);
    let readme = std::fs::read_to_string(crate_dir().join("tests/fixtures/fail/env/readme.md"))
        .expect("fixture readme");
    let d = env_registry::check(&[code], Some(&registry), &readme);
    assert_eq!(d.len(), 3, "{d:#?}");
    assert!(d.iter().any(|x| x.path == "crates/x/src/lib.rs"
        && x.line == 4
        && x.message.contains("`JC_SECRET_TUNING` is read here but not registered")));
    assert!(d.iter().any(|x| x.path == env_registry::REGISTRY_PATH
        && x.line == 4
        && x.message.contains("`JC_DEAD_KNOB` is never read")));
    assert!(d.iter().any(|x| x.path == env_registry::REGISTRY_PATH
        && x.line == 4
        && x.message.contains("`JC_DEAD_KNOB` is not documented in README.md")));
}

#[test]
fn env_registry_pass_fixture_is_quiet() {
    let code = fixture("pass/env/code.rs", "crates/x/src/lib.rs");
    let registry = fixture("pass/env/envreg.rs", env_registry::REGISTRY_PATH);
    let readme = std::fs::read_to_string(crate_dir().join("tests/fixtures/pass/env/readme.md"))
        .expect("fixture readme");
    let d = env_registry::check(&[code], Some(&registry), &readme);
    assert!(d.is_empty(), "{d:#?}");
}

/// The real gate: the workspace this crate ships in must be clean. This
/// is the same check CI runs via `cargo run -p jc-lint`.
#[test]
fn real_workspace_is_clean() {
    let root = crate_dir().join("../..");
    let root = root.canonicalize().expect("workspace root");
    assert!(root.join("Cargo.toml").is_file(), "not a workspace root: {}", root.display());
    let diags = jc_lint::run_all(&root);
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}
