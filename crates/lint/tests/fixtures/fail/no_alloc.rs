//! Fail fixture: a tagged hot path that allocates. Expected findings:
//! line 8 (`vec!`), line 10 (`.to_vec()`), line 12 (`format!`).

// jc-lint: no-alloc
pub fn hot(out: &mut Vec<f64>, src: &[f64], n: usize) -> String {
    out.clear();
    out.extend_from_slice(src);
    let tmp = vec![0.0; n];
    out.extend_from_slice(&tmp);
    let copy = src.to_vec();
    drop(copy);
    format!("{n}")
}
