//! Fail fixture: reads an unregistered knob at line 4.

pub fn tuning() -> Option<String> {
    std::env::var("JC_SECRET_TUNING").ok()
}
