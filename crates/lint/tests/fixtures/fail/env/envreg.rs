//! Fail fixture registry: `JC_DEAD_KNOB` (line 4) is never read
//! anywhere and is not documented in the paired README — two findings.

pub const JC_ENV: &[(&str, &str)] = &[("JC_DEAD_KNOB", "a knob nothing reads")];
