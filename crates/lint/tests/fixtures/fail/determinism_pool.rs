//! Fail fixture shaped like worker-pool internals (checked under the
//! virtual path `crates/compute/src/pool.rs` — the persistent pool is
//! replay-critical scope). Expected findings: `HashMap` at lines 8/12
//! (a keyed worker registry iterates in hash order, so chunk→worker
//! assignment diverges between a run and its replay), `Instant` at
//! lines 15/18 (a wall-clock deadline leaks timing into scheduling).

use std::collections::HashMap;

pub struct Pool {
    /// Keyed, not positional: iteration order is hash-seeded.
    workers: HashMap<usize, std::sync::mpsc::Sender<usize>>,
}

pub fn submit_all(pool: &Pool, deadline: std::time::Instant) -> usize {
    let mut sent = 0;
    for (_, tx) in pool.workers.iter() {
        if std::time::Instant::now() < deadline && tx.send(sent).is_ok() {
            sent += 1;
        }
    }
    sent
}
