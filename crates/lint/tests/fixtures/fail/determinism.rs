//! Fail fixture (checked under an in-scope path like
//! `crates/nbody/src/x.rs`). Expected findings: `HashMap` at lines
//! 5, 7, and 9, `Instant` at line 8 — every mention is flagged.

use std::collections::HashMap;

pub fn index(keys: &[u64]) -> HashMap<u64, usize> {
    let start = std::time::Instant::now();
    let map: HashMap<u64, usize> = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let _ = start.elapsed();
    map
}
