//! Fail fixture: unsafe without audits. Expected findings:
//! line 8 (fn), line 9 (block), line 13 (block).

pub struct Raw(pub *mut u8);

// A stale comment that is not a SAFETY audit.

pub unsafe fn read_one(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn touch(r: &Raw) -> u8 {
    unsafe { *r.0 }
}

// SAFETY: audited — the pointer is a live Box allocation by construction.
pub unsafe fn audited(p: *const u8) -> u8 {
    // SAFETY: caller contract per the fn-level audit above.
    unsafe { *p }
}
