//! Fail fixture: the wire_size model is missing `Request::Stop` (which
//! encode_request emits) and models `Request::Legacy` (never emitted).

use super::wire::{Request, Response};

impl Request {
    pub fn wire_size(&self) -> u64 {
        match self {
            Request::Ping => 1,
            Request::Shutdown => 1,
            Request::Legacy => 1,
        }
    }
}

impl Response {
    pub fn wire_size(&self) -> u64 {
        match self {
            Response::Ok => 1,
        }
    }
}
