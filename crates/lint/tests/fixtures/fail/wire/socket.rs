//! Fail fixture: the socket channel stamps sequence numbers but lost
//! both the server-side recognition (`frame_seq`) and the dedup cache
//! (`last_seq`) — a resent mutating request would re-execute.

pub fn stamp(frame: &mut [u8], seq: u16) {
    crate::wire::set_seq(frame, seq);
}
