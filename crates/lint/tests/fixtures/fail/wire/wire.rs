//! Fail fixture: a protocol module with drift. `SHUTDOWN` (line 8) is
//! missing from `opcode_version` AND has no decode arm; `Request::Stop`
//! is encoded but the paired worker.rs does not model it.

pub mod op {
    pub const PING: u8 = 0x01;
    pub const STOP: u8 = 0x02;
    pub const SHUTDOWN: u8 = 0x03;
    pub const RESP_OK: u8 = 0x81;
}

pub const fn opcode_version(opcode: u8) -> u8 {
    match opcode {
        op::PING | op::STOP | op::RESP_OK => 1,
        _ => 1,
    }
}

pub enum Request {
    Ping,
    Stop,
    Shutdown,
}

pub enum Response {
    Ok,
}

fn put(buf: &mut Vec<u8>, opcode: u8) {
    buf.push(opcode);
}

pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Ping => put(buf, op::PING),
        Request::Stop => put(buf, op::STOP),
        Request::Shutdown => put(buf, op::SHUTDOWN),
    }
}

pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    match resp {
        Response::Ok => put(buf, op::RESP_OK),
    }
}

pub fn decode_request(frame: &[u8]) -> Option<Request> {
    match frame.first().copied()? {
        op::PING => Some(Request::Ping),
        op::STOP => Some(Request::Stop),
        _ => None,
    }
}

pub fn decode_response(frame: &[u8]) -> Option<Response> {
    match frame.first().copied()? {
        op::RESP_OK => Some(Response::Ok),
        _ => None,
    }
}

pub const SEQ_OFFSET: usize = 6;

pub fn parse_header(bytes: &[u8]) -> u16 {
    u16::from_le_bytes(bytes[SEQ_OFFSET..SEQ_OFFSET + 2].try_into().unwrap())
}

pub fn set_seq(frame: &mut [u8], seq: u16) {
    frame[6..8].copy_from_slice(&seq.to_le_bytes());
}

pub fn frame_seq(frame: &[u8]) -> u16 {
    u16::from_le_bytes(frame[SEQ_OFFSET..SEQ_OFFSET + 2].try_into().unwrap())
}
