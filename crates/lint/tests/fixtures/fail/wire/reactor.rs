//! Fail fixture: the reactor channel builds frames through the shared
//! encoder but parses replies by hand (no `decode_response`) and never
//! stamps sequence numbers (no `set_seq`) — a pipelined retry would
//! double-apply and the hand parse sits outside the exhaustiveness
//! checks.

pub fn submit(req: &crate::worker::Request, buf: &mut Vec<u8>) {
    crate::wire::encode_request(req, buf);
}

pub fn feed(frame: &[u8]) -> bool {
    crate::wire::parse_header(frame).is_ok()
}

pub fn collect(frame: &[u8]) -> u8 {
    frame[5] // opcode byte, parsed by hand
}
