//! Pass fixture: every unsafe site carries an audit.

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn read_one(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn on_local() -> u8 {
    let x = 7u8;
    // SAFETY: `x` is a live local; its address is valid for the read.
    unsafe { *(&x as *const u8) }
}
