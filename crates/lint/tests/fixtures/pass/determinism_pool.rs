//! Pass fixture shaped like worker-pool internals (checked under the
//! virtual path `crates/compute/src/pool.rs`): positional worker
//! indexing (a `Vec`, no hash-seeded iteration), pure channel/latch
//! wake-ups with no wall-clock reads in production code; timing only
//! inside `#[cfg(test)]`.

pub struct Pool {
    /// Positional: chunk `k` always goes to worker `k`.
    workers: Vec<std::sync::mpsc::Sender<usize>>,
}

pub fn submit_all(pool: &Pool) -> usize {
    let mut sent = 0;
    for tx in pool.workers.iter() {
        if tx.send(sent).is_ok() {
            sent += 1;
        }
    }
    sent
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t0 = std::time::Instant::now();
        let _ = t0.elapsed();
    }
}
