//! Pass fixture: ordered containers in production code; wall-clock
//! timing only inside `#[cfg(test)]`.

use std::collections::BTreeMap;

pub fn index(keys: &[u64]) -> BTreeMap<u64, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t0 = std::time::Instant::now();
        let _ = t0.elapsed();
    }
}
