//! Pass fixture: reads only the registered, documented knob.

pub fn threads() -> Option<String> {
    std::env::var("JC_THREADS").ok()
}
