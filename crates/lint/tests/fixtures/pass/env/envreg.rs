//! Pass fixture registry: one entry, read and documented.

pub const JC_ENV: &[(&str, &str)] = &[("JC_THREADS", "worker threads")];
