//! Pass fixture: a tagged hot path that only grows caller-owned
//! scratch, plus one reasoned waiver for a ZST vector.

// jc-lint: no-alloc
pub fn hot(out: &mut Vec<f64>, src: &[f64], n: usize) {
    out.clear();
    out.reserve(n);
    out.extend_from_slice(src);
    out.resize(n, 0.0);
    // jc-lint: allow(no-alloc): Vec of ZSTs — capacity math never touches the heap
    let units = vec![(); n];
    drop(units);
}

pub fn cold(n: usize) -> Vec<f64> {
    // untagged: free to allocate
    vec![0.0; n]
}
