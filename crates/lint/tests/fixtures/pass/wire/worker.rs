//! Pass fixture: the wire_size model matches the encoders exactly.

use super::wire::{Request, Response};

impl Request {
    pub fn wire_size(&self) -> u64 {
        match self {
            Request::Ping => 1,
        }
    }
}

impl Response {
    pub fn wire_size(&self) -> u64 {
        match self {
            Response::Ok => 1,
        }
    }
}
