//! Pass fixture: the reactor channel goes through the shared codec
//! surface on every leg — `encode_request` (frame building),
//! `decode_response` (reply parsing), `set_seq` (idempotent-retry
//! stamping) and `parse_header` (validated incremental decode).

pub fn submit(req: &crate::worker::Request, seq: u16, buf: &mut Vec<u8>) {
    crate::wire::encode_request(req, buf);
    crate::wire::set_seq(buf, seq);
}

pub fn feed(frame: &[u8]) -> bool {
    crate::wire::parse_header(frame).is_ok()
}

pub fn collect(frame: &[u8]) -> crate::worker::Response {
    crate::wire::decode_response(frame).unwrap()
}
