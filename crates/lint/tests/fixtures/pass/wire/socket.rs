//! Pass fixture: the socket channel references all three legs of the
//! sequence-number contract — client stamping (`set_seq`), server
//! recognition (`frame_seq`), and the dedup cache (`last_seq`).

pub struct Dedup {
    pub last_seq: u16,
    pub cached: Vec<u8>,
}

pub fn stamp(frame: &mut [u8], seq: u16) {
    crate::wire::set_seq(frame, seq);
}

pub fn serve(frame: &[u8], dedup: &mut Dedup) -> bool {
    let seq = crate::wire::frame_seq(frame);
    seq != 0 && seq == dedup.last_seq
}
