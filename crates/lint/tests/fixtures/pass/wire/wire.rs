//! Pass fixture: every opcode is versioned, encoded, and decoded.

pub mod op {
    pub const PING: u8 = 0x01;
    pub const RESP_OK: u8 = 0x81;
}

pub const fn opcode_version(opcode: u8) -> u8 {
    match opcode {
        op::PING | op::RESP_OK => 1,
        _ => 1,
    }
}

pub enum Request {
    Ping,
}

pub enum Response {
    Ok,
}

pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Ping => buf.push(op::PING),
    }
}

pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    match resp {
        Response::Ok => buf.push(op::RESP_OK),
    }
}

pub fn decode_request(frame: &[u8]) -> Option<Request> {
    match frame.first().copied()? {
        op::PING => Some(Request::Ping),
        _ => None,
    }
}

pub fn decode_response(frame: &[u8]) -> Option<Response> {
    match frame.first().copied()? {
        op::RESP_OK => Some(Response::Ok),
        _ => None,
    }
}

pub const SEQ_OFFSET: usize = 6;

pub fn parse_header(bytes: &[u8]) -> u16 {
    u16::from_le_bytes(bytes[SEQ_OFFSET..SEQ_OFFSET + 2].try_into().unwrap())
}

pub fn set_seq(frame: &mut [u8], seq: u16) {
    frame[SEQ_OFFSET..SEQ_OFFSET + 2].copy_from_slice(&seq.to_le_bytes());
}

pub fn frame_seq(frame: &[u8]) -> u16 {
    u16::from_le_bytes(frame[SEQ_OFFSET..SEQ_OFFSET + 2].try_into().unwrap())
}
