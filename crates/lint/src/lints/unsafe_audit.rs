//! `unsafe-audit`: every `unsafe` block, function, impl, or trait must
//! be immediately preceded by a `// SAFETY:` comment (or, for unsafe
//! functions, a `# Safety` rustdoc section) that audits *why* the code
//! is sound. Attribute lines and doc comments may sit between the audit
//! and the `unsafe` keyword; anything else breaks the adjacency and the
//! lint fires. Every audited site is also collected into the
//! [`crate::ledger`] inventory, so the committed `docs/UNSAFE_LEDGER.md`
//! reviews unsafe growth PR by PR.

use crate::ledger::UnsafeSite;
use crate::lexer::Kind;
use crate::{Diagnostic, SourceFile};

const LINT: &str = "unsafe-audit";

/// Check one file; audited sites are appended to `sites` for the ledger.
pub fn check(f: &SourceFile, sites: &mut Vec<UnsafeSite>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let code = f.code();
    for (k, &ti) in code.iter().enumerate() {
        let t = &f.tokens[ti];
        if !(t.kind == Kind::Ident && t.text == "unsafe") {
            continue;
        }
        let kind = code
            .get(k + 1)
            .map(|&ni| {
                let nt = &f.tokens[ni];
                match nt.text.as_str() {
                    "fn" => "fn",
                    "impl" => "impl",
                    "trait" => "trait",
                    "extern" => "extern",
                    _ => "block",
                }
            })
            .unwrap_or("block");
        match audit_text(f, t.line) {
            Some(summary) => {
                sites.push(UnsafeSite { path: f.path.clone(), line: t.line, kind, summary });
            }
            None => diags.push(Diagnostic {
                path: f.path.clone(),
                line: t.line,
                lint: LINT,
                message: format!(
                    "`unsafe` {kind} without an immediately preceding `// SAFETY:` audit \
                     (doc-commented `# Safety` sections also count)"
                ),
            }),
        }
    }
    diags
}

/// The audit justification for an `unsafe` keyword on `line`, if one is
/// immediately present: a trailing `// SAFETY:` on the same line, or a
/// contiguous run of comment/attribute lines directly above containing
/// `SAFETY:` (plain comments) or a `# Safety` heading (doc comments).
fn audit_text(f: &SourceFile, line: u32) -> Option<String> {
    if let Some(s) = extract(f.line_text(line)) {
        return Some(s);
    }
    // Walk upward over the contiguous comment/attribute block. The
    // audit may span several comment lines; collect them all so the
    // ledger summary is the full sentence, not its first fragment.
    let mut block: Vec<&str> = Vec::new();
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = f.line_text(l);
        let skippable = text.starts_with("//")
            || text.starts_with("#[")
            || text.starts_with("#!")
            || text.starts_with("*")       // interior of a /* */ block
            || text.starts_with("/*");
        if !skippable {
            break;
        }
        block.push(text);
        l -= 1;
    }
    block.reverse();
    // Find the line that opens the audit, then join it with its
    // continuation lines (subsequent comment lines of the same block).
    for (i, text) in block.iter().enumerate() {
        let is_doc = text.starts_with("///") || text.starts_with("//!");
        let opens = if is_doc {
            text.contains("# Safety") || text.contains("SAFETY:")
        } else {
            text.contains("SAFETY:")
        };
        if !opens {
            continue;
        }
        let mut joined = String::new();
        for cont in &block[i..] {
            if !cont.starts_with("//") && !cont.starts_with('*') && !cont.starts_with("/*") {
                break; // attribute line ends the comment run
            }
            let body =
                cont.trim_start_matches('/').trim_start_matches('!').trim_start_matches('*').trim();
            if !joined.is_empty() {
                joined.push(' ');
            }
            joined.push_str(body);
        }
        return Some(after_marker(&joined));
    }
    None
}

/// Trailing `// SAFETY:` on the same line as the `unsafe` keyword.
fn extract(line: &str) -> Option<String> {
    let pos = line.find("//")?;
    let comment = &line[pos..];
    comment.contains("SAFETY:").then(|| after_marker(comment))
}

/// The audit sentence: everything after the `SAFETY:` (or `# Safety`)
/// marker, whitespace-normalized.
fn after_marker(text: &str) -> String {
    let tail = text
        .split_once("SAFETY:")
        .map(|(_, t)| t)
        .or_else(|| text.split_once("# Safety").map(|(_, t)| t))
        .unwrap_or(text);
    tail.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> (Vec<Diagnostic>, Vec<UnsafeSite>) {
        let f = SourceFile::parse("t.rs", src);
        let mut sites = Vec::new();
        let d = check(&f, &mut sites);
        (d, sites)
    }

    #[test]
    fn unaudited_block_is_flagged_at_its_line() {
        let (d, _) = run("fn f(v: &[u8]) -> u8 {\n    unsafe { *v.get_unchecked(0) }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].lint), (2, "unsafe-audit"));
    }

    #[test]
    fn safety_comment_above_attributes_still_counts() {
        let (d, sites) = run("// SAFETY: caller guarantees the CPU supports AVX2; see dispatch.\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn kernel() {}\n");
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, "fn");
        assert!(sites[0].summary.starts_with("caller guarantees"));
    }

    #[test]
    fn doc_safety_section_counts_for_unsafe_fns() {
        let (d, sites) =
            run("/// Reads raw bytes.\n///\n/// # Safety\n/// `p` must be valid.\nunsafe fn g(p: *const u8) {}\n");
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(sites.len(), 1);
    }

    #[test]
    fn blank_line_breaks_adjacency() {
        let (d, _) = run("// SAFETY: stale audit, detached.\n\nunsafe fn h() {}\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let (d, sites) = run("// unsafe is discussed here\nlet s = \"unsafe\";\n");
        assert!(d.is_empty());
        assert!(sites.is_empty());
    }

    #[test]
    fn multiline_audit_is_joined_for_the_ledger() {
        let (_, sites) = run("// SAFETY: the avx2 clone is only reached when the CPU reports\n\
             // the feature at runtime.\n\
             let x = unsafe { probe() };\n");
        assert_eq!(
            sites[0].summary,
            "the avx2 clone is only reached when the CPU reports the feature at runtime."
        );
    }
}
