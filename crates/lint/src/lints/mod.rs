//! The five contract lints.
//!
//! Each submodule is one pass over a [`crate::SourceFile`] token stream
//! (plus, for the cross-file contracts, the registry/README/worker
//! counterpart), returning plain [`crate::Diagnostic`]s. They share the
//! conventions set in the crate root: waivers are
//! `// jc-lint: allow(<lint>): <reason>` at the offending line, and a
//! reasonless waiver does not waive.

pub mod determinism;
pub mod env_registry;
pub mod no_alloc;
pub mod unsafe_audit;
pub mod wire;
