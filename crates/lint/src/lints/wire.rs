//! `wire-exhaustiveness`: the additive-opcode protocol contract,
//! checked structurally.
//!
//! The classic protocol-drift bug — add an opcode, wire it into encode,
//! forget the decode arm (or the version table, or the traffic model) —
//! used to be a fuzz finding. This lint makes it a compile-gate: every
//! constant in `wire::op` must appear in
//!
//! 1. `opcode_version` (else encoders stamp the wrong default version),
//! 2. the encode path (`encode_request` / `encode_response`, including
//!    the helpers they call within the module),
//! 3. the decode path (`decode_request` / `decode_response`, likewise),
//!
//! and every `Request::` / `Response::` variant the encoders emit must
//! have an arm in the corresponding `wire_size` model in `worker.rs`
//! (and vice versa) — the physical-frame-equals-modeled-size invariant
//! the traffic accounting relies on. Opcode values must also be unique.
//!
//! The pass also covers the sequence-number header field (offset 6,
//! the idempotent-retry handle): `parse_header`, `set_seq` and
//! `frame_seq` in `wire.rs` must all name `SEQ_OFFSET` (a hardcoded
//! offset in any one of them is silent stamp/parse drift), and the
//! socket channel must reference `set_seq` (client stamping),
//! `frame_seq` (server recognition) and `last_seq` (the dedup cache) —
//! losing any leg silently turns "safe to resend" back into
//! "double-applies on retry".
//!
//! The event-driven channel (`reactor.rs`) is held to the same codec
//! surface: it must reference `encode_request` / `decode_response`
//! (frames built or parsed anywhere else escape every exhaustiveness
//! check above), `set_seq` (pipelined retries must stay idempotent
//! too), and `parse_header` (the incremental decoder sizes its payload
//! buffer from a *validated* header, never raw bytes). This is what
//! keeps "reactor path bitwise-identical to the blocking path" a
//! structural property rather than a test-coverage hope.

use crate::lexer::Kind;
use crate::{match_brace, Diagnostic, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

const LINT: &str = "wire-exhaustiveness";

/// Where the protocol module lives in this workspace.
pub const WIRE_PATH: &str = "crates/amuse/src/wire.rs";
/// Where the `wire_size` traffic model lives.
pub const WORKER_PATH: &str = "crates/amuse/src/worker.rs";
/// Where the socket channel (seq stamping + server dedup) lives.
pub const SOCKET_PATH: &str = "crates/amuse/src/socket.rs";
/// Where the event-driven (reactor) channel lives.
pub const REACTOR_PATH: &str = "crates/amuse/src/reactor.rs";

/// One parsed `pub const NAME: u8 = 0x..;` opcode.
struct Opcode {
    name: String,
    value: u8,
    line: u32,
}

/// Check the protocol pair. `worker` carries the `wire_size` model; if
/// absent, the variant cross-check reports that instead of silently
/// passing. `socket` carries the seq stamp/dedup call sites; when
/// present, the sequence-number pass runs on both files. `reactor`
/// carries the event-driven channel; when present, its codec legs are
/// checked against the same surface.
pub fn check(
    wire: &SourceFile,
    worker: Option<&SourceFile>,
    socket: Option<&SourceFile>,
    reactor: Option<&SourceFile>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let code = wire.code();
    let opcodes = parse_opcodes(wire, &code);
    if opcodes.is_empty() {
        return vec![Diagnostic {
            path: wire.path.clone(),
            line: 1,
            lint: LINT,
            message: "no opcode constants found in `mod op` — parser and protocol drifted".into(),
        }];
    }

    // Duplicate opcode values: two messages sharing a byte is undecodable.
    let mut by_value: BTreeMap<u8, &str> = BTreeMap::new();
    for oc in &opcodes {
        if let Some(first) = by_value.insert(oc.value, &oc.name) {
            diags.push(diag(
                wire,
                oc.line,
                format!(
                    "opcode `{}` reuses value {:#04x} already taken by `{first}`",
                    oc.name, oc.value
                ),
            ));
        }
    }

    let fns = fn_bodies(wire, &code);
    let ident_closure = |entry: &str| -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue = vec![entry.to_string()];
        let mut idents = BTreeSet::new();
        while let Some(name) = queue.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            let Some(&(lo, hi)) = fns.get(name.as_str()) else { continue };
            for &ti in &code[lo..=hi] {
                let t = &wire.tokens[ti];
                if t.kind == Kind::Ident {
                    idents.insert(t.text.clone());
                    if fns.contains_key(t.text.as_str()) {
                        queue.push(t.text.clone());
                    }
                }
            }
        }
        idents
    };

    let version_idents = ident_closure("opcode_version");
    let enc_req = ident_closure("encode_request");
    let enc_resp = ident_closure("encode_response");
    let dec_req = ident_closure("decode_request");
    let dec_resp = ident_closure("decode_response");

    for oc in &opcodes {
        let is_resp = oc.value >= 0x80;
        if !version_idents.contains(&oc.name) {
            diags.push(diag(
                wire,
                oc.line,
                format!(
                    "opcode `{}` is not named in `opcode_version` — encoders would stamp it \
                     with the wildcard default, the exact drift that broke protocol v3s elsewhere",
                    oc.name
                ),
            ));
        }
        let (enc, enc_name) =
            if is_resp { (&enc_resp, "encode_response") } else { (&enc_req, "encode_request") };
        if !enc.contains(&oc.name) {
            diags.push(diag(
                wire,
                oc.line,
                format!("opcode `{}` is never emitted by `{enc_name}` (or its helpers)", oc.name),
            ));
        }
        let (dec, dec_name) =
            if is_resp { (&dec_resp, "decode_response") } else { (&dec_req, "decode_request") };
        if !dec.contains(&oc.name) {
            diags.push(diag(
                wire,
                oc.line,
                format!(
                    "opcode `{}` has no arm in `{dec_name}` (or its helpers) — peers sending it \
                     would be rejected as UnknownOpcode",
                    oc.name
                ),
            ));
        }
    }

    // Sequence-number field: stamp, parse and dedup must agree on one
    // offset and all three legs must exist.
    if let Some(s) = socket {
        for func in ["parse_header", "set_seq", "frame_seq"] {
            match fns.get(func) {
                None => diags.push(diag(
                    wire,
                    1,
                    format!(
                        "no `fn {func}` found — the sequence-number surface the socket \
                         channel's idempotent retry stands on has drifted"
                    ),
                )),
                Some(&(lo, hi)) => {
                    if !code[lo..=hi].iter().any(|&ti| wire.tokens[ti].is_ident("SEQ_OFFSET")) {
                        diags.push(diag(
                            wire,
                            wire.tokens[code[lo]].line,
                            format!(
                                "`{func}` does not name `SEQ_OFFSET` — the seq field's offset \
                                 lives in one constant precisely so stamp and parse cannot \
                                 disagree about which header bytes carry it"
                            ),
                        ));
                    }
                }
            }
        }
        let scode = s.code();
        let referenced = |name: &str| scode.iter().any(|&ti| s.tokens[ti].is_ident(name));
        for (name, why) in [
            ("set_seq", "requests go out unsequenced, so a resent mutating request double-applies"),
            ("frame_seq", "the server cannot recognize a resent frame as a duplicate"),
            ("last_seq", "the dedup cache is gone — a replayed mutating request re-executes"),
        ] {
            if !referenced(name) {
                diags.push(Diagnostic {
                    path: s.path.clone(),
                    line: 1,
                    lint: LINT,
                    message: format!("`{name}` is never referenced in the socket channel — {why}"),
                });
            }
        }
    }

    // Reactor legs: the non-blocking channel must build, stamp and
    // parse frames through the exact same codec surface the blocking
    // channel uses — a hand-rolled frame or header parse in the
    // pipelined path would sit outside every exhaustiveness check
    // above and outside the bitwise-equivalence guarantee.
    if let Some(r) = reactor {
        let rcode = r.code();
        let referenced = |name: &str| rcode.iter().any(|&ti| r.tokens[ti].is_ident(name));
        for (name, why) in [
            (
                "encode_request",
                "pipelined submits would hand-roll frames outside the encode \
                 exhaustiveness check",
            ),
            (
                "decode_response",
                "replies would be parsed outside the one decode surface the equivalence \
                 tests pin to the blocking path",
            ),
            (
                "set_seq",
                "pipelined mutating requests go out unsequenced, so a reactor retry \
                 double-applies",
            ),
            (
                "parse_header",
                "the incremental decoder would size its payload buffer from unvalidated \
                 header bytes",
            ),
        ] {
            if !referenced(name) {
                diags.push(Diagnostic {
                    path: r.path.clone(),
                    line: 1,
                    lint: LINT,
                    message: format!("`{name}` is never referenced in the reactor channel — {why}"),
                });
            }
        }
    }

    // wire_size model cross-check against the encoders.
    match worker {
        None => diags.push(diag(
            wire,
            1,
            format!("`{WORKER_PATH}` not found — cannot cross-check the wire_size model"),
        )),
        Some(w) => {
            for (enum_name, enc_fn) in
                [("Request", "encode_request"), ("Response", "encode_response")]
            {
                let Some(&(lo, hi)) = fns.get(enc_fn) else { continue };
                let encoded = variants_in(wire, &code[lo..=hi], enum_name);
                match wire_size_body(w, enum_name) {
                    None => diags.push(Diagnostic {
                        path: w.path.clone(),
                        line: 1,
                        lint: LINT,
                        message: format!("no `fn wire_size` found in `impl {enum_name}`"),
                    }),
                    Some((line, toks)) => {
                        let modeled = variants_in(w, &toks, enum_name);
                        for v in encoded.difference(&modeled) {
                            diags.push(Diagnostic {
                                path: w.path.clone(),
                                line,
                                lint: LINT,
                                message: format!(
                                    "`{enum_name}::{v}` is encoded but missing from the \
                                     wire_size model — modeled traffic would diverge from \
                                     physical frames"
                                ),
                            });
                        }
                        for v in modeled.difference(&encoded) {
                            diags.push(Diagnostic {
                                path: w.path.clone(),
                                line,
                                lint: LINT,
                                message: format!(
                                    "wire_size models `{enum_name}::{v}` which `{enc_fn}` \
                                     never emits"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    diags
}

fn diag(f: &SourceFile, line: u32, message: String) -> Diagnostic {
    Diagnostic { path: f.path.clone(), line, lint: LINT, message }
}

/// Opcode constants inside `mod op { ... }`.
fn parse_opcodes(f: &SourceFile, code: &[usize]) -> Vec<Opcode> {
    let mut out = Vec::new();
    let Some(open) = code.windows(3).position(|w| {
        f.tokens[w[0]].is_ident("mod")
            && f.tokens[w[1]].is_ident("op")
            && f.tokens[w[2]].is_punct('{')
    }) else {
        return out;
    };
    let close = match_brace(f, code, open + 2);
    let mut k = open + 2;
    while k + 5 <= close {
        let t = |i: usize| &f.tokens[code[i]];
        if t(k).is_ident("const")
            && t(k + 1).kind == Kind::Ident
            && t(k + 2).is_punct(':')
            && t(k + 3).is_ident("u8")
            && t(k + 4).is_punct('=')
            && t(k + 5).kind == Kind::Num
        {
            if let Some(value) = parse_u8(&t(k + 5).text) {
                out.push(Opcode { name: t(k + 1).text.clone(), value, line: t(k + 1).line });
            }
            k += 6;
        } else {
            k += 1;
        }
    }
    out
}

fn parse_u8(text: &str) -> Option<u8> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean.strip_prefix("0x").or_else(|| clean.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        clean.parse().ok()
    }
}

/// Every `fn name` in the file, mapped to its body's index range within
/// `code` (inclusive, from the opening `{` to its match).
fn fn_bodies<'a>(f: &'a SourceFile, code: &[usize]) -> BTreeMap<&'a str, (usize, usize)> {
    let mut out = BTreeMap::new();
    let mut k = 0;
    while k + 1 < code.len() {
        if f.tokens[code[k]].is_ident("fn") && f.tokens[code[k + 1]].kind == Kind::Ident {
            let name = f.tokens[code[k + 1]].text.as_str();
            if let Some(open) = crate::body_open(f, code, k + 2) {
                let close = match_brace(f, code, open);
                out.insert(name, (open, close));
                k = open + 1; // nested fns are rare and found by the scan anyway
                continue;
            }
        }
        k += 1;
    }
    out
}

/// Variant names used as `Enum::Variant` within a token range.
fn variants_in(f: &SourceFile, code_range: &[usize], enum_name: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for w in code_range.windows(4) {
        if f.tokens[w[0]].is_ident(enum_name)
            && f.tokens[w[1]].is_punct(':')
            && f.tokens[w[2]].is_punct(':')
            && f.tokens[w[3]].kind == Kind::Ident
        {
            out.insert(f.tokens[w[3]].text.clone());
        }
    }
    out
}

/// The `fn wire_size` body inside `impl Enum { ... }` in `worker.rs`:
/// its line plus the token indices of its body.
fn wire_size_body(f: &SourceFile, enum_name: &str) -> Option<(u32, Vec<usize>)> {
    let code = f.code();
    let open = code.windows(3).position(|w| {
        f.tokens[w[0]].is_ident("impl")
            && f.tokens[w[1]].is_ident(enum_name)
            && f.tokens[w[2]].is_punct('{')
    })?;
    let close = match_brace(f, &code, open + 2);
    let range = &code[open + 2..=close];
    let fn_pos = range
        .windows(2)
        .position(|w| f.tokens[w[0]].is_ident("fn") && f.tokens[w[1]].is_ident("wire_size"))?;
    let mut body_open = fn_pos + 2;
    while body_open < range.len() && !f.tokens[range[body_open]].is_punct('{') {
        body_open += 1;
    }
    // match within the sliced range: rebuild a local index list
    let sub: Vec<usize> = range.to_vec();
    let close_in_sub = match_brace(f, &sub, body_open);
    Some((f.tokens[range[fn_pos]].line, sub[body_open..=close_in_sub].to_vec()))
}
