//! `no-alloc`: the static complement of the counting-allocator proof.
//!
//! `crates/bench/tests/zero_alloc.rs` proves at runtime that the warm
//! steady state of every kernel hot path performs zero heap
//! allocations. That proof is exact but *reactive* — a stray `format!`
//! added to a hot path fails a test some minutes later. Functions
//! tagged with a `// jc-lint: no-alloc` comment are additionally
//! checked statically: their bodies may not call the direct allocating
//! constructors (`Vec::new`, `vec!`, `to_vec`, `.clone()`, `format!`,
//! `Box::new`, `.collect()`, `with_capacity`, …). Growth of
//! caller-owned buffers (`push` / `extend` / `resize` / `reserve`) is
//! deliberately allowed — that is exactly the amortized-into-scratch
//! pattern the runtime proof pins — and a known-non-allocating
//! construct (e.g. a `Vec` of ZSTs) can be waived at the line with
//! `// jc-lint: allow(no-alloc): <reason>`.

use crate::lexer::Kind;
use crate::{match_brace, Diagnostic, SourceFile};

const LINT: &str = "no-alloc";

/// The tag that marks a function as a statically-checked hot path.
pub const TAG: &str = "jc-lint: no-alloc";

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "Box", "String", "Rc", "Arc", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];
/// Associated functions on [`ALLOC_TYPES`] that allocate (or exist to).
const ALLOC_ASSOC: &[&str] = &["new", "from", "with_capacity", "from_iter", "from_elem"];
/// Allocating method calls (checked only in `.method` position).
const ALLOC_METHODS: &[&str] =
    &["to_vec", "to_string", "to_owned", "clone", "collect", "into_owned"];
/// Allocating macros (checked in `name!` position).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Check every tagged function in `f`.
pub fn check(f: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let code = f.code();
    for (ti, tok) in f.tokens.iter().enumerate() {
        // The tag is a plain `//` comment that *starts with* the marker:
        // doc comments merely describing the tag do not arm the lint.
        if tok.kind != Kind::Comment
            || tok.text.starts_with("///")
            || tok.text.starts_with("//!")
            || !tok.text.trim_start_matches('/').trim_start().starts_with(TAG)
        {
            continue;
        }
        // The tag governs the next `fn` (skipping attributes, further
        // comments, and modifiers like `pub`/`const`/`unsafe`).
        let Some((fn_line, lo, hi)) = next_fn_body(f, &code, ti) else {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: tok.line,
                lint: LINT,
                message: "`jc-lint: no-alloc` tag is not followed by a function".into(),
            });
            continue;
        };
        scan_body(f, &code[lo..=hi], fn_line, &mut diags);
    }
    diags
}

/// The first fn declaration after token index `ti`: its line and body
/// range (indices into `code`, inclusive).
fn next_fn_body(f: &SourceFile, code: &[usize], ti: usize) -> Option<(u32, usize, usize)> {
    let start = code.partition_point(|&ci| ci <= ti);
    let mut k = start;
    let mut budget = 64; // modifiers + attribute tokens before `fn`
    while k < code.len() && budget > 0 {
        if f.tokens[code[k]].is_ident("fn") {
            let fn_line = f.tokens[code[k]].line;
            let open = crate::body_open(f, code, k + 1)?;
            let close = match_brace(f, code, open);
            return Some((fn_line, open, close));
        }
        k += 1;
        budget -= 1;
    }
    None
}

/// Flag allocating constructs within one body's code-token range.
fn scan_body(f: &SourceFile, body: &[usize], fn_line: u32, diags: &mut Vec<Diagnostic>) {
    let t = |i: usize| &f.tokens[body[i]];
    let mut flag = |line: u32, what: &str| {
        if !f.waived(line, LINT) {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line,
                lint: LINT,
                message: format!(
                    "{what} in a hot path tagged `no-alloc` (fn at line {fn_line}); \
                     write into caller-owned scratch, or waive the line with a reason"
                ),
            });
        }
    };
    for i in 0..body.len() {
        let tok = t(i);
        if tok.kind != Kind::Ident {
            continue;
        }
        let next = body.get(i + 1).map(|&ci| &f.tokens[ci]);
        let next2 = body.get(i + 2).map(|&ci| &f.tokens[ci]);
        let next3 = body.get(i + 3).map(|&ci| &f.tokens[ci]);
        let prev = (i > 0).then(|| t(i - 1));
        // `vec!` / `format!`
        if ALLOC_MACROS.contains(&tok.text.as_str()) && next.is_some_and(|n| n.is_punct('!')) {
            flag(tok.line, &format!("`{}!` allocates", tok.text));
            continue;
        }
        // `Vec::new(..)` / `Box::new(..)` / `String::with_capacity(..)` …
        if ALLOC_TYPES.contains(&tok.text.as_str())
            && next.is_some_and(|n| n.is_punct(':'))
            && next2.is_some_and(|n| n.is_punct(':'))
            && next3
                .is_some_and(|n| n.kind == Kind::Ident && ALLOC_ASSOC.contains(&n.text.as_str()))
        {
            flag(tok.line, &format!("`{}::{}` allocates", tok.text, next3.unwrap().text));
            continue;
        }
        // `.clone()` / `.to_vec()` / `.collect::<..>()` …
        if ALLOC_METHODS.contains(&tok.text.as_str())
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
        {
            flag(tok.line, &format!("`.{}()` allocates", tok.text));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn untagged_functions_are_not_checked() {
        assert!(run("fn cold() -> Vec<u8> { Vec::new() }\n").is_empty());
    }

    #[test]
    fn tagged_function_flags_constructors_with_lines() {
        let d = run("// jc-lint: no-alloc\n\
             pub fn hot(out: &mut Vec<f64>) {\n\
                 let t = vec![0.0; 4];\n\
                 out.extend_from_slice(&t);\n\
                 let s = other.clone();\n\
             }\n");
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[1].line, 5);
    }

    #[test]
    fn growth_of_caller_buffers_is_allowed() {
        let d = run("// jc-lint: no-alloc\n\
             pub fn hot(out: &mut Vec<f64>, n: usize) {\n\
                 out.clear();\n\
                 out.resize(n, 0.0);\n\
                 out.reserve(n);\n\
                 out.extend((0..n).map(|i| i as f64));\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn waiver_with_reason_suppresses_a_line() {
        let d = run("// jc-lint: no-alloc\n\
             pub fn hot(n: usize) {\n\
                 // jc-lint: allow(no-alloc): Vec of ZSTs never touches the heap\n\
                 let units = vec![(); n];\n\
                 drop(units);\n\
                 let bad = vec![1; n];\n\
                 drop(bad);\n\
             }\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn tag_skips_attributes_to_find_the_fn() {
        let d = run("// jc-lint: no-alloc\n\
             #[allow(clippy::too_many_arguments)]\n\
             #[inline]\n\
             pub unsafe fn hot() { let x = Box::new(1); drop(x); }\n");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn dangling_tag_is_itself_a_finding() {
        let d = run("// jc-lint: no-alloc\nconst X: u32 = 1;\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not followed by a function"));
    }
}
