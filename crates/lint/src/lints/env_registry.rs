//! `env-registry`: one table of truth for `JC_*` environment knobs.
//!
//! Environment variables are invisible API: a `std::env::var("JC_…")`
//! buried in a kernel changes behavior with no type to grep for. This
//! lint closes the loop in both directions: every `JC_*` read anywhere
//! in the workspace (shims included) must have an entry in the
//! [`REGISTRY_PATH`] table (`jc_core::envreg`), every registered entry
//! must actually be read somewhere (no dead knobs), carry a non-empty
//! description, be unique — and be documented in the README, so the
//! registry cannot drift ahead of the user-facing docs.

use crate::lexer::Kind;
use crate::{Diagnostic, SourceFile};

const LINT: &str = "env-registry";

/// Where the registry table lives.
pub const REGISTRY_PATH: &str = "crates/core/src/envreg.rs";

/// One `("JC_*", "description")` entry.
struct Entry {
    name: String,
    desc: String,
    line: u32,
}

/// One `env::var("JC_*")` read site.
struct Read {
    path: String,
    line: u32,
    name: String,
}

/// Check all `files` against the registry and the README text.
pub fn check(files: &[SourceFile], registry: Option<&SourceFile>, readme: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let reads: Vec<Read> =
        files.iter().filter(|f| f.path != REGISTRY_PATH).flat_map(reads_in).collect();

    let entries = match registry {
        Some(r) => entries_in(r, &mut diags),
        None => {
            if let Some(r) = reads.first() {
                diags.push(Diagnostic {
                    path: r.path.clone(),
                    line: r.line,
                    lint: LINT,
                    message: format!(
                        "`{}` is read but `{REGISTRY_PATH}` does not exist — create the \
                         registry table",
                        r.name
                    ),
                });
            }
            return diags;
        }
    };

    for r in &reads {
        if !entries.iter().any(|e| e.name == r.name) {
            diags.push(Diagnostic {
                path: r.path.clone(),
                line: r.line,
                lint: LINT,
                message: format!(
                    "`{}` is read here but not registered in `{REGISTRY_PATH}` — add an entry \
                     (name, one-line description) and document it in README.md",
                    r.name
                ),
            });
        }
    }
    for e in &entries {
        if !reads.iter().any(|r| r.name == e.name) {
            diags.push(Diagnostic {
                path: REGISTRY_PATH.into(),
                line: e.line,
                lint: LINT,
                message: format!(
                    "registered env var `{}` is never read — dead knob, drop it",
                    e.name
                ),
            });
        }
        if e.desc.trim().is_empty() {
            diags.push(Diagnostic {
                path: REGISTRY_PATH.into(),
                line: e.line,
                lint: LINT,
                message: format!("registered env var `{}` has an empty description", e.name),
            });
        }
        if !readme.contains(&e.name) {
            diags.push(Diagnostic {
                path: REGISTRY_PATH.into(),
                line: e.line,
                lint: LINT,
                message: format!(
                    "registered env var `{}` is not documented in README.md — users cannot \
                     discover it",
                    e.name
                ),
            });
        }
    }
    diags
}

/// `env::var("JC_*")` / `env::var_os("JC_*")` reads in one file.
fn reads_in(f: &SourceFile) -> Vec<Read> {
    let code = f.code();
    let mut out = Vec::new();
    for w in code.windows(3) {
        let (a, b, c) = (&f.tokens[w[0]], &f.tokens[w[1]], &f.tokens[w[2]]);
        if (a.is_ident("var") || a.is_ident("var_os"))
            && b.is_punct('(')
            && c.kind == Kind::Str
            && c.text.starts_with("JC_")
        {
            out.push(Read { path: f.path.clone(), line: c.line, name: c.text.clone() });
        }
    }
    out
}

/// `("JC_*", "description")` tuples in the registry source, with
/// duplicate entries reported directly into `diags`.
fn entries_in(r: &SourceFile, diags: &mut Vec<Diagnostic>) -> Vec<Entry> {
    let code = r.code();
    let mut out: Vec<Entry> = Vec::new();
    for w in code.windows(6) {
        let t = |i: usize| &r.tokens[w[i]];
        // `("JC_X", "desc")`, with or without a trailing comma.
        if t(0).is_punct('(')
            && t(1).kind == Kind::Str
            && t(1).text.starts_with("JC_")
            && t(2).is_punct(',')
            && t(3).kind == Kind::Str
            && (t(4).is_punct(')') || (t(4).is_punct(',') && t(5).is_punct(')')))
        {
            if out.iter().any(|e| e.name == t(1).text) {
                diags.push(Diagnostic {
                    path: REGISTRY_PATH.into(),
                    line: t(1).line,
                    lint: LINT,
                    message: format!("duplicate registry entry for `{}`", t(1).text),
                });
                continue;
            }
            out.push(Entry { name: t(1).text.clone(), desc: t(3).text.clone(), line: t(1).line });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(src: &str) -> SourceFile {
        SourceFile::parse(REGISTRY_PATH, src)
    }

    #[test]
    fn unregistered_read_is_flagged_at_the_read_site() {
        let code =
            SourceFile::parse("crates/x/src/lib.rs", "let v = std::env::var(\"JC_SECRET\");\n");
        let registry =
            reg("pub const JC_ENV: &[(&str, &str)] = &[(\"JC_THREADS\", \"threads\")];\n");
        let d = check(
            &[
                SourceFile::parse(
                    "crates/y/src/lib.rs",
                    "fn t() { let _ = std::env::var(\"JC_THREADS\"); }\n",
                ),
                code,
            ],
            Some(&registry),
            "JC_THREADS docs",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("JC_SECRET"));
        assert_eq!(d[0].path, "crates/x/src/lib.rs");
    }

    #[test]
    fn dead_and_undocumented_entries_are_flagged() {
        let registry = reg("pub const JC_ENV: &[(&str, &str)] = &[\n\
                 (\"JC_THREADS\", \"threads\"),\n\
                 (\"JC_DEAD\", \"never read\"),\n\
             ];\n");
        let user = SourceFile::parse(
            "crates/y/src/lib.rs",
            "fn t() { let _ = std::env::var(\"JC_THREADS\"); }\n",
        );
        // JC_THREADS missing from the README, JC_DEAD never read (and
        // not documented either): three findings.
        let d = check(&[user], Some(&registry), "no vars documented");
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn clean_registry_is_quiet() {
        let registry =
            reg("pub const JC_ENV: &[(&str, &str)] = &[(\"JC_THREADS\", \"threads\")];\n");
        let user = SourceFile::parse(
            "shims/rayon/src/lib.rs",
            "fn t() { let _ = std::env::var(\"JC_THREADS\"); }\n",
        );
        let d = check(&[user], Some(&registry), "Set JC_THREADS to pin workers.");
        assert!(d.is_empty(), "{d:?}");
    }
}
