//! `determinism`: bitwise-replay protection for the kernel and
//! checkpoint crates.
//!
//! Shard failover replays a checkpoint and asserts the rerun is
//! *bitwise identical* (`tests/failover.rs`), and the SoA kernels
//! promise run-to-run stable reductions. Two things silently break that
//! class of guarantee: hash-seeded iteration order (`HashMap` /
//! `HashSet` — `RandomState` differs per process, so any iteration, or
//! any float accumulation driven by one, diverges between original and
//! replay) and wall-clock-derived values (`SystemTime` / `Instant`)
//! leaking into state. This lint forbids those identifiers outright in
//! the replay-critical scope ([`in_scope`]): the kernel crates
//! (`nbody`, `sph`, `treegrav`, `compute`) and the
//! checkpoint/shard/chaos layers of `jc_amuse` (a fault plan must be a
//! pure function of its seed, or a failing soak seed stops
//! reproducing). `#[cfg(test)]` modules are exempt (tests may
//! time things); a deliberate use — e.g. a frozen legacy baseline —
//! carries a file waiver `// jc-lint: allow-file(determinism): <reason>`.

use crate::lexer::Kind;
use crate::{match_brace, Diagnostic, SourceFile};

const LINT: &str = "determinism";

/// Identifiers that undermine bitwise replay, with the reason each is
/// banned.
const BANNED: &[(&str, &str)] = &[
    ("HashMap", "hash-seeded iteration order diverges between a run and its replay"),
    ("HashSet", "hash-seeded iteration order diverges between a run and its replay"),
    ("SystemTime", "wall-clock values differ between a run and its replay"),
    ("Instant", "wall-clock values differ between a run and its replay"),
];

/// Is this file in the replay-critical scope?
pub fn in_scope(path: &str) -> bool {
    const DIRS: &[&str] =
        &["crates/nbody/src/", "crates/sph/src/", "crates/treegrav/src/", "crates/compute/src/"];
    const FILES: &[&str] = &[
        "crates/amuse/src/chaos.rs",
        "crates/amuse/src/checkpoint.rs",
        "crates/amuse/src/shard.rs",
    ];
    DIRS.iter().any(|d| path.starts_with(d)) || FILES.contains(&path)
}

/// Check one in-scope file.
pub fn check(f: &SourceFile) -> Vec<Diagnostic> {
    if f.waived_file(LINT) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let code = f.code();
    let test_ranges = cfg_test_ranges(f, &code);
    for (k, &ti) in code.iter().enumerate() {
        let t = &f.tokens[ti];
        if t.kind != Kind::Ident {
            continue;
        }
        let Some((_, why)) = BANNED.iter().find(|(name, _)| *name == t.text) else { continue };
        if test_ranges.iter().any(|&(lo, hi)| k >= lo && k <= hi) || f.waived(t.line, LINT) {
            continue;
        }
        diags.push(Diagnostic {
            path: f.path.clone(),
            line: t.line,
            lint: LINT,
            message: format!(
                "`{}` in a replay-critical crate: {why}; use BTreeMap/BTreeSet or logical \
                 clocks, or waive with a reason",
                t.text
            ),
        });
    }
    diags
}

/// Index ranges (into `code`) of `#[cfg(test)] mod … { … }` bodies.
fn cfg_test_ranges(f: &SourceFile, code: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let t = |i: usize| &f.tokens[code[i]];
    for k in 0..code.len().saturating_sub(7) {
        let is_cfg_test = t(k).is_punct('#')
            && t(k + 1).is_punct('[')
            && t(k + 2).is_ident("cfg")
            && t(k + 3).is_punct('(')
            && t(k + 4).is_ident("test")
            && t(k + 5).is_punct(')')
            && t(k + 6).is_punct(']');
        if !is_cfg_test {
            continue;
        }
        // allow further attributes between the cfg and the mod
        let mut m = k + 7;
        while m < code.len() && t(m).is_punct('#') {
            let mut depth = 0i32;
            m += 1;
            while m < code.len() {
                if t(m).is_punct('[') {
                    depth += 1;
                } else if t(m).is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        m += 1;
                        break;
                    }
                }
                m += 1;
            }
        }
        if m + 2 < code.len() && t(m).is_ident("mod") && t(m + 2).is_punct('{') {
            out.push((m + 2, match_brace(f, code, m + 2)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/sph/src/x.rs", src))
    }

    #[test]
    fn hashmap_and_wall_clock_are_flagged() {
        let d = run("use std::collections::HashMap;\n\
             fn f() { let t = std::time::Instant::now(); }\n");
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!((d[0].line, d[1].line), (1, 2));
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let d = run("fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn timing() { let t0 = std::time::Instant::now(); let _ = t0; }\n\
             }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn file_waiver_with_reason_exempts_a_frozen_baseline() {
        let d =
            run("// jc-lint: allow-file(determinism): frozen legacy baseline, lookup-only map\n\
             use std::collections::HashMap;\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scope_covers_kernels_and_checkpoint_layers_only() {
        assert!(in_scope("crates/nbody/src/kernels.rs"));
        assert!(in_scope("crates/amuse/src/shard.rs"));
        assert!(in_scope("crates/amuse/src/chaos.rs"));
        assert!(!in_scope("crates/amuse/src/socket.rs"));
        assert!(!in_scope("crates/deploy/src/monitor.rs"));
    }
}
