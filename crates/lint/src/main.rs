//! `jc-lint` — run the workspace invariant checks from the command line.
//!
//! ```text
//! cargo run -p jc-lint                    # check, exit 1 on findings
//! cargo run -p jc-lint -- --write-ledger  # regenerate docs/UNSAFE_LEDGER.md
//! cargo run -p jc-lint -- --root <dir>    # check a different tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut write_ledger = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("jc-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--write-ledger" => write_ledger = true,
            "--help" | "-h" => {
                println!(
                    "jc-lint: workspace invariant checker\n\n\
                     USAGE: jc-lint [--root DIR] [--write-ledger]\n\n\
                     Lints: unsafe-audit, wire-exhaustiveness, no-alloc, determinism, env-registry.\n\
                     Waive a line with `// jc-lint: allow(<lint>): <reason>`;\n\
                     the reason is mandatory."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("jc-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Resolve the workspace root: accept being invoked from a crate dir
    // (cargo run sets cwd to the invocation dir, not the workspace).
    if !root.join("crates").is_dir() {
        for up in ["..", "../.."] {
            let candidate = root.join(up);
            if candidate.join("crates").is_dir() && candidate.join("Cargo.toml").is_file() {
                root = candidate;
                break;
            }
        }
    }

    if write_ledger {
        // Regenerate the committed inventory, then fall through to the
        // full check so the run still reports any remaining findings.
        let mut sites = Vec::new();
        for rel in jc_lint::workspace_rs_files(&root) {
            if let Ok(f) = jc_lint::SourceFile::load(&root, &rel) {
                let _ = jc_lint::lints::unsafe_audit::check(&f, &mut sites);
            }
        }
        if let Err(e) = jc_lint::ledger::write(&root, &sites) {
            eprintln!("jc-lint: failed to write {}: {e}", jc_lint::ledger::LEDGER_PATH);
            return ExitCode::from(2);
        }
        println!("wrote {} ({} unsafe sites)", jc_lint::ledger::LEDGER_PATH, sites.len());
    }

    let diags = jc_lint::run_all(&root);
    if diags.is_empty() {
        println!("jc-lint: workspace clean (5 lints, 0 findings)");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    let mut by_lint: Vec<(&str, usize)> = Vec::new();
    for d in &diags {
        match by_lint.iter_mut().find(|(name, _)| *name == d.lint) {
            Some((_, n)) => *n += 1,
            None => by_lint.push((d.lint, 1)),
        }
    }
    let summary: Vec<String> = by_lint.iter().map(|(name, n)| format!("{name}: {n}")).collect();
    eprintln!("\njc-lint: {} finding(s) ({})", diags.len(), summary.join(", "));
    ExitCode::FAILURE
}
