//! A small hand-rolled Rust lexer.
//!
//! The lints do not need a full parser — every contract they enforce is
//! visible at the token level (an `unsafe` keyword, an `op::NAME`
//! constant, a `vec!` call, a `"JC_*"` string literal) — but they *do*
//! need comments and string literals separated from code, or a lint
//! pattern quoted in a doc comment would trip the checker. This lexer
//! produces a flat token stream with line numbers, keeping comment text
//! (the unsafe-audit and waiver markers live there) and string contents
//! (the env-var registry lint reads them), and understanding the Rust
//! constructs that would otherwise desynchronize a naive scanner:
//! nested block comments, raw strings with `#` fences, byte strings,
//! char literals vs. lifetimes, and raw identifiers.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`unsafe`, `fn`, `HashMap`, …).
    Ident,
    /// A string literal; [`Token::text`] holds the *contents* (no quotes).
    Str,
    /// A character or byte literal (contents, no quotes).
    Char,
    /// A lifetime (`'a`) — distinct from [`Kind::Char`].
    Lifetime,
    /// A numeric literal (raw spelling, e.g. `0x4A43_5752`).
    Num,
    /// A single punctuation character.
    Punct,
    /// A comment; [`Token::text`] holds the full text including the
    /// `//` / `/*` markers, so doc comments remain distinguishable.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Token text (see [`Kind`] for what is stored per class).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream. Total: malformed input never panics,
/// it just degrades (an unterminated literal runs to end of file).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Count newlines inside `src[from..to]` (multi-line tokens).
    let lines_in = |from: usize, to: usize| -> u32 {
        b[from..to].iter().filter(|&&c| c == b'\n').count() as u32
    };

    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            out.push(Token { kind: Kind::Comment, text: src[start..i].to_string(), line });
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += lines_in(start, i);
            out.push(Token {
                kind: Kind::Comment,
                text: src[start..i].to_string(),
                line: start_line,
            });
            continue;
        }
        // Raw / byte string prefixes: r", r#…", b", br#…", rb is not Rust.
        if (c == b'r' || c == b'b') && i + 1 < n {
            let (mut j, _byte) = if c == b'b' && i + 1 < n && b[i + 1] == b'r' {
                (i + 2, true)
            } else if c == b'r' {
                (i + 1, c == b'b')
            } else if b[i + 1] == b'"' {
                (i + 1, true)
            } else {
                (0, false) // not a string prefix; fall through to ident
            };
            if j > 0 {
                let raw = b[i] == b'r' || (b[i] == b'b' && b[i + 1] == b'r');
                let mut hashes = 0usize;
                while raw && j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == b'"' {
                    // A (raw) string literal: find the closing quote.
                    let content_start = j + 1;
                    let start_line = line;
                    let mut k = content_start;
                    if raw {
                        'outer: while k < n {
                            if b[k] == b'"' {
                                let mut h = 0usize;
                                while h < hashes && k + 1 + h < n && b[k + 1 + h] == b'#' {
                                    h += 1;
                                }
                                if h == hashes {
                                    break 'outer;
                                }
                            }
                            k += 1;
                        }
                    } else {
                        while k < n && b[k] != b'"' {
                            k += if b[k] == b'\\' { 2 } else { 1 };
                        }
                    }
                    let end = k.min(n);
                    line += lines_in(i, end);
                    out.push(Token {
                        kind: Kind::Str,
                        text: src[content_start.min(n)..end].to_string(),
                        line: start_line,
                    });
                    i = (end + 1 + hashes).min(n);
                    continue;
                }
                // `r#ident` raw identifier.
                if raw && hashes == 1 && j < n && is_ident_start(b[j]) {
                    let start = j;
                    let mut k = j;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    out.push(Token { kind: Kind::Ident, text: src[start..k].to_string(), line });
                    i = k;
                    continue;
                }
                // Not a literal after all (`r` / `b` alone): fall through.
            }
        }
        // Plain string literal.
        if c == b'"' {
            let start_line = line;
            let mut k = i + 1;
            while k < n && b[k] != b'"' {
                k += if b[k] == b'\\' { 2 } else { 1 };
            }
            let end = k.min(n);
            line += lines_in(i, end);
            out.push(Token {
                kind: Kind::Str,
                text: src[i + 1..end].to_string(),
                line: start_line,
            });
            i = (end + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            // A backslash or a non-identifier character right after the
            // quote always means a char literal; an identifier run is a
            // char literal only if it is one char long and closed by `'`.
            let next = if i + 1 < n { b[i + 1] } else { 0 };
            let is_char = if next == b'\\' {
                true
            } else if is_ident_start(next) || next.is_ascii_digit() {
                i + 2 < n && b[i + 2] == b'\''
            } else {
                true
            };
            if is_char {
                let mut k = i + 1;
                while k < n && b[k] != b'\'' {
                    k += if b[k] == b'\\' { 2 } else { 1 };
                }
                let end = k.min(n);
                out.push(Token { kind: Kind::Char, text: src[i + 1..end].to_string(), line });
                i = (end + 1).min(n);
            } else {
                let mut k = i + 1;
                while k < n && is_ident_continue(b[k]) {
                    k += 1;
                }
                out.push(Token { kind: Kind::Lifetime, text: src[i + 1..k].to_string(), line });
                i = k;
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token { kind: Kind::Ident, text: src[start..i].to_string(), line });
            continue;
        }
        // Numeric literal. `1..n` must not swallow the range dots, and
        // exponents like `1e-3` / type suffixes ride along harmlessly.
        if c.is_ascii_digit() {
            let start = i;
            while i < n {
                let d = b[i];
                let continues = d.is_ascii_alphanumeric()
                    || d == b'_'
                    || (d == b'.' && i + 1 < n && b[i + 1] != b'.' && !is_ident_start(b[i + 1]))
                    || ((d == b'+' || d == b'-') && matches!(b[i - 1], b'e' | b'E'));
                if !continues {
                    break;
                }
                i += 1;
            }
            out.push(Token { kind: Kind::Num, text: src[start..i].to_string(), line });
            continue;
        }
        // Everything else: one punctuation character (UTF-8 safe).
        let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        out.push(Token { kind: Kind::Punct, text: src[i..i + ch_len].to_string(), line });
        i += ch_len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_into_code() {
        let toks = kinds("// unsafe in a comment\nlet s = \"unsafe in a string\";\n");
        assert!(!toks.iter().any(|(k, t)| *k == Kind::Ident && t == "unsafe"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Str && t.contains("unsafe")));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let toks = kinds("r#\"a \" quote\"# /* outer /* inner */ still */ x");
        assert_eq!(toks[0], (Kind::Str, "a \" quote".to_string()));
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2], (Kind::Ident, "x".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let toks = lex("a\n/* two\nlines */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = kinds("for i in 0..n { let x = 1.5e-3; let h = 0x4A43_5752; }");
        assert!(toks.iter().any(|(k, t)| *k == Kind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Num && t == "1.5e-3"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Num && t == "0x4A43_5752"));
    }
}
