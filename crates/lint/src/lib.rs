//! # jc-lint — the workspace invariant checker
//!
//! The coupled multi-kernel system only works because every layer keeps
//! hard invariants: kernels are bitwise reproducible, the wire protocol
//! grows by additive opcodes, hot paths are allocation-free in steady
//! state. PRs 2–5 encoded those contracts in doc comments and runtime
//! tests; this crate turns them into *static*, file:line-reporting lints
//! that run before the test suite ever executes:
//!
//! | Lint | Contract |
//! |---|---|
//! | `unsafe-audit` | every `unsafe` block/fn/impl carries a `// SAFETY:` audit, and [`ledger`] keeps a reviewed inventory in `docs/UNSAFE_LEDGER.md` |
//! | `wire-exhaustiveness` | every opcode appears in `opcode_version`, the encode path, the decode path, and the `wire_size` model |
//! | `no-alloc` | functions tagged `// jc-lint: no-alloc` never call `Vec::new` / `vec!` / `clone` / `format!` / friends |
//! | `determinism` | kernel and checkpoint-replay crates never use `HashMap`/`HashSet` or wall-clock time |
//! | `env-registry` | every `std::env::var("JC_*")` read is registered in `jc_core::envreg` and documented in the README |
//!
//! Like the offline shims, the tool is dependency-free: a small
//! hand-rolled lexer ([`lexer`]) over the workspace sources, plus one
//! pass per contract ([`lints`]). `cargo run -p jc-lint` from the
//! workspace root exits non-zero on any finding; CI runs it before
//! clippy. Intentional exceptions are spelled at the offending line as
//! `// jc-lint: allow(<lint>): <reason>` — the reason is mandatory, so
//! every waiver is a reviewed sentence, not a silent switch.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unreachable_pub)]

pub mod ledger;
pub mod lexer;
pub mod lints;

use lexer::{lex, Kind, Token};
use std::path::{Path, PathBuf};

/// One lint finding, reported as `file:line: [lint] message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (`unsafe-audit`, `wire-exhaustiveness`, …).
    pub lint: &'static str,
    /// Human-readable finding.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.lint, self.message)
    }
}

/// A lexed source file.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Raw source lines (for line-adjacency checks).
    pub lines: Vec<String>,
    /// Token stream from [`lexer::lex`].
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Lex `text` into a [`SourceFile`] under the given relative path.
    pub fn parse(path: impl Into<String>, text: &str) -> SourceFile {
        SourceFile {
            path: path.into(),
            lines: text.lines().map(str::to_string).collect(),
            tokens: lex(text),
        }
    }

    /// Load and lex a file from disk.
    pub fn load(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &text))
    }

    /// Indices of non-comment tokens, in order.
    pub fn code(&self) -> Vec<usize> {
        (0..self.tokens.len()).filter(|&i| self.tokens[i].kind != Kind::Comment).collect()
    }

    /// The trimmed text of line `line` (1-based), or `""` out of range.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).map(|s| s.trim()).unwrap_or("")
    }

    /// Does `line` (or the line above it) carry the waiver marker
    /// `jc-lint: allow(<lint>)` in a plain `//` comment, followed by a
    /// non-empty reason? A bare marker without a reason does not count
    /// (waivers are reviewed sentences, not switches), and doc comments
    /// do not count (they *describe* markers; they don't apply them).
    pub fn waived(&self, line: u32, lint: &str) -> bool {
        let marker = format!("jc-lint: allow({lint})");
        for l in [line, line.saturating_sub(1)] {
            if l == 0 {
                continue;
            }
            if marker_reason(self.line_text(l), &marker) {
                return true;
            }
        }
        false
    }

    /// Does any plain `//` comment line in the file carry a file-scope
    /// waiver `jc-lint: allow-file(<lint>): <reason>`?
    pub fn waived_file(&self, lint: &str) -> bool {
        let marker = format!("jc-lint: allow-file({lint})");
        self.lines.iter().any(|l| marker_reason(l, &marker))
    }
}

/// Does `line` carry `marker` inside a plain (non-doc) `//` comment,
/// followed by a non-empty reason?
fn marker_reason(line: &str, marker: &str) -> bool {
    let Some(cpos) = line.find("//") else { return false };
    let comment = &line[cpos..];
    if comment.starts_with("///") || comment.starts_with("//!") {
        return false;
    }
    let Some(pos) = comment.find(marker) else { return false };
    let rest = comment[pos + marker.len()..].trim_start_matches([':', ' ', '—', '-']);
    !rest.trim().is_empty()
}

/// Scan a fn signature starting at `code[from]` (just past the `fn`
/// keyword or name) for the body's opening `{`. Returns its index in
/// `code`, or `None` for a bodyless declaration (trait method ending in
/// `;`). A `;` inside brackets — e.g. the array type `&[[f64; 3]]` —
/// does *not* terminate the signature.
pub fn body_open(file: &SourceFile, code: &[usize], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(from) {
        let t = &file.tokens[ti];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return Some(k);
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Given `code[at]` pointing at a `{` token, return the index *in
/// `code`* of the matching `}` (or the last token if unbalanced).
pub fn match_brace(file: &SourceFile, code: &[usize], at: usize) -> usize {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(at) {
        let t = &file.tokens[ti];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Recursively collect workspace `.rs` files under `root`, relative
/// paths with forward slashes. Skips `target/`, VCS metadata, and the
/// lint fixture tree (whose fail cases must trip lints by design).
pub fn workspace_rs_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = ["crates", "shims", "src", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .filter(|d| d.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if p.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Run every lint over the workspace at `root`. Returns the sorted
/// findings; an empty vector is a clean bill.
pub fn run_all(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut files = Vec::new();
    for rel in workspace_rs_files(root) {
        match SourceFile::load(root, &rel) {
            Ok(f) => files.push(f),
            Err(e) => diags.push(Diagnostic {
                path: rel,
                line: 1,
                lint: "io",
                message: format!("unreadable: {e}"),
            }),
        }
    }

    let mut sites = Vec::new();
    for f in &files {
        diags.extend(lints::unsafe_audit::check(f, &mut sites));
        diags.extend(lints::no_alloc::check(f));
        if lints::determinism::in_scope(&f.path) {
            diags.extend(lints::determinism::check(f));
        }
    }

    // Wire exhaustiveness runs over the protocol quartet specifically.
    let wire = files.iter().find(|f| f.path == lints::wire::WIRE_PATH);
    let worker = files.iter().find(|f| f.path == lints::wire::WORKER_PATH);
    let socket = files.iter().find(|f| f.path == lints::wire::SOCKET_PATH);
    let reactor = files.iter().find(|f| f.path == lints::wire::REACTOR_PATH);
    match wire {
        Some(w) => diags.extend(lints::wire::check(w, worker, socket, reactor)),
        None => diags.push(Diagnostic {
            path: lints::wire::WIRE_PATH.into(),
            line: 1,
            lint: "wire-exhaustiveness",
            message: "protocol module not found — did it move? update jc-lint".into(),
        }),
    }

    // Env registry: reads across the whole tree vs the registry table
    // and the README documentation.
    let registry = files.iter().find(|f| f.path == lints::env_registry::REGISTRY_PATH);
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    diags.extend(lints::env_registry::check(&files, registry, &readme));

    // The unsafe ledger must match the committed inventory.
    diags.extend(ledger::verify(root, &sites));

    diags.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_requires_a_reason() {
        let f = SourceFile::parse(
            "x.rs",
            "// jc-lint: allow(no-alloc)\nlet a = 1;\n// jc-lint: allow(no-alloc): ZST only\nlet b = 2;\n",
        );
        assert!(!f.waived(2, "no-alloc"), "bare marker must not waive");
        assert!(f.waived(4, "no-alloc"), "reasoned marker waives");
    }

    #[test]
    fn brace_matching_spans_nested_blocks() {
        let f = SourceFile::parse("x.rs", "fn f() { if x { y(); } }\nfn g() {}\n");
        let code = f.code();
        let open = code.iter().position(|&i| f.tokens[i].is_punct('{')).unwrap();
        let close = match_brace(&f, &code, open);
        assert!(f.tokens[code[close + 1]].is_ident("fn"), "close lands before `fn g`");
    }
}
