//! Graceful drain pin: a v2 `Shutdown` (or `Stop`) arriving *behind* a
//! pipelined burst must not cost any in-flight response.
//!
//! The server batches responses to a pipelined burst (they stay in the
//! write batch while further requests are already buffered). The hazard
//! this pins against: a serve loop that exits on Stop/Shutdown before
//! flushing the batch would eat the burst's buffered responses — the
//! coupler would see its last few calls vanish. The whole burst is
//! written in one syscall so it lands in the server's read-ahead buffer
//! together, which is exactly the batching-path shape (`jungle-worker`
//! wraps this same `WorkerServer::serve` loop).

use jc_amuse::wire;
use jc_amuse::worker::{GravityWorker, Response};
use jc_nbody::plummer::plummer_sphere;
use jc_nbody::Backend;
use std::io::Write;
use std::net::TcpStream;

/// Drive one burst of `kicks` mutating requests followed by the
/// shutdown opcode, all written in a single syscall, and count the
/// response frames that come back.
fn drain_after(kicks: usize, shutdown_op: u8) {
    let ics = plummer_sphere(16, 7);
    let (addr, handle) =
        jc_amuse::spawn_tcp_worker("drain", move || GravityWorker::new(ics, Backend::Scalar));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // burst: `kicks` mutating frames, then Stop/Shutdown right behind
    let dv = vec![[1e-4, -2e-4, 3e-4]; 16];
    let mut burst = Vec::new();
    let mut frame = Vec::new();
    for i in 0..kicks {
        wire::encode_kick(&dv, &mut frame);
        wire::set_seq(&mut frame, (i + 1) as u16);
        burst.extend_from_slice(&frame);
    }
    wire::encode_simple_request(shutdown_op, &mut frame);
    wire::set_seq(&mut frame, (kicks + 1) as u16);
    burst.extend_from_slice(&frame);
    stream.write_all(&burst).expect("one-syscall burst");

    // every response must arrive: kicks × Ok, then the shutdown ack
    let mut rbuf = Vec::new();
    for i in 0..kicks {
        let n = wire::read_frame(&mut stream, &mut rbuf)
            .unwrap_or_else(|e| panic!("kick response {i} lost in drain: {e}"));
        match wire::decode_response(&rbuf[..n]).expect("decode kick response") {
            Response::Ok { .. } => {}
            other => panic!("kick {i} answered {other:?}"),
        }
    }
    let n = wire::read_frame(&mut stream, &mut rbuf).expect("shutdown ack lost in drain");
    match wire::decode_response(&rbuf[..n]).expect("decode shutdown ack") {
        Response::Ok { .. } => {}
        other => panic!("shutdown answered {other:?}"),
    }
    handle.join().expect("server thread").expect("clean server exit");
}

#[test]
fn shutdown_behind_a_pipelined_burst_loses_no_response() {
    drain_after(8, wire::op::SHUTDOWN);
}

#[test]
fn stop_behind_a_pipelined_burst_loses_no_response() {
    drain_after(8, wire::op::STOP);
}

#[test]
fn shutdown_behind_a_long_burst_loses_no_response() {
    // enough frames that the batch spans several read-ahead refills
    drain_after(96, wire::op::SHUTDOWN);
}
