//! Per-request deadline regression: a chaos schedule of repeated
//! transient timeouts must not stall a retry-enabled channel past its
//! wall-clock budget (`RetryPolicy::deadline_ms`).
//!
//! Before the deadline existed, `max_retries` only capped *attempts*:
//! a policy generous enough to ride out a flaky link (say 100 000
//! retries) would let one request spin through backoff for minutes.
//! These tests pin the bound on both transports — the blocking
//! `SocketChannel` and the event-driven `ReactorChannel` — with the
//! same deterministic seeded schedule, and pin that the failure
//! surfaces as the *typed*, non-transient `DeadlineExceeded` (so the
//! bridge escalates to heal/restore instead of retrying in place).

use jc_amuse::channel::Channel;
use jc_amuse::chaos::{IoFault, RetryPolicy, StreamFaults};
use jc_amuse::worker::{GravityWorker, Request, Response};
use jc_amuse::{Reactor, ReactorChannel, SocketChannel};
use jc_nbody::plummer::plummer_sphere;
use jc_nbody::Backend;
use std::time::{Duration, Instant};

/// A schedule that times out every one of the next `n` frame reads —
/// the pathological flaky link that attempt-count caps cannot bound in
/// wall-clock.
fn endless_read_timeouts(n: u64) -> StreamFaults {
    let mut f = StreamFaults::default();
    for op in 1..=n {
        f = f.with_read(op, IoFault::ReadTimeout);
    }
    f
}

/// Generous attempts, tiny backoff, hard 150 ms budget: wall-clock is
/// bounded by the deadline, not the attempt cap.
fn deadline_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 100_000,
        backoff_base_ms: 1,
        backoff_max_ms: 4,
        ..RetryPolicy::standard(seed)
    }
    .with_deadline(150)
}

#[test]
fn blocking_channel_honors_request_deadline_under_chaos() {
    let ics = plummer_sphere(8, 3);
    let (addr, handle) =
        jc_amuse::spawn_tcp_worker("grav", move || GravityWorker::new(ics, Backend::Scalar));
    let mut ch = SocketChannel::connect(addr, "grav")
        .expect("connect")
        .with_retry(deadline_policy(11))
        .with_chaos(endless_read_timeouts(4096));
    let t0 = Instant::now();
    let resp = ch.call(Request::Ping);
    let elapsed = t0.elapsed();
    match resp {
        Response::Error(msg) => {
            assert!(msg.contains("deadline of 150 ms exceeded"), "typed deadline error: {msg}")
        }
        other => panic!("expected deadline error, got {other:?}"),
    }
    assert!(ch.stats().retries > 0, "the budget was spent on real retries");
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline must bound wall-clock (took {elapsed:?} for a 150 ms budget)"
    );
    drop(ch); // poisoned: no Stop frame
    assert!(SocketChannel::shutdown_worker(addr), "reap the worker");
    handle.join().unwrap().unwrap();
}

#[test]
fn reactor_channel_honors_request_deadline_under_chaos() {
    let ics = plummer_sphere(8, 3);
    let (addr, handle) =
        jc_amuse::spawn_tcp_worker("grav", move || GravityWorker::new(ics, Backend::Scalar));
    let reactor = Reactor::new_shared().expect("reactor");
    let mut ch = ReactorChannel::connect(&reactor, addr, "grav")
        .expect("connect")
        .with_retry(deadline_policy(11))
        .with_chaos(endless_read_timeouts(4096));
    let t0 = Instant::now();
    let resp = ch.call(Request::Ping);
    let elapsed = t0.elapsed();
    match resp {
        Response::Error(msg) => {
            assert!(msg.contains("deadline of 150 ms exceeded"), "typed deadline error: {msg}")
        }
        other => panic!("expected deadline error, got {other:?}"),
    }
    assert!(ch.stats().retries > 0, "the budget was spent on real retries");
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline must bound wall-clock (took {elapsed:?} for a 150 ms budget)"
    );
    drop(ch);
    assert!(SocketChannel::shutdown_worker(addr), "reap the worker");
    handle.join().unwrap().unwrap();
}

#[test]
fn deadline_is_inert_on_a_healthy_channel_and_under_absorbable_chaos() {
    // A short burst of transient faults *inside* the budget is still
    // absorbed in place — the deadline only trims the tail.
    let ics = plummer_sphere(8, 3);
    let reference = {
        let mut w = GravityWorker::new(ics.clone(), Backend::Scalar);
        use jc_amuse::worker::ModelWorker;
        match w.handle(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("reference snapshot failed: {other:?}"),
        }
    };
    let (addr, handle) =
        jc_amuse::spawn_tcp_worker("grav", move || GravityWorker::new(ics, Backend::Scalar));
    let faults = StreamFaults::default()
        .with_read(1, IoFault::ReadTimeout)
        .with_read(2, IoFault::ReadTimeout);
    let mut ch = SocketChannel::connect(addr, "grav")
        .expect("connect")
        .with_retry(RetryPolicy::standard(5).with_deadline(5_000))
        .with_chaos(faults);
    match ch.call(Request::GetParticles) {
        Response::Particles(p) => {
            assert_eq!(p.pos, reference.pos, "retried snapshot is bitwise clean");
        }
        other => panic!("absorbable faults must still succeed: {other:?}"),
    }
    assert_eq!(ch.stats().retries, 2, "both scheduled faults were absorbed");
    drop(ch);
    handle.join().unwrap().unwrap();
}
