//! Property tests for the incremental frame decoder.
//!
//! The reactor feeds [`FrameDecoder`] whatever byte counts the kernel
//! happens to deliver — a frame may arrive in one read or in dozens of
//! fragments split at arbitrary offsets, including inside the header.
//! The decoder's contract: any split of a valid frame reassembles to
//! the exact bytes the one-shot blocking reader would have produced,
//! it never consumes past the frame boundary, and hostile input errors
//! out with bounded allocation and no panic — the same guarantees
//! `wire_robustness.rs` pins for the blocking path.

use jc_amuse::reactor::FrameDecoder;
use jc_amuse::wire::{self, WireError};
use jc_amuse::worker::Request;
use proptest::prelude::*;

/// An arbitrary valid request frame, seq-stamped.
fn valid_frame(n: usize, seq: u16, op: u8) -> Vec<u8> {
    let mut buf = Vec::new();
    match op {
        0 => wire::encode_simple_request(wire::op::PING, &mut buf),
        1 => wire::encode_kick(&vec![[1.5, -2.5, 3.25]; n], &mut buf),
        2 => {
            wire::encode_request(&Request::SetMasses((0..n).map(|i| i as f64).collect()), &mut buf)
        }
        _ => wire::encode_compute_kick(
            &vec![[1.0, 2.0, 3.0]; n],
            &vec![[0.5; 3]; n],
            &vec![1.0 / n.max(1) as f64; n],
            &mut buf,
        ),
    }
    wire::set_seq(&mut buf, seq);
    buf
}

/// Feed `frame` to a decoder in fragments cut at `cuts` (arbitrary,
/// possibly repeated or out-of-range offsets), returning the decoded
/// frame.
fn feed_in_fragments(frame: &[u8], cuts: &[usize]) -> Vec<u8> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (frame.len() + 1)).collect();
    bounds.push(0);
    bounds.push(frame.len());
    bounds.sort_unstable();
    let mut d = FrameDecoder::new();
    for w in bounds.windows(2) {
        let chunk = &frame[w[0]..w[1]];
        let mut offset = 0;
        while offset < chunk.len() {
            let (used, complete) = d.feed(&chunk[offset..]).expect("valid frame must decode");
            offset += used;
            if complete {
                assert_eq!(offset, chunk.len(), "decoder consumed past the frame boundary");
            }
        }
    }
    assert!(d.is_complete(), "all bytes fed but frame not complete");
    d.frame().to_vec()
}

proptest! {
    /// Any split of a valid frame decodes to exactly the bytes that
    /// went in — fragment boundaries are invisible.
    #[test]
    fn any_split_decodes_identically_to_one_shot(
        n in 0usize..40,
        seq in any::<u16>(),
        op in 0u8..4,
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let frame = valid_frame(n, seq, op);
        let reassembled = feed_in_fragments(&frame, &cuts);
        prop_assert_eq!(&reassembled, &frame);
        prop_assert_eq!(wire::frame_seq(&reassembled), seq);
        // and the one-shot decode agrees on the payload's meaning
        let a = format!("{:?}", wire::decode_request(&frame));
        let b = format!("{:?}", wire::decode_request(&reassembled));
        prop_assert_eq!(a, b);
    }

    /// Two frames concatenated: the decoder stops exactly at the first
    /// boundary; a fresh decoder picks up the second frame bit-for-bit.
    #[test]
    fn decoder_never_eats_into_the_next_frame(
        n in 0usize..24,
        m in 0usize..24,
        ops in (0u8..4, 0u8..4),
    ) {
        let first = valid_frame(n, 7, ops.0);
        let second = valid_frame(m, 8, ops.1);
        let mut batch = first.clone();
        batch.extend_from_slice(&second);

        let mut d = FrameDecoder::new();
        let (used, complete) = d.feed(&batch).expect("valid");
        prop_assert!(complete);
        prop_assert_eq!(used, first.len());
        prop_assert_eq!(d.frame(), &first[..]);

        d.reset();
        let (used2, complete2) = d.feed(&batch[used..]).expect("valid");
        prop_assert!(complete2);
        prop_assert_eq!(used2, second.len());
        prop_assert_eq!(d.frame(), &second[..]);
    }

    /// Hostile bytes — random garbage fed at random split points — must
    /// produce a typed error or keep waiting for more input, never
    /// panic, and never allocate beyond the header until a validated
    /// length is known.
    #[test]
    fn hostile_bytes_error_cleanly_without_overallocation(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (junk.len() + 1)).collect();
        bounds.push(0);
        bounds.push(junk.len());
        bounds.sort_unstable();
        let mut d = FrameDecoder::new();
        'outer: for w in bounds.windows(2) {
            let chunk = &junk[w[0]..w[1]];
            let mut offset = 0;
            while offset < chunk.len() {
                match d.feed(&chunk[offset..]) {
                    Ok((used, complete)) => {
                        prop_assert!(used > 0 || chunk[offset..].is_empty());
                        offset += used;
                        if complete {
                            break 'outer;
                        }
                    }
                    Err(e) => {
                        // header rejection happens before any payload
                        // allocation
                        prop_assert!(matches!(
                            e,
                            WireError::BadMagic(_)
                                | WireError::BadVersion(_)
                                | WireError::Oversized(_)
                                | WireError::Truncated { .. }
                        ), "unexpected error {e:?}");
                        break 'outer;
                    }
                }
            }
        }
        // garbage that merely *claims* a huge length must not have
        // provoked a huge buffer: growth is bounded by bytes received
        // plus one read chunk
        prop_assert!(
            d.buffered_capacity() <= junk.len() + wire::READ_CHUNK + wire::HEADER_LEN,
            "decoder allocated {} bytes for {} bytes of junk",
            d.buffered_capacity(),
            junk.len()
        );
    }

    /// A truncated valid frame (cut anywhere before the end) is never
    /// reported complete.
    #[test]
    fn truncated_frames_stay_incomplete(
        n in 1usize..24,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = valid_frame(n, 3, 1);
        let cut = ((frame.len() - 1) as f64 * cut_frac) as usize;
        let mut d = FrameDecoder::new();
        let mut offset = 0;
        while offset < cut {
            let (used, complete) = d.feed(&frame[offset..cut]).expect("prefix of valid frame");
            prop_assert!(!complete, "incomplete frame reported complete at {cut}/{}", frame.len());
            offset += used;
        }
        prop_assert!(!d.is_complete());
    }
}
