//! Property tests for the wire codec: every `Request`/`Response` variant
//! must encode→decode bit-exactly — including NaN and ±inf floats, empty
//! payloads, and 10k-particle snapshots — and every encoded frame must be
//! exactly its modeled `wire_size()` long.

use jc_amuse::wire::{decode_request, decode_response, encode_request, encode_response};
use jc_amuse::worker::{ParticleData, Request, Response};
use jc_stellar::StellarEvent;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Any f64 bit pattern: NaNs (quiet, signalling, payloads), ±inf,
/// subnormals, -0.0 — the codec must not canonicalize any of them.
fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<u64>().prop_map(f64::from_bits),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0),
        Just(0.0),
        -1e9f64..1e9f64,
    ]
}

fn any_v3() -> impl Strategy<Value = [f64; 3]> {
    (any_f64(), any_f64(), any_f64()).prop_map(|(a, b, c)| [a, b, c])
}

fn any_request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stop),
        Just(Request::GetParticles),
        any_f64().prop_map(Request::EvolveTo),
        any_f64().prop_map(Request::EvolveStars),
        vec(any_f64(), 0..40).prop_map(Request::SetMasses),
        vec(any_v3(), 0..40).prop_map(Request::Kick),
        (vec(any_v3(), 0..20), vec((any_v3(), any_f64()), 0..20)).prop_map(|(targets, src)| {
            let (source_pos, source_mass) = src.into_iter().unzip();
            Request::ComputeKick { targets, source_pos, source_mass }
        }),
        (any_v3(), any_f64(), any_f64())
            .prop_map(|(center, radius, energy)| Request::InjectEnergy { center, radius, energy }),
        (any_v3(), any_f64(), any_f64()).prop_map(|(pos, mass, u)| Request::AddGas {
            pos,
            mass,
            u
        }),
    ]
    .boxed()
}

fn any_particles(max: usize) -> impl Strategy<Value = ParticleData> {
    (0..=max).prop_flat_map(|n| {
        (vec(any_f64(), n), vec(any_v3(), n), vec(any_v3(), n))
            .prop_map(|(mass, pos, vel)| ParticleData { mass, pos, vel })
    })
}

fn any_event() -> impl Strategy<Value = StellarEvent> {
    prop_oneof![
        (0usize..10_000, any_f64(), any_f64()).prop_map(|(star, ejected_mass, energy_foe)| {
            StellarEvent::Supernova { star, ejected_mass, energy_foe }
        }),
        (0usize..10_000, any_f64())
            .prop_map(|(star, mass)| StellarEvent::WindMassLoss { star, mass }),
    ]
}

fn any_response() -> BoxedStrategy<Response> {
    prop_oneof![
        any_f64().prop_map(|flops| Response::Ok { flops }),
        any_particles(30).prop_map(Response::Particles),
        (vec(any_v3(), 0..30), any_f64())
            .prop_map(|(acc, flops)| Response::Accelerations { acc, flops }),
        (vec(any_f64(), 0..30), vec(any_event(), 0..10))
            .prop_map(|(masses, events)| Response::StellarUpdate { masses, events }),
        Just(Response::Unsupported),
        vec(0u8..128, 0..60)
            .prop_map(|bytes| { Response::Error(String::from_utf8(bytes).expect("ascii")) }),
    ]
    .boxed()
}

// -- bit-exact structural equality (f64 compared through to_bits) ----------

fn f64_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn v3_eq(a: &[f64; 3], b: &[f64; 3]) -> bool {
    (0..3).all(|k| f64_eq(a[k], b[k]))
}

fn vf_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| f64_eq(*x, *y))
}

fn vv3_eq(a: &[[f64; 3]], b: &[[f64; 3]]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| v3_eq(x, y))
}

fn particles_eq(a: &ParticleData, b: &ParticleData) -> bool {
    vf_eq(&a.mass, &b.mass) && vv3_eq(&a.pos, &b.pos) && vv3_eq(&a.vel, &b.vel)
}

fn event_eq(a: &StellarEvent, b: &StellarEvent) -> bool {
    match (a, b) {
        (
            StellarEvent::Supernova { star: s1, ejected_mass: m1, energy_foe: e1 },
            StellarEvent::Supernova { star: s2, ejected_mass: m2, energy_foe: e2 },
        ) => s1 == s2 && f64_eq(*m1, *m2) && f64_eq(*e1, *e2),
        (
            StellarEvent::WindMassLoss { star: s1, mass: m1 },
            StellarEvent::WindMassLoss { star: s2, mass: m2 },
        ) => s1 == s2 && f64_eq(*m1, *m2),
        _ => false,
    }
}

fn request_eq(a: &Request, b: &Request) -> bool {
    match (a, b) {
        (Request::Ping, Request::Ping)
        | (Request::Stop, Request::Stop)
        | (Request::GetParticles, Request::GetParticles) => true,
        (Request::EvolveTo(x), Request::EvolveTo(y))
        | (Request::EvolveStars(x), Request::EvolveStars(y)) => f64_eq(*x, *y),
        (Request::SetMasses(x), Request::SetMasses(y)) => vf_eq(x, y),
        (Request::Kick(x), Request::Kick(y)) => vv3_eq(x, y),
        (
            Request::ComputeKick { targets: t1, source_pos: p1, source_mass: m1 },
            Request::ComputeKick { targets: t2, source_pos: p2, source_mass: m2 },
        ) => vv3_eq(t1, t2) && vv3_eq(p1, p2) && vf_eq(m1, m2),
        (
            Request::InjectEnergy { center: c1, radius: r1, energy: e1 },
            Request::InjectEnergy { center: c2, radius: r2, energy: e2 },
        ) => v3_eq(c1, c2) && f64_eq(*r1, *r2) && f64_eq(*e1, *e2),
        (
            Request::AddGas { pos: p1, mass: m1, u: u1 },
            Request::AddGas { pos: p2, mass: m2, u: u2 },
        ) => v3_eq(p1, p2) && f64_eq(*m1, *m2) && f64_eq(*u1, *u2),
        _ => false,
    }
}

fn response_eq(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (Response::Ok { flops: x }, Response::Ok { flops: y }) => f64_eq(*x, *y),
        (Response::Particles(x), Response::Particles(y)) => particles_eq(x, y),
        (
            Response::Accelerations { acc: a1, flops: f1 },
            Response::Accelerations { acc: a2, flops: f2 },
        ) => vv3_eq(a1, a2) && f64_eq(*f1, *f2),
        (
            Response::StellarUpdate { masses: m1, events: e1 },
            Response::StellarUpdate { masses: m2, events: e2 },
        ) => {
            vf_eq(m1, m2) && e1.len() == e2.len() && e1.iter().zip(e2).all(|(x, y)| event_eq(x, y))
        }
        (Response::Unsupported, Response::Unsupported) => true,
        (Response::Error(x), Response::Error(y)) => x == y,
        _ => false,
    }
}

proptest! {
    #[test]
    fn request_round_trips_bit_exactly(req in any_request()) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        prop_assert_eq!(buf.len() as u64, req.wire_size());
        let back = decode_request(&buf).expect("valid frame must decode");
        prop_assert!(request_eq(&req, &back), "round trip changed {:?}", req);
    }

    #[test]
    fn response_round_trips_bit_exactly(resp in any_response()) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        prop_assert_eq!(buf.len() as u64, resp.wire_size());
        let back = decode_response(&buf).expect("valid frame must decode");
        prop_assert!(response_eq(&resp, &back), "round trip changed {:?}", resp);
    }

    #[test]
    fn re_encoding_a_decoded_frame_is_identity(resp in any_response()) {
        let mut first = Vec::new();
        encode_response(&resp, &mut first);
        let decoded = decode_response(&first).unwrap();
        let mut second = Vec::new();
        encode_response(&decoded, &mut second);
        prop_assert!(first == second, "encode-decode-encode not idempotent");
    }
}

#[test]
fn ten_thousand_particle_snapshot_round_trips() {
    // the large-payload corner proptest's small sizes never reach,
    // seeded with adversarial floats at both ends
    let n = 10_000usize;
    let mut p = ParticleData {
        mass: (0..n).map(|i| i as f64 * 1e-4).collect(),
        pos: (0..n).map(|i| [i as f64, -(i as f64), 0.5 * i as f64]).collect(),
        vel: (0..n).map(|i| [1.0 / (i as f64 + 1.0); 3]).collect(),
    };
    p.mass[0] = f64::NAN;
    p.pos[0] = [f64::INFINITY, f64::NEG_INFINITY, -0.0];
    p.vel[n - 1] = [f64::from_bits(0x7FF0_0000_0000_0001), 5e-324, -5e-324]; // sNaN, subnormals
    let resp = Response::Particles(p);
    let mut buf = Vec::new();
    encode_response(&resp, &mut buf);
    assert_eq!(buf.len() as u64, resp.wire_size());
    assert_eq!(buf.len(), 32 + 56 * n);
    let back = decode_response(&buf).unwrap();
    assert!(response_eq(&resp, &back));
}

#[test]
fn empty_payload_variants_round_trip() {
    for req in [
        Request::SetMasses(Vec::new()),
        Request::Kick(Vec::new()),
        Request::ComputeKick {
            targets: Vec::new(),
            source_pos: Vec::new(),
            source_mass: Vec::new(),
        },
    ] {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(buf.len(), 32, "{req:?} must be header-only");
        assert!(request_eq(&req, &decode_request(&buf).unwrap()));
    }
    for resp in [
        Response::Particles(ParticleData::default()),
        Response::Accelerations { acc: Vec::new(), flops: 0.0 },
        Response::StellarUpdate { masses: Vec::new(), events: Vec::new() },
        Response::Error(String::new()),
    ] {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        assert_eq!(buf.len(), 32, "{resp:?} must be header-only");
        assert!(response_eq(&resp, &decode_response(&buf).unwrap()));
    }
}
