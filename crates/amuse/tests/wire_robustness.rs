//! Robustness tests for the wire layer: truncated frames, wrong magic or
//! version bytes, unknown opcodes, hostile length prefixes, and
//! inconsistent aux counts must all come back as a [`WireError`] — never
//! a panic, and never an allocation sized from attacker-controlled
//! numbers. The server must survive all of it and keep serving.

use jc_amuse::wire::{
    self, decode_request, decode_response, encode_request, encode_response, op, read_frame,
    WireError, HEADER_LEN, MAX_PAYLOAD,
};
use jc_amuse::worker::{GravityWorker, ParticleData, Request, Response};
use jc_amuse::{Channel, SocketChannel};
use jc_nbody::plummer::plummer_sphere;
use jc_nbody::Backend;
use proptest::prelude::*;
use std::io::{Cursor, Read, Write};

fn valid_request_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    encode_request(&Request::Kick(vec![[1.0, 2.0, 3.0]; 4]), &mut buf);
    buf
}

#[test]
fn every_truncation_of_a_valid_frame_errors_cleanly() {
    let frame = valid_request_frame();
    for cut in 0..frame.len() {
        let r = decode_request(&frame[..cut]);
        assert!(r.is_err(), "decode of {cut}-byte prefix must fail");
        // streamed reads fail too (EOF mid-frame or clean close at 0)
        let mut buf = Vec::new();
        let r = read_frame(&mut Cursor::new(&frame[..cut]), &mut buf);
        match r {
            Err(WireError::Closed) => assert_eq!(cut, 0, "Closed only before any bytes"),
            Err(WireError::Truncated { .. }) => {}
            other => panic!("cut={cut}: {other:?}"),
        }
    }
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let mut frame = valid_request_frame();
    frame[0] ^= 0xFF;
    assert!(matches!(decode_request(&frame), Err(WireError::BadMagic(_))));

    let mut frame = valid_request_frame();
    frame[4] = 99; // version byte
    assert_eq!(decode_request(&frame).unwrap_err(), WireError::BadVersion(99));
}

#[test]
fn unknown_opcodes_are_rejected() {
    let mut frame = valid_request_frame();
    frame[5] = 0x77;
    assert_eq!(decode_request(&frame).unwrap_err(), WireError::UnknownOpcode(0x77));
    // a request opcode is not a valid response and vice versa
    let mut buf = Vec::new();
    encode_response(&Response::Ok { flops: 1.0 }, &mut buf);
    assert_eq!(decode_request(&buf).unwrap_err(), WireError::UnknownOpcode(op::RESP_OK));
    assert_eq!(
        decode_response(&valid_request_frame()).unwrap_err(),
        WireError::UnknownOpcode(op::KICK)
    );
}

#[test]
fn oversized_length_prefix_errors_before_allocating() {
    for hostile_len in [MAX_PAYLOAD + 1, u64::MAX, u64::MAX / 2] {
        let mut frame = valid_request_frame();
        frame[8..16].copy_from_slice(&hostile_len.to_le_bytes());
        assert_eq!(decode_request(&frame).unwrap_err(), WireError::Oversized(hostile_len));

        // the streaming reader must reject from the header alone: the
        // receive buffer never grows towards the hostile length
        let mut buf = Vec::new();
        let r = read_frame(&mut Cursor::new(&frame), &mut buf);
        assert_eq!(r, Err(WireError::Oversized(hostile_len)));
        assert!(
            buf.capacity() <= HEADER_LEN + 4096,
            "buffer sized from a hostile length prefix: {}",
            buf.capacity()
        );
    }
}

#[test]
fn stalled_peer_with_maximum_length_prefix_pins_only_one_chunk() {
    // a header that legally declares MAX_PAYLOAD and then stalls (here:
    // EOF) must not make the reader allocate the full 256 MiB — the
    // scratch grows only one READ_CHUNK past what actually arrived
    let mut frame = valid_request_frame();
    frame.truncate(HEADER_LEN);
    frame[5] = op::KICK;
    frame[8..16].copy_from_slice(&wire::MAX_PAYLOAD.to_le_bytes());
    frame[16..24].copy_from_slice(&(wire::MAX_PAYLOAD / 24).to_le_bytes());
    let mut buf = Vec::new();
    let r = read_frame(&mut Cursor::new(&frame), &mut buf);
    assert!(matches!(r, Err(WireError::Truncated { .. })), "{r:?}");
    assert!(
        buf.capacity() <= HEADER_LEN + 2 * wire::READ_CHUNK,
        "stalled peer pinned {} bytes",
        buf.capacity()
    );
}

#[test]
fn inconsistent_aux_counts_are_rejected() {
    // ComputeKick whose aux counts do not add up to the payload length
    let mut buf = Vec::new();
    encode_request(
        &Request::ComputeKick {
            targets: vec![[0.0; 3]; 2],
            source_pos: vec![[0.0; 3]; 3],
            source_mass: vec![1.0; 3],
        },
        &mut buf,
    );
    buf[16..24].copy_from_slice(&100u64.to_le_bytes()); // lie about target count
    assert!(matches!(decode_request(&buf), Err(WireError::BadLength { .. })));

    // Particles whose count disagrees with the payload
    let mut buf = Vec::new();
    encode_response(
        &Response::Particles(ParticleData {
            mass: vec![1.0; 3],
            pos: vec![[0.0; 3]; 3],
            vel: vec![[0.0; 3]; 3],
        }),
        &mut buf,
    );
    buf[16..24].copy_from_slice(&4u64.to_le_bytes());
    assert!(matches!(decode_response(&buf), Err(WireError::BadLength { .. })));

    // count × stride overflow must not wrap around into "consistent"
    let mut buf = Vec::new();
    encode_request(&Request::Kick(Vec::new()), &mut buf);
    buf[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(decode_request(&buf), Err(WireError::BadLength { .. })));
}

#[test]
fn unknown_stellar_event_kind_is_rejected() {
    let mut buf = Vec::new();
    encode_response(
        &Response::StellarUpdate {
            masses: vec![1.0],
            events: vec![jc_stellar::StellarEvent::WindMassLoss { star: 0, mass: 0.1 }],
        },
        &mut buf,
    );
    // event kind tag lives right after the 1-mass payload
    let kind_off = HEADER_LEN + 8;
    buf[kind_off..kind_off + 8].copy_from_slice(&7u64.to_le_bytes());
    assert_eq!(decode_response(&buf).unwrap_err(), WireError::BadEventKind(7));
}

#[test]
fn non_utf8_error_payload_is_rejected() {
    let mut buf = Vec::new();
    encode_response(&Response::Error("ab".into()), &mut buf);
    buf[HEADER_LEN] = 0xFF;
    buf[HEADER_LEN + 1] = 0xFE;
    assert_eq!(decode_response(&buf).unwrap_err(), WireError::Utf8);
}

proptest! {
    /// No byte soup of any length makes the decoders panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let mut buf = Vec::new();
        let _ = read_frame(&mut Cursor::new(&bytes), &mut buf);
    }

    /// Single-byte corruption of a valid frame either still decodes (the
    /// flipped byte was payload data) or errors cleanly — never panics.
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..128, flip in 1u8..255) {
        let mut frame = valid_request_frame();
        let pos = pos % frame.len();
        frame[pos] ^= flip;
        let _ = decode_request(&frame);
        let _ = decode_response(&frame);
    }
}

/// A server fed hostile bytes must answer with a protocol-error frame
/// (or close), stay alive for the next connection, and never panic.
#[test]
fn server_rejects_hostile_frames_and_keeps_serving() {
    let (addr, handle) = jc_amuse::spawn_tcp_worker("grav", || {
        GravityWorker::new(plummer_sphere(4, 1), Backend::Scalar)
    });

    // 1: truncated header, then hang up
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(&[0xAA; 7]).unwrap();
        let _ = raw.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink); // server closes, maybe after an error frame
    }

    // 2: good magic/version but hostile length prefix — expect an Error
    // response frame back, then the connection drops
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        let mut frame = Vec::new();
        wire::encode_request(&Request::Ping, &mut frame);
        frame[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        raw.write_all(&frame).unwrap();
        let mut rbuf = Vec::new();
        wire::read_frame(&mut raw, &mut rbuf).expect("server should reply before closing");
        match wire::decode_response(&rbuf).unwrap() {
            Response::Error(e) => assert!(e.contains("protocol error"), "{e}"),
            other => panic!("{other:?}"),
        }
    }

    // 3: a well-behaved client is still served
    let mut c = SocketChannel::connect(addr, "grav").unwrap();
    assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
    drop(c); // sends Stop
    handle.join().unwrap().unwrap();
}
