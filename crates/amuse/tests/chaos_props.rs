//! Property tests for the chaos layer.
//!
//! Two contracts: (1) a [`FaultPlan`] is a pure function of its seed —
//! every query (schedule, per-stream faults, crash fuses, truncation
//! point, victim selection) replays identically, which is what makes a
//! failing soak seed reproducible; (2) a transient-fault schedule
//! injected into a live K-shard TCP pool is *absorbed*: the gathered
//! final state is bitwise-identical across K = 1, 2, 3 and to a
//! fault-free run, with every fault healed by the in-place
//! sequence-numbered resend (no restore, no supervisor).

use jc_amuse::channel::Channel;
use jc_amuse::chaos::{FaultPlan, RetryPolicy};
use jc_amuse::checkpoint::ModelState;
use jc_amuse::reactor::{Reactor, ReactorChannel};
use jc_amuse::shard::ShardedChannel;
use jc_amuse::socket::spawn_tcp_worker;
use jc_amuse::worker::{GravityWorker, Request, Response};
use jc_amuse::SocketChannel;
use jc_nbody::plummer::plummer_sphere;
use jc_nbody::Backend;
use proptest::prelude::*;

proptest! {
    #[test]
    fn equal_seeds_derive_identical_fault_sequences(seed in any::<u64>(), streams in 1usize..6) {
        let a = FaultPlan::seeded(seed);
        let b = FaultPlan::seeded(seed);
        prop_assert_eq!(a.schedule(streams), b.schedule(streams));
        for i in 0..streams {
            prop_assert_eq!(
                format!("{:?}", a.stream_faults(streams, i)),
                format!("{:?}", b.stream_faults(streams, i))
            );
            prop_assert_eq!(a.crash_fuse(streams, i), b.crash_fuse(streams, i));
        }
        prop_assert_eq!(a.checkpoint_truncation(streams), b.checkpoint_truncation(streams));
        for round in 0..4u64 {
            prop_assert_eq!(a.victim(round, streams), b.victim(round, streams));
        }
    }

    #[test]
    fn backoff_is_a_pure_bounded_function_of_policy_and_attempt(
        seed in any::<u64>(),
        attempt in 1u32..12,
    ) {
        let p = RetryPolicy::standard(seed);
        let d = p.backoff(attempt);
        prop_assert_eq!(d, p.backoff(attempt)); // same attempt, same delay
        let cap = p.backoff_max_ms + p.backoff_base_ms + 1;
        prop_assert!(d.as_millis() as u64 <= cap, "{d:?} exceeds the {cap} ms ceiling");
    }
}

/// The state's f64 columns as raw bit patterns — bitwise comparison,
/// immune to NaN != NaN and -0.0 == 0.0.
fn state_bits(s: &ModelState) -> Vec<u64> {
    let ModelState::Gravity { time, mass, pos, vel } = s else {
        panic!("gravity state expected, got {}", s.kind());
    };
    let mut out = vec![time.to_bits()];
    out.extend(mass.iter().map(|m| m.to_bits()));
    for p in pos {
        out.extend(p.iter().map(|x| x.to_bits()));
    }
    for v in vel {
        out.extend(v.iter().map(|x| x.to_bits()));
    }
    out
}

/// Scatter a Plummer sphere over a K-shard TCP gravity pool, mutate it
/// (kicks, new masses), heartbeat it, and gather the final state. With
/// `chaos`, the seed's transport faults are injected into every shard
/// channel (crash fuses are out of scope here — this pool has no
/// supervisor, so only the in-place retry tier may fire). With
/// `reactor`, the pool runs over event-driven [`ReactorChannel`]s on
/// one shared [`Reactor`] instead of blocking [`SocketChannel`]s — the
/// same seeded schedule must be absorbed identically on both.
fn pooled_final_state(seed: u64, k: usize, n: usize, chaos: bool, reactor: bool) -> Vec<u64> {
    let plan = FaultPlan::seeded(seed);
    let retry =
        RetryPolicy { backoff_base_ms: 1, backoff_max_ms: 8, ..RetryPolicy::standard(seed) };
    let shared = Reactor::new_shared().expect("reactor");
    let mut handles = Vec::new();
    let shards: Vec<Box<dyn Channel>> = (0..k)
        .map(|i| {
            let (addr, h) = spawn_tcp_worker(format!("g{i}"), || {
                GravityWorker::new(plummer_sphere(1, 99), Backend::Scalar)
            });
            handles.push(h);
            if reactor {
                let mut ch =
                    ReactorChannel::connect(&shared, addr, format!("g{i}")).expect("connect shard");
                if chaos {
                    ch = ch.with_retry(retry).with_chaos(plan.stream_faults(k, i));
                }
                Box::new(ch) as Box<dyn Channel>
            } else {
                let mut ch = SocketChannel::connect(addr, format!("g{i}")).expect("connect shard");
                if chaos {
                    ch = ch.with_retry(retry).with_chaos(plan.stream_faults(k, i));
                }
                Box::new(ch) as Box<dyn Channel>
            }
        })
        .collect();
    let mut pool = ShardedChannel::with_counts(shards, vec![1; k]);

    let full = plummer_sphere(n, 7);
    let state = ModelState::Gravity {
        time: 0.0,
        mass: full.mass.clone(),
        pos: full.pos.clone(),
        vel: full.vel.clone(),
    };
    let ok = |r: Response| matches!(r, Response::Ok { .. });
    assert!(ok(pool.call(Request::LoadState(state))), "scatter");
    let kick1: Vec<[f64; 3]> =
        (0..n).map(|i| [1e-3 * i as f64, -2e-3, 5e-4 * (i % 3) as f64]).collect();
    assert!(ok(pool.call(Request::Kick(kick1))), "kick 1");
    let masses: Vec<f64> = (0..n).map(|i| 1.0 / n as f64 + 1e-6 * i as f64).collect();
    assert!(ok(pool.call(Request::SetMasses(masses))), "set masses");
    let kick2: Vec<[f64; 3]> = (0..n).map(|i| [-5e-4, 1e-3 * (i % 2) as f64, 2e-3]).collect();
    assert!(ok(pool.call(Request::Kick(kick2))), "kick 2");
    assert!(pool.heartbeat().iter().all(|&alive| alive), "heartbeat 1");
    assert!(pool.heartbeat().iter().all(|&alive| alive), "heartbeat 2");
    let Response::State(s) = pool.call(Request::SaveState) else { panic!("gather") };

    drop(pool); // Stop frames shut the servers down
    for h in handles {
        h.join().expect("server thread").expect("server exits cleanly");
    }
    state_bits(&s)
}

proptest! {
    // Each case spins up 1+2+3 chaos pools per transport plus a
    // fault-free reference over real TCP — keep the case count small;
    // the 32-seed soak in tests/chaos.rs carries the breadth.
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn recovered_results_are_bitwise_identical_across_shard_counts(
        seed in any::<u64>(),
        n in 6usize..12,
    ) {
        let reference = pooled_final_state(seed, 1, n, false, false);
        for k in 1..=3usize {
            for reactor in [false, true] {
                let chaotic = pooled_final_state(seed, k, n, true, reactor);
                prop_assert!(
                    chaotic == reference,
                    "JC_CHAOS_SEED={} diverged at k={} reactor={}", seed, k, reactor
                );
            }
        }
    }
}
