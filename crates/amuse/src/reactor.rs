//! The event-driven coupler core: one readiness-driven loop owning all
//! shard sockets.
//!
//! The blocking [`crate::SocketChannel`] drives each worker lock-step:
//! write a frame, sleep in `read`, repeat — K shards cost K serialized
//! round trips. This module replaces the transport underneath with a
//! single-threaded reactor ([`Reactor`]): every shard socket is
//! registered non-blocking under a connection token, a `poll(2)`-backed
//! poller (the `polling` shim) reports readiness, and per-connection
//! state machines make incremental progress — partial writes resume
//! from where they stopped, partial reads accumulate in an incremental
//! frame decoder ([`FrameDecoder`]) until a full v2 wire frame is
//! available. [`ReactorChannel`] keeps the exact [`Channel`] surface
//! (and byte accounting) of the blocking channel, so the bridge, the
//! sharded pool, checkpointing, and the chaos layer run unchanged on
//! top of it.
//!
//! # Pipelining
//!
//! Because all connections live in one loop, *gathering one shard's
//! reply advances every other shard's I/O too*: a fan-out of K requests
//! followed by K collects overlaps all K round trips regardless of
//! collect order. On a single connection, requests submitted
//! back-to-back are coalesced into one vectored write (one syscall, one
//! wakeup at the peer) and their replies are decoded in order from
//! whatever byte boundaries the kernel delivers. Queue depth > 1 on one
//! connection is allowed only with retry and chaos disabled: the
//! server's dedup cache remembers only the *last* mutating frame, so a
//! reconnect-and-resend of two in-flight mutations could double-apply
//! the first one. Depth-1 per connection (what [`crate::ShardedChannel`]
//! uses — the fan-out is *across* connections) keeps the full
//! retry/backoff/heal machinery of the blocking path.
//!
//! # Equivalence with the blocking path
//!
//! [`ReactorChannel`] mirrors [`crate::SocketChannel`] observable
//! behavior exactly: the same sequence stamping, the same
//! [`crate::chaos::StreamFaults`] consumption points (one write draw
//! per send attempt, one read draw per receive attempt, one refusal
//! draw per reconnect), the same poison/retry/backoff state machine,
//! and the same [`ChannelStats`] byte accounting. Timeouts come from
//! bounding the poller wait with `JC_NET_TIMEOUT_MS` instead of
//! `SO_RCVTIMEO` — a silent peer surfaces as the same transient
//! `Io(TimedOut)`. `tests/reactor_equivalence.rs` pins full bridge runs
//! over both transports to bitwise-identical results, and the chaos
//! suites drive the same seeded fault schedules through both.

use crate::channel::{Channel, ChannelStats};
use crate::chaos::{IoFault, RetryPolicy, StreamFaults};
use crate::socket::net_timeout;
use crate::wire::{self, WireError, HEADER_LEN, READ_CHUNK};
use crate::worker::{ParticleData, Request, Response};
use polling::{Event, Events, Poller};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::rc::Rc;
use std::time::Duration;

// --------------------------------------------------------------------------
// incremental frame decoder

/// Incremental decoder for one v2 wire frame: feed bytes in whatever
/// pieces the transport delivers (1-byte reads, header/payload
/// straddles, several frames per read) and get exactly the frame
/// [`wire::read_frame`] would have produced.
///
/// The contract mirrors `read_frame` point for point: the header is
/// validated (magic, version, length cap) the moment its 32nd byte
/// arrives and *before* any payload allocation; the scratch buffer then
/// grows in [`READ_CHUNK`] steps only as payload bytes actually arrive,
/// so a hostile length prefix pins at most one chunk beyond what the
/// peer really sent. The buffer is monotone scratch — bytes past the
/// completed frame's length are stale and must be ignored.
///
/// A decoder never consumes past the end of the current frame, so the
/// caller can hand it a buffer containing several concatenated frames
/// and loop: [`FrameDecoder::feed`] reports how many bytes it took and
/// whether the frame completed.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    filled: usize,
    /// Header + payload size, known once the header is parsed.
    total: Option<usize>,
    /// Chaos hook: flip the first byte of the next frame as it arrives
    /// (the wire-visible signature of a corrupted header — see
    /// [`crate::chaos::IoFault::CorruptHeader`]).
    corrupt_next: bool,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Bytes of the current (possibly incomplete) frame accumulated so
    /// far.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Is a complete frame buffered and ready to take?
    pub fn is_complete(&self) -> bool {
        self.total.is_some_and(|t| self.filled >= t)
    }

    /// The accumulated frame bytes (`..filled()`). Only a full frame
    /// ([`FrameDecoder::is_complete`]) is decodable.
    pub fn frame(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    /// Capacity of the internal accumulation buffer — what a hostile
    /// length prefix would have to inflate to count as over-allocation
    /// (growth is bounded by bytes actually received plus one
    /// [`wire::READ_CHUNK`]).
    pub fn buffered_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Forget the current frame (scratch capacity is kept).
    pub fn reset(&mut self) {
        self.filled = 0;
        self.total = None;
        self.corrupt_next = false;
    }

    /// Chaos hook: corrupt the first byte of the next frame at the
    /// moment it arrives, as [`crate::chaos::ChaosStream`] does on the
    /// blocking path. If header bytes already arrived, they are
    /// corrupted retroactively (the flip would have landed on them);
    /// if the header was already *validated*, the resulting error is
    /// returned so the caller can surface it.
    pub fn corrupt_in_place(&mut self) -> Option<WireError> {
        if self.filled == 0 {
            self.corrupt_next = true;
            return None;
        }
        self.buf[0] ^= 0x01;
        if self.filled >= HEADER_LEN {
            // the header had already passed validation; re-validate the
            // now-corrupt bytes to produce the error the blocking
            // decoder would have reported
            self.total = None;
            return Some(
                wire::parse_header(&self.buf[..HEADER_LEN]).err().unwrap_or(WireError::BadMagic(0)),
            );
        }
        None
    }

    /// Swap the internal scratch with `other` and reset. Lets a caller
    /// take a completed frame without copying while recycling its old
    /// buffer as the next frame's scratch.
    pub fn swap_into(&mut self, other: &mut Vec<u8>) {
        std::mem::swap(&mut self.buf, other);
        self.reset();
    }

    /// Feed a slice of transport bytes. Returns `(consumed, complete)`:
    /// how many bytes were taken (never past the end of the current
    /// frame) and whether the frame is now complete. Validation errors
    /// are exactly [`wire::read_frame`]'s.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(usize, bool), WireError> {
        let mut consumed = 0usize;
        loop {
            if self.filled < HEADER_LEN {
                let want = HEADER_LEN - self.filled;
                let take = want.min(bytes.len() - consumed);
                if take == 0 {
                    return Ok((consumed, false));
                }
                if self.buf.len() < HEADER_LEN {
                    self.buf.resize(HEADER_LEN, 0);
                }
                self.buf[self.filled..self.filled + take]
                    .copy_from_slice(&bytes[consumed..consumed + take]);
                let first = self.filled == 0;
                self.filled += take;
                consumed += take;
                if first && self.corrupt_next {
                    self.buf[0] ^= 0x01;
                    self.corrupt_next = false;
                }
                if self.filled < HEADER_LEN {
                    return Ok((consumed, false));
                }
                let h = wire::parse_header(&self.buf[..HEADER_LEN])?;
                self.total = Some(HEADER_LEN + h.len as usize);
            }
            let total = self.total.expect("header parsed");
            if self.filled >= total {
                return Ok((consumed, true));
            }
            let take = (total - self.filled).min(bytes.len() - consumed);
            if take == 0 {
                return Ok((consumed, false));
            }
            // grow towards `total` only as bytes actually arrive — the
            // same hostile-length bound as read_frame
            let end = total.min(self.filled + take).max(self.buf.len().min(total));
            if self.buf.len() < end {
                self.buf.resize(end, 0);
            }
            self.buf[self.filled..self.filled + take]
                .copy_from_slice(&bytes[consumed..consumed + take]);
            self.filled += take;
            consumed += take;
            if self.filled == total {
                return Ok((consumed, true));
            }
        }
    }

    /// Pump the decoder from a (typically non-blocking) reader until
    /// the frame completes (`Ok(Some(len))`), the reader has no bytes
    /// right now (`Ok(None)` on `WouldBlock`), or the stream fails with
    /// exactly the errors [`wire::read_frame`] reports: EOF between
    /// frames is [`WireError::Closed`], EOF mid-frame is
    /// [`WireError::Truncated`]. Never reads past the end of the
    /// current frame, so pipelined responses stay aligned.
    pub fn read_from(&mut self, r: &mut impl Read) -> Result<Option<usize>, WireError> {
        loop {
            if let Some(total) = self.total {
                if self.filled >= total {
                    return Ok(Some(total));
                }
            }
            let (start, end) = if self.filled < HEADER_LEN {
                if self.buf.len() < HEADER_LEN {
                    self.buf.resize(HEADER_LEN, 0);
                }
                (self.filled, HEADER_LEN)
            } else {
                let total = self.total.expect("header parsed");
                // grow in READ_CHUNK steps as bytes arrive, like
                // read_frame's payload loop
                let end = total.min(self.filled + READ_CHUNK).max(self.buf.len().min(total));
                if self.buf.len() < end {
                    self.buf.resize(end, 0);
                }
                (self.filled, end)
            };
            match r.read(&mut self.buf[start..end]) {
                Ok(0) => {
                    return Err(if self.filled == 0 {
                        WireError::Closed
                    } else if self.filled < HEADER_LEN {
                        WireError::Truncated { expected: HEADER_LEN, got: self.filled }
                    } else {
                        WireError::Truncated {
                            expected: self.total.expect("header parsed"),
                            got: self.filled,
                        }
                    });
                }
                Ok(n) => {
                    let first = self.filled == 0;
                    self.filled += n;
                    if first && self.corrupt_next {
                        self.buf[0] ^= 0x01;
                        self.corrupt_next = false;
                    }
                    if self.total.is_none() && self.filled >= HEADER_LEN {
                        let h = wire::parse_header(&self.buf[..HEADER_LEN])?;
                        self.total = Some(HEADER_LEN + h.len as usize);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(WireError::Io(e.kind())),
            }
        }
    }
}

// --------------------------------------------------------------------------
// the reactor

/// Whether a connection's queued writes have fully left.
enum FlushState {
    /// Frames (or frame tails) still queued.
    Pending,
    /// Everything queued has been written.
    Done,
    /// A write failed; the error is sticky until reconnect.
    Failed(WireError),
}

/// Per-connection state machine: a non-blocking stream, a write queue
/// with a resume offset (partial writes continue where they stopped),
/// an incremental decoder, and a one-deep completed-response slot
/// (reading pauses while it is occupied — natural backpressure).
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Frames queued to write; the front is written up to `out_pos`.
    outq: VecDeque<Vec<u8>>,
    out_pos: usize,
    /// First write failure (sticky until reconnect/resend).
    write_err: Option<WireError>,
    /// The most recent fully-written (or fault-stashed) frame, retained
    /// so a depth-1 retry can resend the identical bytes.
    last_frame: Vec<u8>,
    /// A completed response: its byte count, or the read error.
    ready: Option<Result<u64, WireError>>,
    /// The completed response's bytes (leading `ready` length is live).
    resp: Vec<u8>,
    /// Recycled frame buffers for future sends.
    spare: Vec<Vec<u8>>,
    /// Deterministic fault injection for this connection, if any.
    faults: Option<StreamFaults>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            outq: VecDeque::new(),
            out_pos: 0,
            write_err: None,
            last_frame: Vec::new(),
            ready: None,
            resp: Vec::new(),
            spare: Vec::new(),
            faults: None,
        }
    }
}

/// What [`Reactor::take_conn`] hands back for channel teardown.
struct TornDown {
    stream: TcpStream,
    /// Unwritten queued bytes (the front frame's tail first).
    tail: Vec<u8>,
    /// A completed response was sitting in the ready slot.
    had_ready: bool,
    /// The connection's writes had failed.
    write_failed: bool,
}

/// The single-threaded event loop owning every registered connection.
///
/// Channels share one reactor behind `Rc<RefCell<..>>`
/// ([`Reactor::new_shared`]); each [`ReactorChannel`] holds a token
/// into the connection table and drives the loop from its blocking
/// entry points (`collect`, the fast paths). Driving the loop for one
/// channel advances *all* connections — that is where scatter-gather
/// overlap comes from.
pub struct Reactor {
    poller: Poller,
    events: Events,
    /// Scratch for dispatching events without holding the `events`
    /// borrow across connection mutation.
    scratch: Vec<Event>,
    conns: Vec<Option<Conn>>,
}

impl Reactor {
    /// Create an empty reactor.
    pub fn new() -> std::io::Result<Reactor> {
        Ok(Reactor {
            poller: Poller::new()?,
            events: Events::new(),
            scratch: Vec::new(),
            conns: Vec::new(),
        })
    }

    /// Create a reactor behind the shared handle [`ReactorChannel`]s
    /// take.
    pub fn new_shared() -> std::io::Result<Rc<RefCell<Reactor>>> {
        Ok(Rc::new(RefCell::new(Reactor::new()?)))
    }

    /// Live connections (registered and not torn down).
    pub fn connections(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn conn(&mut self, token: usize) -> &mut Conn {
        self.conns[token].as_mut().expect("live reactor connection")
    }

    /// Register a connected stream; returns its token.
    fn register(&mut self, stream: TcpStream) -> std::io::Result<usize> {
        stream.set_nonblocking(true)?;
        let token = self.conns.iter().position(|c| c.is_none()).unwrap_or(self.conns.len());
        self.poller.add(&stream, polling::Event::none(token))?;
        let conn = Conn::new(stream);
        if token == self.conns.len() {
            self.conns.push(Some(conn));
        } else {
            self.conns[token] = Some(conn);
        }
        Ok(token)
    }

    /// Swap in a freshly-dialed stream after a reconnect: all transport
    /// state is reset; chaos state and recycled buffers survive.
    fn replace_stream(&mut self, token: usize, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(true)?;
        {
            let poller = &self.poller;
            let conn = self.conns[token].as_mut().expect("live connection");
            let _ = poller.delete(&conn.stream);
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.poller.add(&stream, polling::Event::none(token))?;
        let conn = self.conn(token);
        conn.stream = stream;
        conn.decoder.reset();
        while let Some(f) = conn.outq.pop_front() {
            conn.spare.push(f);
        }
        conn.out_pos = 0;
        conn.write_err = None;
        conn.ready = None;
        Ok(())
    }

    /// Deregister and dismantle a connection for channel teardown.
    fn take_conn(&mut self, token: usize) -> Option<TornDown> {
        let conn = self.conns.get_mut(token)?.take()?;
        let _ = self.poller.delete(&conn.stream);
        let mut tail = Vec::new();
        for (i, f) in conn.outq.iter().enumerate() {
            tail.extend_from_slice(if i == 0 { &f[conn.out_pos..] } else { f });
        }
        Some(TornDown {
            stream: conn.stream,
            tail,
            had_ready: matches!(conn.ready, Some(Ok(_))),
            write_failed: conn.write_err.is_some(),
        })
    }

    /// A recycled (or fresh) buffer to encode the next frame into.
    fn take_buf(&mut self, token: usize) -> Vec<u8> {
        self.conn(token).spare.pop().unwrap_or_default()
    }

    /// Queue `frame` for writing. The bytes leave lazily — at the next
    /// [`Reactor::flush_all`] (every channel wait starts with one) or
    /// writable event — so a pipelined burst submitted back-to-back on
    /// one connection coalesces into a single vectored write, and the
    /// server is woken once with the whole burst already in its receive
    /// buffer instead of once per frame.
    fn enqueue(&mut self, token: usize, frame: Vec<u8>) {
        self.conn(token).outq.push_back(frame);
    }

    /// Opportunistically push every connection's queued request bytes.
    /// Called on entry to a channel's wait loop: by then the caller has
    /// submitted everything it is going to submit before blocking, so
    /// this is the coalescing point for lazily [`Reactor::enqueue`]d
    /// frames — including those of *other* channels sharing the
    /// reactor, which keeps a scatter-gather fan-out's requests leaving
    /// before the first gather blocks.
    fn flush_all(&mut self) {
        for token in 0..self.conns.len() {
            let live = self
                .conns
                .get(token)
                .is_some_and(|s| s.as_ref().is_some_and(|c| !c.outq.is_empty()));
            if live {
                self.try_flush(token);
            }
        }
    }

    /// Retain `frame` as the connection's resend frame without sending
    /// it (the submit was suppressed: channel poisoned or a write fault
    /// consumed the attempt).
    fn stash(&mut self, token: usize, frame: Vec<u8>) {
        let conn = self.conn(token);
        let old = std::mem::replace(&mut conn.last_frame, frame);
        if !old.is_empty() {
            conn.spare.push(old);
        }
    }

    /// Chaos `PartialWrite`: half the frame leaves, then the connection
    /// is declared broken — exactly the blocking `ChaosStream` torn
    /// write.
    fn partial_write(&mut self, token: usize, frame: Vec<u8>) {
        let conn = self.conn(token);
        let half = frame.len() / 2;
        if half > 0 {
            let _ = conn.stream.write(&frame[..half]);
        }
        conn.write_err = Some(WireError::Io(std::io::ErrorKind::BrokenPipe));
        self.stash(token, frame);
    }

    /// Mark a synthesized whole-frame write fault (chaos
    /// `WriteTimeout`): nothing leaves, the queued state fails.
    fn fail_write(&mut self, token: usize, frame: Vec<u8>, err: WireError) {
        self.conn(token).write_err = Some(err);
        self.stash(token, frame);
    }

    /// Re-queue the retained frame for a retry resend on a (fresh)
    /// connection.
    fn resend_last(&mut self, token: usize) {
        let conn = self.conn(token);
        let frame = std::mem::take(&mut conn.last_frame);
        debug_assert!(!frame.is_empty(), "a retry always has a retained frame");
        conn.outq.push_back(frame);
        self.try_flush(token);
    }

    /// Non-blocking vectored flush: write as much of the queue as the
    /// socket accepts, coalescing queued frames into one syscall.
    fn try_flush(&mut self, token: usize) {
        let conn = self.conn(token);
        if conn.write_err.is_some() {
            return;
        }
        while !conn.outq.is_empty() {
            let wrote = if conn.outq.len() == 1 {
                conn.stream.write(&conn.outq[0][conn.out_pos..])
            } else {
                let slices: Vec<IoSlice<'_>> = conn
                    .outq
                    .iter()
                    .enumerate()
                    .map(|(i, f)| IoSlice::new(if i == 0 { &f[conn.out_pos..] } else { f }))
                    .collect();
                conn.stream.write_vectored(&slices)
            };
            match wrote {
                Ok(mut n) => {
                    while n > 0 {
                        let front_left = conn.outq[0].len() - conn.out_pos;
                        if n >= front_left {
                            n -= front_left;
                            conn.out_pos = 0;
                            let done = conn.outq.pop_front().expect("front exists");
                            let old = std::mem::replace(&mut conn.last_frame, done);
                            if !old.is_empty() {
                                conn.spare.push(old);
                            }
                        } else {
                            conn.out_pos += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) => {
                    conn.write_err = Some(WireError::Io(e.kind()));
                    return;
                }
            }
        }
    }

    fn flush_state(&mut self, token: usize) -> FlushState {
        let conn = self.conn(token);
        if let Some(e) = &conn.write_err {
            FlushState::Failed(e.clone())
        } else if conn.outq.is_empty() {
            FlushState::Done
        } else {
            FlushState::Pending
        }
    }

    /// Pump one connection's reads until a frame completes, the kernel
    /// runs dry, or the stream errors. Paused while a completed
    /// response waits in the ready slot (backpressure keeps pipelined
    /// replies aligned).
    fn drive_read(&mut self, token: usize) {
        let Some(Some(conn)) = self.conns.get_mut(token) else { return };
        if conn.ready.is_some() {
            return;
        }
        match conn.decoder.read_from(&mut conn.stream) {
            Ok(Some(total)) => {
                conn.decoder.swap_into(&mut conn.resp);
                conn.ready = Some(Ok(total as u64));
            }
            Ok(None) => {}
            Err(e) => conn.ready = Some(Err(e)),
        }
    }

    /// Take a connection's completed response (length or read error).
    fn take_ready(&mut self, token: usize) -> Option<Result<u64, WireError>> {
        self.conn(token).ready.take()
    }

    /// The bytes of the response last surfaced by
    /// [`Reactor::take_ready`] (leading frame is live, tail is stale
    /// scratch).
    fn resp(&self, token: usize) -> &[u8] {
        &self.conns[token].as_ref().expect("live reactor connection").resp
    }

    /// One readiness round: restate every connection's interest
    /// (level-triggered), wait up to `timeout`, dispatch reads and
    /// writes. `Ok(false)` means a genuine timeout — zero events.
    fn drive(&mut self, timeout: Duration) -> std::io::Result<bool> {
        for (key, slot) in self.conns.iter().enumerate() {
            if let Some(c) = slot {
                let ev = Event {
                    key,
                    readable: c.ready.is_none(),
                    writable: !c.outq.is_empty() && c.write_err.is_none(),
                };
                let _ = self.poller.modify(&c.stream, ev);
            }
        }
        let n = self.poller.wait(&mut self.events, Some(timeout))?;
        let mut evs = std::mem::take(&mut self.scratch);
        evs.clear();
        evs.extend(self.events.iter());
        for ev in &evs {
            if ev.writable {
                self.try_flush(ev.key);
            }
            if ev.readable {
                self.drive_read(ev.key);
            }
        }
        self.scratch = evs;
        Ok(n > 0)
    }

    // ---- chaos draws, at the same frame-op boundaries as the blocking
    // channel ----

    fn consume_write_fault(&mut self, token: usize) -> Option<IoFault> {
        self.conn(token).faults.as_mut()?.next_write()
    }

    fn consume_read_fault(&mut self, token: usize) -> Option<IoFault> {
        self.conn(token).faults.as_mut()?.next_read()
    }

    fn connect_refused(&mut self, token: usize) -> bool {
        self.conn(token).faults.as_mut().is_some_and(|f| f.next_connect_refused())
    }

    fn set_faults(&mut self, token: usize, faults: StreamFaults) {
        self.conn(token).faults = Some(faults);
    }

    /// Chaos `CorruptHeader` for a receive attempt: corrupt whatever of
    /// the response has arrived (or arm the decoder for its first
    /// byte). If the response already completed into the ready slot,
    /// the corruption is applied there — the error the blocking path
    /// would have decoded replaces the clean result.
    fn corrupt_response(&mut self, token: usize) {
        let conn = self.conn(token);
        if let Some(Ok(_)) = conn.ready {
            conn.resp[0] ^= 0x01;
            let err = wire::parse_header(&conn.resp[..HEADER_LEN.min(conn.resp.len())])
                .err()
                .unwrap_or(WireError::BadMagic(0));
            conn.ready = Some(Err(err));
            return;
        }
        if let Some(err) = conn.decoder.corrupt_in_place() {
            conn.ready = Some(Err(err));
        }
    }
}

// --------------------------------------------------------------------------
// the channel

/// An RPC channel to one worker over a [`Reactor`]-owned non-blocking
/// socket: the event-driven counterpart of [`crate::SocketChannel`],
/// with identical request encoding, sequence stamping, retry/backoff,
/// chaos injection, stats accounting, and teardown behavior.
pub struct ReactorChannel {
    reactor: Rc<RefCell<Reactor>>,
    token: usize,
    name: String,
    stats: ChannelStats,
    /// Frame lengths of submitted-but-uncollected requests, in order.
    pending: VecDeque<u64>,
    /// First wire-level failure; fail fast afterwards (see
    /// [`crate::SocketChannel`]'s poison discipline).
    poisoned: Option<WireError>,
    /// Send `Stop` on drop (disarmed after an explicit `Shutdown`).
    stop_on_drop: bool,
    /// Dialed address, for transparent reconnection.
    addr: Option<SocketAddr>,
    /// In-place retry policy for transient faults.
    retry: RetryPolicy,
    /// Sequence stamp of the most recent frame (wraps, skipping 0).
    seq: u16,
    /// Chaos is armed on this channel (restricts pipeline depth to 1).
    has_faults: bool,
}

impl ReactorChannel {
    /// Connect to a worker server and register the socket with
    /// `reactor`. `name` is the local display name for monitoring.
    pub fn connect(
        reactor: &Rc<RefCell<Reactor>>,
        addr: impl ToSocketAddrs,
        name: impl Into<String>,
    ) -> std::io::Result<ReactorChannel> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().ok();
        let token = reactor.borrow_mut().register(stream)?;
        Ok(ReactorChannel {
            reactor: Rc::clone(reactor),
            token,
            name: name.into(),
            stats: ChannelStats::default(),
            pending: VecDeque::new(),
            poisoned: None,
            stop_on_drop: true,
            addr: peer,
            retry: RetryPolicy::none(),
            seq: 0,
            has_faults: false,
        })
    }

    /// Enable bounded in-place retry for transient faults — the same
    /// reconnect-and-resend discipline as
    /// [`crate::SocketChannel::with_retry`]. No socket timeouts are
    /// involved: the reactor bounds its poller waits with
    /// `JC_NET_TIMEOUT_MS` instead.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ReactorChannel {
        self.retry = retry;
        self
    }

    /// Interpose deterministic fault injection on this channel's
    /// transport (see [`crate::chaos::FaultPlan`]). Faults are consumed
    /// at the same frame-op boundaries as the blocking channel, so a
    /// seeded schedule maps identically onto both transports.
    pub fn with_chaos(mut self, faults: StreamFaults) -> ReactorChannel {
        self.reactor.borrow_mut().set_faults(self.token, faults);
        self.has_faults = true;
        self
    }

    /// The shared reactor this channel drives.
    pub fn reactor(&self) -> Rc<RefCell<Reactor>> {
        Rc::clone(&self.reactor)
    }

    /// Encode one request with `build`, stamp it, and start it moving.
    /// Depth > 1 is the pipelined mode and requires retry and chaos
    /// disabled (see the module docs on the dedup-cache hazard).
    fn submit_with(&mut self, build: impl FnOnce(&mut Vec<u8>)) {
        if !self.pending.is_empty() {
            assert!(
                self.retry.max_retries == 0 && !self.has_faults,
                "pipeline depth > 1 requires retry and chaos disabled"
            );
        }
        let mut reactor = self.reactor.borrow_mut();
        let mut frame = reactor.take_buf(self.token);
        build(&mut frame);
        self.seq = if self.seq == u16::MAX { 1 } else { self.seq + 1 };
        wire::set_seq(&mut frame, self.seq);
        let len = frame.len() as u64;
        if self.poisoned.is_some() {
            reactor.stash(self.token, frame);
        } else {
            match reactor.consume_write_fault(self.token) {
                Some(IoFault::WriteTimeout) => {
                    reactor.fail_write(
                        self.token,
                        frame,
                        WireError::Io(std::io::ErrorKind::TimedOut),
                    );
                }
                Some(IoFault::PartialWrite) => reactor.partial_write(self.token, frame),
                _ => reactor.enqueue(self.token, frame),
            }
        }
        self.pending.push_back(len);
    }

    /// Drive the reactor until this connection's queued writes have
    /// fully left; `Ok` carries the submitted frame's length (the
    /// `bytes_out` credit).
    fn finish_send(&mut self, frame_len: u64, timeout: Duration) -> Result<u64, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        // The caller is about to block on this round trip: everything
        // lazily queued (on every connection of the reactor) goes out
        // now, coalesced per connection into one vectored write.
        self.reactor.borrow_mut().flush_all();
        loop {
            let state = self.reactor.borrow_mut().flush_state(self.token);
            match state {
                FlushState::Done => return Ok(frame_len),
                FlushState::Failed(e) => {
                    self.poisoned = Some(e.clone());
                    return Err(e);
                }
                FlushState::Pending => {
                    if !self.drive(timeout)? {
                        let e = WireError::Io(std::io::ErrorKind::TimedOut);
                        self.poisoned = Some(e.clone());
                        return Err(e);
                    }
                }
            }
        }
    }

    /// One receive attempt: draw the chaos read fault for this frame
    /// op, then drive the reactor until a response completes (or the
    /// wait times out). Mirrors the blocking `recv` error-for-error.
    fn recv(&mut self, timeout: Duration) -> Result<u64, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let fault = self.reactor.borrow_mut().consume_read_fault(self.token);
        match fault {
            Some(IoFault::ReadTimeout) => {
                let e = WireError::Io(std::io::ErrorKind::TimedOut);
                self.poisoned = Some(e.clone());
                return Err(e);
            }
            Some(IoFault::ShortRead) => {
                let e = WireError::Closed;
                self.poisoned = Some(e.clone());
                return Err(e);
            }
            Some(IoFault::CorruptHeader) => self.reactor.borrow_mut().corrupt_response(self.token),
            _ => {}
        }
        loop {
            if let Some(r) = self.reactor.borrow_mut().take_ready(self.token) {
                return match r {
                    Ok(n) => Ok(n),
                    Err(e) => {
                        self.poisoned = Some(e.clone());
                        Err(e)
                    }
                };
            }
            if !self.drive(timeout)? {
                let e = WireError::Io(std::io::ErrorKind::TimedOut);
                self.poisoned = Some(e.clone());
                return Err(e);
            }
        }
    }

    /// One reactor round; poller failures poison the channel.
    fn drive(&mut self, timeout: Duration) -> Result<bool, WireError> {
        self.reactor.borrow_mut().drive(timeout).map_err(|e| {
            let err = WireError::Io(e.kind());
            self.poisoned = Some(err.clone());
            err
        })
    }

    /// Tear down the stream and dial the stored address again,
    /// clearing the poison on success. Chaos may deterministically
    /// refuse the attempt. Mirrors the blocking reconnect exactly
    /// (including shutting the old stream down *before* dialing, which
    /// unwedges a server blocked mid-read on a torn frame).
    fn reconnect(&mut self) -> bool {
        let Some(addr) = self.addr else { return false };
        if self.reactor.borrow_mut().connect_refused(self.token) {
            return false;
        }
        let timeout = Duration::from_millis(self.retry.connect_timeout_ms.max(1));
        let replaced = TcpStream::connect_timeout(&addr, timeout).and_then(|s| {
            s.set_nodelay(true)?;
            self.reactor.borrow_mut().replace_stream(self.token, s)
        });
        match replaced {
            Ok(()) => {
                self.poisoned = None;
                true
            }
            Err(_) => false,
        }
    }

    /// Complete the oldest outstanding round trip, retrying transient
    /// failures in place per the [`RetryPolicy`] — the verbatim
    /// state machine of the blocking channel's `complete`.
    fn complete_front(&mut self) -> Result<(), WireError> {
        let frame_len = self.pending.pop_front().expect("no outstanding call");
        let timeout = net_timeout();
        let mut attempt = 0u32;
        let deadline =
            (self.retry.deadline_ms > 0).then(|| Duration::from_millis(self.retry.deadline_ms));
        let started = deadline.map(|_| std::time::Instant::now());
        let mut sent = self.finish_send(frame_len, timeout);
        loop {
            let r = match &sent {
                Ok(out) => self.recv(timeout).map(|inb| (*out, inb)),
                Err(e) => Err(e.clone()),
            };
            match r {
                Ok((out, inb)) => {
                    self.stats.calls += 1;
                    self.stats.bytes_out += out;
                    self.stats.bytes_in += inb;
                    return Ok(());
                }
                Err(e) => {
                    // same deadline discipline as the blocking channel:
                    // stop before the next backoff crosses the budget
                    let over_deadline = started.is_some_and(|t0| {
                        t0.elapsed() + self.retry.backoff(attempt + 1) >= deadline.unwrap()
                    });
                    if attempt >= self.retry.max_retries || !e.is_transient() || over_deadline {
                        // the frame may have physically left even though
                        // the round trip failed: keep bytes_out honest
                        if let Ok(out) = &sent {
                            self.stats.bytes_out += *out;
                        }
                        if over_deadline && e.is_transient() {
                            let d =
                                WireError::DeadlineExceeded { budget_ms: self.retry.deadline_ms };
                            self.poisoned = Some(d.clone());
                            return Err(d);
                        }
                        return Err(e);
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    std::thread::sleep(self.retry.backoff(attempt));
                    sent = if self.reconnect() {
                        self.reactor.borrow_mut().resend_last(self.token);
                        self.finish_send(frame_len, timeout)
                    } else {
                        Err(e)
                    };
                }
            }
        }
    }

    /// Decode the completed response as a generic [`Response`].
    fn decode_collected(&mut self) -> Response {
        let reactor = self.reactor.borrow();
        let decoded = wire::decode_response(reactor.resp(self.token));
        drop(reactor);
        match decoded {
            Ok(resp) => {
                self.stats.flops += resp.flops();
                resp
            }
            Err(e) => Response::Error(format!("wire error: {e}")),
        }
    }
}

impl Channel for ReactorChannel {
    fn call(&mut self, req: Request) -> Response {
        assert!(self.pending.is_empty(), "one outstanding call per channel");
        self.submit_with(|buf| wire::encode_request(&req, buf));
        match self.complete_front() {
            Ok(()) => self.decode_collected(),
            Err(e) => {
                self.stats.calls += 1;
                Response::Error(format!("wire error: {e}"))
            }
        }
    }

    fn submit(&mut self, req: Request) {
        assert!(self.pending.is_empty(), "one outstanding call per channel");
        self.submit_with(|buf| wire::encode_request(&req, buf));
    }

    fn collect(&mut self) -> Response {
        match self.complete_front() {
            Ok(()) => self.decode_collected(),
            Err(e) => {
                self.stats.calls += 1;
                Response::Error(format!("wire error: {e}"))
            }
        }
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn worker_name(&self) -> String {
        self.name.clone()
    }

    fn set_deadline(&mut self, deadline_ms: u64) {
        self.retry.deadline_ms = deadline_ms;
    }

    fn pipelines(&self) -> bool {
        true
    }

    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        self.submit_snapshot();
        self.collect_snapshot_into(out)
    }

    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Response {
        self.submit_kick_slice(dv);
        self.collect_kick()
    }

    fn compute_kick_into(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        self.submit_compute_kick(targets, source_pos, source_mass);
        self.collect_accelerations_into(out)
    }

    fn submit_snapshot(&mut self) {
        self.submit_with(|buf| wire::encode_simple_request(wire::op::GET_PARTICLES, buf));
    }

    fn collect_snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        if self.complete_front().is_err() {
            return false;
        }
        let reactor = self.reactor.borrow();
        wire::decode_particles_into(reactor.resp(self.token), out).is_ok()
    }

    fn submit_kick_slice(&mut self, dv: &[[f64; 3]]) {
        self.submit_with(|buf| wire::encode_kick(dv, buf));
    }

    fn collect_kick(&mut self) -> Response {
        if let Err(e) = self.complete_front() {
            self.stats.calls += 1;
            return Response::Error(format!("wire error: {e}"));
        }
        let reactor = self.reactor.borrow();
        let decoded = wire::decode_ok(reactor.resp(self.token));
        match decoded {
            Ok(flops) => {
                drop(reactor);
                self.stats.flops += flops;
                Response::Ok { flops }
            }
            // not an Ok frame: surface whatever the worker actually said
            Err(WireError::Unexpected(_)) => {
                let resp = wire::decode_response(reactor.resp(self.token))
                    .unwrap_or_else(|e| Response::Error(format!("wire error: {e}")));
                drop(reactor);
                resp
            }
            Err(e) => Response::Error(format!("wire error: {e}")),
        }
    }

    fn submit_compute_kick(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
    ) {
        self.submit_with(|buf| wire::encode_compute_kick(targets, source_pos, source_mass, buf));
    }

    fn collect_accelerations_into(&mut self, out: &mut Vec<[f64; 3]>) -> Option<f64> {
        if self.complete_front().is_err() {
            return None;
        }
        let reactor = self.reactor.borrow();
        let decoded = wire::decode_accelerations_into(reactor.resp(self.token), out);
        drop(reactor);
        match decoded {
            Ok(flops) => {
                self.stats.flops += flops;
                Some(flops)
            }
            Err(_) => None,
        }
    }
}

impl Drop for ReactorChannel {
    fn drop(&mut self) {
        // Mirror the blocking channel's teardown: finish pushing any
        // queued request bytes, drain the responses still owed (bounded
        // by the net timeout), send Stop so the server's serve loop can
        // exit, then shut the socket down.
        let torn = self.reactor.borrow_mut().take_conn(self.token);
        let Some(torn) = torn else { return };
        let mut stream = torn.stream;
        if self.poisoned.is_none() && self.stop_on_drop && !torn.write_failed {
            let _ = stream.set_nonblocking(false);
            let t = net_timeout();
            let _ = stream.set_write_timeout(Some(t));
            let _ = stream.set_read_timeout(Some(t));
            let flushed = torn.tail.is_empty() || stream.write_all(&torn.tail).is_ok();
            if flushed {
                let mut owed = self.pending.len().saturating_sub(usize::from(torn.had_ready));
                let mut scratch = Vec::new();
                while owed > 0 {
                    if wire::read_frame(&mut stream, &mut scratch).is_err() {
                        break;
                    }
                    owed -= 1;
                }
                if owed == 0 {
                    wire::encode_simple_request(wire::op::STOP, &mut scratch);
                    let _ = wire::write_frame(&mut stream, &scratch);
                }
            }
        }
        let _ = stream.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::socket::spawn_tcp_worker;
    use crate::worker::GravityWorker;
    use crate::SocketChannel;
    use jc_nbody::plummer::plummer_sphere;
    use jc_nbody::Backend;

    fn encode_some_frames() -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        let mut b = Vec::new();
        wire::encode_simple_request(wire::op::PING, &mut b);
        frames.push(b.clone());
        wire::encode_kick(&[[0.25, -1.5, 3.0]; 17], &mut b);
        frames.push(b.clone());
        wire::encode_response(&Response::Ok { flops: 12.5 }, &mut b);
        frames.push(b.clone());
        wire::encode_response(&Response::Error("boom".into()), &mut b);
        frames.push(b);
        frames
    }

    #[test]
    fn decoder_matches_one_shot_reader_at_any_split() {
        for frame in encode_some_frames() {
            for split in [1usize, 7, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 1] {
                let mut d = FrameDecoder::new();
                let mut fed = 0;
                let mut complete = false;
                while fed < frame.len() {
                    let end = (fed + split).min(frame.len());
                    let (n, done) = d.feed(&frame[fed..end]).expect("clean frame");
                    fed += n;
                    complete = done;
                    if done {
                        break;
                    }
                }
                assert!(complete, "frame completes");
                let mut one_shot = Vec::new();
                let n = wire::read_frame(&mut std::io::Cursor::new(&frame), &mut one_shot).unwrap();
                assert_eq!(d.frame(), &one_shot[..n]);
            }
        }
    }

    #[test]
    fn decoder_consumes_exactly_one_frame_from_a_batch() {
        let frames = encode_some_frames();
        let mut batch = Vec::new();
        for f in &frames {
            batch.extend_from_slice(f);
        }
        let mut d = FrameDecoder::new();
        let mut off = 0;
        for f in &frames {
            let (n, done) = d.feed(&batch[off..]).expect("clean frames");
            assert!(done, "whole frame available");
            assert_eq!(n, f.len(), "never reads past the frame end");
            assert_eq!(d.frame(), &f[..]);
            off += n;
            d.reset();
        }
        assert_eq!(off, batch.len());
    }

    #[test]
    fn decoder_rejects_hostile_bytes_without_overallocation() {
        // bad magic
        let mut d = FrameDecoder::new();
        let junk = [0xFFu8; HEADER_LEN];
        assert!(matches!(d.feed(&junk), Err(WireError::BadMagic(_))));
        // oversized length never allocates the declared payload
        let mut frame = Vec::new();
        wire::encode_simple_request(wire::op::PING, &mut frame);
        frame[8..16].copy_from_slice(&(wire::MAX_PAYLOAD + 1).to_le_bytes());
        let mut d = FrameDecoder::new();
        assert!(matches!(d.feed(&frame), Err(WireError::Oversized(_))));
        assert!(d.buf.capacity() <= 2 * HEADER_LEN, "no payload allocation");
    }

    #[test]
    fn reactor_channel_roundtrips_against_a_real_worker() {
        let ics = plummer_sphere(32, 5);
        let (addr, handle) =
            spawn_tcp_worker("grav", move || GravityWorker::new(ics, Backend::Scalar));
        let reactor = Reactor::new_shared().unwrap();
        let mut ch = ReactorChannel::connect(&reactor, addr, "grav").unwrap();
        assert!(matches!(ch.call(Request::Ping), Response::Ok { .. }));
        let mut snap = ParticleData::default();
        assert!(ch.snapshot_into(&mut snap));
        assert_eq!(snap.mass.len(), 32);
        let dv = vec![[1e-3, 0.0, -1e-3]; 32];
        assert!(matches!(ch.kick_slice(&dv), Response::Ok { .. }));
        assert_eq!(ch.stats().calls, 3);
        drop(ch);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn pipelined_depth_two_coalesces_and_matches_blocking() {
        let ics = plummer_sphere(24, 9);
        let dv = vec![[2e-4, -1e-4, 5e-4]; 24];

        // blocking reference
        let (addr, handle) = spawn_tcp_worker("grav-a", {
            let ics = ics.clone();
            move || GravityWorker::new(ics, Backend::Scalar)
        });
        let mut blocking = SocketChannel::connect(addr, "grav-a").unwrap();
        let mut snap_ref = ParticleData::default();
        assert!(blocking.snapshot_into(&mut snap_ref));
        let kick_ref = blocking.kick_slice(&dv);
        drop(blocking);
        handle.join().unwrap().unwrap();

        // pipelined: both requests in flight before either response
        let (addr, handle) =
            spawn_tcp_worker("grav-b", move || GravityWorker::new(ics, Backend::Scalar));
        let reactor = Reactor::new_shared().unwrap();
        let mut ch = ReactorChannel::connect(&reactor, addr, "grav-b").unwrap();
        let mut snap = ParticleData::default();
        ch.submit_snapshot();
        ch.submit_kick_slice(&dv);
        assert!(ch.collect_snapshot_into(&mut snap));
        let kick = ch.collect_kick();
        assert_eq!(snap.pos, snap_ref.pos);
        assert_eq!(snap.vel, snap_ref.vel);
        assert!(matches!((&kick, &kick_ref), (Response::Ok { .. }, Response::Ok { .. })));
        drop(ch);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn idle_reactor_wait_times_out() {
        let ics = plummer_sphere(4, 3);
        let (addr, handle) =
            spawn_tcp_worker("grav", move || GravityWorker::new(ics, Backend::Scalar));
        let reactor = Reactor::new_shared().unwrap();
        let ch = ReactorChannel::connect(&reactor, addr, "grav").unwrap();
        // nothing queued, nothing owed: a bounded wait elapses quietly
        let progressed = reactor.borrow_mut().drive(Duration::from_millis(30)).unwrap();
        assert!(!progressed, "no events on an idle connection");
        drop(ch);
        handle.join().unwrap().unwrap();
    }
}
