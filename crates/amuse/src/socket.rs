//! The socket channel: real TCP between coupler and worker.
//!
//! This is the paper's "channel based on sockets": the same
//! [`Channel`] RPC surface as [`crate::LocalChannel`] and
//! [`crate::ThreadChannel`], but every call is one wire frame (see
//! [`crate::wire`]) over a `std::net::TcpStream`. The server side,
//! [`WorkerServer`], serves any [`ModelWorker`] over a
//! `std::net::TcpListener` — it is what the `jungle-worker` binary
//! wraps.
//!
//! Both sides keep one reusable encode buffer and one reusable decode
//! buffer, and the borrowing fast paths (`snapshot_into`, `kick_slice`,
//! `compute_kick_into`) encode straight from the caller's slices and
//! decode straight into the caller's buffers — a warm bridge step over
//! a `SocketChannel` performs no coupler-side heap allocation.
//!
//! Because every frame is physically [`Request::wire_size`]/
//! [`Response::wire_size`] bytes long, the [`ChannelStats`] this channel
//! accumulates from *actual* bytes sent and received agree exactly with
//! the modeled accounting of the in-process channels. Each logical call
//! counts its frame once — a resend absorbed by the retry layer ticks
//! `retries` instead of double-counting bytes, and a call that fails
//! after its frame left still credits `bytes_out` for that frame (the
//! response that never arrived contributes nothing to `bytes_in`).
//!
//! # Transient faults: in-place retry
//!
//! By default one wire failure poisons the channel (fail fast, escalate
//! to the heal/restore path). A channel built
//! [`SocketChannel::with_retry`] instead absorbs *transient* faults
//! (see [`WireError::is_transient`]) in place: back off, reconnect,
//! resend the identical frame. Every request frame carries a sequence
//! number (`wire::set_seq`) and the server remembers the last applied
//! one per worker together with a fingerprint of the frame it arrived
//! in, replaying its cached response to a duplicate (`wire::frame_seq`
//! plus matching bytes — seq alone can collide across connections or
//! after wrap, see `Dedup` in this file) — so even mutating requests like `Kick`
//! are applied exactly once no matter how many times the transport
//! fails underneath. The `JC_NET_TIMEOUT_MS` knob (default 5000) bounds
//! teardown drains and, for retry-enabled channels, every read/write.

use crate::channel::{Channel, ChannelStats};
use crate::chaos::{ChaosStream, RetryPolicy, StreamFaults};
use crate::wire::{self, WireError};
use crate::worker::{ModelWorker, ParticleData, Request, Response};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The socket-layer I/O timeout: `JC_NET_TIMEOUT_MS` (milliseconds,
/// default 5000 — the bound that used to be hardcoded). Governs the
/// teardown drains ([`SocketChannel::shutdown_worker`], `Drop`) and the
/// read/write timeouts applied to retry-enabled channels. Read from the
/// environment on every call — it is only consulted at connect/teardown
/// time, never per frame, and tests and harnesses adjust the knob
/// between runs.
pub(crate) fn net_timeout() -> std::time::Duration {
    let ms = std::env::var("JC_NET_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(5_000);
    std::time::Duration::from_millis(ms)
}

/// An RPC channel to a worker behind a TCP socket.
pub struct SocketChannel {
    stream: TcpStream,
    name: String,
    stats: ChannelStats,
    /// The outstanding asynchronous call: request bytes sent, or the
    /// send error to surface from `collect` (submit must not panic —
    /// a dead peer is reported the same way the synchronous path
    /// reports it, as a `Response::Error`).
    pending: Option<Result<u64, WireError>>,
    /// First wire-level failure seen on this stream. After one, frame
    /// alignment can no longer be trusted (a half-read payload would be
    /// parsed as headers), so the channel fails fast with this error
    /// instead of returning garbage forever — the same
    /// connection-fatal treatment the server gives protocol errors.
    poisoned: Option<WireError>,
    /// Reused encode buffer.
    wbuf: Vec<u8>,
    /// Reused decode buffer (scratch: only the leading frame is live).
    rbuf: Vec<u8>,
    /// Send `Stop` on drop (disarmed after an explicit `Shutdown`, so a
    /// stop frame is never written at a server that already exited).
    stop_on_drop: bool,
    /// The address we dialed, for transparent reconnection. `None` only
    /// if the peer address could not be resolved at connect time (then
    /// retries degrade to fail-fast).
    addr: Option<SocketAddr>,
    /// In-place retry policy for transient faults. The default,
    /// [`RetryPolicy::none`], keeps the historical fail-fast behavior.
    retry: RetryPolicy,
    /// The sequence number of the frame currently in `wbuf` (wraps,
    /// skipping the unsequenced 0). A resend reuses it, which is what
    /// lets the server deduplicate.
    seq: u16,
    /// Chaos injection for this channel's transport, if any (see
    /// [`crate::chaos::FaultPlan::stream_faults`]).
    faults: Option<StreamFaults>,
}

impl SocketChannel {
    /// Connect to a worker server. `name` is the local display name for
    /// monitoring (the wire protocol has no name exchange).
    pub fn connect(
        addr: impl ToSocketAddrs,
        name: impl Into<String>,
    ) -> std::io::Result<SocketChannel> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr().ok();
        Ok(SocketChannel {
            stream,
            name: name.into(),
            stats: ChannelStats::default(),
            pending: None,
            poisoned: None,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            stop_on_drop: true,
            addr: peer,
            retry: RetryPolicy::none(),
            seq: 0,
            faults: None,
        })
    }

    /// Enable bounded in-place retry for transient transport faults
    /// (see [`WireError::is_transient`]): on failure the channel
    /// reconnects to the original address and resends the identical
    /// sequence-stamped frame — the server's dedup makes that safe even
    /// for mutating requests. A retry-enabled channel also gets real
    /// read/write timeouts (`JC_NET_TIMEOUT_MS`, default 5 s), so a
    /// wedged worker surfaces as a retryable `TimedOut` instead of a
    /// hang.
    pub fn with_retry(mut self, retry: RetryPolicy) -> SocketChannel {
        if retry.max_retries > 0 {
            let t = net_timeout();
            let _ = self.stream.set_read_timeout(Some(t));
            let _ = self.stream.set_write_timeout(Some(t));
        }
        self.retry = retry;
        self
    }

    /// Interpose deterministic fault injection on this channel's
    /// transport (the chaos harness hook — see
    /// [`crate::chaos::FaultPlan`]).
    pub fn with_chaos(mut self, faults: StreamFaults) -> SocketChannel {
        self.faults = Some(faults);
        self
    }

    /// Ask the server behind `addr` to terminate cleanly: one
    /// [`Request::Shutdown`] round trip on a fresh connection, `true`
    /// iff the worker acknowledged before the server exited. This is
    /// how supervisors and tests reap a worker whose original channel
    /// is poisoned (a poisoned channel cannot deliver `Stop`, and a
    /// server otherwise returns to `accept` and lingers forever).
    pub fn shutdown_worker(addr: impl ToSocketAddrs) -> bool {
        let Ok(mut c) = SocketChannel::connect(addr, "shutdown") else {
            return false;
        };
        // Bounded, like Drop's drain: the server serves connections
        // sequentially, so if another coupler still holds its current
        // session this request waits in the backlog — a supervisor's
        // teardown must not block forever on it.
        let _ = c.stream.set_read_timeout(Some(net_timeout()));
        c.stop_on_drop = false;
        matches!(c.call(Request::Shutdown), Response::Ok { .. })
    }

    /// The peer address.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Stamp the frame in `wbuf` with the next sequence number (wraps
    /// past `u16::MAX`, skipping the unsequenced 0). Retries resend the
    /// same buffer and therefore the same number.
    fn stamp_next_seq(&mut self) {
        self.seq = if self.seq == u16::MAX { 1 } else { self.seq + 1 };
        wire::set_seq(&mut self.wbuf, self.seq);
    }

    /// Send the frame currently in `wbuf`; record its bytes.
    fn send(&mut self) -> Result<u64, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let bytes = self.wbuf.len() as u64;
        let r = match &mut self.faults {
            Some(f) => {
                let mut cs = ChaosStream::new(&mut self.stream, f.next_write());
                wire::write_frame(&mut cs, &self.wbuf)
            }
            None => wire::write_frame(&mut self.stream, &self.wbuf),
        };
        match r {
            Ok(()) => Ok(bytes),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Receive one frame into `rbuf`; returns its byte count.
    fn recv(&mut self) -> Result<u64, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let r = match &mut self.faults {
            Some(f) => {
                let mut cs = ChaosStream::new(&mut self.stream, f.next_read());
                wire::read_frame(&mut cs, &mut self.rbuf)
            }
            None => wire::read_frame(&mut self.stream, &mut self.rbuf),
        };
        match r {
            Ok(n) => Ok(n as u64),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Tear down the current stream and dial the stored address again.
    /// On success the poison is cleared (the new stream's framing is
    /// trusted from scratch). Chaos may deterministically refuse the
    /// attempt.
    fn reconnect(&mut self) -> bool {
        let Some(addr) = self.addr else { return false };
        if let Some(f) = &mut self.faults {
            if f.next_connect_refused() {
                return false;
            }
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let timeout = std::time::Duration::from_millis(self.retry.connect_timeout_ms.max(1));
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                if self.retry.max_retries > 0 {
                    let t = net_timeout();
                    let _ = s.set_read_timeout(Some(t));
                    let _ = s.set_write_timeout(Some(t));
                }
                self.stream = s;
                self.poisoned = None;
                true
            }
            Err(_) => false,
        }
    }

    /// Complete one round trip for the seq-stamped request in `wbuf`
    /// whose send outcome is `sent`, updating the stats from the actual
    /// bytes moved. Transient failures (send *or* receive) are retried
    /// in place per the [`RetryPolicy`]: back off, reconnect, resend
    /// the identical frame — the server replays its cached response if
    /// the original was applied, so the request takes effect exactly
    /// once. A successful call counts once in the stats, plus one
    /// `retries` tick per absorbed fault; fatal errors (and exhausted
    /// retries) surface to the caller with the channel poisoned.
    fn complete(&mut self, mut sent: Result<u64, WireError>) -> Result<(), WireError> {
        let mut attempt = 0u32;
        let deadline = (self.retry.deadline_ms > 0)
            .then(|| std::time::Duration::from_millis(self.retry.deadline_ms));
        let started = deadline.map(|_| std::time::Instant::now());
        loop {
            let r = match &sent {
                Ok(out) => self.recv().map(|inb| (*out, inb)),
                Err(e) => Err(e.clone()),
            };
            match r {
                Ok((out, inb)) => {
                    self.stats.calls += 1;
                    self.stats.bytes_out += out;
                    self.stats.bytes_in += inb;
                    return Ok(());
                }
                Err(e) => {
                    // Give up before the next backoff would cross the
                    // per-request deadline, with the typed non-transient
                    // error so the caller escalates instead of retrying.
                    let over_deadline = started.is_some_and(|t0| {
                        t0.elapsed() + self.retry.backoff(attempt + 1) >= deadline.unwrap()
                    });
                    if attempt >= self.retry.max_retries || !e.is_transient() || over_deadline {
                        // The request frame may have physically left even
                        // though the round trip failed (send ok, recv
                        // fatal): keep bytes_out honest about what this
                        // attempt actually wrote.
                        if let Ok(out) = &sent {
                            self.stats.bytes_out += *out;
                        }
                        if over_deadline && e.is_transient() {
                            let d =
                                WireError::DeadlineExceeded { budget_ms: self.retry.deadline_ms };
                            self.poisoned = Some(d.clone());
                            return Err(d);
                        }
                        return Err(e);
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    std::thread::sleep(self.retry.backoff(attempt));
                    sent = if self.reconnect() { self.send() } else { Err(e) };
                }
            }
        }
    }

    /// One full round trip for a request already encoded (and
    /// seq-stamped) in `wbuf`.
    fn transact(&mut self) -> Result<(), WireError> {
        let sent = self.send();
        self.complete(sent)
    }
}

impl Channel for SocketChannel {
    fn call(&mut self, req: Request) -> Response {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        wire::encode_request(&req, &mut self.wbuf);
        self.stamp_next_seq();
        if let Err(e) = self.transact() {
            self.stats.calls += 1;
            return Response::Error(format!("wire error: {e}"));
        }
        match wire::decode_response(&self.rbuf) {
            Ok(resp) => {
                self.stats.flops += resp.flops();
                resp
            }
            Err(e) => Response::Error(format!("wire error: {e}")),
        }
    }

    fn submit(&mut self, req: Request) {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        wire::encode_request(&req, &mut self.wbuf);
        self.stamp_next_seq();
        self.pending = Some(self.send());
    }

    fn collect(&mut self) -> Response {
        // `wbuf` still holds the submitted frame (one outstanding call
        // per channel), so `complete` can retry a transient failure of
        // either half of the round trip by resending it.
        let sent = self.pending.take().expect("no outstanding call");
        match self.complete(sent) {
            Ok(()) => match wire::decode_response(&self.rbuf) {
                Ok(resp) => {
                    self.stats.flops += resp.flops();
                    resp
                }
                Err(e) => Response::Error(format!("wire error: {e}")),
            },
            Err(e) => {
                self.stats.calls += 1;
                Response::Error(format!("wire error: {e}"))
            }
        }
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn worker_name(&self) -> String {
        self.name.clone()
    }

    fn set_deadline(&mut self, deadline_ms: u64) {
        self.retry.deadline_ms = deadline_ms;
    }

    /// The blocking socket still pipelines *across* channels: `submit`
    /// (and the `submit_*` fast paths) put the frame on the wire before
    /// returning, so K sockets fan out concurrently even though each
    /// collect then blocks in turn.
    fn pipelines(&self) -> bool {
        true
    }

    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        self.submit_snapshot();
        self.collect_snapshot_into(out)
    }

    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Response {
        self.submit_kick_slice(dv);
        self.collect_kick()
    }

    fn compute_kick_into(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        self.submit_compute_kick(targets, source_pos, source_mass);
        self.collect_accelerations_into(out)
    }

    fn submit_snapshot(&mut self) {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        wire::encode_simple_request(wire::op::GET_PARTICLES, &mut self.wbuf);
        self.stamp_next_seq();
        self.pending = Some(self.send());
    }

    fn collect_snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        let sent = self.pending.take().expect("no outstanding call");
        if self.complete(sent).is_err() {
            return false;
        }
        wire::decode_particles_into(&self.rbuf, out).is_ok()
    }

    fn submit_kick_slice(&mut self, dv: &[[f64; 3]]) {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        wire::encode_kick(dv, &mut self.wbuf);
        self.stamp_next_seq();
        self.pending = Some(self.send());
    }

    fn collect_kick(&mut self) -> Response {
        let sent = self.pending.take().expect("no outstanding call");
        if let Err(e) = self.complete(sent) {
            self.stats.calls += 1;
            return Response::Error(format!("wire error: {e}"));
        }
        match wire::decode_ok(&self.rbuf) {
            Ok(flops) => {
                self.stats.flops += flops;
                Response::Ok { flops }
            }
            // not an Ok frame: surface whatever the worker actually said
            Err(WireError::Unexpected(_)) => wire::decode_response(&self.rbuf)
                .unwrap_or_else(|e| Response::Error(format!("wire error: {e}"))),
            Err(e) => Response::Error(format!("wire error: {e}")),
        }
    }

    fn submit_compute_kick(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
    ) {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        wire::encode_compute_kick(targets, source_pos, source_mass, &mut self.wbuf);
        self.stamp_next_seq();
        self.pending = Some(self.send());
    }

    fn collect_accelerations_into(&mut self, out: &mut Vec<[f64; 3]>) -> Option<f64> {
        let sent = self.pending.take().expect("no outstanding call");
        if self.complete(sent).is_err() {
            return None;
        }
        match wire::decode_accelerations_into(&self.rbuf, out) {
            Ok(flops) => {
                self.stats.flops += flops;
                Some(flops)
            }
            Err(_) => None,
        }
    }
}

impl Drop for SocketChannel {
    fn drop(&mut self) {
        // Best-effort shutdown so the server's serve loop can exit. A
        // dropped-while-outstanding channel (e.g. the coupler unwinding
        // mid-fan-out) first drains the pending response — bounded by a
        // read timeout so a wedged worker cannot hang the drop — and
        // then sends Stop like the idle path; otherwise the server
        // would return to `accept` and wait for a client that never
        // comes.
        if self.poisoned.is_none() && self.stop_on_drop {
            if matches!(self.pending.take(), Some(Ok(_))) {
                let _ = self.stream.set_read_timeout(Some(net_timeout()));
                let _ = wire::read_frame(&mut self.stream, &mut self.rbuf);
            }
            wire::encode_simple_request(wire::op::STOP, &mut self.wbuf);
            let _ = wire::write_frame(&mut self.stream, &self.wbuf);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A TCP server hosting one [`ModelWorker`].
///
/// Connections are served sequentially (the AMUSE worker model: one
/// coupler drives one worker). A clean disconnect returns the server to
/// `accept`; a [`Request::Stop`] or [`Request::Shutdown`] shuts the
/// server down after replying — `Shutdown` is the deterministic
/// teardown path that also works when the original coupler channel is
/// gone (see [`SocketChannel::shutdown_worker`]).
pub struct WorkerServer {
    listener: TcpListener,
}

impl WorkerServer {
    /// Bind a listener. Use port 0 for an ephemeral port and read it
    /// back with [`WorkerServer::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<WorkerServer> {
        Ok(WorkerServer { listener: TcpListener::bind(addr)? })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve `worker` until a [`Request::Stop`] or [`Request::Shutdown`]
    /// arrives. Frame and encode buffers are reused across requests and
    /// connections, so a steady-state request costs the server no
    /// allocation either.
    pub fn serve(&self, worker: &mut dyn ModelWorker) -> std::io::Result<()> {
        self.serve_with_fuse(worker, None)
    }

    /// [`WorkerServer::serve`] with failure injection: when `fuse` is
    /// given, each received request burns one unit, and the request
    /// that finds the fuse exhausted is *not* handled — the server
    /// drops the connection without replying and exits, which is the
    /// network-visible signature of a node crash (the coupler sees a
    /// truncated stream, never an error response). The server thread
    /// still terminates deterministically, so tests can join it.
    pub fn serve_with_fuse(
        &self,
        worker: &mut dyn ModelWorker,
        fuse: Option<&AtomicI64>,
    ) -> std::io::Result<()> {
        let mut frame = Vec::new();
        let mut out = Vec::new();
        let mut scratch = ServeScratch::default();
        // Idempotency state outlives connections on purpose: a coupler
        // that reconnects after a transient fault resends the same
        // sequence number on the *new* connection and must still hit
        // the dedup cache.
        let mut dedup = Dedup::default();
        loop {
            let (stream, _peer) = self.listener.accept()?;
            stream.set_nodelay(true)?;
            match serve_connection(
                &stream,
                worker,
                &mut frame,
                &mut out,
                &mut scratch,
                fuse,
                &mut dedup,
            ) {
                Served::KeepListening => {}
                Served::ShutDown | Served::Crashed => return Ok(()),
            }
        }
    }
}

/// Per-worker idempotency state: the last applied nonzero sequence
/// number, a fingerprint of the exact request frame it was applied
/// for, and, when that request was mutating, the encoded response to
/// replay on a duplicate. Non-mutating requests are not recorded —
/// re-executing a pure read of deterministic state yields bit-identical
/// bytes anyway, so caching (possibly megabytes of) snapshot frames
/// would buy nothing.
///
/// The fingerprint is what makes seq matching sound: this state
/// intentionally outlives connections (a retried frame arrives on a
/// *new* connection) and the 16-bit seq space wraps, so seq equality
/// alone cannot prove the incoming frame is a resend — a fresh channel
/// restarts its numbering at 1 (landing exactly on a stale `last_seq`
/// whenever the previous connection's first request was mutating, e.g.
/// a `Shutdown` or `LoadState` after the prior coupler died), and a
/// long-lived channel reuses a number after 65535 frames. A genuine
/// retry resends the identical bytes (same encode buffer, same stamp),
/// so replay additionally requires the fingerprints to match; a
/// colliding *new* request hashes differently and is applied normally,
/// overwriting the cache.
#[derive(Default)]
struct Dedup {
    last_seq: u16,
    req_fp: u64,
    cached: Vec<u8>,
}

/// FNV-1a (64-bit) over a whole request frame — the frame identity the
/// dedup cache keys on alongside `last_seq`. Deterministic and
/// dependency-free; a false replay now needs an accidental 64-bit hash
/// collision on top of a wrapped/reused seq, which is beyond the
/// cooperative failure model here (byte-identical mutating frames that
/// legitimately collide — say, the same `SetMasses` payload exactly
/// 65535 frames apart — remain theoretically indistinguishable from a
/// resend, as they would be under full byte comparison too).
///
/// Folds four independent 8-byte FNV lanes per 32-byte block instead of
/// hashing byte-at-a-time: the hash runs on every mutating request in
/// the worker's serve loop, and the serial `wrapping_mul` dependency
/// chain of single-lane FNV dominated the per-step cost on large kick
/// frames (the four lanes let the multiplies overlap). This is only an
/// in-process cache key — both the compare and the store leg use this
/// same function, so the exact digest values are free to change.
pub(crate) fn frame_fingerprint(frame: &[u8]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes = [SEED, SEED ^ 1, SEED ^ 2, SEED ^ 3];
    let mut blocks = frame.chunks_exact(32);
    for b in blocks.by_ref() {
        for (k, lane) in lanes.iter_mut().enumerate() {
            *lane ^= u64::from_le_bytes(b[8 * k..8 * k + 8].try_into().unwrap());
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut h = SEED;
    for &b in blocks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    for lane in lanes {
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// How one connection ended.
enum Served {
    /// Clean disconnect or protocol error: back to `accept`.
    KeepListening,
    /// A `Stop`/`Shutdown` asked the whole server to exit.
    ShutDown,
    /// The failure-injection fuse fired: simulated node crash.
    Crashed,
}

/// Reusable decode/encode scratch for [`serve_connection`]'s per-step
/// fast paths, so a steady-state snapshot/kick/coupling request costs
/// the server no allocation.
#[derive(Default)]
struct ServeScratch {
    snap: ParticleData,
    dv: Vec<[f64; 3]>,
    targets: Vec<[f64; 3]>,
    source_pos: Vec<[f64; 3]>,
    source_mass: Vec<f64>,
    acc: Vec<[f64; 3]>,
    /// Encoded-but-unflushed response frames (see `emit`).
    batch: Vec<u8>,
    /// Backing storage for the connection's [`RequestReader`].
    rdbuf: Vec<u8>,
}

/// Buffered reads over the server's half of a connection: one kernel
/// read pulls in as many bytes as have arrived (up to the buffer), so
/// a pipelined burst's worth of requests costs one syscall instead of
/// two per frame — and "bytes left over in the buffer" answers the
/// keep-the-response-batched question for free, where the kernel-level
/// peek needs three syscalls.
struct RequestReader<'a> {
    stream: &'a TcpStream,
    buf: &'a mut Vec<u8>,
    pos: usize,
    end: usize,
}

impl<'a> RequestReader<'a> {
    fn new(stream: &'a TcpStream, buf: &'a mut Vec<u8>) -> RequestReader<'a> {
        buf.resize(wire::READ_CHUNK, 0);
        RequestReader { stream, buf, pos: 0, end: 0 }
    }

    /// At least one byte of a further request already read ahead?
    fn buffered(&self) -> bool {
        self.pos < self.end
    }
}

impl Read for RequestReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.end {
            let n = (self.end - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        let mut s = self.stream;
        // Reads at least as large as the buffer skip it: no gain from
        // the extra copy, and a big payload lands in one syscall anyway.
        if out.len() >= self.buf.len() {
            return s.read(out);
        }
        let n = s.read(self.buf)?;
        self.pos = 0;
        self.end = n;
        let k = n.min(out.len());
        out[..k].copy_from_slice(&self.buf[..k]);
        self.pos = k;
        Ok(k)
    }
}

/// `write_all` through a shared [`TcpStream`] reference (reads of the
/// same stream go through the [`RequestReader`]'s shared borrow).
fn write_all_to(mut stream: &TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(bytes)
}

/// Responses a pipelined burst may keep batched before the server
/// flushes regardless, bounding server-side buffering.
const BATCH_FLUSH_BYTES: usize = 1 << 20;

/// Serve one established connection.
///
/// Protocol errors are connection-fatal: framing can no longer be
/// trusted, so the server replies with a [`Response::Error`] frame
/// (best-effort) and drops the connection — it never panics and stays
/// available for the next `accept`.
fn serve_connection(
    stream: &TcpStream,
    worker: &mut dyn ModelWorker,
    frame: &mut Vec<u8>,
    out: &mut Vec<u8>,
    scratch: &mut ServeScratch,
    fuse: Option<&AtomicI64>,
    dedup: &mut Dedup,
) -> Served {
    scratch.batch.clear();
    let ServeScratch { rdbuf, .. } = scratch;
    let mut reader = RequestReader::new(stream, rdbuf);
    // Flush the batched response bytes unless the client provably has
    // another request in flight (`more`, computed at the call site) and
    // the batch is under its size bound. The response was already
    // appended to `batch` by the caller. Returns `false` on a write
    // error.
    fn flush_batch(stream: &TcpStream, batch: &mut Vec<u8>, more: bool) -> bool {
        if more && batch.len() < BATCH_FLUSH_BYTES {
            return true;
        }
        let ok = write_all_to(stream, batch).is_ok();
        batch.clear();
        ok
    }
    loop {
        let len = match wire::read_frame(&mut reader, frame) {
            Ok(len) => len,
            Err(WireError::Closed) => return Served::KeepListening,
            Err(e) => {
                wire::encode_response(&Response::Error(format!("protocol error: {e}")), out);
                scratch.batch.extend_from_slice(out);
                let _ = flush_batch(stream, &mut scratch.batch, false);
                return Served::KeepListening;
            }
        };
        // `frame` is a monotonic scratch: only the leading `len` bytes
        // are this frame (the tail is stale). Slicing here means the
        // dedup fingerprint and the fast-path decoders see exactly the
        // frame's bytes, never the scratch high-water mark.
        let frame = &frame[..len];
        // Idempotent retry: a duplicate of the last applied mutating
        // request — same nonzero sequence number AND the same frame
        // bytes, i.e. the coupler resent a frame whose response it lost
        // — replays the cached response without re-applying, before the
        // fuse or the worker sees it. The fingerprint check keeps a seq
        // collision from a different channel (or after wrap) from being
        // mistaken for a resend; see `Dedup`.
        let seq = wire::frame_seq(frame);
        if seq != 0
            && seq == dedup.last_seq
            && !dedup.cached.is_empty()
            && frame_fingerprint(frame) == dedup.req_fp
        {
            let more = reader.buffered();
            scratch.batch.extend_from_slice(&dedup.cached);
            if !flush_batch(stream, &mut scratch.batch, more) {
                return Served::KeepListening;
            }
            continue;
        }
        // Per-step fast paths: snapshot, kick, and the coupling kick
        // bypass `decode_request`/`worker.handle`'s owned `Request`/
        // `Response` round trip and run on reused scratch instead,
        // appending the response frame straight into the write batch
        // (no staging copy). Every leg that cannot take the fast path
        // (validation failure, a worker without the capability) falls
        // through to the generic path below, which replies with the
        // exact same frames — byte-for-byte — that a fast-path-less
        // server would produce.
        let resp_start = scratch.batch.len();
        enum Fast {
            /// Response appended to the batch; `bool` is
            /// `Request::mutating()`.
            Done(bool),
            Fallback,
        }
        let fast = match frame.get(5).copied() {
            Some(wire::op::GET_PARTICLES) if frame.len() == wire::HEADER_LEN => {
                if let Some(f) = fuse {
                    if f.fetch_sub(1, Ordering::SeqCst) <= 0 {
                        let _ = write_all_to(stream, &scratch.batch);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return Served::Crashed;
                    }
                }
                if let Some((mass, pos, vel)) = worker.particles() {
                    // zero-copy leg: encode straight from the worker's
                    // arrays into the write batch, skipping both the
                    // `ParticleData` staging copy and the batch copy
                    wire::encode_particles_frame(mass, pos, vel, &mut scratch.batch);
                    Fast::Done(false)
                } else if worker.snapshot_into(&mut scratch.snap) {
                    wire::encode_particles_frame(
                        &scratch.snap.mass,
                        &scratch.snap.pos,
                        &scratch.snap.vel,
                        &mut scratch.batch,
                    );
                    Fast::Done(false)
                } else {
                    // fuse already burned: the fallback must not burn twice
                    match wire::decode_request(frame) {
                        Ok(req) => {
                            let mutating = req.mutating();
                            wire::encode_response(&worker.handle(req), out);
                            scratch.batch.extend_from_slice(out);
                            Fast::Done(mutating)
                        }
                        Err(_) => Fast::Fallback,
                    }
                }
            }
            Some(wire::op::KICK) if wire::decode_kick_into(frame, &mut scratch.dv).is_ok() => {
                if let Some(f) = fuse {
                    if f.fetch_sub(1, Ordering::SeqCst) <= 0 {
                        let _ = write_all_to(stream, &scratch.batch);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return Served::Crashed;
                    }
                }
                match worker.kick_slice(&scratch.dv) {
                    Some(flops) => {
                        wire::encode_ok_frame(flops, &mut scratch.batch);
                        Fast::Done(true)
                    }
                    None => {
                        let req = Request::Kick(std::mem::take(&mut scratch.dv));
                        wire::encode_response(&worker.handle(req), out);
                        scratch.batch.extend_from_slice(out);
                        Fast::Done(true)
                    }
                }
            }
            Some(wire::op::COMPUTE_KICK)
                if wire::decode_compute_kick_into(
                    frame,
                    &mut scratch.targets,
                    &mut scratch.source_pos,
                    &mut scratch.source_mass,
                )
                .is_ok() =>
            {
                if let Some(f) = fuse {
                    if f.fetch_sub(1, Ordering::SeqCst) <= 0 {
                        let _ = write_all_to(stream, &scratch.batch);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return Served::Crashed;
                    }
                }
                match worker.compute_kick_into(
                    &scratch.targets,
                    &scratch.source_pos,
                    &scratch.source_mass,
                    &mut scratch.acc,
                ) {
                    Some(flops) => {
                        wire::encode_accelerations_frame(&scratch.acc, flops, &mut scratch.batch);
                        Fast::Done(false)
                    }
                    None => {
                        let req = Request::ComputeKick {
                            targets: std::mem::take(&mut scratch.targets),
                            source_pos: std::mem::take(&mut scratch.source_pos),
                            source_mass: std::mem::take(&mut scratch.source_mass),
                        };
                        wire::encode_response(&worker.handle(req), out);
                        scratch.batch.extend_from_slice(out);
                        Fast::Done(false)
                    }
                }
            }
            _ => Fast::Fallback,
        };
        let (stop, mutating) = match fast {
            Fast::Done(mutating) => (false, mutating),
            Fast::Fallback => {
                let req = match wire::decode_request(frame) {
                    Ok(r) => r,
                    Err(e) => {
                        wire::encode_response(
                            &Response::Error(format!("protocol error: {e}")),
                            out,
                        );
                        scratch.batch.extend_from_slice(out);
                        let _ = flush_batch(stream, &mut scratch.batch, false);
                        return Served::KeepListening;
                    }
                };
                if let Some(f) = fuse {
                    if f.fetch_sub(1, Ordering::SeqCst) <= 0 {
                        // injected crash: vanish mid-conversation, no reply
                        let _ = write_all_to(stream, &scratch.batch);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        return Served::Crashed;
                    }
                }
                let stop = matches!(req, Request::Stop | Request::Shutdown);
                let mutating = req.mutating();
                wire::encode_response(&worker.handle(req), out);
                scratch.batch.extend_from_slice(out);
                (stop, mutating)
            }
        };
        // Cache before the reply leaves: if the write (or the coupler's
        // read of it) fails, the retried frame must find the cache.
        if seq != 0 && mutating {
            dedup.last_seq = seq;
            dedup.req_fp = frame_fingerprint(frame);
            dedup.cached.clear();
            dedup.cached.extend_from_slice(&scratch.batch[resp_start..]);
        }
        // A Stop/Shutdown reply always flushes: the conversation is
        // over. "More requests in flight" is answered by the read-ahead
        // buffer alone: a pipelining coupler's burst leaves in one
        // vectored write and lands in one kernel read, so further
        // requests of a burst are always already buffered — and when
        // the buffer is dry, flushing immediately is always *safe*
        // (deferral is the only thing that needs proof of a further
        // request), it just forgoes batching for bursts over
        // [`wire::READ_CHUNK`]. A kernel-level peek could recover those,
        // but costs three syscalls on every lock-step request.
        let more = !stop && reader.buffered();
        if !flush_batch(stream, &mut scratch.batch, more) {
            return if stop { Served::ShutDown } else { Served::KeepListening };
        }
        if stop {
            return Served::ShutDown;
        }
    }
}

/// Spawn a worker on its own thread behind a loopback TCP server bound
/// to an ephemeral port. The factory runs on the server thread (so
/// non-`Send` kernels still work); returns the address to
/// [`SocketChannel::connect`] to and the server thread's handle. The
/// server exits when a `Stop` request arrives — which
/// [`SocketChannel`]'s `Drop` sends automatically.
pub fn spawn_tcp_worker<F, W>(
    name: impl Into<String>,
    factory: F,
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>)
where
    F: FnOnce() -> W + Send + 'static,
    W: ModelWorker + 'static,
{
    let server = WorkerServer::bind(("127.0.0.1", 0)).expect("bind loopback listener");
    let addr = server.local_addr().expect("listener address");
    let name = name.into();
    let handle = std::thread::Builder::new()
        .name(format!("tcp-worker-{name}"))
        .spawn(move || {
            let mut worker = factory();
            server.serve(&mut worker)
        })
        .expect("spawn worker server thread");
    (addr, handle)
}

/// [`spawn_tcp_worker`] with a crash fuse: the worker serves normally
/// until `fuse` requests have been received, then the server "crashes"
/// — connection dropped without a reply, thread exits (see
/// [`WorkerServer::serve_with_fuse`]). Load the fuse with `i64::MAX`
/// for "never" and count it down from the test to kill the worker at a
/// deterministic point mid-run.
pub fn spawn_flaky_tcp_worker<F, W>(
    name: impl Into<String>,
    factory: F,
    fuse: Arc<AtomicI64>,
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>)
where
    F: FnOnce() -> W + Send + 'static,
    W: ModelWorker + 'static,
{
    let server = WorkerServer::bind(("127.0.0.1", 0)).expect("bind loopback listener");
    let addr = server.local_addr().expect("listener address");
    let name = name.into();
    let handle = std::thread::Builder::new()
        .name(format!("tcp-worker-{name}"))
        .spawn(move || {
            let mut worker = factory();
            server.serve_with_fuse(&mut worker, Some(&fuse))
        })
        .expect("spawn worker server thread");
    (addr, handle)
}

/// A drop-guard over spawned loopback worker servers: no exit path —
/// early return, failed `expect`, panicking assertion — may leak a
/// server thread blocked in `accept`.
///
/// The success path calls [`WorkerFleet::join_all`] after the channels
/// are dropped (their `Stop` frames end the servers) and surfaces any
/// server error. If the harness unwinds before that, `Drop` sends each
/// remaining server a clean v2 `Shutdown` over a fresh connection and
/// joins its thread, so the process ends with every worker reaped.
#[derive(Default)]
pub struct WorkerFleet {
    workers: Vec<(SocketAddr, Option<std::thread::JoinHandle<std::io::Result<()>>>)>,
}

impl WorkerFleet {
    /// An empty fleet.
    pub fn new() -> WorkerFleet {
        WorkerFleet::default()
    }

    /// Take ownership of an already-spawned server (the pair returned
    /// by [`spawn_tcp_worker`] / [`spawn_flaky_tcp_worker`]).
    pub fn adopt(
        &mut self,
        addr: SocketAddr,
        handle: std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        self.workers.push((addr, Some(handle)));
    }

    /// [`spawn_tcp_worker`] straight into the fleet.
    pub fn spawn<F, W>(&mut self, name: impl Into<String>, factory: F) -> SocketAddr
    where
        F: FnOnce() -> W + Send + 'static,
        W: ModelWorker + 'static,
    {
        let (addr, handle) = spawn_tcp_worker(name, factory);
        self.adopt(addr, handle);
        addr
    }

    /// Join every server thread, surfacing the first server error. Call
    /// after the channels are gone — a still-connected server never
    /// exits and this would hang.
    pub fn join_all(&mut self) -> std::io::Result<()> {
        let mut first_err = None;
        for (_, handle) in &mut self.workers {
            if let Some(h) = handle.take() {
                if let Err(e) = h.join().expect("worker server thread panicked") {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        for (addr, handle) in &mut self.workers {
            if let Some(h) = handle.take() {
                // best-effort: an already-stopped server refuses the
                // connection, a live one exits on the Shutdown frame
                let _ = SocketChannel::shutdown_worker(*addr);
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{GravityWorker, StellarWorker};
    use jc_nbody::plummer::plummer_sphere;
    use jc_nbody::Backend;

    #[test]
    fn socket_channel_round_trips_over_real_tcp() {
        let (addr, handle) =
            spawn_tcp_worker("grav", || GravityWorker::new(plummer_sphere(8, 1), Backend::Scalar));
        let mut c = SocketChannel::connect(addr, "grav").unwrap();
        assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
        match c.call(Request::GetParticles) {
            Response::Particles(p) => assert_eq!(p.mass.len(), 8),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().calls, 2);
        drop(c); // sends Stop
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn socket_channel_async_overlap() {
        let (a_addr, ah) = spawn_tcp_worker("sse-a", || StellarWorker::new(vec![1.0, 9.0], 0.02));
        let (b_addr, bh) = spawn_tcp_worker("sse-b", || StellarWorker::new(vec![2.0], 0.02));
        let mut a = SocketChannel::connect(a_addr, "sse-a").unwrap();
        let mut b = SocketChannel::connect(b_addr, "sse-b").unwrap();
        a.submit(Request::EvolveStars(5.0));
        b.submit(Request::EvolveStars(5.0));
        match a.collect() {
            Response::StellarUpdate { masses, .. } => assert_eq!(masses.len(), 2),
            other => panic!("{other:?}"),
        }
        match b.collect() {
            Response::StellarUpdate { masses, .. } => assert_eq!(masses.len(), 1),
            other => panic!("{other:?}"),
        }
        drop(a);
        drop(b);
        ah.join().unwrap().unwrap();
        bh.join().unwrap().unwrap();
    }

    #[test]
    fn channel_poisons_itself_after_a_wire_failure() {
        // a server that slams the connection mid-conversation: every
        // later call on the channel must fail fast with the original
        // error, not misparse a desynchronized stream
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let killer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close, no response ever
        });
        let mut c = SocketChannel::connect(addr, "doomed").unwrap();
        killer.join().unwrap();
        let r1 = c.call(Request::Ping);
        assert!(matches!(r1, Response::Error(_)), "{r1:?}");
        let r2 = c.call(Request::GetParticles);
        match (&r1, &r2) {
            (Response::Error(e1), Response::Error(e2)) => {
                assert_eq!(e1, e2, "poisoned channel echoes the original failure");
            }
            other => panic!("{other:?}"),
        }
        assert!(!c.snapshot_into(&mut crate::worker::ParticleData::default()));
    }

    #[test]
    fn dropping_mid_submit_still_stops_the_server() {
        let (addr, handle) =
            spawn_tcp_worker("grav", || GravityWorker::new(plummer_sphere(8, 3), Backend::Scalar));
        let mut c = SocketChannel::connect(addr, "grav").unwrap();
        c.submit(Request::EvolveTo(1e-3));
        drop(c); // drains the outstanding response, then sends Stop
        handle.join().unwrap().unwrap(); // must not hang on accept()
    }

    #[test]
    fn shutdown_request_terminates_a_lingering_server() {
        // poison the coupler's channel with a hostile frame so its Drop
        // cannot deliver Stop — the old leak scenario — then reap the
        // server with an explicit Shutdown on a fresh connection
        let (addr, handle) =
            spawn_tcp_worker("grav", || GravityWorker::new(plummer_sphere(4, 5), Backend::Scalar));
        {
            let mut c = SocketChannel::connect(addr, "grav").unwrap();
            assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
            // break the stream from underneath the channel
            c.stream.shutdown(std::net::Shutdown::Both).unwrap();
            assert!(matches!(c.call(Request::Ping), Response::Error(_)));
            drop(c); // poisoned: sends nothing
        }
        assert!(SocketChannel::shutdown_worker(addr), "worker acknowledges the shutdown");
        handle.join().unwrap().unwrap(); // thread exits deterministically
    }

    #[test]
    fn crash_fuse_kills_the_server_without_a_reply() {
        let fuse = Arc::new(AtomicI64::new(2));
        let (addr, handle) = spawn_flaky_tcp_worker(
            "doomed",
            || GravityWorker::new(plummer_sphere(4, 6), Backend::Scalar),
            fuse.clone(),
        );
        let mut c = SocketChannel::connect(addr, "doomed").unwrap();
        assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
        assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
        // third request burns the fuse: truncated stream, not an Error frame
        let r = c.call(Request::Ping);
        assert!(matches!(&r, Response::Error(e) if e.contains("wire error")), "{r:?}");
        assert!(!c.heal(), "a poisoned socket channel cannot heal itself");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn lost_response_to_a_mutating_request_is_not_double_applied() {
        use crate::chaos::{IoFault, RetryPolicy, StreamFaults};
        // control: one clean kick
        let (addr, handle) =
            spawn_tcp_worker("ctrl", || GravityWorker::new(plummer_sphere(4, 9), Backend::Scalar));
        let mut ctrl = SocketChannel::connect(addr, "ctrl").unwrap();
        assert!(matches!(ctrl.call(Request::Kick(vec![[0.5, 0.0, 0.0]; 4])), Response::Ok { .. }));
        let expected = match ctrl.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("{other:?}"),
        };
        drop(ctrl);
        handle.join().unwrap().unwrap();

        // chaos: the kick's response is lost to an injected read
        // timeout; the retry resends the same sequence number and the
        // server must replay, not re-apply
        let (addr, handle) =
            spawn_tcp_worker("flaky", || GravityWorker::new(plummer_sphere(4, 9), Backend::Scalar));
        let mut c = SocketChannel::connect(addr, "flaky")
            .unwrap()
            .with_retry(RetryPolicy { backoff_base_ms: 1, ..RetryPolicy::standard(7) })
            .with_chaos(StreamFaults::default().with_read(1, IoFault::ReadTimeout));
        assert!(matches!(c.call(Request::Kick(vec![[0.5, 0.0, 0.0]; 4])), Response::Ok { .. }));
        assert_eq!(c.stats().retries, 1, "exactly one in-place retry");
        match c.call(Request::GetParticles) {
            Response::Particles(p) => {
                for (a, b) in p.vel.iter().zip(&expected.vel) {
                    for k in 0..3 {
                        assert_eq!(a[k].to_bits(), b[k].to_bits(), "kick applied exactly once");
                    }
                }
            }
            other => panic!("{other:?}"),
        }
        drop(c);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stale_dedup_does_not_swallow_a_new_connections_request() {
        // The dedup cache outlives connections on purpose. A fresh
        // channel restarts its numbering at 1, so when the previous
        // connection's first request was mutating, the new channel's
        // first mutating request lands exactly on the stale last_seq —
        // it must still be applied (different bytes: not a resend), not
        // answered from the cache.
        let (addr, handle) =
            spawn_tcp_worker("ctrl", || GravityWorker::new(plummer_sphere(4, 11), Backend::Scalar));
        let mut ctrl = SocketChannel::connect(addr, "ctrl").unwrap();
        assert!(matches!(ctrl.call(Request::Kick(vec![[0.5, 0.0, 0.0]; 4])), Response::Ok { .. }));
        assert!(matches!(ctrl.call(Request::Kick(vec![[0.0, 0.25, 0.0]; 4])), Response::Ok { .. }));
        let expected = match ctrl.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("{other:?}"),
        };
        drop(ctrl);
        handle.join().unwrap().unwrap();

        let (addr, handle) =
            spawn_tcp_worker("grav", || GravityWorker::new(plummer_sphere(4, 11), Backend::Scalar));
        {
            let mut a = SocketChannel::connect(addr, "first").unwrap();
            // first request mutating: seq 1 lands in the dedup cache
            assert!(matches!(a.call(Request::Kick(vec![[0.5, 0.0, 0.0]; 4])), Response::Ok { .. }));
            a.stop_on_drop = false; // vanish without Stop, server keeps listening
        }
        let mut b = SocketChannel::connect(addr, "second").unwrap();
        // b's first request is also seq 1, also mutating, different bytes
        assert!(matches!(b.call(Request::Kick(vec![[0.0, 0.25, 0.0]; 4])), Response::Ok { .. }));
        match b.call(Request::GetParticles) {
            Response::Particles(p) => {
                for (x, y) in p.vel.iter().zip(&expected.vel) {
                    for k in 0..3 {
                        assert_eq!(x[k].to_bits(), y[k].to_bits(), "both kicks applied");
                    }
                }
            }
            other => panic!("{other:?}"),
        }
        drop(b);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_reaps_a_server_whose_stale_dedup_holds_seq_one() {
        // A coupler whose *first* request was mutating dies without
        // Stop; shutdown_worker's fresh channel stamps its Shutdown
        // with seq 1, colliding with the stale cache. The Shutdown must
        // be executed (server exits, join returns), not answered with
        // the cached Kick reply.
        let (addr, handle) =
            spawn_tcp_worker("grav", || GravityWorker::new(plummer_sphere(4, 12), Backend::Scalar));
        {
            let mut a = SocketChannel::connect(addr, "doomed").unwrap();
            assert!(matches!(a.call(Request::Kick(vec![[0.1, 0.0, 0.0]; 4])), Response::Ok { .. }));
            a.stop_on_drop = false;
        }
        assert!(SocketChannel::shutdown_worker(addr), "worker acknowledges the shutdown");
        handle.join().unwrap().unwrap(); // server actually exited
    }

    #[test]
    fn seq_wrap_collision_applies_the_new_request() {
        // A long-lived channel reuses a sequence number after 65535
        // frames. Simulate the wrap by rewinding the client's counter:
        // the second (different) Kick reuses seq 1 and must be applied.
        let (addr, handle) =
            spawn_tcp_worker("grav", || GravityWorker::new(plummer_sphere(4, 13), Backend::Scalar));
        let mut c = SocketChannel::connect(addr, "wrap").unwrap();
        assert!(matches!(c.call(Request::Kick(vec![[0.5, 0.0, 0.0]; 4])), Response::Ok { .. }));
        let before = match c.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("{other:?}"),
        };
        c.seq = 0; // next stamp is 1 again, as after a full wrap
        assert!(matches!(c.call(Request::Kick(vec![[0.0, 0.25, 0.0]; 4])), Response::Ok { .. }));
        match c.call(Request::GetParticles) {
            Response::Particles(p) => {
                for (x, y) in p.vel.iter().zip(&before.vel) {
                    assert_eq!(x[1].to_bits(), (y[1] + 0.25).to_bits(), "second kick applied");
                    assert_eq!(x[0].to_bits(), y[0].to_bits());
                }
            }
            other => panic!("{other:?}"),
        }
        drop(c);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn bytes_out_is_credited_when_the_response_never_arrives() {
        // send succeeds, recv fails fatally (server crashes without
        // replying): the frame left the machine, so bytes_out must
        // reflect it even though the call failed.
        let fuse = Arc::new(AtomicI64::new(1));
        let (addr, handle) = spawn_flaky_tcp_worker(
            "doomed",
            || GravityWorker::new(plummer_sphere(4, 14), Backend::Scalar),
            fuse,
        );
        let mut c = SocketChannel::connect(addr, "doomed").unwrap();
        assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
        let after_ok = c.stats();
        let r = c.call(Request::Ping);
        assert!(matches!(&r, Response::Error(_)), "{r:?}");
        let after_err = c.stats();
        assert_eq!(
            after_err.bytes_out,
            after_ok.bytes_out + Request::Ping.wire_size(),
            "the failed call's request frame still counts as sent"
        );
        assert_eq!(after_err.bytes_in, after_ok.bytes_in, "no response ever arrived");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn partial_write_is_absorbed_by_an_in_place_retry() {
        use crate::chaos::{IoFault, RetryPolicy, StreamFaults};
        let (addr, handle) = spawn_tcp_worker("torn", || StellarWorker::new(vec![1.0, 9.0], 0.02));
        let mut c = SocketChannel::connect(addr, "torn")
            .unwrap()
            .with_retry(RetryPolicy { backoff_base_ms: 1, ..RetryPolicy::standard(3) })
            .with_chaos(StreamFaults::default().with_write(2, IoFault::PartialWrite));
        assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
        // second frame is torn mid-write: the server sees a truncated
        // frame, the client reconnects and resends
        match c.call(Request::EvolveStars(5.0)) {
            Response::StellarUpdate { masses, .. } => assert_eq!(masses.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().retries, 1);
        assert_eq!(c.stats().calls, 2);
        drop(c);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn server_survives_a_dirty_connection() {
        let (addr, handle) =
            spawn_tcp_worker("grav", || GravityWorker::new(plummer_sphere(4, 2), Backend::Scalar));
        // hostile client: garbage bytes, then hang up
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"definitely not a frame, far more than thirty-two bytes").unwrap();
            let _ = raw.shutdown(std::net::Shutdown::Write);
        }
        // a well-behaved client still gets served afterwards
        let mut c = SocketChannel::connect(addr, "grav").unwrap();
        assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
        drop(c);
        handle.join().unwrap().unwrap();
    }
}
