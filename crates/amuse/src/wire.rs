//! The binary wire protocol for remote workers.
//!
//! Every RPC crossing a real transport is one *frame*: a fixed 32-byte
//! header followed by a payload of little-endian scalars. The layout is
//! chosen so that the physical frame size of every message equals the
//! modeled [`Request::wire_size`]/[`Response::wire_size`] exactly — the
//! traffic accounting the in-process channels simulate is what a
//! [`crate::SocketChannel`] actually puts on the wire.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic 0x4A43_5752 ("JCWR", little-endian u32)
//!      4     1  version (the *lowest* protocol version defining the opcode)
//!      5     1  opcode (request 0x01..=0x0D, response 0x81..=0x87)
//!      6     2  sequence number (u16, 0 = unsequenced; see below)
//!      8     8  payload length in bytes (u64)
//!     16     8  aux0 — opcode-specific count / bits (u64)
//!     24     8  aux1 — opcode-specific count / bits (u64)
//!     32     …  payload
//! ```
//!
//! Floats travel as raw IEEE-754 bits (`f64::to_le_bytes`), so NaN
//! payloads and signed zeros round-trip bit-exactly. Decoding never
//! panics and never allocates more than the received payload: the length
//! is capped at [`MAX_PAYLOAD`] and validated against the opcode's aux
//! counts *before* any buffer is sized from it.
//!
//! # Version negotiation
//!
//! There is no handshake; negotiation is per frame and stateless:
//!
//! * An encoder stamps each frame with the **lowest** protocol version
//!   that defines its opcode ([`opcode_version`]) — never its own
//!   [`VERSION`]. Version 1 covers the original RPC surface; version 2
//!   added the checkpoint/failover opcodes (`SaveState` / `LoadState` /
//!   `Shutdown` / `State`).
//! * A decoder accepts every version up to its own [`VERSION`] and
//!   rejects newer frames with [`WireError::BadVersion`] *before*
//!   trusting the length field. A frame whose version byte is older
//!   than its opcode requires is likewise rejected (a v1 stamp on a v2
//!   opcode is a forgery, not a compatibility case).
//!
//! Consequence: a v2 coupler stays wire-compatible with a v1 worker as
//! long as it only uses the v1 subset, and the first v2 frame it sends
//! is answered by a clean `BadVersion` error — never misparsed. This is
//! the same additive-opcode rule the checkpoint container relies on
//! (see [`crate::checkpoint`]).
//!
//! # Checkpoint state frames
//!
//! A `SaveState` request is answered by a `State` response whose payload
//! is one [`ModelState`] body; a `LoadState` request carries the same
//! body. The body layout, with `aux0` = state kind (0 stateless,
//! 1 gravity, 2 hydro, 3 stellar) and `aux1` = element count n:
//!
//! ```text
//! kind       payload (little-endian f64 unless noted)         length
//! ---------  ----------------------------------------------   --------
//! stateless  (empty)                                          0
//! gravity    time, mass[n], pos[3n], vel[3n]                  8 + 56 n
//! hydro      time, mass[n], pos[3n], vel[3n],
//!            u[n], rho[n], h[n]                               8 + 80 n
//! stellar    time_myr, z, initial_mass[n], exploded[n] (u8)   16 + 9 n
//! ```
//!
//! The same frames are what [`crate::checkpoint::Checkpoint::write_to`]
//! writes to disk — the checkpoint container is a sequence of wire
//! frames behind a 40-byte file header.
//!
//! The `decode_*_into` functions are the coupler-side fast paths: they
//! parse a response frame straight into caller-owned buffers, so a warm
//! [`crate::SocketChannel`] round trip performs no heap allocation.
//!
//! # Sequence numbers and idempotent retry
//!
//! Bytes 6–7 of the header carry a per-request **sequence number**
//! (little-endian u16, written by [`set_seq`], read back by
//! [`frame_seq`]). `begin_frame` stamps 0 — "unsequenced" — so encoders
//! that never retry are unchanged, and pre-seq peers (which wrote and
//! ignored zeros here) stay wire-compatible. A [`crate::SocketChannel`]
//! stamps each fresh request with the next nonzero sequence number and
//! *reuses* it when it resends the same frame after a transient
//! transport fault; the server ([`crate::WorkerServer`]) remembers the
//! last applied nonzero sequence number per worker — together with a
//! fingerprint of the applied frame's bytes, because its dedup state
//! outlives connections and the 16-bit space wraps, so seq equality
//! alone does not prove a resend — and answers a duplicate (same seq,
//! same bytes) by replaying the cached response instead of re-applying
//! the request. That is what makes mutating requests (`Kick`,
//! `SetMasses`, …) safe to retry in place — see
//! [`crate::worker::Request::mutating`] and the failure-model table in
//! `docs/ARCHITECTURE.md`.

use crate::checkpoint::ModelState;
use crate::worker::{ParticleData, Request, Response};
use jc_stellar::StellarEvent;
use std::io::{Read, Write};

/// Frame magic ("JCWR" as a little-endian u32).
pub const MAGIC: u32 = 0x4A43_5752;
/// Current protocol version (see the module docs for the negotiation
/// rules; individual frames are stamped with [`opcode_version`]).
pub const VERSION: u8 = 2;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Maximum accepted payload size (256 MiB). A length prefix beyond this
/// is rejected before any allocation happens.
pub const MAX_PAYLOAD: u64 = 1 << 28;
/// Receive-buffer growth step: [`read_frame`] grows its scratch towards
/// the declared payload length one chunk at a time, as bytes arrive.
pub const READ_CHUNK: usize = 1 << 16;
/// Byte offset of the sequence-number field (u16 LE) within the header.
/// [`set_seq`], [`frame_seq`], and [`parse_header`] all key on this one
/// constant so the stamp, dedup, and decode paths cannot drift apart
/// (the `wire-exhaustiveness` lint checks each of them names it).
pub const SEQ_OFFSET: usize = 6;

/// Request opcodes.
pub mod op {
    /// [`super::Request::Ping`]
    pub const PING: u8 = 0x01;
    /// [`super::Request::EvolveTo`]
    pub const EVOLVE_TO: u8 = 0x02;
    /// [`super::Request::GetParticles`]
    pub const GET_PARTICLES: u8 = 0x03;
    /// [`super::Request::SetMasses`]
    pub const SET_MASSES: u8 = 0x04;
    /// [`super::Request::Kick`]
    pub const KICK: u8 = 0x05;
    /// [`super::Request::ComputeKick`]
    pub const COMPUTE_KICK: u8 = 0x06;
    /// [`super::Request::EvolveStars`]
    pub const EVOLVE_STARS: u8 = 0x07;
    /// [`super::Request::InjectEnergy`]
    pub const INJECT_ENERGY: u8 = 0x08;
    /// [`super::Request::AddGas`]
    pub const ADD_GAS: u8 = 0x09;
    /// [`super::Request::Stop`]
    pub const STOP: u8 = 0x0A;
    /// [`super::Request::SaveState`] (protocol v2)
    pub const SAVE_STATE: u8 = 0x0B;
    /// [`super::Request::LoadState`] (protocol v2)
    pub const LOAD_STATE: u8 = 0x0C;
    /// [`super::Request::Shutdown`] (protocol v2)
    pub const SHUTDOWN: u8 = 0x0D;
    /// [`super::Response::Ok`]
    pub const RESP_OK: u8 = 0x81;
    /// [`super::Response::Particles`]
    pub const RESP_PARTICLES: u8 = 0x82;
    /// [`super::Response::Accelerations`]
    pub const RESP_ACCELERATIONS: u8 = 0x83;
    /// [`super::Response::StellarUpdate`]
    pub const RESP_STELLAR_UPDATE: u8 = 0x84;
    /// [`super::Response::Unsupported`]
    pub const RESP_UNSUPPORTED: u8 = 0x85;
    /// [`super::Response::Error`]
    pub const RESP_ERROR: u8 = 0x86;
    /// [`super::Response::State`] (protocol v2)
    pub const RESP_STATE: u8 = 0x87;
}

/// The lowest protocol version that defines `opcode` — what encoders
/// stamp into the version byte (see the module docs). Every known
/// opcode is named explicitly (enforced by the `wire-exhaustiveness`
/// lint): a new opcode that fell into a `_ => 1` wildcard would be
/// silently stamped v1 and accepted by peers that predate it. Unknown
/// opcodes report 1 so that they are rejected as
/// [`WireError::UnknownOpcode`], not misblamed on the version byte.
pub const fn opcode_version(opcode: u8) -> u8 {
    match opcode {
        op::PING
        | op::EVOLVE_TO
        | op::GET_PARTICLES
        | op::SET_MASSES
        | op::KICK
        | op::COMPUTE_KICK
        | op::EVOLVE_STARS
        | op::INJECT_ENERGY
        | op::ADD_GAS
        | op::STOP
        | op::RESP_OK
        | op::RESP_PARTICLES
        | op::RESP_ACCELERATIONS
        | op::RESP_STELLAR_UPDATE
        | op::RESP_UNSUPPORTED
        | op::RESP_ERROR => 1,
        op::SAVE_STATE | op::LOAD_STATE | op::SHUTDOWN | op::RESP_STATE => 2,
        _ => 1,
    }
}

/// Everything that can go wrong on the wire. Decoding is total: corrupt
/// or hostile input yields one of these, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The peer closed the connection cleanly (EOF between frames).
    Closed,
    /// An I/O error from the underlying transport.
    Io(std::io::ErrorKind),
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the frame needed.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic(u32),
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The opcode byte names no known message.
    UnknownOpcode(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized(u64),
    /// The payload length is inconsistent with the opcode's aux counts.
    BadLength {
        /// Offending opcode.
        opcode: u8,
        /// Declared payload length.
        len: u64,
        /// Declared aux0.
        aux0: u64,
        /// Declared aux1.
        aux1: u64,
    },
    /// A stellar event record has an unknown kind tag.
    BadEventKind(u64),
    /// An error string payload is not valid UTF-8.
    Utf8,
    /// A fast-path decoder got a different (valid) response opcode.
    Unexpected(u8),
    /// The request's retry/backoff loop ran out of wall-clock budget
    /// (see [`crate::chaos::RetryPolicy::deadline_ms`]). Deliberately
    /// *not* transient: the whole point of the deadline is to stop
    /// retrying in place and hand the failure to the heal/restore
    /// ladder.
    DeadlineExceeded {
        /// The budget that was exhausted, in milliseconds.
        budget_ms: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(k) => write!(f, "i/o error: {k:?}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::Oversized(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            WireError::BadLength { opcode, len, aux0, aux1 } => write!(
                f,
                "payload length {len} inconsistent with opcode {opcode:#04x} (aux {aux0}, {aux1})"
            ),
            WireError::BadEventKind(k) => write!(f, "unknown stellar event kind {k}"),
            WireError::Utf8 => write!(f, "error string is not valid UTF-8"),
            WireError::Unexpected(o) => write!(f, "unexpected response opcode {o:#04x}"),
            WireError::DeadlineExceeded { budget_ms } => {
                write!(f, "request deadline of {budget_ms} ms exceeded")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// The transient/fatal taxonomy for the retry layer: is this the
    /// kind of failure a bounded reconnect-and-resend can fix?
    ///
    /// *Transient* covers everything transport-shaped — I/O errors,
    /// closed or truncated streams, and frames whose header arrived
    /// damaged (bad magic/version, oversized or unknown opcode): the
    /// request may or may not have been applied, but the sequence-number
    /// dedup (see the module docs) makes resending it safe either way.
    /// *Fatal* covers structurally-wrong payloads on an intact frame
    /// (`BadLength`, `BadEventKind`, `Utf8`, `Unexpected`): those mean a
    /// peer bug, and retrying would deterministically fail again —
    /// escalate to the heal/restore path instead.
    pub fn is_transient(&self) -> bool {
        match self {
            WireError::Closed
            | WireError::Io(_)
            | WireError::Truncated { .. }
            | WireError::BadMagic(_)
            | WireError::BadVersion(_)
            | WireError::UnknownOpcode(_)
            | WireError::Oversized(_) => true,
            WireError::BadLength { .. }
            | WireError::BadEventKind(_)
            | WireError::Utf8
            | WireError::Unexpected(_)
            | WireError::DeadlineExceeded { .. } => false,
        }
    }
}

/// A parsed frame header.
#[derive(Clone, Copy, Debug)]
pub struct Header {
    /// Message opcode.
    pub opcode: u8,
    /// Sequence number (0 = unsequenced; see the module docs).
    pub seq: u16,
    /// Payload length in bytes.
    pub len: u64,
    /// Opcode-specific count / bits.
    pub aux0: u64,
    /// Opcode-specific count / bits.
    pub aux1: u64,
}

/// Stamp a sequence number into an already-encoded frame (bytes
/// [`SEQ_OFFSET`]`..+2`, little-endian). The frame length is unchanged,
/// so the physical-size-equals-`wire_size` invariant holds regardless
/// of stamping. Panics (debug) on a buffer shorter than a header.
pub fn set_seq(frame: &mut [u8], seq: u16) {
    debug_assert!(frame.len() >= HEADER_LEN, "not an encoded frame");
    frame[SEQ_OFFSET..SEQ_OFFSET + 2].copy_from_slice(&seq.to_le_bytes());
}

/// Read the sequence number back out of an encoded frame without a full
/// header parse (the server's dedup check runs before decode). Returns
/// 0 — unsequenced — for a buffer shorter than a header.
pub fn frame_seq(frame: &[u8]) -> u16 {
    if frame.len() < HEADER_LEN {
        return 0;
    }
    u16::from_le_bytes(frame[SEQ_OFFSET..SEQ_OFFSET + 2].try_into().unwrap())
}

// --------------------------------------------------------------------------
// encoding

#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_v3(buf: &mut Vec<u8>, v: &[f64; 3]) {
    put_f64(buf, v[0]);
    put_f64(buf, v[1]);
    put_f64(buf, v[2]);
}

/// Bulk little-endian append of a float column.
///
/// On a little-endian target the wire encoding of an `f64` column *is*
/// its in-memory byte image, so the whole column appends as one
/// `memcpy`; this is the dominant cost of encoding the multi-KB
/// kick/snapshot frames of a coupled step. Other targets take the
/// portable per-element conversion through a fixed stack block (which
/// keeps the inner loop free of `Vec` capacity checks so it
/// vectorizes).
fn put_f64s(buf: &mut Vec<u8>, xs: &[f64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `f64` is plain old data (size 8, no padding, every
        // byte initialized), and on a little-endian target its memory
        // bytes equal `to_le_bytes`; viewing the column as `8 * len`
        // bytes is exact. u8 has no alignment requirement.
        let bytes = unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), 8 * xs.len()) };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut tmp = [0u8; 8 * 64];
        for block in xs.chunks(64) {
            for (d, &x) in tmp.chunks_exact_mut(8).zip(block) {
                d.copy_from_slice(&x.to_le_bytes());
            }
            buf.extend_from_slice(&tmp[..8 * block.len()]);
        }
    }
}

/// Bulk little-endian append of a 3-vector column (see [`put_f64s`]).
fn put_v3s(buf: &mut Vec<u8>, xs: &[[f64; 3]]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `[f64; 3]` is size 24 with no padding and arrays are
        // contiguous, so the column is exactly `24 * len` initialized
        // bytes; on a little-endian target those bytes are the wire
        // encoding. u8 has no alignment requirement.
        let bytes = unsafe { std::slice::from_raw_parts(xs.as_ptr().cast::<u8>(), 24 * xs.len()) };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    {
        let mut tmp = [0u8; 24 * 32];
        for block in xs.chunks(32) {
            for (d, v) in tmp.chunks_exact_mut(24).zip(block) {
                d[0..8].copy_from_slice(&v[0].to_le_bytes());
                d[8..16].copy_from_slice(&v[1].to_le_bytes());
                d[16..24].copy_from_slice(&v[2].to_le_bytes());
            }
            buf.extend_from_slice(&tmp[..24 * block.len()]);
        }
    }
}

/// Bulk decode of a float column from exactly `8 * n` payload bytes
/// (callers slice the validated section first). Little-endian targets
/// decode with one `memcpy` into the column (any bit pattern is a valid
/// `f64`, and a byte copy tolerates the unaligned wire buffer); others
/// take the portable `chunks_exact` loop, whose carried length proof
/// compiles without per-element bounds checks.
fn get_f64s_into(out: &mut Vec<f64>, p: &[u8]) {
    debug_assert_eq!(p.len() % 8, 0);
    out.clear();
    #[cfg(target_endian = "little")]
    {
        let n = p.len() / 8;
        out.reserve(n);
        // SAFETY: `reserve` guarantees capacity for `n` elements, the
        // byte copy writes exactly `8 * n` bytes = `n` `f64`s through
        // the u8 view (no alignment constraint), every bit pattern is a
        // valid `f64`, and `set_len` publishes only what was written.
        unsafe {
            std::ptr::copy_nonoverlapping(p.as_ptr(), out.as_mut_ptr().cast::<u8>(), 8 * n);
            out.set_len(n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    out.extend(p.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())));
}

/// Bulk decode of a 3-vector column from exactly `24 * n` payload bytes
/// (see [`get_f64s_into`]).
fn get_v3s_into(out: &mut Vec<[f64; 3]>, p: &[u8]) {
    debug_assert_eq!(p.len() % 24, 0);
    out.clear();
    #[cfg(target_endian = "little")]
    {
        let n = p.len() / 24;
        out.reserve(n);
        // SAFETY: as in `get_f64s_into`, with `[f64; 3]` being 24
        // padding-free bytes whose little-endian image is the wire
        // encoding.
        unsafe {
            std::ptr::copy_nonoverlapping(p.as_ptr(), out.as_mut_ptr().cast::<u8>(), 24 * n);
            out.set_len(n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    out.extend(p.chunks_exact(24).map(|c| {
        [
            f64::from_le_bytes(c[0..8].try_into().unwrap()),
            f64::from_le_bytes(c[8..16].try_into().unwrap()),
            f64::from_le_bytes(c[16..24].try_into().unwrap()),
        ]
    }));
}

/// [`get_f64s_into`] allocating a fresh column.
fn get_f64s(p: &[u8]) -> Vec<f64> {
    let mut v = Vec::new();
    get_f64s_into(&mut v, p);
    v
}

/// [`get_v3s_into`] allocating a fresh column.
fn get_v3s(p: &[u8]) -> Vec<[f64; 3]> {
    let mut v = Vec::new();
    get_v3s_into(&mut v, p);
    v
}

/// Clear `buf` and write a frame header for `opcode` with the given
/// payload length and aux fields; the payload follows.
fn begin_frame(buf: &mut Vec<u8>, opcode: u8, payload_len: u64, aux0: u64, aux1: u64) {
    buf.clear();
    begin_frame_at(buf, opcode, payload_len, aux0, aux1);
}

/// [`begin_frame`] without the clear: the header is appended after
/// whatever `buf` already holds. The appending frame encoders build on
/// this so a server can encode a pipelined burst's responses
/// back-to-back into one write buffer.
fn begin_frame_at(buf: &mut Vec<u8>, opcode: u8, payload_len: u64, aux0: u64, aux1: u64) {
    buf.reserve(HEADER_LEN + payload_len as usize);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(opcode_version(opcode));
    buf.push(opcode);
    buf.extend_from_slice(&[0u8; 2]);
    put_u64(buf, payload_len);
    put_u64(buf, aux0);
    put_u64(buf, aux1);
}

/// Encode a header-only request (`Ping`/`GetParticles`/`Stop`).
pub fn encode_simple_request(opcode: u8, buf: &mut Vec<u8>) {
    begin_frame(buf, opcode, 0, 0, 0);
}

/// Encode a `Particles` response frame straight from borrowed columns —
/// the server's `GetParticles` fast path, skipping the owned
/// [`Response`] a `worker.handle` round would allocate. **Appends** to
/// `buf` (unlike the clearing `encode_*` family): the server batches a
/// pipelined burst's responses back-to-back in one write buffer.
// jc-lint: no-alloc
pub fn encode_particles_frame(mass: &[f64], pos: &[[f64; 3]], vel: &[[f64; 3]], buf: &mut Vec<u8>) {
    let n = mass.len();
    assert!(pos.len() == n && vel.len() == n, "ragged particle snapshot");
    begin_frame_at(buf, op::RESP_PARTICLES, 56 * n as u64, n as u64, 0);
    put_f64s(buf, mass);
    put_v3s(buf, pos);
    put_v3s(buf, vel);
}

/// Encode an `Accelerations` response frame from a borrowed slice (the
/// server's `ComputeKick` fast path; flops ride in aux1 so the payload
/// stays the modeled 24·n). **Appends** to `buf`, like
/// [`encode_particles_frame`].
// jc-lint: no-alloc
pub fn encode_accelerations_frame(acc: &[[f64; 3]], flops: f64, buf: &mut Vec<u8>) {
    begin_frame_at(
        buf,
        op::RESP_ACCELERATIONS,
        24 * acc.len() as u64,
        acc.len() as u64,
        flops.to_bits(),
    );
    put_v3s(buf, acc);
}

/// Encode an `Ok` response frame (the server's mutating fast paths).
/// **Appends** to `buf`, like [`encode_particles_frame`].
// jc-lint: no-alloc
pub fn encode_ok_frame(flops: f64, buf: &mut Vec<u8>) {
    begin_frame_at(buf, op::RESP_OK, 8, 0, 0);
    put_f64(buf, flops);
}

/// Encode `EvolveTo`/`EvolveStars` (8-byte time payload).
pub fn encode_evolve(opcode: u8, t: f64, buf: &mut Vec<u8>) {
    begin_frame(buf, opcode, 8, 0, 0);
    put_f64(buf, t);
}

/// Encode `SetMasses` from a borrowed slice.
pub fn encode_set_masses(masses: &[f64], buf: &mut Vec<u8>) {
    begin_frame(buf, op::SET_MASSES, 8 * masses.len() as u64, masses.len() as u64, 0);
    put_f64s(buf, masses);
}

/// Encode `Kick` from a borrowed slice (the coupler's per-step fast path).
pub fn encode_kick(dv: &[[f64; 3]], buf: &mut Vec<u8>) {
    begin_frame(buf, op::KICK, 24 * dv.len() as u64, dv.len() as u64, 0);
    put_v3s(buf, dv);
}

/// Encode `ComputeKick` from borrowed slices. `source_pos` and
/// `source_mass` must have equal length.
pub fn encode_compute_kick(
    targets: &[[f64; 3]],
    source_pos: &[[f64; 3]],
    source_mass: &[f64],
    buf: &mut Vec<u8>,
) {
    assert_eq!(source_pos.len(), source_mass.len(), "source arrays length mismatch");
    let len = 24 * (targets.len() + source_pos.len()) as u64 + 8 * source_mass.len() as u64;
    begin_frame(buf, op::COMPUTE_KICK, len, targets.len() as u64, source_pos.len() as u64);
    put_v3s(buf, targets);
    put_v3s(buf, source_pos);
    put_f64s(buf, source_mass);
}

/// The `aux0` kind tag of a state body (see the module docs).
fn state_kind_tag(s: &ModelState) -> u64 {
    match s {
        ModelState::Stateless => 0,
        ModelState::Gravity { .. } => 1,
        ModelState::Hydro { .. } => 2,
        ModelState::Stellar { .. } => 3,
    }
}

/// Encode a [`ModelState`] as a full frame under `opcode`
/// (`LOAD_STATE` or `RESP_STATE`): aux0 = kind, aux1 = element count.
/// Crate-visible so the checkpoint container writer can frame a
/// borrowed state without cloning it into a [`Response`] first.
pub(crate) fn encode_state_frame(opcode: u8, s: &ModelState, buf: &mut Vec<u8>) {
    // the header is sized from the element count, so a ragged state
    // would desynchronize the stream — reject it before any byte moves
    let n = s.len();
    match s {
        ModelState::Stateless => {}
        ModelState::Gravity { mass, pos, vel, .. } => {
            assert!(pos.len() == n && vel.len() == n && mass.len() == n, "ragged gravity state");
        }
        ModelState::Hydro { mass, pos, vel, u, rho, h, .. } => {
            assert!(
                [mass.len(), pos.len(), vel.len(), u.len(), rho.len(), h.len()] == [n; 6],
                "ragged hydro state"
            );
        }
        ModelState::Stellar { initial_masses, exploded, .. } => {
            assert!(initial_masses.len() == n && exploded.len() == n, "ragged stellar state");
        }
    }
    begin_frame(buf, opcode, s.wire_body_size(), state_kind_tag(s), s.len() as u64);
    match s {
        ModelState::Stateless => {}
        ModelState::Gravity { time, mass, pos, vel } => {
            put_f64(buf, *time);
            put_f64s(buf, mass);
            put_v3s(buf, pos);
            put_v3s(buf, vel);
        }
        ModelState::Hydro { time, mass, pos, vel, u, rho, h } => {
            put_f64(buf, *time);
            put_f64s(buf, mass);
            put_v3s(buf, pos);
            put_v3s(buf, vel);
            for col in [u, rho, h] {
                put_f64s(buf, col);
            }
        }
        ModelState::Stellar { time_myr, z, initial_masses, exploded } => {
            put_f64(buf, *time_myr);
            put_f64(buf, *z);
            put_f64s(buf, initial_masses);
            for &e in exploded {
                buf.push(e as u8);
            }
        }
    }
}

/// Decode a state body from a validated frame (header + payload).
fn decode_state(h: &Header, p: &[u8]) -> Result<ModelState, WireError> {
    let n64 = h.aux1;
    let expect = match h.aux0 {
        0 => (n64 == 0).then_some(0),
        1 => n64.checked_mul(56).and_then(|b| b.checked_add(8)),
        2 => n64.checked_mul(80).and_then(|b| b.checked_add(8)),
        3 => n64.checked_mul(9).and_then(|b| b.checked_add(16)),
        _ => None,
    };
    if expect != Some(h.len) {
        return Err(bad_length(h));
    }
    let n = n64 as usize;
    Ok(match h.aux0 {
        0 => ModelState::Stateless,
        1 => {
            let (op_, ov) = (8 + 8 * n, 8 + 32 * n);
            ModelState::Gravity {
                time: get_f64(p, 0),
                mass: get_f64s(&p[8..op_]),
                pos: get_v3s(&p[op_..ov]),
                vel: get_v3s(&p[ov..ov + 24 * n]),
            }
        }
        2 => {
            let (op_, ov) = (8 + 8 * n, 8 + 32 * n);
            let (ou, orho, oh) = (8 + 56 * n, 8 + 64 * n, 8 + 72 * n);
            ModelState::Hydro {
                time: get_f64(p, 0),
                mass: get_f64s(&p[8..op_]),
                pos: get_v3s(&p[op_..ov]),
                vel: get_v3s(&p[ov..ou]),
                u: get_f64s(&p[ou..orho]),
                rho: get_f64s(&p[orho..oh]),
                h: get_f64s(&p[oh..oh + 8 * n]),
            }
        }
        _ => ModelState::Stellar {
            time_myr: get_f64(p, 0),
            z: get_f64(p, 8),
            initial_masses: get_f64s(&p[16..16 + 8 * n]),
            exploded: (0..n).map(|i| p[16 + 8 * n + i] != 0).collect(),
        },
    })
}

/// Encode any [`Request`] into `buf` (cleared first). The encoded frame
/// is exactly [`Request::wire_size`] bytes long.
// jc-lint: no-alloc
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Ping => encode_simple_request(op::PING, buf),
        Request::GetParticles => encode_simple_request(op::GET_PARTICLES, buf),
        Request::Stop => encode_simple_request(op::STOP, buf),
        Request::SaveState => encode_simple_request(op::SAVE_STATE, buf),
        Request::Shutdown => encode_simple_request(op::SHUTDOWN, buf),
        Request::LoadState(s) => encode_state_frame(op::LOAD_STATE, s, buf),
        Request::EvolveTo(t) => encode_evolve(op::EVOLVE_TO, *t, buf),
        Request::EvolveStars(t) => encode_evolve(op::EVOLVE_STARS, *t, buf),
        Request::SetMasses(m) => encode_set_masses(m, buf),
        Request::Kick(dv) => encode_kick(dv, buf),
        Request::ComputeKick { targets, source_pos, source_mass } => {
            encode_compute_kick(targets, source_pos, source_mass, buf)
        }
        Request::InjectEnergy { center, radius, energy } => {
            begin_frame(buf, op::INJECT_ENERGY, 40, 0, 0);
            put_v3(buf, center);
            put_f64(buf, *radius);
            put_f64(buf, *energy);
        }
        Request::AddGas { pos, mass, u } => {
            begin_frame(buf, op::ADD_GAS, 40, 0, 0);
            put_v3(buf, pos);
            put_f64(buf, *mass);
            put_f64(buf, *u);
        }
    }
    debug_assert_eq!(buf.len() as u64, req.wire_size(), "frame size != modeled wire size");
}

/// Encode any [`Response`] into `buf` (cleared first). The encoded frame
/// is exactly [`Response::wire_size`] bytes long.
// jc-lint: no-alloc
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    match resp {
        Response::Ok { flops } => {
            begin_frame(buf, op::RESP_OK, 8, 0, 0);
            put_f64(buf, *flops);
        }
        // the frame encoders append; this entry point clears like the
        // rest of the `encode_*` family
        Response::Particles(p) => {
            buf.clear();
            encode_particles_frame(&p.mass, &p.pos, &p.vel, buf);
        }
        Response::Accelerations { acc, flops } => {
            buf.clear();
            encode_accelerations_frame(acc, *flops, buf);
        }
        Response::StellarUpdate { masses, events } => {
            let len = 8 * masses.len() as u64 + 32 * events.len() as u64;
            begin_frame(
                buf,
                op::RESP_STELLAR_UPDATE,
                len,
                masses.len() as u64,
                events.len() as u64,
            );
            for &m in masses {
                put_f64(buf, m);
            }
            for ev in events {
                match ev {
                    StellarEvent::Supernova { star, ejected_mass, energy_foe } => {
                        put_u64(buf, 0);
                        put_u64(buf, *star as u64);
                        put_f64(buf, *ejected_mass);
                        put_f64(buf, *energy_foe);
                    }
                    StellarEvent::WindMassLoss { star, mass } => {
                        put_u64(buf, 1);
                        put_u64(buf, *star as u64);
                        put_f64(buf, *mass);
                        put_f64(buf, 0.0);
                    }
                }
            }
        }
        Response::State(s) => encode_state_frame(op::RESP_STATE, s, buf),
        Response::Unsupported => begin_frame(buf, op::RESP_UNSUPPORTED, 0, 0, 0),
        Response::Error(e) => {
            begin_frame(buf, op::RESP_ERROR, e.len() as u64, 0, 0);
            buf.extend_from_slice(e.as_bytes());
        }
    }
    debug_assert_eq!(buf.len() as u64, resp.wire_size(), "frame size != modeled wire size");
}

// --------------------------------------------------------------------------
// decoding

#[inline]
fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

#[inline]
fn get_f64(b: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

#[inline]
fn get_v3(b: &[u8], off: usize) -> [f64; 3] {
    [get_f64(b, off), get_f64(b, off + 8), get_f64(b, off + 16)]
}

/// Parse and validate a frame header from its first [`HEADER_LEN`] bytes.
pub fn parse_header(bytes: &[u8]) -> Result<Header, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated { expected: HEADER_LEN, got: bytes.len() });
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    // Accept every version up to ours; reject newer frames before
    // trusting their length, and reject frames stamped older than their
    // opcode requires (see "Version negotiation" in the module docs).
    let version = bytes[4];
    if version == 0 || version > VERSION || version < opcode_version(bytes[5]) {
        return Err(WireError::BadVersion(version));
    }
    let len = get_u64(bytes, 8);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    Ok(Header {
        opcode: bytes[5],
        seq: u16::from_le_bytes(bytes[SEQ_OFFSET..SEQ_OFFSET + 2].try_into().unwrap()),
        len,
        aux0: get_u64(bytes, 16),
        aux1: get_u64(bytes, 24),
    })
}

/// Parse a full frame (header + payload in one slice), validating that
/// the payload is entirely present.
fn parse_frame(frame: &[u8]) -> Result<(Header, &[u8]), WireError> {
    let h = parse_header(frame)?;
    let need = HEADER_LEN + h.len as usize;
    if frame.len() < need {
        return Err(WireError::Truncated { expected: need, got: frame.len() });
    }
    Ok((h, &frame[HEADER_LEN..need]))
}

fn bad_length(h: &Header) -> WireError {
    WireError::BadLength { opcode: h.opcode, len: h.len, aux0: h.aux0, aux1: h.aux1 }
}

/// Counted payloads: validate `len == count * stride` (with the count
/// also bounded by the already-capped length) and return the count.
fn checked_count(h: &Header, count: u64, stride: u64, remaining: u64) -> Result<usize, WireError> {
    if count.checked_mul(stride) != Some(remaining) {
        return Err(bad_length(h));
    }
    Ok(count as usize)
}

/// Decode a request frame.
pub fn decode_request(frame: &[u8]) -> Result<Request, WireError> {
    let (h, p) = parse_frame(frame)?;
    match h.opcode {
        op::PING | op::GET_PARTICLES | op::STOP | op::SAVE_STATE | op::SHUTDOWN => {
            if h.len != 0 {
                return Err(bad_length(&h));
            }
            Ok(match h.opcode {
                op::PING => Request::Ping,
                op::GET_PARTICLES => Request::GetParticles,
                op::SAVE_STATE => Request::SaveState,
                op::SHUTDOWN => Request::Shutdown,
                _ => Request::Stop,
            })
        }
        op::LOAD_STATE => Ok(Request::LoadState(decode_state(&h, p)?)),
        op::EVOLVE_TO | op::EVOLVE_STARS => {
            if h.len != 8 {
                return Err(bad_length(&h));
            }
            let t = get_f64(p, 0);
            Ok(if h.opcode == op::EVOLVE_TO {
                Request::EvolveTo(t)
            } else {
                Request::EvolveStars(t)
            })
        }
        op::SET_MASSES => {
            let n = checked_count(&h, h.aux0, 8, h.len)?;
            Ok(Request::SetMasses(get_f64s(&p[..8 * n])))
        }
        op::KICK => {
            let n = checked_count(&h, h.aux0, 24, h.len)?;
            Ok(Request::Kick(get_v3s(&p[..24 * n])))
        }
        op::COMPUTE_KICK => {
            let (t, s) = (h.aux0, h.aux1);
            let expect =
                t.checked_mul(24).and_then(|a| s.checked_mul(32).and_then(|b| a.checked_add(b)));
            if expect != Some(h.len) {
                return Err(bad_length(&h));
            }
            let (t, s) = (t as usize, s as usize);
            let off_sp = 24 * t;
            let off_sm = off_sp + 24 * s;
            Ok(Request::ComputeKick {
                targets: get_v3s(&p[..off_sp]),
                source_pos: get_v3s(&p[off_sp..off_sm]),
                source_mass: get_f64s(&p[off_sm..off_sm + 8 * s]),
            })
        }
        op::INJECT_ENERGY | op::ADD_GAS => {
            if h.len != 40 {
                return Err(bad_length(&h));
            }
            let v = get_v3(p, 0);
            let (a, b) = (get_f64(p, 24), get_f64(p, 32));
            Ok(if h.opcode == op::INJECT_ENERGY {
                Request::InjectEnergy { center: v, radius: a, energy: b }
            } else {
                Request::AddGas { pos: v, mass: a, u: b }
            })
        }
        other => Err(WireError::UnknownOpcode(other)),
    }
}

/// Decode a response frame.
pub fn decode_response(frame: &[u8]) -> Result<Response, WireError> {
    let (h, p) = parse_frame(frame)?;
    match h.opcode {
        op::RESP_OK => {
            if h.len != 8 {
                return Err(bad_length(&h));
            }
            Ok(Response::Ok { flops: get_f64(p, 0) })
        }
        op::RESP_PARTICLES => {
            let mut out = ParticleData::default();
            decode_particles_into(frame, &mut out)?;
            Ok(Response::Particles(out))
        }
        op::RESP_ACCELERATIONS => {
            let mut acc = Vec::new();
            let flops = decode_accelerations_into(frame, &mut acc)?;
            Ok(Response::Accelerations { acc, flops })
        }
        op::RESP_STELLAR_UPDATE => {
            let m = h.aux0;
            let e = h.aux1;
            let expect =
                m.checked_mul(8).and_then(|a| e.checked_mul(32).and_then(|b| a.checked_add(b)));
            if expect != Some(h.len) {
                return Err(bad_length(&h));
            }
            let (m, e) = (m as usize, e as usize);
            let masses = (0..m).map(|i| get_f64(p, 8 * i)).collect();
            let base = 8 * m;
            let mut events = Vec::with_capacity(e);
            for i in 0..e {
                let off = base + 32 * i;
                let kind = get_u64(p, off);
                let star = get_u64(p, off + 8) as usize;
                let (a, b) = (get_f64(p, off + 16), get_f64(p, off + 24));
                events.push(match kind {
                    0 => StellarEvent::Supernova { star, ejected_mass: a, energy_foe: b },
                    1 => StellarEvent::WindMassLoss { star, mass: a },
                    k => return Err(WireError::BadEventKind(k)),
                });
            }
            Ok(Response::StellarUpdate { masses, events })
        }
        op::RESP_STATE => Ok(Response::State(decode_state(&h, p)?)),
        op::RESP_UNSUPPORTED => {
            if h.len != 0 {
                return Err(bad_length(&h));
            }
            Ok(Response::Unsupported)
        }
        op::RESP_ERROR => match std::str::from_utf8(p) {
            Ok(s) => Ok(Response::Error(s.to_string())),
            Err(_) => Err(WireError::Utf8),
        },
        other => Err(WireError::UnknownOpcode(other)),
    }
}

/// Fast path: decode a `Particles` response straight into `out`,
/// reusing its buffers (no allocation once warm). Any other valid
/// response opcode yields [`WireError::Unexpected`].
// jc-lint: no-alloc
pub fn decode_particles_into(frame: &[u8], out: &mut ParticleData) -> Result<(), WireError> {
    let (h, p) = parse_frame(frame)?;
    if h.opcode != op::RESP_PARTICLES {
        return Err(WireError::Unexpected(h.opcode));
    }
    let n = checked_count(&h, h.aux0, 56, h.len)?;
    let off_pos = 8 * n;
    let off_vel = off_pos + 24 * n;
    get_f64s_into(&mut out.mass, &p[..off_pos]);
    get_v3s_into(&mut out.pos, &p[off_pos..off_vel]);
    get_v3s_into(&mut out.vel, &p[off_vel..off_vel + 24 * n]);
    Ok(())
}

/// Fast path: decode a `Kick` request's payload into a reusable scratch
/// column (the server's per-step hot path — no `Request` allocation).
/// Any other valid opcode yields [`WireError::Unexpected`].
// jc-lint: no-alloc
pub fn decode_kick_into(frame: &[u8], out: &mut Vec<[f64; 3]>) -> Result<(), WireError> {
    let (h, p) = parse_frame(frame)?;
    if h.opcode != op::KICK {
        return Err(WireError::Unexpected(h.opcode));
    }
    let n = checked_count(&h, h.aux0, 24, h.len)?;
    get_v3s_into(out, &p[..24 * n]);
    Ok(())
}

/// Fast path: decode a `ComputeKick` request's three columns into
/// reusable scratch (the sharded coupling server's hot path).
// jc-lint: no-alloc
pub fn decode_compute_kick_into(
    frame: &[u8],
    targets: &mut Vec<[f64; 3]>,
    source_pos: &mut Vec<[f64; 3]>,
    source_mass: &mut Vec<f64>,
) -> Result<(), WireError> {
    let (h, p) = parse_frame(frame)?;
    if h.opcode != op::COMPUTE_KICK {
        return Err(WireError::Unexpected(h.opcode));
    }
    let (t, s) = (h.aux0, h.aux1);
    let expect = t.checked_mul(24).and_then(|a| s.checked_mul(32).and_then(|b| a.checked_add(b)));
    if expect != Some(h.len) {
        return Err(bad_length(&h));
    }
    let (t, s) = (t as usize, s as usize);
    let off_sp = 24 * t;
    let off_sm = off_sp + 24 * s;
    get_v3s_into(targets, &p[..off_sp]);
    get_v3s_into(source_pos, &p[off_sp..off_sm]);
    get_f64s_into(source_mass, &p[off_sm..off_sm + 8 * s]);
    Ok(())
}

/// Fast path: decode an `Accelerations` response into `out` (cleared
/// and refilled), returning the modeled flops carried in aux1.
// jc-lint: no-alloc
pub fn decode_accelerations_into(frame: &[u8], out: &mut Vec<[f64; 3]>) -> Result<f64, WireError> {
    let (h, p) = parse_frame(frame)?;
    if h.opcode != op::RESP_ACCELERATIONS {
        return Err(WireError::Unexpected(h.opcode));
    }
    let n = checked_count(&h, h.aux0, 24, h.len)?;
    get_v3s_into(out, &p[..24 * n]);
    Ok(f64::from_bits(h.aux1))
}

/// Fast path: decode an `Ok` response, returning its flops.
// jc-lint: no-alloc
pub fn decode_ok(frame: &[u8]) -> Result<f64, WireError> {
    let (h, p) = parse_frame(frame)?;
    if h.opcode != op::RESP_OK {
        return Err(WireError::Unexpected(h.opcode));
    }
    if h.len != 8 {
        return Err(bad_length(&h));
    }
    Ok(get_f64(p, 0))
}

// --------------------------------------------------------------------------
// framed I/O

/// Write one already-encoded frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<(), WireError> {
    w.write_all(frame).map_err(|e| WireError::Io(e.kind()))?;
    w.flush().map_err(|e| WireError::Io(e.kind()))
}

/// Read one frame into `buf`, returning the frame's length in bytes.
///
/// `buf` is a reusable scratch buffer: it is grown monotonically (never
/// shrunk, never re-zeroed below its high-water mark, so a warm steady
/// state pays no memset) and `buf[..returned_len]` holds the frame —
/// bytes past the returned length are stale and must be ignored, which
/// every decoder does by trusting the header's length field.
///
/// Distinguishes a clean close *between* frames ([`WireError::Closed`])
/// from a mid-frame truncation. The header is validated (magic, version,
/// length cap) before the payload buffer is sized, and the buffer grows
/// in [`READ_CHUNK`] steps as bytes arrive — so a hostile length prefix
/// never triggers an allocation beyond one chunk past what the peer has
/// actually sent.
// jc-lint: no-alloc
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<usize, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated { expected: HEADER_LEN, got }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    let h = parse_header(&header)?;
    let total = HEADER_LEN + h.len as usize;
    if buf.len() < HEADER_LEN {
        buf.resize(HEADER_LEN, 0);
    }
    buf[..HEADER_LEN].copy_from_slice(&header);
    let mut got = HEADER_LEN;
    while got < total {
        // Grow the scratch towards `total` only as bytes actually
        // arrive: a hostile length prefix from a stalled peer pins at
        // most one chunk, never the full declared payload. A warm
        // buffer already covers `total` and takes the no-resize path.
        let end = total.min(got + READ_CHUNK).max(buf.len().min(total));
        if buf.len() < end {
            buf.resize(end, 0);
        }
        match r.read(&mut buf[got..end]) {
            Ok(0) => return Err(WireError::Truncated { expected: total, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_match_modeled_wire_size() {
        let reqs = [
            Request::Ping,
            Request::Stop,
            Request::GetParticles,
            Request::EvolveTo(0.25),
            Request::EvolveStars(12.5),
            Request::SetMasses(vec![1.0, 2.0, 3.0]),
            Request::Kick(vec![[0.1, -0.2, 0.3]; 5]),
            Request::ComputeKick {
                targets: vec![[1.0; 3]; 4],
                source_pos: vec![[2.0; 3]; 7],
                source_mass: vec![0.5; 7],
            },
            Request::InjectEnergy { center: [1.0, 2.0, 3.0], radius: 0.2, energy: 1.5 },
            Request::AddGas { pos: [0.0; 3], mass: 0.01, u: 0.5 },
        ];
        let mut buf = Vec::new();
        for req in &reqs {
            encode_request(req, &mut buf);
            assert_eq!(buf.len() as u64, req.wire_size(), "{req:?}");
            let back = decode_request(&buf).unwrap();
            assert_eq!(format!("{back:?}"), format!("{req:?}"));
        }
    }

    #[test]
    fn response_frames_match_modeled_wire_size() {
        let resps = [
            Response::Ok { flops: 123.0 },
            Response::Particles(ParticleData {
                mass: vec![1.0, 2.0],
                pos: vec![[0.0; 3]; 2],
                vel: vec![[1.0; 3]; 2],
            }),
            Response::Accelerations { acc: vec![[9.0; 3]; 3], flops: 77.0 },
            Response::StellarUpdate {
                masses: vec![1.0, 8.0],
                events: vec![
                    StellarEvent::Supernova { star: 1, ejected_mass: 6.0, energy_foe: 10.0 },
                    StellarEvent::WindMassLoss { star: 0, mass: 1e-3 },
                ],
            },
            Response::Unsupported,
            Response::Error("boom".into()),
        ];
        let mut buf = Vec::new();
        for resp in &resps {
            encode_response(resp, &mut buf);
            assert_eq!(buf.len() as u64, resp.wire_size(), "{resp:?}");
            let back = decode_response(&buf).unwrap();
            assert_eq!(format!("{back:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn nan_and_infinity_round_trip_bit_exactly() {
        let dv = vec![[f64::NAN, f64::INFINITY, f64::NEG_INFINITY], [-0.0, 0.0, 1e-308]];
        let mut buf = Vec::new();
        encode_request(&Request::Kick(dv.clone()), &mut buf);
        match decode_request(&buf).unwrap() {
            Request::Kick(back) => {
                for (a, b) in dv.iter().zip(&back) {
                    for k in 0..3 {
                        assert_eq!(a[k].to_bits(), b[k].to_bits());
                    }
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn state_frames_round_trip_and_match_modeled_wire_size() {
        let states = [
            ModelState::Stateless,
            ModelState::Gravity {
                time: 0.5,
                mass: vec![1.0, 2.0],
                pos: vec![[0.1; 3]; 2],
                vel: vec![[f64::NAN, -0.0, 3.0]; 2],
            },
            ModelState::Hydro {
                time: 0.25,
                mass: vec![0.5; 3],
                pos: vec![[1.0; 3]; 3],
                vel: vec![[2.0; 3]; 3],
                u: vec![1e-3; 3],
                rho: vec![0.9; 3],
                h: vec![0.1, 0.2, 0.3],
            },
            ModelState::Stellar {
                time_myr: 7.5,
                z: 0.02,
                initial_masses: vec![1.0, 30.0],
                exploded: vec![true, false],
            },
        ];
        let mut buf = Vec::new();
        for s in &states {
            let req = Request::LoadState(s.clone());
            encode_request(&req, &mut buf);
            assert_eq!(buf.len() as u64, req.wire_size(), "{s:?}");
            match decode_request(&buf).unwrap() {
                Request::LoadState(back) => {
                    assert_eq!(format!("{back:?}"), format!("{s:?}"))
                }
                other => panic!("{other:?}"),
            }
            let resp = Response::State(s.clone());
            encode_response(&resp, &mut buf);
            assert_eq!(buf.len() as u64, resp.wire_size(), "{s:?}");
            match decode_response(&buf).unwrap() {
                Response::State(back) => {
                    assert_eq!(format!("{back:?}"), format!("{s:?}"))
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn version_stamping_follows_the_opcode() {
        let mut buf = Vec::new();
        encode_request(&Request::Ping, &mut buf);
        assert_eq!(buf[4], 1, "v1 opcode keeps the v1 stamp");
        encode_request(&Request::SaveState, &mut buf);
        assert_eq!(buf[4], 2, "v2 opcode carries the v2 stamp");

        // a v2 opcode forged with a v1 stamp is rejected on the version
        encode_request(&Request::Shutdown, &mut buf);
        buf[4] = 1;
        assert_eq!(decode_request(&buf).unwrap_err(), WireError::BadVersion(1));

        // frames from the future are rejected before the length is used
        encode_request(&Request::Ping, &mut buf);
        buf[4] = VERSION + 1;
        assert_eq!(decode_request(&buf).unwrap_err(), WireError::BadVersion(VERSION + 1));
    }

    #[test]
    fn sequence_numbers_stamp_and_parse_without_resizing_the_frame() {
        let mut buf = Vec::new();
        encode_request(&Request::Kick(vec![[1.0; 3]; 3]), &mut buf);
        let req = Request::Kick(vec![[1.0; 3]; 3]);
        assert_eq!(frame_seq(&buf), 0, "begin_frame stamps the unsequenced zero");
        let before = buf.len();
        set_seq(&mut buf, 0xBEEF);
        assert_eq!(buf.len(), before, "stamping must not resize the frame");
        assert_eq!(buf.len() as u64, req.wire_size());
        assert_eq!(frame_seq(&buf), 0xBEEF);
        assert_eq!(parse_header(&buf).unwrap().seq, 0xBEEF);
        // the payload decodes unchanged: seq lives in the old reserved bytes
        assert!(matches!(decode_request(&buf).unwrap(), Request::Kick(v) if v.len() == 3));
        assert_eq!(frame_seq(&buf[..8]), 0, "short buffer reads as unsequenced");
    }

    #[test]
    fn transient_taxonomy_splits_transport_from_protocol_bugs() {
        for e in [
            WireError::Closed,
            WireError::Io(std::io::ErrorKind::TimedOut),
            WireError::Truncated { expected: 32, got: 7 },
            WireError::BadMagic(7),
            WireError::BadVersion(9),
            WireError::UnknownOpcode(0x7F),
            WireError::Oversized(u64::MAX),
        ] {
            assert!(e.is_transient(), "{e:?} should be retryable");
        }
        for e in [
            WireError::BadLength { opcode: 5, len: 1, aux0: 0, aux1: 0 },
            WireError::BadEventKind(9),
            WireError::Utf8,
            WireError::Unexpected(0x81),
            WireError::DeadlineExceeded { budget_ms: 250 },
        ] {
            assert!(!e.is_transient(), "{e:?} should escalate, not retry");
        }
    }

    #[test]
    fn framed_io_round_trips() {
        let mut buf = Vec::new();
        encode_request(&Request::EvolveTo(1.5), &mut buf);
        let mut cursor = std::io::Cursor::new(buf.clone());
        let mut rbuf = Vec::new();
        let n = read_frame(&mut cursor, &mut rbuf).unwrap();
        assert_eq!(&rbuf[..n], &buf[..]);
        // a second read on the drained stream is a clean close
        assert_eq!(read_frame(&mut cursor, &mut rbuf), Err(WireError::Closed));
    }

    #[test]
    fn read_frame_scratch_buffer_is_reusable_across_frame_sizes() {
        // big frame, then a small one: the stale tail must not confuse
        // the decoders (the header's length field governs)
        let mut big = Vec::new();
        encode_request(&Request::Kick(vec![[7.0; 3]; 100]), &mut big);
        let mut small = Vec::new();
        encode_request(&Request::EvolveTo(0.5), &mut small);
        let mut rbuf = Vec::new();
        let n = read_frame(&mut std::io::Cursor::new(&big), &mut rbuf).unwrap();
        assert_eq!(n, big.len());
        assert!(matches!(decode_request(&rbuf).unwrap(), Request::Kick(v) if v.len() == 100));
        let n = read_frame(&mut std::io::Cursor::new(&small), &mut rbuf).unwrap();
        assert_eq!(n, small.len());
        assert!(rbuf.len() > n, "scratch keeps its high-water mark");
        assert!(matches!(decode_request(&rbuf).unwrap(), Request::EvolveTo(t) if t == 0.5));
    }
}
