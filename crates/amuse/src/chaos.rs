//! Deterministic chaos: seeded fault injection for the failover stack.
//!
//! The paper's premise is that jungle resources fail (§5 reports a real
//! mid-run crash), and PR 4 built the recovery machinery — but until
//! now it was only exercised by one hand-written flaky worker. This
//! module is the replayable fault substrate underneath it: a seeded
//! [`FaultPlan`] deterministically schedules faults at named sites —
//!
//! * **connect refused** — a reconnect attempt is denied,
//! * **read / write timeout** — an I/O op fails with `TimedOut`,
//! * **short read** — the stream ends mid-frame,
//! * **partial write** — half a frame leaves, then the pipe breaks,
//! * **byte corruption** — a frame header arrives damaged,
//! * **worker crash after request #n** — the existing server fuse,
//! * **checkpoint write truncation** — a lying disk drops the tail,
//!
//! and the same `JC_CHAOS_SEED` always yields the same fault sequence:
//! the schedule is a pure function of the seed (a splitmix64 walk — no
//! `SystemTime`, no `Instant`, no external RNG, so the `determinism`
//! lint holds for the injected path too).
//!
//! Transport faults are injected by [`ChaosStream`], a wrapper the
//! [`crate::SocketChannel`] interposes around its `TcpStream` for one
//! frame at a time; checkpoint truncation by [`ChaosWriter`], a shim
//! over the container writer; worker crashes map onto
//! [`crate::socket::spawn_flaky_tcp_worker`]'s fuse; and
//! `jc_deploy`'s process supervisor exposes a plan-driven kill hook.
//! On the recovery side, [`RetryPolicy`] bounds the in-place
//! reconnect-and-resend loop (exponential backoff, seed-derived jitter)
//! that absorbs *transient* faults without a checkpoint restore — see
//! [`crate::wire::WireError::is_transient`] for the taxonomy and the
//! "Failure model" section of `docs/ARCHITECTURE.md` for which recovery
//! path owns which site.

use std::io::{Read, Write};

/// The deterministic generator behind every schedule: splitmix64
/// (Steele et al.), chosen because it is seedable, splittable by XOR,
/// and five lines long — no dependency, no global state, identical on
/// every platform.
#[derive(Clone, Debug)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator at `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A named fault site, the unit a [`FaultPlan`] schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A *reconnect* attempt is refused (initial connects are never
    /// faulted — a run that cannot start exercises nothing).
    ConnectRefused,
    /// A frame read fails with `TimedOut` before any byte arrives.
    ReadTimeout,
    /// A frame write fails with `TimedOut` before any byte leaves.
    WriteTimeout,
    /// The stream ends (EOF) at the start of a frame read.
    ShortRead,
    /// Half the frame is written, then the connection breaks.
    PartialWrite,
    /// The first header byte of a received frame is bit-flipped, so the
    /// decoder sees `BadMagic` — detectable corruption, the kind the
    /// retry path must absorb.
    CorruptFrame,
    /// The worker process "crashes" after serving request #`op` (the
    /// [`crate::socket::WorkerServer`] fuse).
    WorkerCrash,
    /// A checkpoint container write silently loses its tail (see
    /// [`ChaosWriter`]).
    CheckpointTruncate,
}

/// One scheduled fault: `kind` strikes stream/worker `target` at its
/// `op`-th operation (1-based; frames for transport faults, requests
/// for crashes, `17·op` bytes kept for checkpoint truncation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// What happens.
    pub kind: FaultKind,
    /// Which stream (coupler-side channel index) or worker it happens to.
    pub target: usize,
    /// When it happens, in site-local operation counts.
    pub op: u64,
}

/// Every fault kind, in scheduling order. `FaultPlan::seeded(seed)`
/// picks `KINDS[seed % KINDS.len()]` as the primary fault, so a
/// consecutive seed range `0..8·k` is guaranteed to cover every site.
pub const KINDS: [FaultKind; 8] = [
    FaultKind::ConnectRefused,
    FaultKind::ReadTimeout,
    FaultKind::WriteTimeout,
    FaultKind::ShortRead,
    FaultKind::PartialWrite,
    FaultKind::CorruptFrame,
    FaultKind::WorkerCrash,
    FaultKind::CheckpointTruncate,
];

/// A seeded, fully deterministic fault schedule.
///
/// The plan itself is just the seed; every query re-derives the same
/// schedule, so clones, re-creations, and replays on another machine
/// all inject the identical fault sequence. `tests/chaos.rs` leans on
/// exactly this: a diverging run is reported by seed, and the seed
/// alone reproduces it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// The plan for `seed`.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// The plan named by the `JC_CHAOS_SEED` environment variable, or
    /// `None` when unset/unparsable (chaos is strictly opt-in).
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var("JC_CHAOS_SEED").ok()?;
        raw.trim().parse::<u64>().ok().map(FaultPlan::seeded)
    }

    /// The seed (for reporting a diverging schedule).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full schedule against a run with `streams` coupler-side
    /// channels: one *primary* fault (`KINDS[seed % 8]`, so seed ranges
    /// sweep every site), plus up to two extra transport faults for
    /// denser schedules. A `ConnectRefused` primary brings a read
    /// timeout on the same target along with it — a refused reconnect
    /// can only fire if something forces a reconnect first.
    pub fn schedule(&self, streams: usize) -> Vec<ScheduledFault> {
        let mut out = Vec::new();
        if streams == 0 {
            return out;
        }
        let mut rng = ChaosRng::new(self.seed ^ 0xC0A5_0C0A_5C0A_50C0);
        let primary = KINDS[(self.seed % KINDS.len() as u64) as usize];
        let target = rng.below(streams as u64) as usize;
        let op = 2 + rng.below(6);
        out.push(ScheduledFault { kind: primary, target, op });
        if primary == FaultKind::ConnectRefused {
            out.push(ScheduledFault { kind: FaultKind::ReadTimeout, target, op });
        }
        const EXTRAS: [FaultKind; 5] = [
            FaultKind::ReadTimeout,
            FaultKind::WriteTimeout,
            FaultKind::ShortRead,
            FaultKind::PartialWrite,
            FaultKind::CorruptFrame,
        ];
        for _ in 0..rng.below(3) {
            let kind = EXTRAS[rng.below(EXTRAS.len() as u64) as usize];
            let target = rng.below(streams as u64) as usize;
            let op = 2 + rng.below(6);
            out.push(ScheduledFault { kind, target, op });
        }
        out
    }

    /// The transport faults the plan assigns to stream `idx` of
    /// `streams` — hand the result to
    /// [`crate::SocketChannel::with_chaos`].
    pub fn stream_faults(&self, streams: usize, idx: usize) -> StreamFaults {
        let mut f = StreamFaults::default();
        for sf in self.schedule(streams) {
            if sf.target != idx {
                continue;
            }
            match sf.kind {
                FaultKind::ReadTimeout => f.read_faults.push((sf.op, IoFault::ReadTimeout)),
                FaultKind::ShortRead => f.read_faults.push((sf.op, IoFault::ShortRead)),
                FaultKind::CorruptFrame => f.read_faults.push((sf.op, IoFault::CorruptHeader)),
                FaultKind::WriteTimeout => f.write_faults.push((sf.op, IoFault::WriteTimeout)),
                FaultKind::PartialWrite => f.write_faults.push((sf.op, IoFault::PartialWrite)),
                FaultKind::ConnectRefused => f.connect_refusals += 1,
                FaultKind::WorkerCrash | FaultKind::CheckpointTruncate => {}
            }
        }
        f
    }

    /// The crash fuse for worker `idx` of `streams`: `Some(n)` loads
    /// [`crate::socket::spawn_flaky_tcp_worker`] with a fuse of `n`
    /// requests, `None` means the plan never crashes this worker.
    pub fn crash_fuse(&self, streams: usize, idx: usize) -> Option<i64> {
        self.schedule(streams)
            .iter()
            .find(|sf| sf.kind == FaultKind::WorkerCrash && sf.target == idx)
            .map(|sf| sf.op as i64)
    }

    /// The checkpoint-truncation point, if the plan schedules one: the
    /// number of bytes a [`ChaosWriter`] should let through. Small by
    /// construction (`17·op` ≤ 119 bytes), so it always lands inside
    /// the container header or its first section.
    pub fn checkpoint_truncation(&self, streams: usize) -> Option<u64> {
        self.schedule(streams)
            .iter()
            .find(|sf| sf.kind == FaultKind::CheckpointTruncate)
            .map(|sf| 17 * sf.op)
    }

    /// Deterministic victim selection for process-level chaos: which of
    /// `n` workers dies in round `round` (see
    /// `jc_deploy::supervise::ProcessSupervisor::chaos_kill`).
    pub fn victim(&self, round: u64, n: usize) -> usize {
        assert!(n > 0, "no workers to pick a victim from");
        ChaosRng::new(self.seed ^ round.wrapping_mul(0x000D_DB1A_50DD_B1A5)).below(n as u64)
            as usize
    }
}

/// One transport-level fault, as applied by [`ChaosStream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Fail the frame read with `TimedOut` before any byte arrives.
    ReadTimeout,
    /// Return EOF at the start of the frame read.
    ShortRead,
    /// Deliver the frame with its first header byte bit-flipped.
    CorruptHeader,
    /// Fail the frame write with `TimedOut` before any byte leaves.
    WriteTimeout,
    /// Write half the frame, then break the pipe.
    PartialWrite,
}

/// The per-stream fault state a [`FaultPlan`] hands to one
/// [`crate::SocketChannel`]: which frame-ops fault, counted site-local
/// (received frames, sent frames, reconnect attempts). Each scheduled
/// fault fires exactly once. Tests may also build these directly with
/// the builder methods to script a precise schedule.
#[derive(Clone, Debug, Default)]
pub struct StreamFaults {
    /// `(frame op, fault)` for received frames (1-based op).
    read_faults: Vec<(u64, IoFault)>,
    /// `(frame op, fault)` for sent frames (1-based op).
    write_faults: Vec<(u64, IoFault)>,
    /// How many upcoming reconnect attempts to refuse.
    connect_refusals: u32,
    reads: u64,
    writes: u64,
}

impl StreamFaults {
    /// Builder: fault the `op`-th received frame with `fault` (must be
    /// a read-side [`IoFault`]).
    pub fn with_read(mut self, op: u64, fault: IoFault) -> StreamFaults {
        assert!(
            matches!(fault, IoFault::ReadTimeout | IoFault::ShortRead | IoFault::CorruptHeader),
            "{fault:?} is not a read fault"
        );
        self.read_faults.push((op, fault));
        self
    }

    /// Builder: fault the `op`-th sent frame with `fault` (must be a
    /// write-side [`IoFault`]).
    pub fn with_write(mut self, op: u64, fault: IoFault) -> StreamFaults {
        assert!(
            matches!(fault, IoFault::WriteTimeout | IoFault::PartialWrite),
            "{fault:?} is not a write fault"
        );
        self.write_faults.push((op, fault));
        self
    }

    /// Builder: refuse the next `n` reconnect attempts.
    pub fn with_connect_refusals(mut self, n: u32) -> StreamFaults {
        self.connect_refusals += n;
        self
    }

    /// Is any fault still pending?
    pub fn is_empty(&self) -> bool {
        self.read_faults.is_empty() && self.write_faults.is_empty() && self.connect_refusals == 0
    }

    /// Advance the received-frame counter; the fault for this frame, if
    /// one is scheduled (consumed on return).
    pub fn next_read(&mut self) -> Option<IoFault> {
        self.reads += 1;
        let op = self.reads;
        let at = self.read_faults.iter().position(|&(o, _)| o == op)?;
        Some(self.read_faults.remove(at).1)
    }

    /// Advance the sent-frame counter; the fault for this frame, if one
    /// is scheduled (consumed on return).
    pub fn next_write(&mut self) -> Option<IoFault> {
        self.writes += 1;
        let op = self.writes;
        let at = self.write_faults.iter().position(|&(o, _)| o == op)?;
        Some(self.write_faults.remove(at).1)
    }

    /// Should this reconnect attempt be refused? (Consumes one refusal.)
    pub fn next_connect_refused(&mut self) -> bool {
        if self.connect_refusals > 0 {
            self.connect_refusals -= 1;
            true
        } else {
            false
        }
    }
}

/// The transport wrapper: a [`Read`]/[`Write`] adapter over any stream
/// that applies at most one [`IoFault`] to the frame currently moving
/// through it. [`crate::SocketChannel`] interposes one per frame op;
/// the injected errors are indistinguishable from the real network
/// failures they model, so the whole recovery stack downstream is
/// exercised unmodified.
pub struct ChaosStream<'a, S> {
    inner: &'a mut S,
    fault: Option<IoFault>,
    touched: bool,
}

impl<'a, S> ChaosStream<'a, S> {
    /// Wrap `inner` for one frame op, applying `fault` if given.
    pub fn new(inner: &'a mut S, fault: Option<IoFault>) -> ChaosStream<'a, S> {
        ChaosStream { inner, fault, touched: false }
    }
}

impl<S: Read> Read for ChaosStream<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.fault {
            Some(IoFault::ReadTimeout) => {
                self.fault = None;
                Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "chaos: read timeout"))
            }
            Some(IoFault::ShortRead) => {
                self.fault = None;
                Ok(0)
            }
            Some(IoFault::CorruptHeader) if !self.touched => {
                // flip the first byte of the first read — that is the
                // frame's magic byte, so the decoder reports BadMagic
                self.touched = true;
                let n = self.inner.read(buf)?;
                if n > 0 {
                    buf[0] ^= 0x01;
                    self.fault = None;
                }
                Ok(n)
            }
            _ => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for ChaosStream<'_, S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.fault.take() {
            Some(IoFault::WriteTimeout) => {
                Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "chaos: write timeout"))
            }
            Some(IoFault::PartialWrite) => {
                let half = buf.len() / 2;
                if half > 0 {
                    let _ = self.inner.write(&buf[..half]);
                    let _ = self.inner.flush();
                }
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "chaos: partial write"))
            }
            other => {
                self.fault = other;
                self.inner.write(buf)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// The checkpoint I/O shim: a writer that models a lying disk. It
/// passes the first `keep` bytes through and then *silently succeeds*
/// while dropping everything else — the failure mode a power cut
/// mid-write leaves behind. The per-section CRC32 of the container
/// format (see [`crate::checkpoint`]) is what turns this into a typed
/// load error instead of a silently-garbage restore.
pub struct ChaosWriter<W> {
    inner: W,
    remaining: u64,
}

impl<W: Write> ChaosWriter<W> {
    /// Pass `keep` bytes through to `inner`, then drop the rest.
    pub fn new(inner: W, keep: u64) -> ChaosWriter<W> {
        ChaosWriter { inner, remaining: keep }
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let pass = (self.remaining.min(buf.len() as u64)) as usize;
        if pass > 0 {
            self.inner.write_all(&buf[..pass])?;
            self.remaining -= pass as u64;
        }
        Ok(buf.len()) // the dropped tail "succeeds": that is the fault
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Bounded retry with exponential backoff and seed-derived jitter — the
/// recovery half of the chaos layer, consumed by
/// [`crate::SocketChannel::with_retry`].
///
/// The default is [`RetryPolicy::none`]: zero retries, exactly the
/// pre-chaos behavior (one wire failure poisons the channel and
/// escalates to heal/restore). Supervised pools and the chaos harness
/// opt in with [`RetryPolicy::standard`]. Jitter comes from a splitmix
/// draw over `jitter_seed` and the attempt number — never from a clock
/// — so two runs with the same seed back off identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// In-place resend attempts after the first failure (0 = disabled).
    pub max_retries: u32,
    /// First backoff, in milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub backoff_max_ms: u64,
    /// Seed for the deterministic jitter term.
    pub jitter_seed: u64,
    /// Timeout for reconnect attempts, in milliseconds.
    pub connect_timeout_ms: u64,
    /// Wall-clock budget for one request, in milliseconds (0 = no
    /// deadline). `max_retries` caps *attempts*, but a schedule of
    /// repeated transient timeouts can still stretch one round trip far
    /// past any caller budget; with a deadline the retry loop gives up
    /// before its next backoff would cross the budget and surfaces the
    /// non-transient [`crate::wire::WireError::DeadlineExceeded`], so
    /// the caller escalates to heal/restore instead of waiting. The
    /// field is plain data — enforcement (clock reads) lives in the
    /// transport layers, keeping this module deterministic.
    pub deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: the original fail-fast, poison-on-first-error
    /// behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            jitter_seed: 0,
            connect_timeout_ms: 5_000,
            deadline_ms: 0,
        }
    }

    /// Three bounded retries, 5 ms base backoff capped at 200 ms,
    /// jitter derived from `seed`.
    pub fn standard(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 5,
            backoff_max_ms: 200,
            jitter_seed: seed,
            connect_timeout_ms: 5_000,
            deadline_ms: 0,
        }
    }

    /// The same policy with a per-request wall-clock budget of
    /// `deadline_ms` milliseconds (0 disables the bound).
    pub fn with_deadline(mut self, deadline_ms: u64) -> RetryPolicy {
        self.deadline_ms = deadline_ms;
        self
    }

    /// The backoff before retry `attempt` (1-based): exponential from
    /// `backoff_base_ms`, capped at `backoff_max_ms`, plus a
    /// deterministic jitter of at most one base step.
    pub fn backoff(&self, attempt: u32) -> std::time::Duration {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.backoff_max_ms);
        let jitter = if self.backoff_base_ms == 0 {
            0
        } else {
            ChaosRng::new(self.jitter_seed ^ u64::from(attempt)).below(self.backoff_base_ms + 1)
        };
        std::time::Duration::from_millis(exp + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_yield_identical_schedules() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed).schedule(3);
            let b = FaultPlan::seeded(seed).schedule(3);
            assert_eq!(a, b, "seed {seed} must replay identically");
            assert!(!a.is_empty(), "every plan schedules at least its primary fault");
        }
    }

    #[test]
    fn a_consecutive_seed_range_covers_every_fault_site() {
        let mut seen = Vec::new();
        for seed in 0..KINDS.len() as u64 {
            let primary = FaultPlan::seeded(seed).schedule(4)[0].kind;
            assert!(!seen.contains(&primary), "{primary:?} repeated inside one sweep");
            seen.push(primary);
        }
        assert_eq!(seen.len(), KINDS.len());
    }

    #[test]
    fn stream_faults_fire_once_at_their_op() {
        let mut f = StreamFaults::default()
            .with_read(2, IoFault::ReadTimeout)
            .with_write(1, IoFault::PartialWrite);
        assert_eq!(f.next_write(), Some(IoFault::PartialWrite));
        assert_eq!(f.next_write(), None, "consumed");
        assert_eq!(f.next_read(), None, "op 1 clean");
        assert_eq!(f.next_read(), Some(IoFault::ReadTimeout));
        assert_eq!(f.next_read(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn chaos_stream_corrupts_exactly_the_magic_byte() {
        let frame = [0xAAu8; 40];
        let mut src = std::io::Cursor::new(frame.as_slice());
        let mut cs = ChaosStream::new(&mut src, Some(IoFault::CorruptHeader));
        let mut out = [0u8; 40];
        let mut got = 0;
        while got < 40 {
            let n = cs.read(&mut out[got..]).unwrap();
            assert!(n > 0);
            got += n;
        }
        assert_eq!(out[0], 0xAB, "first byte flipped");
        assert!(out[1..].iter().all(|&b| b == 0xAA), "payload untouched");
    }

    #[test]
    fn chaos_writer_keeps_the_head_and_lies_about_the_tail() {
        let mut w = ChaosWriter::new(Vec::new(), 10);
        w.write_all(&[1u8; 7]).unwrap();
        w.write_all(&[2u8; 7]).unwrap(); // 3 pass, 4 silently dropped
        w.write_all(&[3u8; 7]).unwrap(); // all dropped, still "ok"
        let kept = w.into_inner();
        assert_eq!(kept.len(), 10);
        assert_eq!(&kept[..7], &[1u8; 7]);
        assert_eq!(&kept[7..], &[2u8; 3]);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy::standard(42);
        let seq: Vec<_> = (1..=6).map(|a| p.backoff(a)).collect();
        assert_eq!(seq, (1..=6).map(|a| p.backoff(a)).collect::<Vec<_>>());
        assert!(seq.windows(2).all(|w| w[1] >= w[0] || w[1].as_millis() >= 200));
        assert!(seq.iter().all(|d| d.as_millis() <= (200 + 6) as u128));
        assert_eq!(RetryPolicy::none().backoff(1), std::time::Duration::ZERO);
    }

    #[test]
    fn victim_selection_is_a_pure_function_of_seed_and_round() {
        let plan = FaultPlan::seeded(7);
        for round in 0..16 {
            let v = plan.victim(round, 5);
            assert!(v < 5);
            assert_eq!(v, FaultPlan::seeded(7).victim(round, 5));
        }
    }

    #[test]
    fn connect_refused_plans_force_a_reconnect_first() {
        // find a seed whose primary is ConnectRefused and check the
        // paired read timeout lands on the same target
        let seed = KINDS.iter().position(|&k| k == FaultKind::ConnectRefused).unwrap() as u64;
        let sched = FaultPlan::seeded(seed).schedule(3);
        assert_eq!(sched[0].kind, FaultKind::ConnectRefused);
        assert!(
            sched
                .iter()
                .any(|sf| sf.kind == FaultKind::ReadTimeout && sf.target == sched[0].target),
            "{sched:?}"
        );
        let f = FaultPlan::seeded(seed).stream_faults(3, sched[0].target);
        assert!(!f.is_empty());
    }
}
