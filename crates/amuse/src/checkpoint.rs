//! Checkpoint/restore: the complete solver state as a value.
//!
//! The paper's §5 limitation — *"if one worker crashes, the entire
//! simulation crashes"* — is what this module removes. A
//! [`ModelState`] is everything a kernel needs to continue bitwise from
//! a point in model time; a [`Checkpoint`] bundles the four bridge
//! workers' states with the coupler's own clock so a run can be
//! restarted (same process, respawned worker, or a different machine)
//! and produce output bitwise-identical to one that never failed.
//!
//! Restorability without RNGs or hidden caches: every kernel keeps its
//! derived data (Hermite force cache, SPH rates) *invalid* across
//! bridge iteration boundaries — a kick or feedback step always
//! invalidates them — so the authoritative state is exactly the particle
//! columns plus the model clock (plus, for stellar evolution, the
//! once-only supernova flags). That is what [`ModelState`] carries, and
//! why restore is exact: the first evolve after a restore recomputes the
//! same derived data an uninterrupted run would have recomputed anyway.
//!
//! # Container format
//!
//! [`Checkpoint::write_to`] emits a framed binary container (see the
//! [`crate::wire`] module docs for the byte-level layout):
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------------------
//!      0     4  magic 0x4B43_434A ("JCCK", little-endian u32)
//!      4     1  container version (currently 2)
//!      5     3  reserved (zero)
//!      8     8  bridge model time (f64 bits, N-body units)
//!     16     8  iterations completed (u64)
//!     24     8  total supernovae so far (u64)
//!     32     8  section count (u64)
//!     40     …  sections
//! ```
//!
//! Each section is one byte of [`Role`] tag, an ordinary
//! [`crate::wire`] `RESP_STATE` frame holding the model's
//! [`ModelState`], and a little-endian CRC-32 (IEEE) of the tag byte
//! plus the frame — the checkpoint file *is* a sequence of wire
//! frames, so the same codec (and the same validation and versioning
//! rules) covers the network and the disk, and the per-section CRC
//! catches what framing alone cannot: a bit flip inside an f64 column
//! still parses as a perfectly valid frame, but it would silently
//! restore *different physics*. Torn or truncated writes (a full disk,
//! a crash mid-save, the lying-disk model of
//! [`crate::chaos::ChaosWriter`]) surface as typed
//! [`CheckpointError`]s on load — never a panic, never a garbage
//! restore.

use crate::wire::{self, WireError};
use crate::worker::{Request, Response};
use std::io::{Read, Write};

/// Container magic ("JCCK" as a little-endian u32).
pub const CHECKPOINT_MAGIC: u32 = 0x4B43_434A;
/// Current container version (2 added the per-section CRC-32).
pub const CHECKPOINT_VERSION: u8 = 2;

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Portable byte-at-a-time CRC update. This is the reference
/// implementation the accelerated path must match bit-for-bit; it also
/// handles short buffers and the sub-16-byte tail of the folded path.
fn crc32_feed_bytewise(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

fn crc32_feed(state: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        // The folded path needs a 64-byte head; below that the setup
        // outweighs the byte loop. Sections in a real checkpoint are
        // hundreds of kilobytes, so this is the hot branch.
        if bytes.len() >= 64
            && std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
        {
            // SAFETY: `pclmulqdq` and `sse4.1` were just verified at
            // runtime, discharging the `#[target_feature]` contract,
            // and the length guard satisfies the fn's >= 64 contract.
            return unsafe { crc32_feed_pclmul(state, bytes) };
        }
    }
    crc32_feed_bytewise(state, bytes)
}

/// CRC-32 update over `bytes` using PCLMULQDQ carry-less-multiply
/// folding (the classic reflected-CRC reduction: fold 64-byte stripes,
/// then 16-byte blocks, then a Barrett reduction back to a 32-bit
/// register). Produces output bitwise identical to
/// [`crc32_feed_bytewise`], so the v2 container format is unchanged;
/// the payoff is ~0.1 cycles/byte instead of ~5, which keeps the
/// per-section sums out of the checkpoint hot path.
///
/// # Safety
///
/// Callers must verify `pclmulqdq` and `sse4.1` via
/// `is_x86_feature_detected!` and pass `bytes.len() >= 64`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "pclmulqdq,sse4.1")]
unsafe fn crc32_feed_pclmul(state: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::*;

    debug_assert!(bytes.len() >= 64);

    // Folding constants for the reflected IEEE polynomial 0x04C1_1DB7:
    // K1 = x^(4*128+64) mod P, K2 = x^(4*128), K3 = x^(128+64),
    // K4 = x^128 (all bit-reflected), K5 = x^64; P_X and U_PRIME are
    // the polynomial and its Barrett inverse. These are the published
    // constants from Intel's "Fast CRC Computation ... Using PCLMULQDQ"
    // white paper, as used by zlib-ng and crc32fast.
    const K1: i64 = 0x1_5444_2BD4;
    const K2: i64 = 0x1_C6E4_1596;
    const K3: i64 = 0x1_7519_97D0;
    const K4: i64 = 0x0_CCAA_009E;
    const K5: i64 = 0x1_63CD_6124;
    const P_X: i64 = 0x1_DB71_0641;
    const U_PRIME: i64 = 0x1_F701_1641;

    /// Fold the 128-bit accumulator `a` forward over the next block
    /// `b`: a*K_hi + a*K_lo + b in GF(2).
    #[inline(always)]
    fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        // SAFETY: the enclosing fn's `#[target_feature]` contract
        // (checked by the dispatcher) covers these intrinsics; they
        // are register-only, no memory access.
        unsafe {
            let lo = _mm_clmulepi64_si128(a, keys, 0x00);
            let hi = _mm_clmulepi64_si128(a, keys, 0x11);
            _mm_xor_si128(_mm_xor_si128(b, lo), hi)
        }
    }

    let mut p = bytes.as_ptr();
    let mut len = bytes.len();

    // SAFETY: all pointer reads below stay inside `bytes`: the entry
    // guard gives the first 64 bytes, and each loop checks `len`
    // before advancing `p` by the amount it reads (unaligned loads,
    // so no alignment requirement).
    unsafe {
        // Load the first 64 bytes and XOR the incoming register into
        // the low 32 bits of the first block — prepending the running
        // state is exactly an XOR into the first four message bytes.
        let mut x3 = _mm_loadu_si128(p as *const __m128i);
        let mut x2 = _mm_loadu_si128(p.add(16) as *const __m128i);
        let mut x1 = _mm_loadu_si128(p.add(32) as *const __m128i);
        let mut x0 = _mm_loadu_si128(p.add(48) as *const __m128i);
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(state as i32));
        p = p.add(64);
        len -= 64;

        // Fold four 128-bit lanes in parallel over each 64-byte stripe.
        let k1k2 = _mm_set_epi64x(K2, K1);
        while len >= 64 {
            x3 = fold16(x3, _mm_loadu_si128(p as *const __m128i), k1k2);
            x2 = fold16(x2, _mm_loadu_si128(p.add(16) as *const __m128i), k1k2);
            x1 = fold16(x1, _mm_loadu_si128(p.add(32) as *const __m128i), k1k2);
            x0 = fold16(x0, _mm_loadu_si128(p.add(48) as *const __m128i), k1k2);
            p = p.add(64);
            len -= 64;
        }

        // Collapse the four lanes into one, then fold any remaining
        // whole 16-byte blocks.
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold16(x3, x2, k3k4);
        x = fold16(x, x1, k3k4);
        x = fold16(x, x0, k3k4);
        while len >= 16 {
            x = fold16(x, _mm_loadu_si128(p as *const __m128i), k3k4);
            p = p.add(16);
            len -= 16;
        }

        // Reduce 128 -> 64 bits, then 64 -> 32 via K5.
        let mask32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );

        // Barrett reduction back to the 32-bit register.
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
        let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, mask32), pu, 0x00), x);
        let folded = _mm_extract_epi32(t2, 1) as u32;

        // Byte-wise tail (< 16 bytes).
        crc32_feed_bytewise(folded, std::slice::from_raw_parts(p, len))
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`. This is
/// the sum guarding each checkpoint section; it is exposed so fixture
/// generators and tests can produce containers with valid (or
/// deliberately broken) sums.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_feed(!0, bytes)
}

/// The complete serializable state of one model worker.
///
/// Per-particle columns are cut identically, so a state slices and
/// concatenates exactly like the particle ranges a
/// [`crate::ShardedChannel`] scatters — a K-shard pool's gathered state
/// is bitwise the unsharded state, and any state re-scatters over any
/// shard count.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelState {
    /// The model carries no evolving state (the coupling solvers: a tree
    /// is rebuilt from the sources on every call).
    Stateless,
    /// Gravitational dynamics (PhiGRAPE): particles + model clock. The
    /// Hermite force cache is derived data and is rebuilt on the first
    /// evolve after a restore.
    Gravity {
        /// Model time, N-body units.
        time: f64,
        /// Masses.
        mass: Vec<f64>,
        /// Positions.
        pos: Vec<[f64; 3]>,
        /// Velocities.
        vel: Vec<[f64; 3]>,
    },
    /// Gas dynamics (Gadget): every SPH column + model clock. `h` seeds
    /// the next density iteration, so it must travel even though it is
    /// re-adapted.
    Hydro {
        /// Model time, N-body units.
        time: f64,
        /// Masses.
        mass: Vec<f64>,
        /// Positions.
        pos: Vec<[f64; 3]>,
        /// Velocities.
        vel: Vec<[f64; 3]>,
        /// Specific internal energies.
        u: Vec<f64>,
        /// Densities (last computed).
        rho: Vec<f64>,
        /// Smoothing lengths (adapted).
        h: Vec<f64>,
    },
    /// Stellar evolution (SSE): star states are a pure function of
    /// (initial mass, metallicity, age), so only the inputs plus the
    /// once-only supernova flags need to travel.
    Stellar {
        /// Model time, Myr.
        time_myr: f64,
        /// Metallicity.
        z: f64,
        /// ZAMS masses, MSun.
        initial_masses: Vec<f64>,
        /// Which stars already exploded.
        exploded: Vec<bool>,
    },
}

impl ModelState {
    /// Number of particles/stars carried (0 for [`ModelState::Stateless`]).
    pub fn len(&self) -> usize {
        match self {
            ModelState::Stateless => 0,
            ModelState::Gravity { mass, .. } => mass.len(),
            ModelState::Hydro { mass, .. } => mass.len(),
            ModelState::Stellar { initial_masses, .. } => initial_masses.len(),
        }
    }

    /// Is the state empty of particles?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the contiguous element range `[start, end)` (every column
    /// cut identically — the shard scatter slice). Scalars (time, z)
    /// are carried along unchanged.
    pub fn slice(&self, start: usize, end: usize) -> ModelState {
        match self {
            ModelState::Stateless => ModelState::Stateless,
            ModelState::Gravity { time, mass, pos, vel } => ModelState::Gravity {
                time: *time,
                mass: mass[start..end].to_vec(),
                pos: pos[start..end].to_vec(),
                vel: vel[start..end].to_vec(),
            },
            ModelState::Hydro { time, mass, pos, vel, u, rho, h } => ModelState::Hydro {
                time: *time,
                mass: mass[start..end].to_vec(),
                pos: pos[start..end].to_vec(),
                vel: vel[start..end].to_vec(),
                u: u[start..end].to_vec(),
                rho: rho[start..end].to_vec(),
                h: h[start..end].to_vec(),
            },
            ModelState::Stellar { time_myr, z, initial_masses, exploded } => ModelState::Stellar {
                time_myr: *time_myr,
                z: *z,
                initial_masses: initial_masses[start..end].to_vec(),
                exploded: exploded[start..end].to_vec(),
            },
        }
    }

    /// Append another state's elements (the shard gather). Fails when
    /// the variants differ or the scalar fields (model time,
    /// metallicity) are not bitwise-equal across shards.
    pub fn append(&mut self, other: &ModelState) -> Result<(), String> {
        match (self, other) {
            (ModelState::Stateless, ModelState::Stateless) => Ok(()),
            (
                ModelState::Gravity { time, mass, pos, vel },
                ModelState::Gravity { time: t2, mass: m2, pos: p2, vel: v2 },
            ) => {
                if time.to_bits() != t2.to_bits() {
                    return Err(format!("shard clocks disagree: {time} vs {t2}"));
                }
                mass.extend_from_slice(m2);
                pos.extend_from_slice(p2);
                vel.extend_from_slice(v2);
                Ok(())
            }
            (
                ModelState::Hydro { time, mass, pos, vel, u, rho, h },
                ModelState::Hydro { time: t2, mass: m2, pos: p2, vel: v2, u: u2, rho: r2, h: h2 },
            ) => {
                if time.to_bits() != t2.to_bits() {
                    return Err(format!("shard clocks disagree: {time} vs {t2}"));
                }
                mass.extend_from_slice(m2);
                pos.extend_from_slice(p2);
                vel.extend_from_slice(v2);
                u.extend_from_slice(u2);
                rho.extend_from_slice(r2);
                h.extend_from_slice(h2);
                Ok(())
            }
            (
                ModelState::Stellar { time_myr, z, initial_masses, exploded },
                ModelState::Stellar { time_myr: t2, z: z2, initial_masses: m2, exploded: e2 },
            ) => {
                if time_myr.to_bits() != t2.to_bits() || z.to_bits() != z2.to_bits() {
                    return Err("shard stellar clocks/metallicities disagree".into());
                }
                initial_masses.extend_from_slice(m2);
                exploded.extend_from_slice(e2);
                Ok(())
            }
            (a, b) => Err(format!("mixed state kinds in one pool: {} vs {}", a.kind(), b.kind())),
        }
    }

    /// Human-readable kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            ModelState::Stateless => "stateless",
            ModelState::Gravity { .. } => "gravity",
            ModelState::Hydro { .. } => "hydro",
            ModelState::Stellar { .. } => "stellar",
        }
    }

    /// Payload size of the wire encoding (see [`crate::wire`]): the
    /// state body that follows a frame header.
    pub fn wire_body_size(&self) -> u64 {
        let n = self.len() as u64;
        match self {
            ModelState::Stateless => 0,
            ModelState::Gravity { .. } => 8 + 56 * n,
            ModelState::Hydro { .. } => 8 + 80 * n,
            ModelState::Stellar { .. } => 16 + 9 * n,
        }
    }
}

/// Which bridge slot a checkpoint section belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The gravitational-dynamics worker.
    Gravity,
    /// The gas-dynamics worker.
    Hydro,
    /// The coupling worker (pool).
    Coupling,
    /// The stellar-evolution worker.
    Stellar,
}

impl Role {
    fn tag(self) -> u8 {
        match self {
            Role::Gravity => 0,
            Role::Hydro => 1,
            Role::Coupling => 2,
            Role::Stellar => 3,
        }
    }

    fn from_tag(t: u8) -> Option<Role> {
        match t {
            0 => Some(Role::Gravity),
            1 => Some(Role::Hydro),
            2 => Some(Role::Coupling),
            3 => Some(Role::Stellar),
            _ => None,
        }
    }

    /// Label used in error messages and monitoring.
    pub fn label(self) -> &'static str {
        match self {
            Role::Gravity => "gravity",
            Role::Hydro => "hydro",
            Role::Coupling => "coupling",
            Role::Stellar => "stellar",
        }
    }
}

/// A complete bridge checkpoint: the coupler's clock plus one
/// [`ModelState`] per worker.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Bridge model time, N-body units.
    pub time: f64,
    /// Outer iterations completed.
    pub iterations: u64,
    /// Supernovae so far (the bridge's cumulative counter).
    pub total_supernovae: u32,
    /// Gravity worker state.
    pub gravity: ModelState,
    /// Hydro worker state.
    pub hydro: ModelState,
    /// Coupling worker state (normally [`ModelState::Stateless`]).
    pub coupling: ModelState,
    /// Stellar worker state, if the bridge has one.
    pub stellar: Option<ModelState>,
}

/// Everything that can go wrong reading a checkpoint container.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// An I/O error from the underlying reader/writer.
    Io(std::io::ErrorKind),
    /// The container does not start with [`CHECKPOINT_MAGIC`].
    BadMagic(u32),
    /// The container version is not [`CHECKPOINT_VERSION`].
    BadVersion(u8),
    /// A section role tag names no known role.
    BadRole(u8),
    /// A section's wire frame failed to decode.
    Wire(WireError),
    /// A section's stored CRC-32 does not match the bytes read back:
    /// bit rot, a torn write, or deliberate corruption. The section
    /// parsed as a frame, but its payload cannot be trusted.
    BadCrc {
        /// Role tag of the failing section.
        role: u8,
        /// The checksum stored in the container.
        stored: u32,
        /// The checksum computed over the bytes actually read.
        computed: u32,
    },
    /// The sections do not form a valid bridge checkpoint (missing or
    /// duplicate roles, or a non-state frame).
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(k) => write!(f, "i/o error: {k:?}"),
            CheckpointError::BadMagic(m) => write!(f, "bad checkpoint magic {m:#010x}"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            CheckpointError::BadRole(t) => write!(f, "unknown section role {t}"),
            CheckpointError::Wire(e) => write!(f, "section frame: {e}"),
            CheckpointError::BadCrc { role, stored, computed } => write!(
                f,
                "section crc mismatch (role {role}): stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::Malformed(s) => write!(f, "malformed checkpoint: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> CheckpointError {
        CheckpointError::Wire(e)
    }
}

fn io_err(e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(e.kind())
}

impl Checkpoint {
    /// The sections in container order.
    fn sections(&self) -> Vec<(Role, &ModelState)> {
        let mut s = vec![
            (Role::Gravity, &self.gravity),
            (Role::Hydro, &self.hydro),
            (Role::Coupling, &self.coupling),
        ];
        if let Some(st) = &self.stellar {
            s.push((Role::Stellar, st));
        }
        s
    }

    /// Serialize into any writer (see the module docs for the layout).
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), CheckpointError> {
        let sections = self.sections();
        let mut head = [0u8; 40];
        head[0..4].copy_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        head[4] = CHECKPOINT_VERSION;
        head[8..16].copy_from_slice(&self.time.to_le_bytes());
        head[16..24].copy_from_slice(&self.iterations.to_le_bytes());
        head[24..32].copy_from_slice(&(self.total_supernovae as u64).to_le_bytes());
        head[32..40].copy_from_slice(&(sections.len() as u64).to_le_bytes());
        w.write_all(&head).map_err(io_err)?;
        let mut frame = Vec::new();
        for (role, state) in sections {
            w.write_all(&[role.tag()]).map_err(io_err)?;
            // frame the borrowed state directly — no clone into a
            // Response just for the codec
            wire::encode_state_frame(wire::op::RESP_STATE, state, &mut frame);
            w.write_all(&frame).map_err(io_err)?;
            let crc = !crc32_feed(crc32_feed(!0, &[role.tag()]), &frame);
            w.write_all(&crc.to_le_bytes()).map_err(io_err)?;
        }
        Ok(())
    }

    /// Deserialize from any reader.
    pub fn read_from(r: &mut impl Read) -> Result<Checkpoint, CheckpointError> {
        let mut head = [0u8; 40];
        r.read_exact(&mut head).map_err(io_err)?;
        let magic = u32::from_le_bytes(head[0..4].try_into().unwrap());
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        if head[4] != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(head[4]));
        }
        let time = f64::from_le_bytes(head[8..16].try_into().unwrap());
        let iterations = u64::from_le_bytes(head[16..24].try_into().unwrap());
        let total_supernovae = u64::from_le_bytes(head[24..32].try_into().unwrap()) as u32;
        let count = u64::from_le_bytes(head[32..40].try_into().unwrap());
        if count > 16 {
            return Err(CheckpointError::Malformed(format!("{count} sections")));
        }
        let mut gravity = None;
        let mut hydro = None;
        let mut coupling = None;
        let mut stellar = None;
        let mut frame = Vec::new();
        for _ in 0..count {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag).map_err(io_err)?;
            let role = Role::from_tag(tag[0]).ok_or(CheckpointError::BadRole(tag[0]))?;
            let len = wire::read_frame(r, &mut frame)?;
            let mut stored = [0u8; 4];
            r.read_exact(&mut stored).map_err(io_err)?;
            let stored = u32::from_le_bytes(stored);
            let computed = !crc32_feed(crc32_feed(!0, &tag), &frame[..len]);
            if stored != computed {
                return Err(CheckpointError::BadCrc { role: tag[0], stored, computed });
            }
            let state = match wire::decode_response(&frame[..len])? {
                Response::State(s) => s,
                other => {
                    return Err(CheckpointError::Malformed(format!(
                        "section {} holds a non-state frame: {other:?}",
                        role.label()
                    )))
                }
            };
            let slot = match role {
                Role::Gravity => &mut gravity,
                Role::Hydro => &mut hydro,
                Role::Coupling => &mut coupling,
                Role::Stellar => &mut stellar,
            };
            if slot.replace(state).is_some() {
                return Err(CheckpointError::Malformed(format!(
                    "duplicate {} section",
                    role.label()
                )));
            }
        }
        let missing =
            |r: Role| CheckpointError::Malformed(format!("missing {} section", r.label()));
        Ok(Checkpoint {
            time,
            iterations,
            total_supernovae,
            gravity: gravity.ok_or(missing(Role::Gravity))?,
            hydro: hydro.ok_or(missing(Role::Hydro))?,
            coupling: coupling.ok_or(missing(Role::Coupling))?,
            stellar,
        })
    }

    /// Write the container to a file, atomically: the bytes go to a
    /// sibling `.tmp` file which is fsynced and renamed over the
    /// target, so a crash mid-save never destroys the last-known-good
    /// checkpoint already on disk — the file exists to survive exactly
    /// such crashes.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        if let Err(e) = self.write_to(&mut f).and_then(|()| f.sync_all().map_err(io_err)) {
            drop(f);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        drop(f);
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Read a container back from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Checkpoint, CheckpointError> {
        let mut f = std::fs::File::open(path).map_err(io_err)?;
        Checkpoint::read_from(&mut f)
    }
}

/// Build a [`Request::LoadState`] for each of `k` shards: the canonical
/// contiguous split of `state` under [`crate::shard::partition`],
/// returned with the per-shard element counts.
pub fn scatter_states(state: &ModelState, k: usize) -> (Vec<Request>, Vec<usize>) {
    let counts = crate::shard::partition(state.len(), k);
    let mut reqs = Vec::with_capacity(k);
    let mut off = 0usize;
    for &c in &counts {
        reqs.push(Request::LoadState(state.slice(off, off + c)));
        off += c;
    }
    (reqs, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            time: 0.75,
            iterations: 3,
            total_supernovae: 2,
            gravity: ModelState::Gravity {
                time: 0.75,
                mass: vec![1.0, 2.0],
                pos: vec![[0.1; 3], [0.2; 3]],
                vel: vec![[-0.1; 3], [f64::NAN; 3]],
            },
            hydro: ModelState::Hydro {
                time: 0.75,
                mass: vec![0.5; 3],
                pos: vec![[1.0; 3]; 3],
                vel: vec![[2.0; 3]; 3],
                u: vec![1e-3; 3],
                rho: vec![0.9; 3],
                h: vec![0.1, 0.2, 0.3],
            },
            coupling: ModelState::Stateless,
            stellar: Some(ModelState::Stellar {
                time_myr: 4.5,
                z: 0.02,
                initial_masses: vec![1.0, 20.0],
                exploded: vec![false, true],
            }),
        }
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        // The canonical CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn folded_crc_is_bitwise_identical_to_the_bytewise_reference() {
        // Deterministic pseudo-random buffer (splitmix64 stream).
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let buf: Vec<u8> = (0..4096).flat_map(|_| next().to_le_bytes()).collect();
        // Every length class the dispatcher branches on: below the
        // 64-byte folding threshold, exact stripe multiples, ragged
        // 16-byte-block counts, and ragged byte tails; plus unaligned
        // starts, since the folded path uses unaligned loads.
        for len in [0, 1, 15, 16, 63, 64, 65, 79, 80, 127, 128, 129, 1000, 4096, buf.len()] {
            for start in [0usize, 1, 7] {
                let part = &buf[start..(start + len).min(buf.len())];
                for init in [!0u32, 0, 0xDEAD_BEEF] {
                    assert_eq!(
                        crc32_feed(init, part),
                        crc32_feed_bytewise(init, part),
                        "len={len} start={start} init={init:#x}"
                    );
                }
            }
        }
        // Split-feed: running the sum across an arbitrary cut must
        // equal the one-shot sum (sections are streamed in chunks).
        let whole = crc32_feed(!0, &buf);
        for cut in [1usize, 63, 64, 100, 4095] {
            let (a, b) = buf.split_at(cut);
            assert_eq!(crc32_feed(crc32_feed(!0, a), b), whole, "cut={cut}");
        }
    }

    #[test]
    fn container_round_trips_bitwise() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        // PartialEq is false under NaN; compare the debug form of bits
        let bits = |c: &Checkpoint| format!("{c:?}").replace("NaN", "NaN");
        assert_eq!(bits(&ck), bits(&back));
        match (&ck.gravity, &back.gravity) {
            (ModelState::Gravity { vel: a, .. }, ModelState::Gravity { vel: b, .. }) => {
                assert_eq!(a[1][0].to_bits(), b[1][0].to_bits(), "NaN survives bitwise");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn truncated_or_corrupt_containers_error_cleanly() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        for cut in [0, 10, 41, buf.len() - 1] {
            let r = Checkpoint::read_from(&mut std::io::Cursor::new(&buf[..cut]));
            assert!(r.is_err(), "cut at {cut}");
        }
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Checkpoint::read_from(&mut std::io::Cursor::new(&bad)),
            Err(CheckpointError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(matches!(
            Checkpoint::read_from(&mut std::io::Cursor::new(&bad)),
            Err(CheckpointError::BadVersion(9))
        ));
    }

    #[test]
    fn payload_bit_flips_are_caught_by_the_section_crc() {
        // A flipped bit inside an f64 column still parses as a valid
        // frame — before v2 it would have silently restored different
        // physics. The CRC must catch it as a typed error.
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        // Last byte of the final section's frame payload (the 4 bytes
        // after it are that section's CRC).
        let payload_byte = buf.len() - 5;
        for victim in [payload_byte, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[victim] ^= 0x10;
            assert!(
                matches!(
                    Checkpoint::read_from(&mut std::io::Cursor::new(&bad)),
                    Err(CheckpointError::BadCrc { .. })
                ),
                "flip at {victim}"
            );
        }
    }

    #[test]
    fn silently_truncated_saves_are_caught_on_load() {
        // ChaosWriter models a lying disk: write_to "succeeds" but only
        // the head actually lands. Every such container must fail to
        // load with a typed error — never panic, never restore garbage.
        let ck = sample();
        let mut full = Vec::new();
        ck.write_to(&mut full).unwrap();
        for keep in [0u64, 13, 40, 41, 119, full.len() as u64 - 3] {
            let mut buf = Vec::new();
            let mut w = crate::chaos::ChaosWriter::new(&mut buf, keep);
            ck.write_to(&mut w).unwrap();
            assert_eq!(buf.len() as u64, keep.min(full.len() as u64));
            let r = Checkpoint::read_from(&mut std::io::Cursor::new(&buf));
            assert!(r.is_err(), "keep={keep} loaded anyway");
        }
    }

    #[test]
    fn slice_and_append_invert() {
        let full = match sample().hydro {
            s @ ModelState::Hydro { .. } => s,
            _ => unreachable!(),
        };
        let (reqs, counts) = scatter_states(&full, 2);
        assert_eq!(counts, vec![2, 1]);
        let mut rebuilt: Option<ModelState> = None;
        for req in reqs {
            let Request::LoadState(part) = req else { unreachable!() };
            match &mut rebuilt {
                None => rebuilt = Some(part),
                Some(acc) => acc.append(&part).unwrap(),
            }
        }
        assert_eq!(rebuilt.unwrap(), full);
    }

    #[test]
    fn append_rejects_mixed_kinds_and_clock_skew() {
        let mut a = ModelState::Gravity {
            time: 1.0,
            mass: vec![1.0],
            pos: vec![[0.0; 3]],
            vel: vec![[0.0; 3]],
        };
        assert!(a.append(&ModelState::Stateless).is_err());
        let skew = ModelState::Gravity {
            time: 2.0,
            mass: vec![1.0],
            pos: vec![[0.0; 3]],
            vel: vec![[0.0; 3]],
        };
        assert!(a.append(&skew).is_err());
    }
}
