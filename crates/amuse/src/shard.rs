//! Sharding: one logical model fanned out over a pool of workers.
//!
//! A [`ShardedChannel`] owns K inner [`Channel`]s and presents them to
//! the bridge as a single worker. Requests are decomposed per particle:
//!
//! * **Range decomposition** — each shard owns one contiguous particle
//!   range (first shards get the ceil-sized chunk). [`Request::Kick`]
//!   and [`Request::SetMasses`] scatter the matching slice to each
//!   shard; [`Request::GetParticles`] gathers the sub-snapshots back in
//!   shard order.
//! * **Scatter–gather** — [`Request::ComputeKick`] splits the *targets*
//!   across shards and broadcasts the sources; since the coupling
//!   solver evaluates each target independently against a tree built
//!   from the sources alone, the gathered accelerations are bitwise
//!   identical to the unsharded answer.
//! * **Broadcast** — `Ping`/`EvolveTo`/`EvolveStars`/`InjectEnergy`/
//!   `Stop` go to every shard; flops are summed. A stellar update
//!   gathers the per-shard masses in order and remaps event star
//!   indices by each shard's base offset.
//! * **Routing** — [`Request::AddGas`] goes to the last shard (whose
//!   range grows by one).
//!
//! Exactness: sharding is bitwise-exact for any request whose semantics
//! decompose per particle — the coupling kick, SSE stellar evolution,
//! and all state ops (snapshot/kick/set-masses). Broadcasting
//! `EvolveTo` to a *tightly coupled* model (PhiGRAPE, Gadget) evolves
//! each shard's particles in isolation, and `InjectEnergy` normalizes
//! its deposit per shard — both are domain-decomposition
//! approximations, not bitwise reproductions; shard those models only
//! when that is understood.
//!
//! The asynchronous `submit`/`collect` path fans out to every shard
//! before collecting, so shards genuinely overlap (K socket workers run
//! concurrently). The borrowing fast paths instead run shard-by-shard
//! against per-shard scratch buffers, keeping the bridge's hot loop
//! allocation-free once warm.
//!
//! Failure semantics split into two tiers. *Transient* transport
//! faults (timeouts, dropped connections, torn frames — anything
//! [`crate::wire::WireError::is_transient`]) are absorbed **below**
//! this layer: each [`SocketChannel`](crate::socket::SocketChannel)
//! stamps mutating requests with a sequence number and, under a
//! [`RetryPolicy`](crate::chaos::RetryPolicy), resends the identical
//! frame in place; the worker's last-applied-seq dedup cache makes the
//! resend idempotent, so even `Kick`/`SetMasses` retry safely without
//! double-applying. Any error that still *surfaces* from a shard is
//! therefore *fatal*: retries were exhausted (or disabled) and a
//! scatter is *not* atomic across shards — the shards already
//! addressed have applied their slices and the rest have not, so the
//! pool's state is inconsistent. The bridge treats a surfaced kick
//! failure as "this pool is failed" and recovers by *rewinding*:
//! restore a checkpoint ([`Request::LoadState`] re-scatters the full
//! authoritative state over whatever shards are alive), then replay
//! the iteration.
//!
//! Failover: a pool built [`ShardedChannel::with_supervisor`] survives
//! dead shards. [`ShardedChannel::heartbeat`] pings every shard (the
//! dead-peer detector); [`ShardedChannel::heal`] replaces each dead
//! shard with a supervisor respawn — or, when the supervisor cannot
//! deliver one, *excludes* it and re-partitions over the survivors.
//! Both paths rely on the bridge restoring a checkpoint afterwards:
//! a respawned worker starts from initial conditions and an exclusion
//! changes the range decomposition, so the pool's state is
//! authoritative again only after the next `LoadState`.

use crate::channel::{Channel, ChannelStats};
use crate::checkpoint::{scatter_states, ModelState};
use crate::worker::{ParticleData, Request, Response};
use jc_stellar::StellarEvent;

/// Contiguous range sizes for `total` particles over `k` shards: the
/// first shards get `ceil(total / k)` until the remainder runs out.
/// (`jungle-worker --shard i/K` slices with the same rule, so a worker
/// pool launched from the CLI lines up with the coupler's scatter.)
pub fn partition(total: usize, k: usize) -> Vec<usize> {
    assert!(k > 0, "at least one shard");
    let chunk = total.div_ceil(k);
    let mut counts = Vec::with_capacity(k);
    let mut left = total;
    for _ in 0..k {
        let c = chunk.min(left);
        counts.push(c);
        left -= c;
    }
    counts
}

/// Respawns dead shard workers — the deploy layer's hook into the
/// pool's failover path. `jc_deploy::ProcessSupervisor` implements it
/// by relaunching `jungle-worker` processes; tests implement it with a
/// closure returning a fresh channel.
///
/// A respawned worker starts from its *initial* state; the caller (the
/// bridge's recovery loop) must re-establish the model state with a
/// [`Request::LoadState`] afterwards.
pub trait ShardSupervisor {
    /// Produce a replacement channel for the worker launched as slot
    /// `shard` (the shard's *original* index at pool assembly — stable
    /// across exclusions), or `None` when the worker cannot be
    /// respawned (the pool then excludes it).
    fn respawn(&mut self, shard: usize) -> Option<Box<dyn Channel>>;
}

impl<F> ShardSupervisor for F
where
    F: FnMut(usize) -> Option<Box<dyn Channel>>,
{
    fn respawn(&mut self, shard: usize) -> Option<Box<dyn Channel>> {
        self(shard)
    }
}

/// How to reassemble the outstanding fan-out.
enum Pending {
    /// All shards answered `Ok`; sum flops.
    Broadcast,
    /// Concatenate particle snapshots in shard order.
    Concat,
    /// Concatenate stellar masses; remap event star indices.
    Stellar,
    /// Concatenate accelerations in shard order; sum flops.
    Gather,
    /// Append checkpoint states in shard order.
    State,
    /// All shards answered `Ok` to a state scatter; on success adopt
    /// the new per-shard particle counts (`None` for pools whose
    /// elements are not snapshot particles — stellar, stateless).
    Load {
        /// The scatter's element counts per shard.
        counts: Option<Vec<usize>>,
    },
    /// Only this shard was addressed; `grow` bumps its range size on
    /// success (AddGas).
    Single {
        /// Shard index.
        shard: usize,
        /// Grow the shard's particle count on an `Ok` response.
        grow: bool,
    },
    /// Scatter validation failed before any shard was addressed; no
    /// fan-out is outstanding and `collect` returns the stored error.
    Failed(Response),
}

/// One logical worker spread over K shard channels.
pub struct ShardedChannel {
    shards: Vec<Box<dyn Channel>>,
    /// Particles owned per shard (0 for stateless/non-particle workers).
    counts: Vec<usize>,
    pending: Option<Pending>,
    /// Per-shard snapshot scratch for the gathering fast path.
    snap_scratch: Vec<ParticleData>,
    /// Per-shard acceleration scratch for the compute-kick fast path.
    acc_scratch: Vec<Vec<[f64; 3]>>,
    /// Respawns dead shards during [`ShardedChannel::heal`].
    supervisor: Option<Box<dyn ShardSupervisor>>,
    /// Original launch slot of each current shard: exclusions remove
    /// entries, so pool index i's supervisor slot stays `slots[i]` and
    /// a respawn after an earlier exclusion still names the right
    /// launch recipe (and kills the right process).
    slots: Vec<usize>,
    /// Shards replaced by the supervisor so far.
    respawns: u64,
    /// Shards excluded (no replacement available) so far.
    exclusions: u64,
    /// Force serial lock-step fan-out even when every shard pipelines
    /// (`JC_LOCKSTEP=1`, or [`ShardedChannel::with_lockstep`]).
    lockstep: bool,
}

/// `JC_LOCKSTEP=1` (or `true`) disables pipelined fan-out globally.
fn lockstep_from_env() -> bool {
    matches!(std::env::var("JC_LOCKSTEP").ok().as_deref(), Some("1") | Some("true"))
}

impl ShardedChannel {
    /// Assemble a sharded channel, probing each shard with one particle
    /// snapshot to learn its range size (counted in the shard's stats as
    /// one `GetParticles` call; shards that do not hold particles —
    /// coupling, stellar — report 0 and are exempt from range
    /// validation).
    pub fn new(shards: Vec<Box<dyn Channel>>) -> ShardedChannel {
        assert!(!shards.is_empty(), "at least one shard");
        let mut ch = ShardedChannel::with_counts(shards, Vec::new());
        let mut probe = ParticleData::default();
        for i in 0..ch.shards.len() {
            ch.counts[i] =
                if ch.shards[i].snapshot_into(&mut probe) { probe.mass.len() } else { 0 };
        }
        ch
    }

    /// Assemble with known per-shard particle counts (skips the probe;
    /// an empty `counts` means a stateless pool and is normalized to
    /// one zero per shard).
    pub fn with_counts(shards: Vec<Box<dyn Channel>>, counts: Vec<usize>) -> ShardedChannel {
        assert!(!shards.is_empty(), "at least one shard");
        assert!(counts.is_empty() || counts.len() == shards.len());
        let k = shards.len();
        let counts = if counts.is_empty() { vec![0; k] } else { counts };
        ShardedChannel {
            shards,
            counts,
            pending: None,
            slots: (0..k).collect(),
            snap_scratch: (0..k).map(|_| ParticleData::default()).collect(),
            acc_scratch: (0..k).map(|_| Vec::new()).collect(),
            supervisor: None,
            respawns: 0,
            exclusions: 0,
            lockstep: lockstep_from_env(),
        }
    }

    /// Force (or undo) serial lock-step fan-out regardless of what the
    /// shard channels support; overrides `JC_LOCKSTEP`.
    pub fn with_lockstep(mut self, lockstep: bool) -> ShardedChannel {
        self.lockstep = lockstep;
        self
    }

    /// True when the state-op fast paths fan out in two phases (all
    /// shards submitted before any collect) so the K workers compute —
    /// and their frames fly — concurrently instead of one at a time.
    pub fn pipelined(&self) -> bool {
        !self.lockstep && self.shards.iter().all(|s| s.pipelines())
    }

    /// Attach a supervisor that can respawn dead shards (see
    /// [`ShardedChannel::heal`]).
    pub fn with_supervisor(mut self, sup: Box<dyn ShardSupervisor>) -> ShardedChannel {
        self.supervisor = Some(sup);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shards replaced by the supervisor so far.
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Shards excluded from the pool (dead, no replacement) so far.
    pub fn exclusions(&self) -> u64 {
        self.exclusions
    }

    /// Dead-peer detection: one heartbeat ([`Request::Ping`]) per shard,
    /// `true` per live shard. Safe only between calls (no outstanding
    /// fan-out).
    pub fn heartbeat(&mut self) -> Vec<bool> {
        assert!(self.pending.is_none(), "heartbeat during an outstanding call");
        self.shards
            .iter_mut()
            .map(|s| matches!(s.call(Request::Ping), Response::Ok { .. }))
            .collect()
    }

    /// Total particles across all shards (as last observed).
    pub fn total_particles(&self) -> usize {
        self.counts.iter().sum()
    }

    /// `[start, end)` of shard `i`'s particle range (`counts` always
    /// holds one entry per shard; a stateless pool is all zeros).
    fn range(&self, i: usize) -> (usize, usize) {
        let start: usize = self.counts[..i].iter().sum();
        (start, start + self.counts[i])
    }

    /// Scatter a per-particle vector into per-shard slices, submitting
    /// `make(slice)` to each shard. Errors if the length disagrees with
    /// the known decomposition.
    fn scatter_submit<T: Clone>(
        &mut self,
        data: &[T],
        make: impl Fn(Vec<T>) -> Request,
    ) -> Result<(), Box<Response>> {
        if data.len() != self.total_particles() {
            return Err(Box::new(Response::Error(format!(
                "sharded scatter length mismatch: got {}, shards own {}",
                data.len(),
                self.total_particles()
            ))));
        }
        for i in 0..self.shards.len() {
            let (a, b) = self.range(i);
            self.shards[i].submit(make(data[a..b].to_vec()));
        }
        Ok(())
    }

    fn collect_broadcast(&mut self) -> Response {
        let mut flops = 0.0;
        let mut failure: Option<Response> = None;
        for s in &mut self.shards {
            match s.collect() {
                Response::Ok { flops: f } => flops += f,
                other => {
                    if failure.is_none() {
                        failure = Some(other);
                    }
                }
            }
        }
        failure.unwrap_or(Response::Ok { flops })
    }

    fn collect_concat(&mut self) -> Response {
        let mut all = ParticleData::default();
        for i in 0..self.shards.len() {
            match self.shards[i].collect() {
                Response::Particles(p) => {
                    self.counts[i] = p.mass.len(); // refresh the observed layout
                    all.mass.extend_from_slice(&p.mass);
                    all.pos.extend_from_slice(&p.pos);
                    all.vel.extend_from_slice(&p.vel);
                }
                other => return self.drain_after_failure(i + 1, other),
            }
        }
        Response::Particles(all)
    }

    fn collect_stellar(&mut self) -> Response {
        let mut masses = Vec::new();
        let mut events = Vec::new();
        for i in 0..self.shards.len() {
            match self.shards[i].collect() {
                Response::StellarUpdate { masses: m, events: ev } => {
                    let base = masses.len();
                    masses.extend_from_slice(&m);
                    events.extend(ev.into_iter().map(|e| match e {
                        StellarEvent::Supernova { star, ejected_mass, energy_foe } => {
                            StellarEvent::Supernova { star: star + base, ejected_mass, energy_foe }
                        }
                        StellarEvent::WindMassLoss { star, mass } => {
                            StellarEvent::WindMassLoss { star: star + base, mass }
                        }
                    }));
                }
                other => return self.drain_after_failure(i + 1, other),
            }
        }
        Response::StellarUpdate { masses, events }
    }

    fn collect_gather(&mut self) -> Response {
        let mut acc = Vec::new();
        let mut flops = 0.0;
        for i in 0..self.shards.len() {
            match self.shards[i].collect() {
                Response::Accelerations { acc: a, flops: f } => {
                    acc.extend_from_slice(&a);
                    flops += f;
                }
                other => return self.drain_after_failure(i + 1, other),
            }
        }
        Response::Accelerations { acc, flops }
    }

    fn collect_state(&mut self) -> Response {
        let mut acc: Option<ModelState> = None;
        for i in 0..self.shards.len() {
            match self.shards[i].collect() {
                Response::State(s) => match &mut acc {
                    None => acc = Some(s),
                    Some(a) => {
                        if let Err(e) = a.append(&s) {
                            return self.drain_after_failure(i + 1, Response::Error(e));
                        }
                    }
                },
                other => return self.drain_after_failure(i + 1, other),
            }
        }
        Response::State(acc.expect("at least one shard"))
    }

    fn collect_load(&mut self, counts: Option<Vec<usize>>) -> Response {
        let resp = self.collect_broadcast();
        if matches!(resp, Response::Ok { .. }) {
            if let Some(c) = counts {
                self.counts = c;
            }
        }
        resp
    }

    /// A shard answered wrongly mid-gather: drain the remaining shards
    /// (their pipelines must be left clean) and surface the failure.
    fn drain_after_failure(&mut self, next: usize, failure: Response) -> Response {
        for s in &mut self.shards[next..] {
            let _ = s.collect();
        }
        failure
    }
}

impl Channel for ShardedChannel {
    fn call(&mut self, req: Request) -> Response {
        self.submit(req);
        self.collect()
    }

    fn submit(&mut self, req: Request) {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        let pending = match req {
            Request::GetParticles => {
                for s in &mut self.shards {
                    s.submit(Request::GetParticles);
                }
                Pending::Concat
            }
            Request::Kick(dv) => match self.scatter_submit(&dv, Request::Kick) {
                Ok(()) => Pending::Broadcast,
                Err(resp) => Pending::Failed(*resp),
            },
            Request::SetMasses(m) => match self.scatter_submit(&m, Request::SetMasses) {
                Ok(()) => Pending::Broadcast,
                Err(resp) => Pending::Failed(*resp),
            },
            Request::ComputeKick { targets, source_pos, source_mass } => {
                let counts = partition(targets.len(), self.shards.len());
                let mut off = 0usize;
                for (i, c) in counts.iter().enumerate() {
                    self.shards[i].submit(Request::ComputeKick {
                        targets: targets[off..off + c].to_vec(),
                        source_pos: source_pos.clone(),
                        source_mass: source_mass.clone(),
                    });
                    off += c;
                }
                Pending::Gather
            }
            Request::EvolveStars(t) => {
                for s in &mut self.shards {
                    s.submit(Request::EvolveStars(t));
                }
                Pending::Stellar
            }
            Request::SaveState => {
                for s in &mut self.shards {
                    s.submit(Request::SaveState);
                }
                Pending::State
            }
            Request::LoadState(state) => {
                // canonical contiguous re-partition of the authoritative
                // state over however many shards are alive right now
                let particles =
                    matches!(state, ModelState::Gravity { .. } | ModelState::Hydro { .. });
                let (reqs, counts) = scatter_states(&state, self.shards.len());
                for (s, req) in self.shards.iter_mut().zip(reqs) {
                    s.submit(req);
                }
                Pending::Load { counts: particles.then_some(counts) }
            }
            Request::AddGas { pos, mass, u } => {
                let last = self.shards.len() - 1;
                self.shards[last].submit(Request::AddGas { pos, mass, u });
                Pending::Single { shard: last, grow: true }
            }
            other => {
                // Ping / EvolveTo / InjectEnergy / Stop: plain broadcast
                for s in &mut self.shards {
                    s.submit(other.clone());
                }
                Pending::Broadcast
            }
        };
        self.pending = Some(pending);
    }

    fn collect(&mut self) -> Response {
        match self.pending.take().expect("no outstanding call") {
            Pending::Broadcast => self.collect_broadcast(),
            Pending::Concat => self.collect_concat(),
            Pending::Stellar => self.collect_stellar(),
            Pending::Gather => self.collect_gather(),
            Pending::State => self.collect_state(),
            Pending::Load { counts } => self.collect_load(counts),
            Pending::Single { shard, grow } => {
                let resp = self.shards[shard].collect();
                if grow && matches!(resp, Response::Ok { .. }) {
                    self.counts[shard] += 1;
                }
                resp
            }
            Pending::Failed(resp) => resp,
        }
    }

    fn stats(&self) -> ChannelStats {
        let mut total = ChannelStats::default();
        for s in &self.shards {
            total.merge(&s.stats());
        }
        total
    }

    fn worker_name(&self) -> String {
        format!("{}×{}", self.shards[0].worker_name(), self.shards.len())
    }

    /// Every member channel gets the same per-request budget — a pool
    /// is one logical worker, so one deadline governs all its shards.
    fn set_deadline(&mut self, deadline_ms: u64) {
        for s in &mut self.shards {
            s.set_deadline(deadline_ms);
        }
    }

    /// A sharded pool pipelines when every member does (and the
    /// lock-step escape hatch is off), letting an outer composition —
    /// nested pools, the bridge — overlap this pool with its siblings.
    fn pipelines(&self) -> bool {
        self.pipelined()
    }

    /// Failover: heartbeat every shard; replace each dead one with a
    /// supervisor respawn, or exclude it (re-partitioning over the
    /// survivors) when no replacement is available. Returns `false`
    /// only when the pool would be left empty. After a heal that
    /// changed the pool, the shard states are not authoritative until
    /// the next [`Request::LoadState`] (the bridge's restore).
    fn heal(&mut self) -> bool {
        // detection via the heartbeat; walk the dead shards back to
        // front so an exclusion's removal never shifts an index that is
        // still to be visited. Respawns are addressed by the shard's
        // *original launch slot* (`slots[i]`), which survives earlier
        // exclusions — the supervisor must never reap or relaunch a
        // different recipe than the one that died.
        let alive = self.heartbeat();
        for i in (0..alive.len()).rev() {
            if alive[i] {
                continue;
            }
            let slot = self.slots[i];
            let replacement = self.supervisor.as_mut().and_then(|s| s.respawn(slot));
            match replacement {
                Some(ch) => {
                    self.shards[i] = ch;
                    self.respawns += 1;
                }
                None => {
                    // exclude: drop the dead shard from every per-shard
                    // column; the next LoadState re-partitions
                    self.shards.remove(i);
                    self.counts.remove(i);
                    self.slots.remove(i);
                    self.snap_scratch.remove(i);
                    self.acc_scratch.remove(i);
                    self.exclusions += 1;
                }
            }
        }
        !self.shards.is_empty()
    }

    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        out.mass.clear();
        out.pos.clear();
        out.vel.clear();
        if self.pipelined() {
            // Phase one: every shard has the request on the wire before
            // any reply is awaited, so the K workers encode and send
            // their snapshots concurrently.
            for s in &mut self.shards {
                s.submit_snapshot();
            }
            let mut ok = true;
            for i in 0..self.shards.len() {
                // Even after a failure every remaining collect runs:
                // the shards' pipelines must be left clean.
                if !self.shards[i].collect_snapshot_into(&mut self.snap_scratch[i]) {
                    ok = false;
                }
            }
            if !ok {
                return false;
            }
            for i in 0..self.shards.len() {
                let scratch = &self.snap_scratch[i];
                self.counts[i] = scratch.mass.len();
                out.mass.extend_from_slice(&scratch.mass);
                out.pos.extend_from_slice(&scratch.pos);
                out.vel.extend_from_slice(&scratch.vel);
            }
            return true;
        }
        for i in 0..self.shards.len() {
            let scratch = &mut self.snap_scratch[i];
            if !self.shards[i].snapshot_into(scratch) {
                return false;
            }
            self.counts[i] = scratch.mass.len();
            out.mass.extend_from_slice(&scratch.mass);
            out.pos.extend_from_slice(&scratch.pos);
            out.vel.extend_from_slice(&scratch.vel);
        }
        true
    }

    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Response {
        if dv.len() != self.total_particles() {
            return Response::Error(format!(
                "sharded kick length mismatch: got {}, shards own {}",
                dv.len(),
                self.total_particles()
            ));
        }
        let mut flops = 0.0;
        if self.pipelined() {
            for i in 0..self.shards.len() {
                let (a, b) = self.range(i);
                self.shards[i].submit_kick_slice(&dv[a..b]);
            }
            let mut failure: Option<Response> = None;
            for s in &mut self.shards {
                match s.collect_kick() {
                    Response::Ok { flops: f } => flops += f,
                    other => {
                        if failure.is_none() {
                            failure = Some(other);
                        }
                    }
                }
            }
            return failure.unwrap_or(Response::Ok { flops });
        }
        for i in 0..self.shards.len() {
            let (a, b) = self.range(i);
            match self.shards[i].kick_slice(&dv[a..b]) {
                Response::Ok { flops: f } => flops += f,
                other => return other,
            }
        }
        Response::Ok { flops }
    }

    fn compute_kick_into(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        let counts = partition(targets.len(), self.shards.len());
        let mut flops = 0.0;
        if self.pipelined() {
            let mut off = 0usize;
            for (i, c) in counts.iter().enumerate() {
                self.shards[i].submit_compute_kick(&targets[off..off + c], source_pos, source_mass);
                off += c;
            }
            let mut ok = true;
            for i in 0..self.shards.len() {
                match self.shards[i].collect_accelerations_into(&mut self.acc_scratch[i]) {
                    Some(f) => flops += f,
                    None => ok = false,
                }
            }
            if !ok {
                return None;
            }
        } else {
            let mut off = 0usize;
            for (i, c) in counts.iter().enumerate() {
                let acc = &mut self.acc_scratch[i];
                flops += self.shards[i].compute_kick_into(
                    &targets[off..off + c],
                    source_pos,
                    source_mass,
                    acc,
                )?;
                off += c;
            }
        }
        out.clear();
        for acc in &self.acc_scratch {
            out.extend_from_slice(acc);
        }
        Some(flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::LocalChannel;
    use crate::worker::{CouplingWorker, GravityWorker, StellarWorker};
    use jc_nbody::plummer::plummer_sphere;
    use jc_nbody::Backend;

    fn local(w: impl crate::worker::ModelWorker + 'static) -> Box<dyn Channel> {
        Box::new(LocalChannel::new(Box::new(w)))
    }

    #[test]
    fn partition_covers_everything_contiguously() {
        assert_eq!(partition(10, 3), vec![4, 4, 2]);
        assert_eq!(partition(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(partition(0, 2), vec![0, 0]);
        assert_eq!(partition(7, 1), vec![7]);
    }

    #[test]
    fn sharded_coupling_matches_unsharded_bitwise() {
        let ics = plummer_sphere(97, 5);
        let mut single = CouplingWorker::fi();
        let reference = match crate::worker::ModelWorker::handle(
            &mut single,
            Request::ComputeKick {
                targets: ics.pos.clone(),
                source_pos: ics.pos.clone(),
                source_mass: ics.mass.clone(),
            },
        ) {
            Response::Accelerations { acc, .. } => acc,
            other => panic!("{other:?}"),
        };
        for k in 1..=3 {
            let shards: Vec<Box<dyn Channel>> =
                (0..k).map(|_| local(CouplingWorker::fi())).collect();
            let mut sharded = ShardedChannel::new(shards);
            let resp = sharded.call(Request::ComputeKick {
                targets: ics.pos.clone(),
                source_pos: ics.pos.clone(),
                source_mass: ics.mass.clone(),
            });
            match resp {
                Response::Accelerations { acc, .. } => {
                    assert_eq!(acc.len(), reference.len());
                    for (a, b) in acc.iter().zip(&reference) {
                        for j in 0..3 {
                            assert_eq!(a[j].to_bits(), b[j].to_bits(), "k={k}");
                        }
                    }
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn sharded_stellar_remaps_event_indices() {
        let masses: Vec<f64> = vec![1.0, 30.0, 2.0, 25.0, 0.8];
        let mut single = local(StellarWorker::new(masses.clone(), 0.02));
        let reference = single.call(Request::EvolveStars(8.0));
        let counts = partition(masses.len(), 2);
        let mut off = 0;
        let shards: Vec<Box<dyn Channel>> = counts
            .iter()
            .map(|&c| {
                let w = StellarWorker::new(masses[off..off + c].to_vec(), 0.02);
                off += c;
                local(w)
            })
            .collect();
        let mut sharded = ShardedChannel::with_counts(shards, vec![0; 2]);
        let resp = sharded.call(Request::EvolveStars(8.0));
        match (reference, resp) {
            (
                Response::StellarUpdate { masses: m1, events: e1 },
                Response::StellarUpdate { masses: m2, events: e2 },
            ) => {
                assert_eq!(m1, m2);
                assert_eq!(e1, e2);
                assert!(!e1.is_empty(), "sanity: the 30 and 25 MSun stars explode by 8 Myr");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sharded_state_ops_match_unsharded() {
        let ics = plummer_sphere(23, 8);
        let dv: Vec<[f64; 3]> = (0..23).map(|i| [i as f64 * 1e-4, -1e-5, 2e-5]).collect();

        let mut single = local(GravityWorker::new(ics.clone(), Backend::Scalar));
        let _ = single.call(Request::Kick(dv.clone()));
        let reference = match single.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("{other:?}"),
        };

        let counts = partition(23, 3);
        let mut off = 0;
        let shards: Vec<Box<dyn Channel>> = counts
            .iter()
            .map(|&c| {
                let sub = ics.slice(off, off + c);
                off += c;
                local(GravityWorker::new(sub, Backend::Scalar))
            })
            .collect();
        let mut sharded = ShardedChannel::new(shards);
        assert_eq!(sharded.total_particles(), 23);
        let r = sharded.call(Request::Kick(dv));
        assert!(matches!(r, Response::Ok { .. }), "{r:?}");
        match sharded.call(Request::GetParticles) {
            Response::Particles(p) => {
                assert_eq!(p.mass, reference.mass);
                assert_eq!(p.pos, reference.pos);
                assert_eq!(p.vel, reference.vel);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stateless_pool_survives_zero_length_scatter() {
        // empty `counts` (stateless pool) + a zero-length scatter must
        // not panic: every shard just gets an empty slice
        let shards: Vec<Box<dyn Channel>> = (0..2).map(|_| local(CouplingWorker::fi())).collect();
        let mut pool = ShardedChannel::with_counts(shards, Vec::new());
        assert_eq!(pool.total_particles(), 0);
        let r = pool.call(Request::Kick(Vec::new()));
        assert!(matches!(r, Response::Unsupported), "{r:?}");
        let r = pool.kick_slice(&[]);
        assert!(matches!(r, Response::Unsupported), "{r:?}");

        // a pool built with empty counts over particle-holding shards
        // discovers its layout from the first snapshot instead of
        // panicking on the counts refresh
        let shards: Vec<Box<dyn Channel>> = (0..2)
            .map(|i| local(GravityWorker::new(plummer_sphere(4, i), Backend::Scalar)))
            .collect();
        let mut pool = ShardedChannel::with_counts(shards, Vec::new());
        match pool.call(Request::GetParticles) {
            Response::Particles(p) => assert_eq!(p.mass.len(), 8),
            other => panic!("{other:?}"),
        }
        assert_eq!(pool.total_particles(), 8, "counts refreshed from the gather");
    }

    #[test]
    fn mismatched_scatter_is_an_error() {
        let shards: Vec<Box<dyn Channel>> = (0..2)
            .map(|i| local(GravityWorker::new(plummer_sphere(4, i), Backend::Scalar)))
            .collect();
        let mut sharded = ShardedChannel::new(shards);
        let r = sharded.kick_slice(&[[0.0; 3]; 3]);
        assert!(matches!(r, Response::Error(_)), "{r:?}");
    }
}
