//! Channels: how the coupler talks to workers.
//!
//! "AMUSE communicates with workers using a channel, in an RPC-like method.
//! Both synchronous and asynchronous calls are supported. The default
//! channel uses MPI [...] however, a channel based on sockets is also
//! available. For this paper, we added an Ibis channel" (§4.1). Here:
//!
//! * [`LocalChannel`] — worker lives in the caller (stands in for the MPI
//!   channel's same-machine case).
//! * [`ThreadChannel`] — worker runs on its own OS thread behind crossbeam
//!   queues (stands in for the socket channel; gives real async overlap).
//! * The Ibis channel is `jc_core::IbisChannel`, routing these same
//!   requests through the simulated jungle.

use crate::worker::{ModelWorker, ParticleData, Request, Response};
use crossbeam::channel as xchan;

/// Cumulative per-channel accounting (the coupler-side view of traffic).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChannelStats {
    /// Completed calls.
    pub calls: u64,
    /// Request bytes sent.
    pub bytes_out: u64,
    /// Response bytes received.
    pub bytes_in: u64,
    /// Total modeled kernel flops reported by responses.
    pub flops: f64,
    /// In-place transient-fault retries (reconnect + resend of the same
    /// sequence-stamped frame; see [`crate::chaos::RetryPolicy`]). A
    /// retried call still counts once in `calls`; only the bytes of the
    /// winning attempt are accounted. Always 0 for in-process channels.
    pub retries: u64,
}

impl ChannelStats {
    /// Fold `other` into this accumulator. Session-scoped roll-ups (the
    /// service layer sums all of a session's channels, across
    /// migrations, into one ledger) need addition, not replacement.
    pub fn merge(&mut self, other: &ChannelStats) {
        self.calls += other.calls;
        self.bytes_out += other.bytes_out;
        self.bytes_in += other.bytes_in;
        self.flops += other.flops;
        self.retries += other.retries;
    }
}

/// An RPC channel to one worker.
///
/// The `*_into`/`*_slice` methods are borrowing fast paths used by the
/// bridge's per-step hot loop. The defaults route through the ordinary
/// RPC (a remote channel must move full copies over the wire anyway, and
/// the accounting stays identical); [`LocalChannel`] overrides them to
/// hand borrowed slices straight to the worker, so an in-process bridge
/// step constructs no payload `Vec`s.
pub trait Channel {
    /// Synchronous call.
    fn call(&mut self, req: Request) -> Response;
    /// Fire an asynchronous call. At most one may be outstanding per
    /// channel (AMUSE's per-worker request pipeline is depth-1 too).
    fn submit(&mut self, req: Request);
    /// Wait for the outstanding asynchronous call.
    fn collect(&mut self) -> Response;
    /// Accounting.
    fn stats(&self) -> ChannelStats;
    /// Worker name.
    fn worker_name(&self) -> String;

    /// Liveness check and best-effort repair (the failover hook). The
    /// default is a heartbeat: one [`Request::Ping`] round trip, `true`
    /// iff the worker answers `Ok`. In-process channels are always
    /// alive; a poisoned [`crate::SocketChannel`] reports `false`
    /// (reconnection is a supervisor's job); a
    /// [`crate::ShardedChannel`] additionally respawns or excludes dead
    /// shards. After a successful heal the worker's *state* is not
    /// guaranteed — restore it from a checkpoint before continuing
    /// (see [`crate::bridge::Bridge::restore`]).
    fn heal(&mut self) -> bool {
        matches!(self.call(Request::Ping), Response::Ok { .. })
    }

    /// Set the per-request wall-clock budget
    /// ([`crate::chaos::RetryPolicy::deadline_ms`], 0 = unbounded) on
    /// whatever retry machinery this channel has. The service layer
    /// calls this when it leases a channel for a session, so the
    /// session's remaining deadline propagates into every retry/backoff
    /// loop underneath. In-process channels never retry, hence the
    /// default is a no-op.
    fn set_deadline(&mut self, _deadline_ms: u64) {}

    /// Snapshot the worker's particles into `out` (reusing its buffers).
    /// Counts as one [`Request::GetParticles`] call in the stats.
    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        match self.call(Request::GetParticles) {
            Response::Particles(p) => {
                *out = p;
                true
            }
            _ => false,
        }
    }

    /// Apply velocity kicks from a borrowed slice. Counts as one
    /// [`Request::Kick`] call in the stats.
    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Response {
        self.call(Request::Kick(dv.to_vec()))
    }

    /// Compute coupling accelerations into `out` (cleared and refilled).
    /// Counts as one [`Request::ComputeKick`] call in the stats. Returns
    /// the modeled flops, or `None` on failure.
    fn compute_kick_into(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        match self.call(Request::ComputeKick {
            targets: targets.to_vec(),
            source_pos: source_pos.to_vec(),
            source_mass: source_mass.to_vec(),
        }) {
            Response::Accelerations { acc, flops } => {
                *out = acc;
                Some(flops)
            }
            _ => None,
        }
    }

    /// Does this channel overlap in-flight requests? `true` means the
    /// two-phase fast paths below genuinely pipeline (the request is on
    /// the wire when `submit_*` returns, and other channels' I/O makes
    /// progress while this one is collected), so a fan-out of
    /// `submit_*` calls followed by collects overlaps all the round
    /// trips. The default `false` keeps in-process channels on the
    /// borrowing one-shot fast paths, which are allocation-free for
    /// them — [`crate::ShardedChannel`] consults this to pick its
    /// scatter-gather mode.
    fn pipelines(&self) -> bool {
        false
    }

    /// Two-phase [`Channel::snapshot_into`]: start the
    /// [`Request::GetParticles`] round trip.
    fn submit_snapshot(&mut self) {
        self.submit(Request::GetParticles)
    }

    /// Finish a [`Channel::submit_snapshot`]; same result and
    /// accounting as the one-shot `snapshot_into`.
    fn collect_snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        match self.collect() {
            Response::Particles(p) => {
                *out = p;
                true
            }
            _ => false,
        }
    }

    /// Two-phase [`Channel::kick_slice`]: start the [`Request::Kick`]
    /// round trip.
    fn submit_kick_slice(&mut self, dv: &[[f64; 3]]) {
        self.submit(Request::Kick(dv.to_vec()))
    }

    /// Finish a [`Channel::submit_kick_slice`].
    fn collect_kick(&mut self) -> Response {
        self.collect()
    }

    /// Two-phase [`Channel::compute_kick_into`]: start the
    /// [`Request::ComputeKick`] round trip.
    fn submit_compute_kick(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
    ) {
        self.submit(Request::ComputeKick {
            targets: targets.to_vec(),
            source_pos: source_pos.to_vec(),
            source_mass: source_mass.to_vec(),
        })
    }

    /// Finish a [`Channel::submit_compute_kick`]; same result and
    /// accounting as the one-shot `compute_kick_into`.
    fn collect_accelerations_into(&mut self, out: &mut Vec<[f64; 3]>) -> Option<f64> {
        match self.collect() {
            Response::Accelerations { acc, flops } => {
                *out = acc;
                Some(flops)
            }
            _ => None,
        }
    }
}

fn account(stats: &mut ChannelStats, req_bytes: u64, resp: &Response) {
    stats.calls += 1;
    stats.bytes_out += req_bytes;
    stats.bytes_in += resp.wire_size();
    stats.flops += resp.flops();
}

/// The in-process channel: requests execute immediately on the caller's
/// thread. `submit`/`collect` still work (they just buffer the response),
/// so bridge code is oblivious to the channel kind.
pub struct LocalChannel {
    worker: Box<dyn ModelWorker>,
    stats: ChannelStats,
    pending: Option<Response>,
}

impl LocalChannel {
    /// Wrap a worker.
    pub fn new(worker: Box<dyn ModelWorker>) -> LocalChannel {
        LocalChannel { worker, stats: ChannelStats::default(), pending: None }
    }
}

impl Channel for LocalChannel {
    fn call(&mut self, req: Request) -> Response {
        let rb = req.wire_size();
        let resp = self.worker.handle(req);
        account(&mut self.stats, rb, &resp);
        resp
    }

    fn submit(&mut self, req: Request) {
        assert!(self.pending.is_none(), "one outstanding call per channel");
        let resp = self.call(req);
        self.pending = Some(resp);
    }

    fn collect(&mut self) -> Response {
        self.pending.take().expect("no outstanding call")
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn worker_name(&self) -> String {
        self.worker.name()
    }

    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        if self.worker.snapshot_into(out) {
            // account exactly like the Request::GetParticles round trip
            self.stats.calls += 1;
            self.stats.bytes_out += Request::GetParticles.wire_size();
            self.stats.bytes_in += out.wire_size() + 32;
            true
        } else {
            match self.call(Request::GetParticles) {
                Response::Particles(p) => {
                    *out = p;
                    true
                }
                _ => false,
            }
        }
    }

    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Response {
        match self.worker.kick_slice(dv) {
            Some(flops) => {
                let resp = Response::Ok { flops };
                account(&mut self.stats, 24 * dv.len() as u64 + 32, &resp);
                resp
            }
            None => self.call(Request::Kick(dv.to_vec())),
        }
    }

    fn compute_kick_into(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        match self.worker.compute_kick_into(targets, source_pos, source_mass, out) {
            Some(flops) => {
                self.stats.calls += 1;
                self.stats.bytes_out += 24 * (targets.len() + source_pos.len()) as u64
                    + 8 * source_mass.len() as u64
                    + 32;
                self.stats.bytes_in += 24 * out.len() as u64 + 32;
                self.stats.flops += flops;
                Some(flops)
            }
            None => match self.call(Request::ComputeKick {
                targets: targets.to_vec(),
                source_pos: source_pos.to_vec(),
                source_mass: source_mass.to_vec(),
            }) {
                Response::Accelerations { acc, flops } => {
                    *out = acc;
                    Some(flops)
                }
                _ => None,
            },
        }
    }
}

enum ThreadMsg {
    Call(Request),
    Shutdown,
}

/// A worker on its own OS thread. Requests travel over crossbeam channels;
/// `submit`/`collect` give true overlap (the paper's parallel evolve of
/// gas and gravity on different resources).
pub struct ThreadChannel {
    tx: xchan::Sender<ThreadMsg>,
    rx: xchan::Receiver<Response>,
    stats: ChannelStats,
    pending_bytes: Option<u64>,
    name: String,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ThreadChannel {
    /// Spawn a worker thread. The factory runs *on the worker thread* so
    /// non-Send kernels still work.
    pub fn spawn<F, W>(name: impl Into<String>, factory: F) -> ThreadChannel
    where
        F: FnOnce() -> W + Send + 'static,
        W: ModelWorker + 'static,
    {
        let (tx, rx_req) = xchan::unbounded::<ThreadMsg>();
        let (tx_resp, rx) = xchan::unbounded::<Response>();
        let name = name.into();
        let handle = std::thread::Builder::new()
            .name(format!("worker-{name}"))
            .spawn(move || {
                let mut worker = factory();
                while let Ok(msg) = rx_req.recv() {
                    match msg {
                        ThreadMsg::Call(req) => {
                            let stop = matches!(req, Request::Stop | Request::Shutdown);
                            let resp = worker.handle(req);
                            if tx_resp.send(resp).is_err() || stop {
                                break;
                            }
                        }
                        ThreadMsg::Shutdown => break,
                    }
                }
            })
            .expect("spawn worker thread");
        ThreadChannel {
            tx,
            rx,
            stats: ChannelStats::default(),
            pending_bytes: None,
            name,
            handle: Some(handle),
        }
    }
}

impl Channel for ThreadChannel {
    fn call(&mut self, req: Request) -> Response {
        self.submit(req);
        self.collect()
    }

    fn submit(&mut self, req: Request) {
        assert!(self.pending_bytes.is_none(), "one outstanding call per channel");
        self.pending_bytes = Some(req.wire_size());
        self.tx.send(ThreadMsg::Call(req)).expect("worker thread alive");
    }

    fn collect(&mut self) -> Response {
        let rb = self.pending_bytes.take().expect("no outstanding call");
        let resp = self.rx.recv().expect("worker thread alive");
        account(&mut self.stats, rb, &resp);
        resp
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn worker_name(&self) -> String {
        self.name.clone()
    }
}

impl Drop for ThreadChannel {
    fn drop(&mut self) {
        let _ = self.tx.send(ThreadMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{GravityWorker, StellarWorker};
    use jc_nbody::plummer::plummer_sphere;
    use jc_nbody::Backend;

    #[test]
    fn local_channel_sync_and_async() {
        let mut c =
            LocalChannel::new(Box::new(GravityWorker::new(plummer_sphere(8, 1), Backend::Scalar)));
        assert!(matches!(c.call(Request::Ping), Response::Ok { .. }));
        c.submit(Request::GetParticles);
        match c.collect() {
            Response::Particles(p) => assert_eq!(p.mass.len(), 8),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats().calls, 2);
        assert!(c.stats().bytes_in > 0);
    }

    #[test]
    fn thread_channel_runs_worker_remotely() {
        let mut c = ThreadChannel::spawn("sse", || StellarWorker::new(vec![1.0, 9.0], 0.02));
        match c.call(Request::EvolveStars(10.0)) {
            Response::StellarUpdate { masses, .. } => assert_eq!(masses.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.worker_name(), "sse");
    }

    #[test]
    fn thread_channels_overlap() {
        // two slow workers; total wall time must be near max, not sum
        struct Sleepy;
        impl ModelWorker for Sleepy {
            fn handle(&mut self, _req: Request) -> Response {
                std::thread::sleep(std::time::Duration::from_millis(120));
                Response::Ok { flops: 0.0 }
            }
            fn name(&self) -> String {
                "sleepy".into()
            }
        }
        let mut a = ThreadChannel::spawn("a", || Sleepy);
        let mut b = ThreadChannel::spawn("b", || Sleepy);
        let t0 = std::time::Instant::now();
        a.submit(Request::Ping);
        b.submit(Request::Ping);
        let _ = a.collect();
        let _ = b.collect();
        let el = t0.elapsed();
        assert!(el.as_millis() < 220, "parallel overlap: {el:?}");
    }

    #[test]
    #[should_panic]
    fn double_submit_panics() {
        let mut c =
            LocalChannel::new(Box::new(GravityWorker::new(plummer_sphere(4, 2), Backend::Scalar)));
        c.submit(Request::Ping);
        c.submit(Request::Ping);
    }
}
