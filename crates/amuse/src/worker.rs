//! The worker RPC surface and the kernel-wrapping workers.

use crate::checkpoint::ModelState;
use jc_nbody::{Backend, ParticleSet, PhiGrape};
use jc_sph::{Gadget, GasParticles};
use jc_stellar::{SseModel, StellarEvent};
use jc_treegrav::TreeGravity;

/// A particle snapshot crossing the coupler↔worker boundary.
#[derive(Clone, Debug, Default)]
pub struct ParticleData {
    /// Masses (kernel units).
    pub mass: Vec<f64>,
    /// Positions.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
}

impl ParticleData {
    /// Wire size: 7 f64 per particle.
    pub fn wire_size(&self) -> u64 {
        (self.mass.len() * 7 * 8) as u64
    }

    /// Overwrite with a copy of the given columns, reusing this
    /// snapshot's buffers (no allocation once warm).
    pub fn copy_from(&mut self, mass: &[f64], pos: &[[f64; 3]], vel: &[[f64; 3]]) {
        self.mass.clear();
        self.mass.extend_from_slice(mass);
        self.pos.clear();
        self.pos.extend_from_slice(pos);
        self.vel.clear();
        self.vel.extend_from_slice(vel);
    }
}

/// An RPC request to a worker (the union over all model types; workers
/// answer [`Response::Unsupported`] for requests outside their interface,
/// like an AMUSE worker missing a function).
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Evolve the model to absolute time `t` (model units: N-body time for
    /// dynamics/hydro, Myr for stellar evolution).
    EvolveTo(f64),
    /// Get a full particle snapshot.
    GetParticles,
    /// Overwrite particle masses (stellar-evolution feedback).
    SetMasses(Vec<f64>),
    /// Apply velocity kicks.
    Kick(Vec<[f64; 3]>),
    /// Compute accelerations of `targets` due to `(source_pos,
    /// source_mass)` — the coupling model's job.
    ComputeKick {
        /// Positions to evaluate at.
        targets: Vec<[f64; 3]>,
        /// Source positions.
        source_pos: Vec<[f64; 3]>,
        /// Source masses.
        source_mass: Vec<f64>,
    },
    /// Evolve the stellar population to `t_myr`.
    EvolveStars(f64),
    /// Inject thermal energy (supernova feedback).
    InjectEnergy {
        /// Explosion site.
        center: [f64; 3],
        /// Deposition radius.
        radius: f64,
        /// Energy in kernel units.
        energy: f64,
    },
    /// Add a gas particle (stellar winds).
    AddGas {
        /// Position.
        pos: [f64; 3],
        /// Mass.
        mass: f64,
        /// Specific internal energy.
        u: f64,
    },
    /// Serialize the worker's complete model state (checkpoint).
    SaveState,
    /// Overwrite the worker's model state (restore/failover replay).
    LoadState(ModelState),
    /// Shut the worker down.
    Stop,
    /// Terminate the worker's *host* cleanly: a [`crate::WorkerServer`]
    /// exits its accept loop (not just the current session) and a
    /// [`crate::ThreadChannel`] joins its thread. Unlike a kill, the
    /// worker acknowledges first, so teardown is deterministic.
    Shutdown,
}

impl Request {
    /// Simulated wire size of the request.
    pub fn wire_size(&self) -> u64 {
        let body = match self {
            Request::Ping | Request::Stop | Request::Shutdown | Request::GetParticles => 0,
            Request::SaveState => 0,
            Request::LoadState(s) => s.wire_body_size(),
            Request::EvolveTo(_) | Request::EvolveStars(_) => 8,
            Request::SetMasses(m) => 8 * m.len() as u64,
            Request::Kick(k) => 24 * k.len() as u64,
            Request::ComputeKick { targets, source_pos, source_mass } => {
                24 * (targets.len() + source_pos.len()) as u64 + 8 * source_mass.len() as u64
            }
            Request::InjectEnergy { .. } => 40,
            Request::AddGas { .. } => 40,
        };
        body + 32 // header
    }

    /// Does handling this request change worker state (or drain
    /// one-shot results, like stellar events)?
    ///
    /// This is the worker-side hook of the idempotent-retry scheme: the
    /// server caches its response to a *mutating* request keyed by the
    /// frame's sequence number, and a resend of the same sequence
    /// number replays the cache instead of re-applying. Non-mutating
    /// requests are pure reads of deterministic state — re-executing
    /// them yields bit-identical bytes, so they need no cache.
    /// `EvolveTo`/`EvolveStars` count as mutating even though the
    /// target time is absolute: a re-run would report different flops
    /// (and `EvolveStars` drains the event queue exactly once).
    pub fn mutating(&self) -> bool {
        match self {
            Request::Ping
            | Request::GetParticles
            | Request::ComputeKick { .. }
            | Request::SaveState
            | Request::Stop
            | Request::Shutdown => false,
            Request::EvolveTo(_)
            | Request::EvolveStars(_)
            | Request::SetMasses(_)
            | Request::Kick(_)
            | Request::InjectEnergy { .. }
            | Request::AddGas { .. }
            | Request::LoadState(_) => true,
        }
    }
}

/// A worker's answer.
#[derive(Clone, Debug)]
pub enum Response {
    /// Success without data. Carries the modeled flop cost of the call.
    Ok {
        /// Floating-point work performed.
        flops: f64,
    },
    /// Particle snapshot.
    Particles(ParticleData),
    /// Accelerations (coupling kick result).
    Accelerations {
        /// One acceleration per target.
        acc: Vec<[f64; 3]>,
        /// Work performed.
        flops: f64,
    },
    /// Stellar update.
    StellarUpdate {
        /// Current masses, MSun, per star.
        masses: Vec<f64>,
        /// Events since the last call.
        events: Vec<StellarEvent>,
    },
    /// A serialized model state (checkpoint section).
    State(ModelState),
    /// The worker does not implement this request.
    Unsupported,
    /// The request failed.
    Error(String),
}

impl Response {
    /// Simulated wire size of the response.
    pub fn wire_size(&self) -> u64 {
        let body = match self {
            Response::Ok { .. } => 8,
            Response::Particles(p) => p.wire_size(),
            Response::Accelerations { acc, .. } => 24 * acc.len() as u64,
            Response::StellarUpdate { masses, events } => {
                8 * masses.len() as u64 + 32 * events.len() as u64
            }
            Response::State(s) => s.wire_body_size(),
            Response::Unsupported => 0,
            Response::Error(e) => e.len() as u64,
        };
        body + 32
    }

    /// The modeled flop cost carried by the response (0 when none).
    pub fn flops(&self) -> f64 {
        match self {
            Response::Ok { flops } => *flops,
            Response::Accelerations { flops, .. } => *flops,
            _ => 0.0,
        }
    }
}

/// Borrowed particle columns (mass, position, velocity) as returned by
/// [`ModelWorker::particles`].
pub type ParticleColumns<'a> = (&'a [f64], &'a [[f64; 3]], &'a [[f64; 3]]);

/// A model worker: one kernel behind the RPC boundary.
///
/// The three `*_into`/`*_slice` methods are borrowing fast paths for
/// in-process channels: same semantics as the corresponding [`Request`]s
/// but without constructing request/response payload `Vec`s, so the
/// bridge's per-step kick phases stay allocation-free. Workers that don't
/// implement a fast path return `false`/`None` and the channel falls back
/// to the RPC.
pub trait ModelWorker {
    /// Execute one request.
    fn handle(&mut self, req: Request) -> Response;
    /// Worker name (shows up in monitoring and job tables).
    fn name(&self) -> String;
    /// Write a particle snapshot into `out` ([`Request::GetParticles`]
    /// fast path).
    fn snapshot_into(&mut self, _out: &mut ParticleData) -> bool {
        false
    }
    /// Borrow the worker's particle arrays in place — the zero-copy
    /// [`Request::GetParticles`] path: the server encodes the snapshot
    /// frame straight from these slices, skipping the intermediate
    /// [`ParticleData`] copy that [`ModelWorker::snapshot_into`] pays.
    /// Must describe exactly the state `snapshot_into` would write.
    fn particles(&self) -> Option<ParticleColumns<'_>> {
        None
    }
    /// Apply velocity kicks from a borrowed slice ([`Request::Kick`] fast
    /// path). Returns the modeled flops, or `None` if unsupported or the
    /// length does not match (the RPC fallback then reports the error).
    fn kick_slice(&mut self, _dv: &[[f64; 3]]) -> Option<f64> {
        None
    }
    /// Compute coupling accelerations into `out`
    /// ([`Request::ComputeKick`] fast path). Returns the modeled flops.
    fn compute_kick_into(
        &mut self,
        _targets: &[[f64; 3]],
        _source_pos: &[[f64; 3]],
        _source_mass: &[f64],
        _out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        None
    }
}

// ---------------------------------------------------------------------------

/// The gravitational-dynamics worker (PhiGRAPE).
pub struct GravityWorker {
    model: PhiGrape,
    label: String,
}

impl GravityWorker {
    /// Wrap a particle set with the given backend.
    pub fn new(particles: ParticleSet, backend: Backend) -> GravityWorker {
        let label = match backend {
            Backend::GpuModel => "phigrape-gpu",
            _ => "phigrape-cpu",
        };
        GravityWorker {
            model: PhiGrape::new(particles, backend).with_softening(0.01),
            label: label.to_string(),
        }
    }

    /// Access the underlying model (diagnostics).
    pub fn model(&self) -> &PhiGrape {
        &self.model
    }
}

impl ModelWorker for GravityWorker {
    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping | Request::Stop | Request::Shutdown => Response::Ok { flops: 0.0 },
            Request::SaveState => {
                let p = &self.model.particles;
                Response::State(ModelState::Gravity {
                    time: self.model.model_time(),
                    mass: p.mass.clone(),
                    pos: p.pos.clone(),
                    vel: p.vel.clone(),
                })
            }
            Request::LoadState(ModelState::Gravity { time, mass, pos, vel }) => {
                if pos.len() != mass.len() || vel.len() != mass.len() {
                    return Response::Error("ragged gravity state".into());
                }
                self.model.restore_state(ParticleSet { mass, pos, vel }, time);
                Response::Ok { flops: 0.0 }
            }
            Request::LoadState(other) => {
                Response::Error(format!("gravity worker cannot load {} state", other.kind()))
            }
            Request::EvolveTo(t) => {
                let f0 = self.model.flops;
                self.model.evolve_model(t);
                Response::Ok { flops: self.model.flops - f0 }
            }
            Request::GetParticles => Response::Particles(ParticleData {
                mass: self.model.particles.mass.clone(),
                pos: self.model.particles.pos.clone(),
                vel: self.model.particles.vel.clone(),
            }),
            Request::SetMasses(m) => {
                if m.len() != self.model.particles.len() {
                    return Response::Error("mass vector length mismatch".into());
                }
                for (i, mi) in m.into_iter().enumerate() {
                    self.model.set_mass(i, mi);
                }
                Response::Ok { flops: 0.0 }
            }
            Request::Kick(dv) => {
                if dv.len() != self.model.particles.len() {
                    return Response::Error("kick vector length mismatch".into());
                }
                self.model.kick(&dv);
                Response::Ok { flops: dv.len() as f64 * 3.0 }
            }
            _ => Response::Unsupported,
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        let p = &self.model.particles;
        out.copy_from(&p.mass, &p.pos, &p.vel);
        true
    }

    fn particles(&self) -> Option<ParticleColumns<'_>> {
        let p = &self.model.particles;
        Some((&p.mass, &p.pos, &p.vel))
    }

    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Option<f64> {
        if dv.len() != self.model.particles.len() {
            return None;
        }
        self.model.kick(dv);
        Some(dv.len() as f64 * 3.0)
    }
}

/// The SPH gas-dynamics worker (Gadget).
pub struct HydroWorker {
    model: Gadget,
}

impl HydroWorker {
    /// Wrap a gas set.
    pub fn new(gas: GasParticles) -> HydroWorker {
        HydroWorker { model: Gadget::new(gas) }
    }

    /// Access the underlying model.
    pub fn model(&self) -> &Gadget {
        &self.model
    }
}

impl ModelWorker for HydroWorker {
    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping | Request::Stop | Request::Shutdown => Response::Ok { flops: 0.0 },
            Request::SaveState => {
                let g = &self.model.gas;
                Response::State(ModelState::Hydro {
                    time: self.model.model_time(),
                    mass: g.mass.clone(),
                    pos: g.pos.clone(),
                    vel: g.vel.clone(),
                    u: g.u.clone(),
                    rho: g.rho.clone(),
                    h: g.h.clone(),
                })
            }
            Request::LoadState(ModelState::Hydro { time, mass, pos, vel, u, rho, h }) => {
                let n = mass.len();
                if [pos.len(), vel.len(), u.len(), rho.len(), h.len()] != [n; 5] {
                    return Response::Error("ragged hydro state".into());
                }
                self.model.restore_state(GasParticles { mass, pos, vel, u, rho, h }, time);
                Response::Ok { flops: 0.0 }
            }
            Request::LoadState(other) => {
                Response::Error(format!("hydro worker cannot load {} state", other.kind()))
            }
            Request::EvolveTo(t) => {
                let f0 = self.model.flops;
                self.model.evolve_model(t);
                Response::Ok { flops: self.model.flops - f0 }
            }
            Request::GetParticles => Response::Particles(ParticleData {
                mass: self.model.gas.mass.clone(),
                pos: self.model.gas.pos.clone(),
                vel: self.model.gas.vel.clone(),
            }),
            Request::Kick(dv) => {
                if dv.len() != self.model.gas.len() {
                    return Response::Error("kick vector length mismatch".into());
                }
                self.model.kick(&dv);
                Response::Ok { flops: dv.len() as f64 * 3.0 }
            }
            Request::InjectEnergy { center, radius, energy } => {
                let n = self.model.inject_energy(center, radius, energy);
                Response::Ok { flops: n as f64 * 10.0 }
            }
            Request::AddGas { pos, mass, u } => {
                self.model.add_mass(pos, mass, u);
                Response::Ok { flops: 10.0 }
            }
            _ => Response::Unsupported,
        }
    }

    fn name(&self) -> String {
        "gadget".into()
    }

    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        let g = &self.model.gas;
        out.copy_from(&g.mass, &g.pos, &g.vel);
        true
    }

    fn particles(&self) -> Option<ParticleColumns<'_>> {
        let g = &self.model.gas;
        Some((&g.mass, &g.pos, &g.vel))
    }

    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Option<f64> {
        if dv.len() != self.model.gas.len() {
            return None;
        }
        self.model.kick(dv);
        Some(dv.len() as f64 * 3.0)
    }
}

/// The stellar-evolution worker (SSE).
pub struct StellarWorker {
    model: SseModel,
}

impl StellarWorker {
    /// Wrap a population of ZAMS masses (MSun) at metallicity `z`.
    pub fn new(masses_msun: Vec<f64>, z: f64) -> StellarWorker {
        StellarWorker { model: SseModel::new(masses_msun, z) }
    }

    /// Access the underlying model.
    pub fn model(&self) -> &SseModel {
        &self.model
    }
}

impl ModelWorker for StellarWorker {
    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping | Request::Stop | Request::Shutdown => Response::Ok { flops: 0.0 },
            Request::SaveState => Response::State(ModelState::Stellar {
                time_myr: self.model.model_time_myr(),
                z: self.model.metallicity(),
                initial_masses: self.model.initial_masses().to_vec(),
                exploded: self.model.exploded().to_vec(),
            }),
            Request::LoadState(ModelState::Stellar { time_myr, z, initial_masses, exploded }) => {
                if initial_masses.len() != exploded.len() {
                    return Response::Error("ragged stellar state".into());
                }
                self.model = SseModel::restored(initial_masses, z, time_myr, exploded);
                Response::Ok { flops: 0.0 }
            }
            Request::LoadState(other) => {
                Response::Error(format!("stellar worker cannot load {} state", other.kind()))
            }
            Request::EvolveStars(t_myr) => {
                let events = self.model.evolve_to(t_myr);
                Response::StellarUpdate {
                    masses: self.model.states().iter().map(|s| s.mass).collect(),
                    events,
                }
            }
            _ => Response::Unsupported,
        }
    }

    fn name(&self) -> String {
        "sse".into()
    }
}

/// The coupling worker: tree gravity of one set acting on another
/// (Octgrav on GPUs, Fi on CPUs — same physics, different placement).
pub struct CouplingWorker {
    solver: TreeGravity,
    label: String,
}

impl CouplingWorker {
    /// The Octgrav personality (GPU-hosted, θ = 0.75).
    pub fn octgrav() -> CouplingWorker {
        CouplingWorker { solver: jc_treegrav::Octgrav::new().solver, label: "octgrav".into() }
    }

    /// The Fi personality (CPU-hosted, θ = 0.5).
    pub fn fi() -> CouplingWorker {
        CouplingWorker { solver: jc_treegrav::Fi::new().solver, label: "fi".into() }
    }
}

impl ModelWorker for CouplingWorker {
    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping | Request::Stop | Request::Shutdown => Response::Ok { flops: 0.0 },
            Request::SaveState => Response::State(ModelState::Stateless),
            Request::LoadState(ModelState::Stateless) => Response::Ok { flops: 0.0 },
            Request::LoadState(other) => {
                Response::Error(format!("coupling worker cannot load {} state", other.kind()))
            }
            Request::ComputeKick { targets, source_pos, source_mass } => {
                if source_pos.len() != source_mass.len() {
                    return Response::Error("source arrays length mismatch".into());
                }
                let acc = self.solver.accelerations(&targets, &source_pos, &source_mass);
                Response::Accelerations { acc, flops: self.solver.last_flops() }
            }
            _ => Response::Unsupported,
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn compute_kick_into(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        if source_pos.len() != source_mass.len() {
            return None;
        }
        self.solver.accelerations_into(targets, source_pos, source_mass, out);
        Some(self.solver.last_flops())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jc_nbody::plummer::plummer_sphere;
    use jc_sph::particles::plummer_gas;

    #[test]
    fn gravity_worker_round_trip() {
        let mut w = GravityWorker::new(plummer_sphere(16, 1), Backend::Scalar);
        match w.handle(Request::GetParticles) {
            Response::Particles(p) => assert_eq!(p.mass.len(), 16),
            other => panic!("{other:?}"),
        }
        match w.handle(Request::EvolveTo(0.05)) {
            Response::Ok { flops } => assert!(flops > 0.0),
            other => panic!("{other:?}"),
        }
        assert!(matches!(w.handle(Request::EvolveStars(1.0)), Response::Unsupported));
    }

    #[test]
    fn hydro_worker_feedback_interface() {
        let mut w = HydroWorker::new(plummer_gas(64, 0.5, 2));
        assert!(matches!(
            w.handle(Request::InjectEnergy { center: [0.0; 3], radius: 0.2, energy: 1.0 }),
            Response::Ok { .. }
        ));
        assert!(matches!(
            w.handle(Request::AddGas { pos: [0.1; 3], mass: 0.01, u: 0.5 }),
            Response::Ok { .. }
        ));
        match w.handle(Request::GetParticles) {
            Response::Particles(p) => assert_eq!(p.mass.len(), 65),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stellar_worker_reports_masses() {
        let mut w = StellarWorker::new(vec![1.0, 20.0], 0.02);
        match w.handle(Request::EvolveStars(5.0)) {
            Response::StellarUpdate { masses, .. } => assert_eq!(masses.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn coupling_worker_computes_kicks() {
        let mut w = CouplingWorker::fi();
        let resp = w.handle(Request::ComputeKick {
            targets: vec![[0.0; 3]],
            source_pos: vec![[0.0, 0.0, 1.0]],
            source_mass: vec![1.0],
        });
        match resp {
            Response::Accelerations { acc, flops } => {
                assert!(acc[0][2] > 0.5);
                assert!(flops > 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mismatched_kick_is_error() {
        let mut w = GravityWorker::new(plummer_sphere(4, 3), Backend::Scalar);
        assert!(matches!(w.handle(Request::Kick(vec![[0.0; 3]; 2])), Response::Error(_)));
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Request::Kick(vec![[0.0; 3]; 1]);
        let big = Request::Kick(vec![[0.0; 3]; 100]);
        assert!(big.wire_size() > small.wire_size());
        let p = Response::Particles(ParticleData {
            mass: vec![0.0; 10],
            pos: vec![[0.0; 3]; 10],
            vel: vec![[0.0; 3]; 10],
        });
        assert_eq!(p.wire_size(), 10 * 56 + 32);
    }
}
