//! # jc-amuse — the AMUSE coupling framework
//!
//! Reproduction of AMUSE (Portegies Zwart et al. \[12\]; §4.1 of the paper):
//! *"AMUSE combines different models (stellar evolution, hydrodynamics,
//! gravitational dynamics, and radiative transport) into a single
//! astrophysical simulation. [...] In AMUSE, models are integrated into a
//! single simulation in a centralized coupler. [...] whenever a simulation
//! creates a model, a so-called worker is created automatically. [...]
//! AMUSE communicates with workers using a channel, in an RPC-like method.
//! Both synchronous and asynchronous calls are supported."*
//!
//! The pieces, mirroring that architecture:
//!
//! * [`worker`] — the RPC surface ([`worker::Request`]/
//!   [`worker::Response`]) and the worker implementations wrapping the four
//!   kernels: PhiGRAPE gravity, Gadget SPH, SSE stellar evolution, and the
//!   Octgrav/Fi coupling kick. Every payload knows its simulated wire size,
//!   so any channel can account traffic exactly.
//! * [`channel`] — the [`channel::Channel`] trait with synchronous `call`
//!   and asynchronous `submit`/`collect`, plus two in-process
//!   implementations: [`channel::LocalChannel`] (the default MPI-like
//!   same-process channel) and [`channel::ThreadChannel`] (a real worker
//!   thread fed over crossbeam queues). The *Ibis* channel that sends these
//!   same requests across the simulated jungle lives in `jc-core`, exactly
//!   as the paper adds its Ibis channel next to the existing MPI and socket
//!   channels.
//! * [`wire`] — the length-prefixed, versioned binary codec for
//!   requests and responses; the physical frame size of every message
//!   equals its modeled `wire_size`, so socket-channel accounting and
//!   simulated accounting agree exactly.
//! * [`socket`] — the real socket channel: [`socket::SocketChannel`]
//!   speaks [`wire`] over TCP, [`socket::WorkerServer`] serves any
//!   [`worker::ModelWorker`] behind a `TcpListener` (the `jungle-worker`
//!   binary in `jc-deploy` wraps it).
//! * [`reactor`] — the event-driven coupler core: a single-threaded
//!   readiness [`reactor::Reactor`] owning every shard socket in
//!   non-blocking mode, with incremental frame decoding
//!   ([`reactor::FrameDecoder`]) and coalesced vectored writes.
//!   [`reactor::ReactorChannel`] speaks the same [`wire`] protocol as
//!   [`socket::SocketChannel`] — bitwise-identical results, pinned by
//!   the `reactor_equivalence` test layer — but supports genuinely
//!   pipelined requests across many shards from one thread.
//! * [`shard`] — [`shard::ShardedChannel`] fans one logical model out
//!   over a pool of workers: particle-range decomposition for state
//!   ops, target scatter–gather for the coupling kick. When every
//!   shard channel reports [`channel::Channel::pipelines`], fan-out
//!   uses the two-phase `submit_*`/`collect_*` API so all K shards
//!   compute concurrently (`JC_LOCKSTEP=1` restores serial calls).
//! * [`bridge`] — the Fig 7 combined gravitational/hydro/stellar solver:
//!   kick–drift–kick coupling via the tree-gravity worker, parallel evolve
//!   of gas and stars, and the slower stellar-evolution exchange every
//!   n-th step — plus the fault-tolerant driver (checkpoint, heal,
//!   restore, replay) that removes the paper's §5 limitation.
//! * [`checkpoint`] — the complete solver state as a value:
//!   [`checkpoint::ModelState`] per worker, [`checkpoint::Checkpoint`]
//!   per bridge, and the framed binary container they serialize to,
//!   CRC-guarded per section.
//! * [`chaos`] — the deterministic fault-injection substrate
//!   ([`chaos::FaultPlan`], seeded by `JC_CHAOS_SEED`) and the
//!   [`chaos::RetryPolicy`] that lets transient faults be absorbed by
//!   an in-place, sequence-number-deduplicated resend instead of a
//!   checkpoint restore.
//! * [`cluster`] — the embedded-star-cluster experiment of §6: initial
//!   conditions (Plummer stars with a Salpeter IMF inside a Plummer gas
//!   sphere), the unit converter, and the Fig 6 diagnostics (bound-gas
//!   fraction, radii).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unreachable_pub)]

pub mod bridge;
pub mod channel;
pub mod chaos;
pub mod checkpoint;
pub mod cluster;
pub mod reactor;
pub mod shard;
pub mod socket;
pub mod wire;
pub mod worker;

pub use bridge::{Bridge, BridgeConfig, BridgeError, IterationReport, RecoveryPolicy};
pub use channel::{Channel, ChannelStats, LocalChannel, ThreadChannel};
pub use chaos::{ChaosStream, ChaosWriter, FaultKind, FaultPlan, RetryPolicy, StreamFaults};
pub use checkpoint::{Checkpoint, CheckpointError, ModelState, Role};
pub use cluster::EmbeddedCluster;
pub use reactor::{FrameDecoder, Reactor, ReactorChannel};
pub use shard::{ShardSupervisor, ShardedChannel};
pub use socket::{
    spawn_flaky_tcp_worker, spawn_tcp_worker, SocketChannel, WorkerFleet, WorkerServer,
};
pub use wire::WireError;
pub use worker::{
    CouplingWorker, GravityWorker, HydroWorker, ModelWorker, Request, Response, StellarWorker,
};
