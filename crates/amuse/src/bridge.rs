//! The BRIDGE combined gravitational/hydro/stellar solver (Fig 7).
//!
//! The paper's Fig 7 shows one time step of the combined solver: the gas
//! dynamics and gravitational (stellar) dynamics models *evolve in
//! parallel*, coupled by "p-kick" phases computed by the coupling model;
//! the stellar-evolution model exchanges state only every n-th step,
//! "at a slower rate". This module reproduces that calling sequence over
//! [`Channel`]s, so the identical bridge runs against in-process workers,
//! thread workers, or workers spread across the simulated jungle.

use crate::channel::Channel;
use crate::worker::{ParticleData, Request, Response};
use jc_stellar::StellarEvent;

/// Bridge configuration.
#[derive(Clone, Debug)]
pub struct BridgeConfig {
    /// Inner bridge timestep (N-body units).
    pub dt: f64,
    /// Substeps per outer iteration (the paper's "single iteration (time
    /// step) of the simulation" contains many inner bridge steps).
    pub substeps: u32,
    /// Exchange stellar-evolution state every this many outer iterations
    /// ("it is performed at a slower rate, only exchanging state every
    /// n-th time step").
    pub stellar_interval: u32,
    /// Myr per N-body time unit (from the cluster's unit converter).
    pub time_unit_myr: f64,
    /// MSun per N-body mass unit.
    pub mass_unit_msun: f64,
    /// Supernova thermal energy deposited per event (N-body energy units).
    pub sn_energy: f64,
    /// Supernova deposition radius (N-body length units).
    pub sn_radius: f64,
    /// Record the call sequence of the next iteration (Fig 7 trace).
    pub trace: bool,
}

impl Default for BridgeConfig {
    fn default() -> BridgeConfig {
        BridgeConfig {
            dt: 1.0 / 64.0,
            substeps: 8,
            stellar_interval: 4,
            time_unit_myr: 1.0,
            mass_unit_msun: 1000.0,
            sn_energy: 0.2,
            sn_radius: 0.2,
            trace: false,
        }
    }
}

/// What one outer iteration did.
#[derive(Clone, Debug, Default)]
pub struct IterationReport {
    /// Model time after the iteration (N-body units).
    pub time: f64,
    /// RPC calls made during the iteration.
    pub calls: u64,
    /// Supernovae that fired.
    pub supernovae: u32,
    /// Wind mass-loss events applied.
    pub wind_events: u32,
    /// Call-sequence trace (only when `cfg.trace`).
    pub trace: Vec<String>,
}

/// Reusable buffers for the p-kick phases, held across steps so a kick
/// over in-process channels constructs no `Vec`s: snapshots land in
/// reused [`ParticleData`]s, the coupling accelerations in reused output
/// buffers that are then scaled to velocity kicks in place.
#[derive(Default)]
struct KickScratch {
    stars: ParticleData,
    gas: ParticleData,
    dv_stars: Vec<[f64; 3]>,
    dv_gas: Vec<[f64; 3]>,
}

/// The combined solver.
pub struct Bridge {
    gravity: Box<dyn Channel>,
    hydro: Box<dyn Channel>,
    coupling: Box<dyn Channel>,
    stellar: Option<Box<dyn Channel>>,
    cfg: BridgeConfig,
    time: f64,
    iterations: u64,
    total_supernovae: u32,
    scratch: KickScratch,
}

impl Bridge {
    /// Assemble a bridge from its four workers' channels.
    pub fn new(
        gravity: Box<dyn Channel>,
        hydro: Box<dyn Channel>,
        coupling: Box<dyn Channel>,
        stellar: Option<Box<dyn Channel>>,
        cfg: BridgeConfig,
    ) -> Bridge {
        assert!(cfg.dt > 0.0 && cfg.substeps > 0 && cfg.stellar_interval > 0);
        Bridge {
            gravity,
            hydro,
            coupling,
            stellar,
            cfg,
            time: 0.0,
            iterations: 0,
            total_supernovae: 0,
            scratch: KickScratch::default(),
        }
    }

    /// Current model time (N-body units).
    pub fn model_time(&self) -> f64 {
        self.time
    }

    /// Iterations completed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Supernovae so far.
    pub fn total_supernovae(&self) -> u32 {
        self.total_supernovae
    }

    /// Channel statistics: (gravity, hydro, coupling, stellar).
    pub fn channel_stats(
        &self,
    ) -> (
        crate::channel::ChannelStats,
        crate::channel::ChannelStats,
        crate::channel::ChannelStats,
        Option<crate::channel::ChannelStats>,
    ) {
        (
            self.gravity.stats(),
            self.hydro.stats(),
            self.coupling.stats(),
            self.stellar.as_ref().map(|s| s.stats()),
        )
    }

    /// Fetch current snapshots (stars, gas) — for diagnostics between
    /// iterations.
    pub fn snapshots(&mut self) -> (ParticleData, ParticleData) {
        let stars = match self.gravity.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("gravity snapshot failed: {other:?}"),
        };
        let gas = match self.hydro.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("hydro snapshot failed: {other:?}"),
        };
        (stars, gas)
    }

    /// Run one outer iteration (the unit the paper reports seconds for).
    pub fn iteration(&mut self) -> IterationReport {
        let mut rep = IterationReport::default();
        let calls0 = self.total_calls();
        for _ in 0..self.cfg.substeps {
            self.kick(0.5 * self.cfg.dt, &mut rep);
            let t_next = self.time + self.cfg.dt;
            if rep.trace.len() < 64 && self.cfg.trace {
                rep.trace.push(format!(
                    "evolve gravity -> t={t_next:.5} || evolve hydro -> t={t_next:.5}"
                ));
            }
            // parallel evolve ("The evolve step can be done in parallel")
            self.gravity.submit(Request::EvolveTo(t_next));
            self.hydro.submit(Request::EvolveTo(t_next));
            let rg = self.gravity.collect();
            let rh = self.hydro.collect();
            assert!(matches!(rg, Response::Ok { .. }), "gravity evolve failed: {rg:?}");
            assert!(matches!(rh, Response::Ok { .. }), "hydro evolve failed: {rh:?}");
            self.kick(0.5 * self.cfg.dt, &mut rep);
            self.time = t_next;
        }
        self.iterations += 1;
        if self.iterations.is_multiple_of(self.cfg.stellar_interval as u64) {
            self.stellar_exchange(&mut rep);
        }
        rep.time = self.time;
        rep.calls = self.total_calls() - calls0;
        self.total_supernovae += rep.supernovae;
        rep
    }

    fn total_calls(&self) -> u64 {
        self.gravity.stats().calls
            + self.hydro.stats().calls
            + self.coupling.stats().calls
            + self.stellar.as_ref().map(|s| s.stats().calls).unwrap_or(0)
    }

    /// One p-kick phase: mutual gravitational kicks between the star and
    /// gas systems, computed by the coupling model. All buffers come from
    /// the bridge-held scratch, so over in-process channels the phase
    /// allocates nothing once warm.
    fn kick(&mut self, half_dt: f64, rep: &mut IterationReport) {
        if self.cfg.trace && rep.trace.len() < 64 {
            rep.trace.push(format!("p-kick (dt/2 = {half_dt:.5})"));
        }
        assert!(self.gravity.snapshot_into(&mut self.scratch.stars), "gravity snapshot failed");
        assert!(self.hydro.snapshot_into(&mut self.scratch.gas), "hydro snapshot failed");
        let (stars, gas) = (&self.scratch.stars, &self.scratch.gas);
        if stars.mass.is_empty() || gas.mass.is_empty() {
            return;
        }
        // gas pulls on stars
        self.coupling
            .compute_kick_into(&stars.pos, &gas.pos, &gas.mass, &mut self.scratch.dv_stars)
            .expect("coupling kick failed");
        // stars pull on gas
        self.coupling
            .compute_kick_into(&gas.pos, &stars.pos, &stars.mass, &mut self.scratch.dv_gas)
            .expect("coupling kick failed");
        // scale accelerations to velocity kicks in place
        for a in self.scratch.dv_stars.iter_mut().chain(&mut self.scratch.dv_gas) {
            for k in a {
                *k *= half_dt;
            }
        }
        let r1 = self.gravity.kick_slice(&self.scratch.dv_stars);
        let r2 = self.hydro.kick_slice(&self.scratch.dv_gas);
        assert!(matches!(r1, Response::Ok { .. }), "star kick failed: {r1:?}");
        assert!(matches!(r2, Response::Ok { .. }), "gas kick failed: {r2:?}");
    }

    /// The slower stellar-evolution exchange.
    fn stellar_exchange(&mut self, rep: &mut IterationReport) {
        let Some(stellar) = self.stellar.as_mut() else { return };
        if self.cfg.trace && rep.trace.len() < 64 {
            rep.trace.push("stellar exchange (every n-th step)".into());
        }
        let t_myr = self.time * self.cfg.time_unit_myr;
        let update = stellar.call(Request::EvolveStars(t_myr));
        let (masses_msun, events) = match update {
            Response::StellarUpdate { masses, events } => (masses, events),
            other => panic!("stellar evolve failed: {other:?}"),
        };
        let stars = match self.gravity.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("gravity snapshot failed: {other:?}"),
        };
        assert_eq!(masses_msun.len(), stars.mass.len(), "star population mismatch");
        // push updated masses into the dynamics (MSun -> N-body units)
        let masses_nb: Vec<f64> = masses_msun.iter().map(|m| m / self.cfg.mass_unit_msun).collect();
        let r = self.gravity.call(Request::SetMasses(masses_nb));
        assert!(matches!(r, Response::Ok { .. }), "set masses failed: {r:?}");
        // feedback into the gas
        for ev in events {
            match ev {
                StellarEvent::Supernova { star, ejected_mass, energy_foe: _ } => {
                    rep.supernovae += 1;
                    let pos = stars.pos[star];
                    let _ = self.hydro.call(Request::InjectEnergy {
                        center: pos,
                        radius: self.cfg.sn_radius,
                        energy: self.cfg.sn_energy,
                    });
                    let m_nb = ejected_mass / self.cfg.mass_unit_msun;
                    if m_nb > 0.0 {
                        let _ = self.hydro.call(Request::AddGas {
                            pos,
                            mass: m_nb,
                            u: self.cfg.sn_energy / m_nb.max(1e-9) * 0.1,
                        });
                    }
                }
                StellarEvent::WindMassLoss { star, mass } => {
                    rep.wind_events += 1;
                    let m_nb = mass / self.cfg.mass_unit_msun;
                    if m_nb > 1e-12 {
                        let _ = self.hydro.call(Request::AddGas {
                            pos: stars.pos[star],
                            mass: m_nb,
                            u: 1e-3,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::LocalChannel;
    use crate::cluster::EmbeddedCluster;

    fn small_bridge(trace: bool) -> Bridge {
        let cluster = EmbeddedCluster::build(32, 128, 0.5, 5);
        let mut cfg = cluster.bridge_config();
        cfg.substeps = 2;
        cfg.stellar_interval = 1;
        cfg.trace = trace;
        let (g, h, c, s) = cluster.local_workers(false);
        Bridge::new(
            Box::new(LocalChannel::new(g)),
            Box::new(LocalChannel::new(h)),
            Box::new(LocalChannel::new(c)),
            Some(Box::new(LocalChannel::new(s))),
            cfg,
        )
    }

    #[test]
    fn iteration_advances_time_and_counts_calls() {
        let mut b = small_bridge(false);
        let rep = b.iteration();
        assert!(rep.time > 0.0);
        assert!(rep.calls > 10, "calls = {}", rep.calls);
        assert_eq!(b.iterations(), 1);
    }

    #[test]
    fn trace_shows_fig7_sequence() {
        let mut b = small_bridge(true);
        let rep = b.iteration();
        let joined = rep.trace.join("\n");
        assert!(joined.contains("p-kick"), "{joined}");
        assert!(joined.contains("evolve gravity"), "{joined}");
        assert!(joined.contains("||"), "parallel marker: {joined}");
        assert!(joined.contains("stellar exchange"), "{joined}");
        // kick-evolve-kick ordering within a substep
        let first_kick = joined.find("p-kick").unwrap();
        let first_evolve = joined.find("evolve gravity").unwrap();
        assert!(first_kick < first_evolve);
    }

    #[test]
    fn stellar_exchange_respects_interval() {
        let cluster = EmbeddedCluster::build(16, 64, 0.5, 6);
        let mut cfg = cluster.bridge_config();
        cfg.substeps = 1;
        cfg.stellar_interval = 3;
        let (g, h, c, s) = cluster.local_workers(false);
        let mut b = Bridge::new(
            Box::new(LocalChannel::new(g)),
            Box::new(LocalChannel::new(h)),
            Box::new(LocalChannel::new(c)),
            Some(Box::new(LocalChannel::new(s))),
            cfg,
        );
        b.iteration();
        b.iteration();
        let (.., stellar) = b.channel_stats();
        assert_eq!(stellar.unwrap().calls, 0, "no stellar exchange before 3rd iteration");
        b.iteration();
        let (.., stellar) = b.channel_stats();
        assert_eq!(stellar.unwrap().calls, 1);
    }

    #[test]
    fn bridge_conserves_momentum_reasonably() {
        let mut b = small_bridge(false);
        for _ in 0..2 {
            b.iteration();
        }
        let (stars, gas) = b.snapshots();
        let mut p = [0.0f64; 3];
        for (m, v) in stars.mass.iter().zip(&stars.vel) {
            for k in 0..3 {
                p[k] += m * v[k];
            }
        }
        for (m, v) in gas.mass.iter().zip(&gas.vel) {
            for k in 0..3 {
                p[k] += m * v[k];
            }
        }
        // tree-approximated kicks are not exactly antisymmetric; allow a
        // small tolerance relative to the system's momentum scale (~sigma)
        let ptot = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!(ptot < 0.05, "momentum drift {ptot}");
    }
}
