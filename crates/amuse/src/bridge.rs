//! The BRIDGE combined gravitational/hydro/stellar solver (Fig 7).
//!
//! The paper's Fig 7 shows one time step of the combined solver: the gas
//! dynamics and gravitational (stellar) dynamics models *evolve in
//! parallel*, coupled by "p-kick" phases computed by the coupling model;
//! the stellar-evolution model exchanges state only every n-th step,
//! "at a slower rate". This module reproduces that calling sequence over
//! [`Channel`]s, so the identical bridge runs against in-process workers,
//! thread workers, or workers spread across the simulated jungle.
//!
//! Beyond the paper: the bridge is *fault-tolerant*, removing the §5
//! limitation ("if one worker crashes, the entire simulation crashes").
//! [`Bridge::snapshot`] captures the complete solver state as a
//! [`Checkpoint`] (saveable to a framed binary file);
//! [`Bridge::try_iteration`] reports a dead worker as a [`BridgeError`]
//! instead of aborting; and [`Bridge::iteration_recovering`] closes the
//! loop — heal the channels (shard pools respawn or exclude dead
//! workers), [`Bridge::restore`] the last checkpoint, and replay the
//! iteration. Because every kernel's state is bitwise-restorable at
//! iteration boundaries, a recovered run is bitwise-identical to one
//! that never failed.
//!
//! Recovery is two-tiered. *Transient* transport faults never reach
//! this module: a [`crate::socket::SocketChannel`] under a
//! [`crate::chaos::RetryPolicy`] absorbs them by resending the same
//! sequence-numbered frame (deduplicated worker-side, so even mutating
//! requests retry safely). What does reach the bridge is *fatal* —
//! a crashed worker or exhausted retries — and takes the restore
//! path above. See the "Failure model" section of ARCHITECTURE.md for
//! the full fault-site table.

use crate::channel::Channel;
use crate::checkpoint::{Checkpoint, CheckpointError, ModelState, Role};
use crate::worker::{ParticleData, Request, Response};
use jc_stellar::StellarEvent;

/// Bridge configuration.
#[derive(Clone, Debug)]
pub struct BridgeConfig {
    /// Inner bridge timestep (N-body units).
    pub dt: f64,
    /// Substeps per outer iteration (the paper's "single iteration (time
    /// step) of the simulation" contains many inner bridge steps).
    pub substeps: u32,
    /// Exchange stellar-evolution state every this many outer iterations
    /// ("it is performed at a slower rate, only exchanging state every
    /// n-th time step").
    pub stellar_interval: u32,
    /// Myr per N-body time unit (from the cluster's unit converter).
    pub time_unit_myr: f64,
    /// MSun per N-body mass unit.
    pub mass_unit_msun: f64,
    /// Supernova thermal energy deposited per event (N-body energy units).
    pub sn_energy: f64,
    /// Supernova deposition radius (N-body length units).
    pub sn_radius: f64,
    /// Record the call sequence of the next iteration (Fig 7 trace).
    pub trace: bool,
}

impl Default for BridgeConfig {
    fn default() -> BridgeConfig {
        BridgeConfig {
            dt: 1.0 / 64.0,
            substeps: 8,
            stellar_interval: 4,
            time_unit_myr: 1.0,
            mass_unit_msun: 1000.0,
            sn_energy: 0.2,
            sn_radius: 0.2,
            trace: false,
        }
    }
}

/// A bridge-level failure (a worker died, answered wrongly, or a
/// checkpoint operation failed). Carried by [`Bridge::try_iteration`]
/// so the caller can decide between aborting (the paper's §5 behavior)
/// and recovering ([`Bridge::iteration_recovering`]).
///
/// By the time a failure reaches this type it is *fatal* by
/// definition: transient transport faults (timeouts, dropped
/// connections, torn frames) are absorbed one layer down, where a
/// [`crate::socket::SocketChannel`] under a
/// [`crate::chaos::RetryPolicy`] resends the identical sequence-
/// numbered frame in place and the worker deduplicates it. A
/// `BridgeError` therefore means in-place retry was exhausted (or
/// disabled) and the only remaining recovery is the heavy path: heal
/// the channels, restore the last checkpoint, replay the iteration.
#[derive(Clone, Debug)]
pub enum BridgeError {
    /// A worker call failed or answered with the wrong response kind.
    Worker {
        /// Which bridge slot failed.
        role: Role,
        /// The operation that failed ("evolve", "kick", …).
        op: &'static str,
        /// The offending response or error text.
        detail: String,
    },
    /// Serializing or applying a checkpoint failed.
    Checkpoint(String),
    /// Recovery was attempted and gave up (channels could not be healed
    /// or retries were exhausted).
    Unrecoverable {
        /// Recovery attempts made.
        attempts: u32,
        /// The final underlying failure.
        detail: String,
    },
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::Worker { role, op, detail } => {
                write!(f, "{} {op} failed: {detail}", role.label())
            }
            BridgeError::Checkpoint(s) => write!(f, "checkpoint failed: {s}"),
            BridgeError::Unrecoverable { attempts, detail } => {
                write!(f, "unrecoverable after {attempts} recovery attempt(s): {detail}")
            }
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<CheckpointError> for BridgeError {
    fn from(e: CheckpointError) -> BridgeError {
        BridgeError::Checkpoint(e.to_string())
    }
}

/// How [`Bridge::iteration_recovering`] responds to failures.
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Recovery attempts per iteration before giving up.
    pub max_retries: u32,
    /// Take a fresh checkpoint every this many completed iterations
    /// (1 = every iteration; larger trades checkpoint overhead for a
    /// longer replay after a failure).
    pub checkpoint_interval: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy { max_retries: 2, checkpoint_interval: 1 }
    }
}

/// What one outer iteration did.
#[derive(Clone, Debug, Default)]
pub struct IterationReport {
    /// Model time after the iteration (N-body units).
    pub time: f64,
    /// RPC calls made during the iteration.
    pub calls: u64,
    /// Supernovae that fired.
    pub supernovae: u32,
    /// Wind mass-loss events applied.
    pub wind_events: u32,
    /// Call-sequence trace (only when `cfg.trace`).
    pub trace: Vec<String>,
}

/// Reusable buffers for the p-kick phases, held across steps so a kick
/// over in-process channels constructs no `Vec`s: snapshots land in
/// reused [`ParticleData`]s, the coupling accelerations in reused output
/// buffers that are then scaled to velocity kicks in place.
#[derive(Default)]
struct KickScratch {
    stars: ParticleData,
    gas: ParticleData,
    dv_stars: Vec<[f64; 3]>,
    dv_gas: Vec<[f64; 3]>,
}

/// The combined solver.
pub struct Bridge {
    gravity: Box<dyn Channel>,
    hydro: Box<dyn Channel>,
    coupling: Box<dyn Channel>,
    stellar: Option<Box<dyn Channel>>,
    cfg: BridgeConfig,
    time: f64,
    iterations: u64,
    total_supernovae: u32,
    scratch: KickScratch,
}

impl Bridge {
    /// Assemble a bridge from its four workers' channels.
    pub fn new(
        gravity: Box<dyn Channel>,
        hydro: Box<dyn Channel>,
        coupling: Box<dyn Channel>,
        stellar: Option<Box<dyn Channel>>,
        cfg: BridgeConfig,
    ) -> Bridge {
        assert!(cfg.dt > 0.0 && cfg.substeps > 0 && cfg.stellar_interval > 0);
        Bridge {
            gravity,
            hydro,
            coupling,
            stellar,
            cfg,
            time: 0.0,
            iterations: 0,
            total_supernovae: 0,
            scratch: KickScratch::default(),
        }
    }

    /// Dismantle the bridge and hand back its channels in
    /// [`Bridge::new`] argument order. This is the warm-pool hook: a
    /// service that leases a pooled host's channels for one session
    /// returns them afterwards so the next session reuses the live
    /// workers (their state is overwritten by that session's own
    /// [`Bridge::restore`]).
    #[allow(clippy::type_complexity)]
    pub fn into_channels(
        self,
    ) -> (Box<dyn Channel>, Box<dyn Channel>, Box<dyn Channel>, Option<Box<dyn Channel>>) {
        (self.gravity, self.hydro, self.coupling, self.stellar)
    }

    /// Propagate a per-request wall-clock budget
    /// ([`crate::chaos::RetryPolicy::deadline_ms`], 0 = unbounded) to
    /// every channel, so a session-level deadline bounds each retry
    /// loop underneath the coupler.
    pub fn set_request_deadline(&mut self, deadline_ms: u64) {
        self.gravity.set_deadline(deadline_ms);
        self.hydro.set_deadline(deadline_ms);
        self.coupling.set_deadline(deadline_ms);
        if let Some(s) = &mut self.stellar {
            s.set_deadline(deadline_ms);
        }
    }

    /// Current model time (N-body units).
    pub fn model_time(&self) -> f64 {
        self.time
    }

    /// Iterations completed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Supernovae so far.
    pub fn total_supernovae(&self) -> u32 {
        self.total_supernovae
    }

    /// Channel statistics: (gravity, hydro, coupling, stellar).
    pub fn channel_stats(
        &self,
    ) -> (
        crate::channel::ChannelStats,
        crate::channel::ChannelStats,
        crate::channel::ChannelStats,
        Option<crate::channel::ChannelStats>,
    ) {
        (
            self.gravity.stats(),
            self.hydro.stats(),
            self.coupling.stats(),
            self.stellar.as_ref().map(|s| s.stats()),
        )
    }

    /// Fetch current snapshots (stars, gas) — for diagnostics between
    /// iterations.
    pub fn snapshots(&mut self) -> (ParticleData, ParticleData) {
        let stars = match self.gravity.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("gravity snapshot failed: {other:?}"),
        };
        let gas = match self.hydro.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => panic!("hydro snapshot failed: {other:?}"),
        };
        (stars, gas)
    }

    /// Run one outer iteration (the unit the paper reports seconds for).
    /// Panics on worker failure — the paper's §5 behavior; use
    /// [`Bridge::try_iteration`] or [`Bridge::iteration_recovering`]
    /// when a failure should be survivable.
    pub fn iteration(&mut self) -> IterationReport {
        self.try_iteration().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run one outer iteration, reporting worker failures instead of
    /// panicking. On `Err` the solver state is *indeterminate* (the
    /// iteration stopped mid-scatter); continue only after healing the
    /// channels and restoring a [`Checkpoint`] — which is exactly what
    /// [`Bridge::iteration_recovering`] does. Channel pipelines are
    /// always left drained, so recovery can issue new calls.
    pub fn try_iteration(&mut self) -> Result<IterationReport, BridgeError> {
        let mut rep = IterationReport::default();
        let calls0 = self.total_calls();
        for _ in 0..self.cfg.substeps {
            self.kick(0.5 * self.cfg.dt, &mut rep)?;
            let t_next = self.time + self.cfg.dt;
            if rep.trace.len() < 64 && self.cfg.trace {
                rep.trace.push(format!(
                    "evolve gravity -> t={t_next:.5} || evolve hydro -> t={t_next:.5}"
                ));
            }
            // parallel evolve ("The evolve step can be done in parallel");
            // both responses are collected before either is judged so the
            // pipelines stay clean even when one worker died
            self.gravity.submit(Request::EvolveTo(t_next));
            self.hydro.submit(Request::EvolveTo(t_next));
            let rg = self.gravity.collect();
            let rh = self.hydro.collect();
            expect_ok(Role::Gravity, "evolve", rg)?;
            expect_ok(Role::Hydro, "evolve", rh)?;
            self.kick(0.5 * self.cfg.dt, &mut rep)?;
            self.time = t_next;
        }
        self.iterations += 1;
        if self.iterations.is_multiple_of(self.cfg.stellar_interval as u64) {
            self.stellar_exchange(&mut rep)?;
        }
        rep.time = self.time;
        rep.calls = self.total_calls() - calls0;
        self.total_supernovae += rep.supernovae;
        Ok(rep)
    }

    fn total_calls(&self) -> u64 {
        self.gravity.stats().calls
            + self.hydro.stats().calls
            + self.coupling.stats().calls
            + self.stellar.as_ref().map(|s| s.stats().calls).unwrap_or(0)
    }

    /// One p-kick phase: mutual gravitational kicks between the star and
    /// gas systems, computed by the coupling model. All buffers come from
    /// the bridge-held scratch, so over in-process channels the phase
    /// allocates nothing once warm.
    fn kick(&mut self, half_dt: f64, rep: &mut IterationReport) -> Result<(), BridgeError> {
        if self.cfg.trace && rep.trace.len() < 64 {
            rep.trace.push(format!("p-kick (dt/2 = {half_dt:.5})"));
        }
        if !self.gravity.snapshot_into(&mut self.scratch.stars) {
            return Err(worker_err(Role::Gravity, "snapshot", "snapshot_into failed"));
        }
        if !self.hydro.snapshot_into(&mut self.scratch.gas) {
            return Err(worker_err(Role::Hydro, "snapshot", "snapshot_into failed"));
        }
        let (stars, gas) = (&self.scratch.stars, &self.scratch.gas);
        if stars.mass.is_empty() || gas.mass.is_empty() {
            return Ok(());
        }
        // gas pulls on stars
        self.coupling
            .compute_kick_into(&stars.pos, &gas.pos, &gas.mass, &mut self.scratch.dv_stars)
            .ok_or_else(|| worker_err(Role::Coupling, "compute-kick", "no accelerations"))?;
        // stars pull on gas
        self.coupling
            .compute_kick_into(&gas.pos, &stars.pos, &stars.mass, &mut self.scratch.dv_gas)
            .ok_or_else(|| worker_err(Role::Coupling, "compute-kick", "no accelerations"))?;
        // scale accelerations to velocity kicks in place
        for a in self.scratch.dv_stars.iter_mut().chain(&mut self.scratch.dv_gas) {
            for k in a {
                *k *= half_dt;
            }
        }
        let r1 = self.gravity.kick_slice(&self.scratch.dv_stars);
        expect_ok(Role::Gravity, "kick", r1)?;
        let r2 = self.hydro.kick_slice(&self.scratch.dv_gas);
        expect_ok(Role::Hydro, "kick", r2)?;
        Ok(())
    }

    /// The slower stellar-evolution exchange.
    fn stellar_exchange(&mut self, rep: &mut IterationReport) -> Result<(), BridgeError> {
        let Some(stellar) = self.stellar.as_mut() else { return Ok(()) };
        if self.cfg.trace && rep.trace.len() < 64 {
            rep.trace.push("stellar exchange (every n-th step)".into());
        }
        let t_myr = self.time * self.cfg.time_unit_myr;
        let update = stellar.call(Request::EvolveStars(t_myr));
        let (masses_msun, events) = match update {
            Response::StellarUpdate { masses, events } => (masses, events),
            other => return Err(worker_err(Role::Stellar, "evolve", format!("{other:?}"))),
        };
        let stars = match self.gravity.call(Request::GetParticles) {
            Response::Particles(p) => p,
            other => return Err(worker_err(Role::Gravity, "snapshot", format!("{other:?}"))),
        };
        if masses_msun.len() != stars.mass.len() {
            return Err(worker_err(
                Role::Stellar,
                "evolve",
                format!("population mismatch: {} stars vs {}", masses_msun.len(), stars.mass.len()),
            ));
        }
        // push updated masses into the dynamics (MSun -> N-body units)
        let masses_nb: Vec<f64> = masses_msun.iter().map(|m| m / self.cfg.mass_unit_msun).collect();
        let r = self.gravity.call(Request::SetMasses(masses_nb));
        expect_ok(Role::Gravity, "set-masses", r)?;
        // feedback into the gas
        for ev in events {
            match ev {
                StellarEvent::Supernova { star, ejected_mass, energy_foe: _ } => {
                    rep.supernovae += 1;
                    let pos = stars.pos[star];
                    let _ = self.hydro.call(Request::InjectEnergy {
                        center: pos,
                        radius: self.cfg.sn_radius,
                        energy: self.cfg.sn_energy,
                    });
                    let m_nb = ejected_mass / self.cfg.mass_unit_msun;
                    if m_nb > 0.0 {
                        let _ = self.hydro.call(Request::AddGas {
                            pos,
                            mass: m_nb,
                            u: self.cfg.sn_energy / m_nb.max(1e-9) * 0.1,
                        });
                    }
                }
                StellarEvent::WindMassLoss { star, mass } => {
                    rep.wind_events += 1;
                    let m_nb = mass / self.cfg.mass_unit_msun;
                    if m_nb > 1e-12 {
                        let _ = self.hydro.call(Request::AddGas {
                            pos: stars.pos[star],
                            mass: m_nb,
                            u: 1e-3,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    // --- checkpoint / restore / failover --------------------------------

    /// Serialize the complete solver state: one [`Request::SaveState`]
    /// round trip per worker plus the coupler's own clock. The result is
    /// bitwise-restorable (see [`Bridge::restore`]) and file-portable
    /// via [`Checkpoint::save`] / [`Bridge::snapshot_to`].
    pub fn snapshot(&mut self) -> Result<Checkpoint, BridgeError> {
        fn save(ch: &mut Box<dyn Channel>, role: Role) -> Result<ModelState, BridgeError> {
            match ch.call(Request::SaveState) {
                Response::State(s) => Ok(s),
                other => Err(worker_err(role, "save-state", format!("{other:?}"))),
            }
        }
        Ok(Checkpoint {
            time: self.time,
            iterations: self.iterations,
            total_supernovae: self.total_supernovae,
            gravity: save(&mut self.gravity, Role::Gravity)?,
            hydro: save(&mut self.hydro, Role::Hydro)?,
            coupling: save(&mut self.coupling, Role::Coupling)?,
            stellar: match &mut self.stellar {
                Some(s) => Some(save(s, Role::Stellar)?),
                None => None,
            },
        })
    }

    /// [`Bridge::snapshot`] straight into a checkpoint container file.
    pub fn snapshot_to(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), BridgeError> {
        let ck = self.snapshot()?;
        ck.save(path).map_err(BridgeError::from)
    }

    /// Overwrite the complete solver state from a checkpoint: one
    /// [`Request::LoadState`] per worker (a sharded pool re-scatters the
    /// state over its live shards) plus the coupler's clock. After a
    /// successful restore the run continues bitwise-identically to a run
    /// that reached the checkpoint without interruption.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), BridgeError> {
        fn load(
            ch: &mut Box<dyn Channel>,
            role: Role,
            state: &ModelState,
        ) -> Result<(), BridgeError> {
            let r = ch.call(Request::LoadState(state.clone()));
            expect_ok(role, "load-state", r)
        }
        load(&mut self.gravity, Role::Gravity, &ck.gravity)?;
        load(&mut self.hydro, Role::Hydro, &ck.hydro)?;
        load(&mut self.coupling, Role::Coupling, &ck.coupling)?;
        match (&mut self.stellar, &ck.stellar) {
            (Some(ch), Some(state)) => load(ch, Role::Stellar, state)?,
            (None, None) => {}
            (have, want) => {
                return Err(BridgeError::Checkpoint(format!(
                    "stellar worker {} but checkpoint {} a stellar section",
                    if have.is_some() { "present" } else { "absent" },
                    if want.is_some() { "has" } else { "lacks" },
                )))
            }
        }
        self.time = ck.time;
        self.iterations = ck.iterations;
        self.total_supernovae = ck.total_supernovae;
        Ok(())
    }

    /// [`Bridge::restore`] from a checkpoint container file.
    pub fn restore_from(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), BridgeError> {
        let ck = Checkpoint::load(path)?;
        self.restore(&ck)
    }

    /// Replace one worker channel (failover for non-sharded channels:
    /// the §6 scenario layer swaps in a channel to a re-deployed worker
    /// after a host crash). The new worker's state is undefined until
    /// the next [`Bridge::restore`].
    pub fn replace_channel(&mut self, role: Role, ch: Box<dyn Channel>) {
        match role {
            Role::Gravity => self.gravity = ch,
            Role::Hydro => self.hydro = ch,
            Role::Coupling => self.coupling = ch,
            Role::Stellar => self.stellar = Some(ch),
        }
    }

    /// Heal every channel (heartbeat + shard respawn/exclusion); `true`
    /// when all four ended up alive.
    pub fn heal_channels(&mut self) -> bool {
        // probe all of them even after a failure, so one heal pass
        // repairs as much as it can
        let g = self.gravity.heal();
        let h = self.hydro.heal();
        let c = self.coupling.heal();
        let s = self.stellar.as_mut().map(|s| s.heal()).unwrap_or(true);
        g && h && c && s
    }

    /// One fault-tolerant outer iteration: run, and on failure heal →
    /// restore `checkpoint` → replay, up to `policy.max_retries` times.
    ///
    /// `checkpoint` is the caller-held last-known-good state; it is
    /// taken automatically before the first iteration and refreshed
    /// every `policy.checkpoint_interval` completed iterations. With an
    /// interval above 1 a recovery rewinds several iterations; the
    /// replay then catches back up to the iteration this call was asked
    /// to run, so the caller's iteration count stays truthful whatever
    /// the interval. Returns the iteration report plus the number of
    /// recoveries it needed (0 = clean run).
    pub fn iteration_recovering(
        &mut self,
        checkpoint: &mut Option<Checkpoint>,
        policy: &RecoveryPolicy,
    ) -> Result<(IterationReport, u32), BridgeError> {
        if checkpoint.is_none() {
            *checkpoint = Some(self.snapshot()?);
        }
        let target = self.iterations + 1;
        let mut attempts = 0u32;
        loop {
            let result = (|| -> Result<IterationReport, BridgeError> {
                // after a rewind to an older checkpoint this replays
                // every lost iteration, not just the one that failed
                let mut rep = self.try_iteration()?;
                while self.iterations < target {
                    rep = self.try_iteration()?;
                }
                let due = policy.checkpoint_interval <= 1
                    || self.iterations.is_multiple_of(policy.checkpoint_interval);
                if due {
                    *checkpoint = Some(self.snapshot()?);
                }
                Ok(rep)
            })();
            match result {
                Ok(rep) => return Ok((rep, attempts)),
                Err(e) => {
                    attempts += 1;
                    if attempts > policy.max_retries {
                        return Err(BridgeError::Unrecoverable {
                            attempts: attempts - 1,
                            detail: e.to_string(),
                        });
                    }
                    if !self.heal_channels() {
                        return Err(BridgeError::Unrecoverable {
                            attempts,
                            detail: format!("channels could not be healed after: {e}"),
                        });
                    }
                    let ck = checkpoint.as_ref().expect("checkpoint taken above");
                    self.restore(ck)?;
                }
            }
        }
    }
}

fn worker_err(role: Role, op: &'static str, detail: impl Into<String>) -> BridgeError {
    BridgeError::Worker { role, op, detail: detail.into() }
}

/// Require an `Ok` response; anything else becomes a [`BridgeError`].
fn expect_ok(role: Role, op: &'static str, resp: Response) -> Result<(), BridgeError> {
    match resp {
        Response::Ok { .. } => Ok(()),
        other => Err(worker_err(role, op, format!("{other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::LocalChannel;
    use crate::cluster::EmbeddedCluster;

    fn small_bridge(trace: bool) -> Bridge {
        let cluster = EmbeddedCluster::build(32, 128, 0.5, 5);
        let mut cfg = cluster.bridge_config();
        cfg.substeps = 2;
        cfg.stellar_interval = 1;
        cfg.trace = trace;
        let (g, h, c, s) = cluster.local_workers(false);
        Bridge::new(
            Box::new(LocalChannel::new(g)),
            Box::new(LocalChannel::new(h)),
            Box::new(LocalChannel::new(c)),
            Some(Box::new(LocalChannel::new(s))),
            cfg,
        )
    }

    #[test]
    fn iteration_advances_time_and_counts_calls() {
        let mut b = small_bridge(false);
        let rep = b.iteration();
        assert!(rep.time > 0.0);
        assert!(rep.calls > 10, "calls = {}", rep.calls);
        assert_eq!(b.iterations(), 1);
    }

    #[test]
    fn trace_shows_fig7_sequence() {
        let mut b = small_bridge(true);
        let rep = b.iteration();
        let joined = rep.trace.join("\n");
        assert!(joined.contains("p-kick"), "{joined}");
        assert!(joined.contains("evolve gravity"), "{joined}");
        assert!(joined.contains("||"), "parallel marker: {joined}");
        assert!(joined.contains("stellar exchange"), "{joined}");
        // kick-evolve-kick ordering within a substep
        let first_kick = joined.find("p-kick").unwrap();
        let first_evolve = joined.find("evolve gravity").unwrap();
        assert!(first_kick < first_evolve);
    }

    #[test]
    fn stellar_exchange_respects_interval() {
        let cluster = EmbeddedCluster::build(16, 64, 0.5, 6);
        let mut cfg = cluster.bridge_config();
        cfg.substeps = 1;
        cfg.stellar_interval = 3;
        let (g, h, c, s) = cluster.local_workers(false);
        let mut b = Bridge::new(
            Box::new(LocalChannel::new(g)),
            Box::new(LocalChannel::new(h)),
            Box::new(LocalChannel::new(c)),
            Some(Box::new(LocalChannel::new(s))),
            cfg,
        );
        b.iteration();
        b.iteration();
        let (.., stellar) = b.channel_stats();
        assert_eq!(stellar.unwrap().calls, 0, "no stellar exchange before 3rd iteration");
        b.iteration();
        let (.., stellar) = b.channel_stats();
        assert_eq!(stellar.unwrap().calls, 1);
    }

    #[test]
    fn checkpoint_restore_is_bitwise_transparent() {
        // reference: run 4 iterations straight through
        let mut reference = small_bridge(false);
        for _ in 0..4 {
            reference.iteration();
        }
        let (ref_stars, ref_gas) = reference.snapshots();

        // replayed: run 2, checkpoint, run 2, rewind, run the last 2 again
        let mut b = small_bridge(false);
        b.iteration();
        b.iteration();
        let ck = b.snapshot().unwrap();
        b.iteration();
        b.iteration();
        b.restore(&ck).unwrap();
        assert_eq!(b.iterations(), 2);
        assert_eq!(b.model_time(), ck.time);
        b.iteration();
        b.iteration();
        let (stars, gas) = b.snapshots();
        assert_eq!(stars.pos, ref_stars.pos, "star positions replay bitwise");
        assert_eq!(stars.vel, ref_stars.vel);
        assert_eq!(stars.mass, ref_stars.mass);
        assert_eq!(gas.pos, ref_gas.pos, "gas positions replay bitwise");
        assert_eq!(gas.vel, ref_gas.vel);
        assert_eq!(b.total_supernovae(), reference.total_supernovae());
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let mut b = small_bridge(false);
        b.iteration();
        let ck = b.snapshot().unwrap();
        let path = std::env::temp_dir().join(format!("jc-ck-{}.bin", std::process::id()));
        ck.save(&path).unwrap();
        let back = crate::checkpoint::Checkpoint::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(format!("{ck:?}"), format!("{back:?}"));
        b.restore(&back).unwrap();
    }

    #[test]
    fn bridge_conserves_momentum_reasonably() {
        let mut b = small_bridge(false);
        for _ in 0..2 {
            b.iteration();
        }
        let (stars, gas) = b.snapshots();
        let mut p = [0.0f64; 3];
        for (m, v) in stars.mass.iter().zip(&stars.vel) {
            for k in 0..3 {
                p[k] += m * v[k];
            }
        }
        for (m, v) in gas.mass.iter().zip(&gas.vel) {
            for k in 0..3 {
                p[k] += m * v[k];
            }
        }
        // tree-approximated kicks are not exactly antisymmetric; allow a
        // small tolerance relative to the system's momentum scale (~sigma)
        let ptot = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!(ptot < 0.05, "momentum drift {ptot}");
    }
}
