//! The embedded-star-cluster experiment (§6, Fig 6).
//!
//! "an early star cluster is simulated, including the gas from which the
//! stars formed. The stars interact with the gas, which is eventually
//! pushed out of the cluster completely. Also, the stars themselves evolve,
//! leading to several of the bigger stars exploding in a supernova during
//! the simulation."

use crate::bridge::BridgeConfig;
use crate::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ModelWorker, ParticleData, StellarWorker,
};
use jc_nbody::plummer::{plummer_sphere, salpeter_imf, virialize};
use jc_nbody::{Backend, ParticleSet};
use jc_sph::particles::plummer_gas;
use jc_sph::GasParticles;
use jc_units::{astro, NBodyConverter, Quantity};

/// The assembled initial conditions plus unit bookkeeping.
pub struct EmbeddedCluster {
    /// Star dynamics initial conditions (N-body units).
    pub stars: ParticleSet,
    /// ZAMS masses of the same stars, MSun (for SSE).
    pub star_masses_msun: Vec<f64>,
    /// Gas initial conditions (N-body units).
    pub gas: GasParticles,
    /// Physical units converter (mass scale = total cluster mass, length
    /// scale = 1 pc).
    pub converter: NBodyConverter,
    /// MSun per N-body mass unit.
    pub mass_unit_msun: f64,
    /// Myr per N-body time unit.
    pub time_unit_myr: f64,
}

impl EmbeddedCluster {
    /// Build a cluster of `n_stars` stars embedded in `n_gas` gas
    /// particles, with `gas_fraction` of the total mass in gas.
    ///
    /// Stellar masses are drawn from a Salpeter IMF in [0.3, 60] MSun; the
    /// total cluster mass (stars + gas) sets the N-body mass unit; the
    /// length unit is 1 parsec.
    pub fn build(n_stars: usize, n_gas: usize, gas_fraction: f64, seed: u64) -> EmbeddedCluster {
        assert!(n_stars > 0 && n_gas > 0);
        assert!((0.0..1.0).contains(&gas_fraction));
        // physical stellar masses
        let star_masses_msun = salpeter_imf(n_stars, 0.3, 60.0, seed);
        let stars_total_msun: f64 = star_masses_msun.iter().sum();
        let total_msun = stars_total_msun / (1.0 - gas_fraction);
        let gas_total_msun = total_msun * gas_fraction;

        // star dynamics: Plummer positions/velocities, IMF masses scaled
        // so the stars sum to (1 - f) in N-body units
        let mut stars = plummer_sphere(n_stars, seed);
        for (m, msun) in stars.mass.iter_mut().zip(&star_masses_msun) {
            *m = msun / total_msun;
        }
        virialize(&mut stars, 1e-4);

        // gas: Plummer sphere of total mass f
        let gas = plummer_gas(n_gas, gas_total_msun / total_msun, seed.wrapping_add(1));

        let converter = NBodyConverter::new(
            Quantity::new(total_msun, astro::MSUN),
            Quantity::new(1.0, astro::PARSEC),
        )
        .expect("scales have the right dimensions");
        let time_unit_myr = converter.time_unit_si() / astro::MYR.si_factor;
        EmbeddedCluster {
            stars,
            star_masses_msun,
            gas,
            converter,
            mass_unit_msun: total_msun,
            time_unit_myr,
        }
    }

    /// A bridge configuration consistent with this cluster's units.
    pub fn bridge_config(&self) -> BridgeConfig {
        BridgeConfig {
            time_unit_myr: self.time_unit_myr,
            mass_unit_msun: self.mass_unit_msun,
            ..BridgeConfig::default()
        }
    }

    /// Instantiate the four workers locally. `use_gpu` picks the
    /// GPU-flavoured kernels (PhiGRAPE-GPU + Octgrav) versus the CPU pair
    /// (PhiGRAPE-CPU + Fi) — the §6.2 kernel switch.
    #[allow(clippy::type_complexity)]
    pub fn local_workers(
        &self,
        use_gpu: bool,
    ) -> (Box<dyn ModelWorker>, Box<dyn ModelWorker>, Box<dyn ModelWorker>, Box<dyn ModelWorker>)
    {
        let backend = if use_gpu { Backend::GpuModel } else { Backend::CpuParallel };
        let gravity = Box::new(GravityWorker::new(self.stars.clone(), backend));
        let hydro = Box::new(HydroWorker::new(self.gas.clone()));
        let coupling: Box<dyn ModelWorker> = if use_gpu {
            Box::new(CouplingWorker::octgrav())
        } else {
            Box::new(CouplingWorker::fi())
        };
        let stellar = Box::new(StellarWorker::new(self.star_masses_msun.clone(), 0.02));
        (gravity, hydro, coupling, stellar)
    }
}

/// Fraction of the gas mass that is energetically bound to the combined
/// (stars + gas) system: specific energy ½v² + φ < 0. This is the Fig 6
/// observable — it decays towards zero as feedback expels the gas.
pub fn bound_gas_fraction(stars: &ParticleData, gas: &ParticleData) -> f64 {
    if gas.mass.is_empty() {
        return 0.0;
    }
    // potential from all matter, direct sum (diagnostic-only O(N²))
    let mut src_pos: Vec<[f64; 3]> = Vec::with_capacity(stars.pos.len() + gas.pos.len());
    let mut src_mass: Vec<f64> = Vec::with_capacity(src_pos.capacity());
    src_pos.extend_from_slice(&stars.pos);
    src_pos.extend_from_slice(&gas.pos);
    src_mass.extend_from_slice(&stars.mass);
    src_mass.extend_from_slice(&gas.mass);
    let eps2 = 1e-4;
    let mut bound_mass = 0.0;
    let total: f64 = gas.mass.iter().sum();
    for i in 0..gas.mass.len() {
        let p = gas.pos[i];
        let v = gas.vel[i];
        let mut phi = 0.0;
        for (sp, sm) in src_pos.iter().zip(&src_mass) {
            let d = [sp[0] - p[0], sp[1] - p[1], sp[2] - p[2]];
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + eps2;
            phi -= sm / r2.sqrt();
        }
        // remove self-interaction (gas particle i is in the source list)
        phi += gas.mass[i] / eps2.sqrt();
        let e = 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]) + phi;
        if e < 0.0 {
            bound_mass += gas.mass[i];
        }
    }
    bound_mass / total
}

/// Half-mass radius of a snapshot (about its center of mass).
pub fn half_mass_radius(data: &ParticleData) -> f64 {
    if data.mass.is_empty() {
        return 0.0;
    }
    let mt: f64 = data.mass.iter().sum();
    let mut com = [0.0; 3];
    for (m, p) in data.mass.iter().zip(&data.pos) {
        for k in 0..3 {
            com[k] += m * p[k] / mt;
        }
    }
    let mut rm: Vec<(f64, f64)> = data
        .pos
        .iter()
        .zip(&data.mass)
        .map(|(p, m)| {
            let d = [p[0] - com[0], p[1] - com[1], p[2] - com[2]];
            ((d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt(), *m)
        })
        .collect();
    rm.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut acc = 0.0;
    for (r, m) in rm {
        acc += m;
        if acc >= 0.5 * mt {
            return r;
        }
    }
    f64::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_mass_budget() {
        let c = EmbeddedCluster::build(100, 400, 0.6, 3);
        let star_mass: f64 = c.stars.mass.iter().sum();
        let gas_mass = c.gas.total_mass();
        assert!((star_mass - 0.4).abs() < 1e-9, "stars {star_mass}");
        assert!((gas_mass - 0.6).abs() < 1e-9, "gas {gas_mass}");
        assert!((star_mass + gas_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn units_are_sensible_for_a_young_cluster() {
        let c = EmbeddedCluster::build(200, 200, 0.5, 4);
        // A few-hundred-MSun cluster at 1 pc: the crossing time is of
        // order a Myr, so SNe (at ~10 Myr) happen within tens of crossing
        // times — the regime of the paper's simulation.
        assert!(c.time_unit_myr > 0.05 && c.time_unit_myr < 50.0, "{}", c.time_unit_myr);
        assert!(c.mass_unit_msun > 50.0, "{}", c.mass_unit_msun);
    }

    #[test]
    fn initial_gas_is_mostly_bound() {
        let c = EmbeddedCluster::build(64, 256, 0.5, 7);
        let stars = ParticleData {
            mass: c.stars.mass.clone(),
            pos: c.stars.pos.clone(),
            vel: c.stars.vel.clone(),
        };
        let gas = ParticleData {
            mass: c.gas.mass.clone(),
            pos: c.gas.pos.clone(),
            vel: c.gas.vel.clone(),
        };
        let f = bound_gas_fraction(&stars, &gas);
        assert!(f > 0.8, "initial bound fraction {f}");
    }

    #[test]
    fn half_mass_radius_of_plummer_near_expected() {
        let c = EmbeddedCluster::build(500, 100, 0.2, 9);
        let stars = ParticleData {
            mass: c.stars.mass.clone(),
            pos: c.stars.pos.clone(),
            vel: c.stars.vel.clone(),
        };
        let r = half_mass_radius(&stars);
        // Plummer half-mass radius ≈ 1.3 a ≈ 0.77 for virial radius 1
        assert!(r > 0.3 && r < 1.5, "r_h = {r}");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = EmbeddedCluster::build(32, 32, 0.5, 11);
        let b = EmbeddedCluster::build(32, 32, 0.5, 11);
        assert_eq!(a.stars.pos, b.stars.pos);
        assert_eq!(a.star_masses_msun, b.star_masses_msun);
    }
}
