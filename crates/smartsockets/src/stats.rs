//! Connection-attempt statistics (for the connectivity ablation bench).

/// Counters over connection plans, by strategy used.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ConnectionStats {
    /// Plain direct connections.
    pub direct: u64,
    /// Reverse connection setups.
    pub reverse: u64,
    /// Hub-relayed connections.
    pub relayed: u64,
    /// Failed connection attempts.
    pub failed: u64,
}

impl ConnectionStats {
    /// Total attempts.
    pub fn total(&self) -> u64 {
        self.direct + self.reverse + self.relayed + self.failed
    }

    /// Fraction of attempts that succeeded by any strategy.
    pub fn success_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 1.0;
        }
        (t - self.failed) as f64 / t as f64
    }
}

impl std::fmt::Display for ConnectionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "direct={} reverse={} relayed={} failed={} ({}% ok)",
            self.direct,
            self.reverse,
            self.relayed,
            self.failed,
            (self.success_rate() * 100.0).round()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate() {
        let s = ConnectionStats { direct: 2, reverse: 1, relayed: 1, failed: 1 };
        assert_eq!(s.total(), 5);
        assert!((s.success_rate() - 0.8).abs() < 1e-12);
        let empty = ConnectionStats::default();
        assert_eq!(empty.success_rate(), 1.0);
    }
}
