//! Hub actors: the overlay's routers.
//!
//! "The overlay network provides a way to coordinate communication, and
//! serves as a backup communication medium if required" (§3). Hubs learn
//! about each other by anti-entropy gossip and forward [`Relay`] envelopes
//! hop by hop towards their destination.

use crate::addr::VirtualAddress;
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{Actor, ActorId, Ctx, HostId, Msg, SimDuration};
use rand::Rng;
use std::any::Any;
use std::collections::HashMap;

/// What a hub knows about another hub.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HubInfo {
    /// The hub's actor.
    pub actor: ActorId,
    /// The host it runs on.
    pub host: HostId,
}

/// A data envelope relayed through the overlay.
pub struct Relay {
    /// Final destination actor (an IPL receive port, a worker proxy, ...).
    pub to_actor: ActorId,
    /// Destination address (for routing decisions).
    pub to_addr: VirtualAddress,
    /// Simulated payload size.
    pub bytes: u64,
    /// Traffic class for accounting.
    pub class: TrafficClass,
    /// The actual payload handed to the destination.
    pub inner: Box<dyn Any>,
    /// Remaining hub hops (front of the list is next).
    pub via: Vec<ActorId>,
}

/// Hub protocol messages.
pub enum HubMsg {
    /// Anti-entropy gossip: the sender's current hub list.
    Gossip(Vec<HubInfo>),
    /// Internal timer: run one gossip round.
    GossipTick,
    /// Relay an envelope towards its destination.
    Forward(Relay),
}

/// A SmartSockets hub.
pub struct HubActor {
    /// This hub's identity (set on start).
    me: Option<HubInfo>,
    /// Known hubs (including self once started).
    known: Vec<HubInfo>,
    /// Gossip interval.
    interval: SimDuration,
    /// Number of envelopes forwarded (for the monitoring view).
    forwarded: u64,
    /// Bytes relayed.
    relayed_bytes: u64,
    /// Gossip rounds initiated.
    rounds: u64,
    /// Stop gossiping after this many rounds (0 = forever). Tests and
    /// short-lived deployments set a bound so the event queue drains.
    max_rounds: u64,
    /// Seed hubs to contact on start.
    seeds: Vec<HubInfo>,
    label: String,
    /// Optional shared probe the hub publishes its membership view into,
    /// so tests and the monitoring views can observe convergence without
    /// reaching inside boxed actors. Single-threaded sim ⇒ `Rc<RefCell>`.
    probe: Option<MembershipProbe>,
}

/// Shared observation point for hub membership (see [`HubActor::with_probe`]).
pub type MembershipProbe = std::rc::Rc<std::cell::RefCell<HashMap<ActorId, Vec<HubInfo>>>>;

impl HubActor {
    /// Create a hub that bootstraps from `seeds` and gossips every
    /// `interval` for at most `max_rounds` rounds (0 = forever).
    pub fn new(
        label: impl Into<String>,
        seeds: Vec<HubInfo>,
        interval: SimDuration,
        max_rounds: u64,
    ) -> HubActor {
        HubActor {
            me: None,
            known: Vec::new(),
            interval,
            forwarded: 0,
            relayed_bytes: 0,
            rounds: 0,
            max_rounds,
            seeds,
            label: label.into(),
            probe: None,
        }
    }

    /// Attach a membership probe.
    pub fn with_probe(mut self, probe: MembershipProbe) -> HubActor {
        self.probe = Some(probe);
        self
    }

    fn merge(&mut self, infos: &[HubInfo]) {
        for info in infos {
            if !self.known.iter().any(|k| k.actor == info.actor) {
                self.known.push(*info);
            }
        }
        self.known.sort_by_key(|h| h.actor);
        if let (Some(probe), Some(me)) = (&self.probe, self.me) {
            probe.borrow_mut().insert(me.actor, self.known.clone());
        }
    }

    /// Hubs this hub currently knows.
    pub fn known_hubs(&self) -> &[HubInfo] {
        &self.known
    }

    /// Envelopes forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Bytes relayed so far.
    pub fn relayed_bytes(&self) -> u64 {
        self.relayed_bytes
    }
}

/// Final-delivery wrapper handed to the destination actor of a relay: the
/// destination sees the original inner payload re-wrapped so receivers can
/// treat relayed and direct messages alike by downcasting to their protocol
/// type first and falling back to `Relayed`.
pub struct Relayed {
    /// Originating sender is unknown to the hub; the inner protocol carries
    /// whatever identity it needs.
    pub inner: Box<dyn Any>,
}

/// Downcast a message to `T`, transparently unwrapping one [`Relayed`]
/// envelope if present — receivers treat relayed and direct traffic alike.
pub fn unwrap_message<T: Any>(msg: Msg) -> Result<(Option<ActorId>, T), Msg> {
    match msg.downcast::<T>() {
        Ok(x) => Ok(x),
        Err(m) => match m.downcast::<Relayed>() {
            Ok((from, relayed)) => match relayed.inner.downcast::<T>() {
                Ok(t) => Ok((from, *t)),
                Err(inner) => Err(Msg { from, payload: inner }),
            },
            Err(m) => Err(m),
        },
    }
}

impl Actor for HubActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let me = HubInfo { actor: ctx.id(), host: ctx.host() };
        self.me = Some(me);
        self.known.push(me);
        let seeds = self.seeds.clone();
        self.merge(&seeds);
        // interval == 0 disables gossip entirely (relay-only hub).
        if self.interval != SimDuration::ZERO {
            ctx.schedule_self(self.interval, HubMsg::GossipTick);
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<HubMsg>() {
            Ok((_, m)) => m,
            Err(_) => return, // engine notices and unknown payloads ignored
        };
        match msg {
            HubMsg::Gossip(infos) => {
                self.merge(&infos);
            }
            HubMsg::GossipTick => {
                self.rounds += 1;
                // Push our view to one random known peer (anti-entropy).
                let me = self.me.expect("started");
                let peers: Vec<HubInfo> =
                    self.known.iter().copied().filter(|h| h.actor != me.actor).collect();
                if !peers.is_empty() {
                    let idx = ctx.rng().gen_range(0..peers.len());
                    let peer = peers[idx];
                    // gossip message size: ~32 bytes per entry
                    let bytes = 32 * self.known.len() as u64 + 16;
                    ctx.send_net(
                        peer.actor,
                        bytes,
                        TrafficClass::Control,
                        HubMsg::Gossip(self.known.clone()),
                    );
                }
                if self.max_rounds == 0 || self.rounds < self.max_rounds {
                    ctx.schedule_self(self.interval, HubMsg::GossipTick);
                }
            }
            HubMsg::Forward(mut relay) => {
                self.forwarded += 1;
                self.relayed_bytes += relay.bytes;
                if let Some(next) = relay.via.first().copied() {
                    relay.via.remove(0);
                    ctx.send_net(next, relay.bytes, relay.class, HubMsg::Forward(relay));
                } else {
                    // Last hop: deliver to the destination actor.
                    let to = relay.to_actor;
                    let bytes = relay.bytes;
                    let class = relay.class;
                    ctx.send_net(to, bytes, class, Relayed { inner: relay.inner });
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("hub:{}", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jc_netsim::compute::CpuSpec;
    use jc_netsim::topology::HostSpec;
    use jc_netsim::{FirewallPolicy, Sim, SimConfig, Topology};

    fn line_topology(n: usize) -> (Topology, Vec<HostId>) {
        let mut t = Topology::new();
        let mut hosts = Vec::new();
        let mut prev = None;
        for i in 0..n {
            let s = t.add_site(format!("S{i}"), "", FirewallPolicy::Open);
            if let Some(p) = prev {
                t.add_link(p, s, SimDuration::from_millis(2), 1.0, "l");
            }
            hosts.push(
                t.add_host(HostSpec::node(format!("h{i}"), s, CpuSpec::generic()).as_front_end()),
            );
            prev = Some(s);
        }
        (t, hosts)
    }

    #[test]
    fn gossip_converges_to_full_membership() {
        let (topo, hosts) = line_topology(5);
        let mut sim = Sim::new(topo, SimConfig::default());
        let probe: MembershipProbe = Default::default();
        // First hub is the seed for all others.
        let seed_host = hosts[0];
        let seed = sim.add_actor(
            seed_host,
            Box::new(
                HubActor::new("seed", vec![], SimDuration::from_millis(50), 40)
                    .with_probe(probe.clone()),
            ),
        );
        let seed_info = HubInfo { actor: seed, host: seed_host };
        for (i, &h) in hosts.iter().enumerate().skip(1) {
            sim.add_actor(
                h,
                Box::new(
                    HubActor::new(
                        format!("hub{i}"),
                        vec![seed_info],
                        SimDuration::from_millis(50),
                        40,
                    )
                    .with_probe(probe.clone()),
                ),
            );
        }
        sim.run_to_quiescence(100_000);
        let views = probe.borrow();
        assert_eq!(views.len(), 5, "all hubs published a view");
        for (hub, known) in views.iter() {
            assert_eq!(known.len(), 5, "hub {hub:?} knows {} of 5 hubs", known.len());
        }
        assert!(sim.metrics().messages_sent() > 10);
    }

    #[test]
    fn relay_chain_delivers_to_destination() {
        struct Sink {
            got: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl Actor for Sink {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
                if let Ok((_, r)) = msg.downcast::<Relayed>() {
                    if let Ok(v) = r.inner.downcast::<u64>() {
                        self.got.set(*v);
                    }
                }
            }
        }
        let (topo, hosts) = line_topology(3);
        let mut sim = Sim::new(topo, SimConfig::default());
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let sink = sim.add_actor(hosts[2], Box::new(Sink { got: got.clone() }));
        let hub_b = sim.add_actor(
            hosts[1],
            Box::new(HubActor::new("b", vec![], SimDuration::from_millis(50), 0)),
        );
        let hub_a = sim.add_actor(
            hosts[0],
            Box::new(HubActor::new("a", vec![], SimDuration::from_millis(50), 0)),
        );
        // Inject an envelope at hub_a routed via hub_b to the sink.
        sim.post(
            hub_a,
            HubMsg::Forward(Relay {
                to_actor: sink,
                to_addr: VirtualAddress::new(hosts[2], 1),
                bytes: 1024,
                class: TrafficClass::Ipl,
                inner: Box::new(99u64),
                via: vec![hub_b],
            }),
            SimDuration::ZERO,
        );
        // Hubs with max_rounds=0 and a 50 ms interval gossip forever; run
        // bounded events.
        sim.run_until(jc_netsim::SimTime(1_000_000_000));
        assert_eq!(got.get(), 99);
    }
}
