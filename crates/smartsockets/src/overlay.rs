//! Overlay management: hub placement, relay routing and the Fig-10 view.
//!
//! IbisDeploy "automatically starts the hubs required by SmartSockets on
//! each resource used" (§3); [`Overlay::deploy`] is that automation: one hub
//! per site, placed on the site's front-end host, all seeded from the first
//! hub (the one next to the user's coupler).

use crate::hub::{HubActor, HubInfo, MembershipProbe};
use jc_netsim::topology::{SiteId, Topology};
use jc_netsim::{Connectivity, HostId, Sim, SimDuration};
use std::collections::HashMap;

/// How a hub↔hub overlay edge is realised — the legend of Fig 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Normal connection, both directions possible.
    Bidirectional,
    /// Connection possible in one direction only (drawn as an arrow in the
    /// IbisDeploy GUI, "possibly due to a firewall or NAT").
    OneWay,
    /// Automatically created SSH tunnel (drawn as a red line): direct setup
    /// failed both ways but the peer's front-end accepts SSH.
    SshTunnel,
    /// No pairwise connectivity at all; traffic between these hubs is
    /// itself relayed via a third hub.
    Indirect,
}

/// A deployed overlay: one hub per participating site.
pub struct Overlay {
    hubs: Vec<HubInfo>,
    by_site: HashMap<SiteId, HubInfo>,
    probe: MembershipProbe,
}

impl Overlay {
    /// Start one hub per `(site, host)` pair inside the simulation. The
    /// first entry seeds the others (in IbisDeploy this is the hub started
    /// next to the user's client machine).
    pub fn deploy(
        sim: &mut Sim,
        placements: &[(SiteId, HostId)],
        gossip_interval: SimDuration,
        gossip_rounds: u64,
    ) -> Overlay {
        assert!(!placements.is_empty(), "overlay needs at least one hub");
        let probe: MembershipProbe = Default::default();
        let mut hubs = Vec::new();
        let mut by_site = HashMap::new();
        let mut seed: Option<HubInfo> = None;
        for (site, host) in placements {
            let name = format!("s{}", site.0);
            let seeds = seed.into_iter().collect();
            let actor = sim.add_actor(
                *host,
                Box::new(
                    HubActor::new(name, seeds, gossip_interval, gossip_rounds)
                        .with_probe(probe.clone()),
                ),
            );
            let info = HubInfo { actor, host: *host };
            if seed.is_none() {
                seed = Some(info);
            }
            hubs.push(info);
            by_site.insert(*site, info);
        }
        Overlay { hubs, by_site, probe }
    }

    /// All hubs.
    pub fn hubs(&self) -> &[HubInfo] {
        &self.hubs
    }

    /// The hub serving a site.
    pub fn hub_for(&self, site: SiteId) -> Option<HubInfo> {
        self.by_site.get(&site).copied()
    }

    /// The membership probe (for convergence checks).
    pub fn probe(&self) -> &MembershipProbe {
        &self.probe
    }

    /// True once every hub knows every other hub.
    pub fn converged(&self) -> bool {
        let views = self.probe.borrow();
        self.hubs.len() <= 1
            || (views.len() == self.hubs.len()
                && views.values().all(|v| v.len() == self.hubs.len()))
    }

    /// The hub chain for relaying data from `from_site` to `to_site`:
    /// source-side hub first, then the target-side hub (omitted when they
    /// coincide). Returns an empty chain when either site has no hub.
    pub fn relay_route(&self, from_site: SiteId, to_site: SiteId) -> Vec<HubInfo> {
        match (self.hub_for(from_site), self.hub_for(to_site)) {
            (Some(a), Some(b)) if a.actor == b.actor => vec![a],
            (Some(a), Some(b)) => vec![a, b],
            _ => Vec::new(),
        }
    }

    /// Classify every hub pair for the monitoring view.
    pub fn view(&self, topo: &mut Topology) -> OverlayView {
        let mut edges = Vec::new();
        for (i, a) in self.hubs.iter().enumerate() {
            for b in self.hubs.iter().skip(i + 1) {
                let ab = topo.connectivity(a.host, b.host);
                let ba = topo.connectivity(b.host, a.host);
                let kind = match (ab, ba) {
                    (Connectivity::Direct, Connectivity::Direct) => EdgeKind::Bidirectional,
                    (Connectivity::Direct, _) | (_, Connectivity::Direct) => EdgeKind::OneWay,
                    _ => {
                        // SmartSockets falls back to ssh tunnels when a
                        // front-end still runs sshd.
                        if topo.host(a.host).front_end || topo.host(b.host).front_end {
                            EdgeKind::SshTunnel
                        } else {
                            EdgeKind::Indirect
                        }
                    }
                };
                edges.push(OverlayEdge {
                    a: topo.host(a.host).name.clone(),
                    b: topo.host(b.host).name.clone(),
                    kind,
                });
            }
        }
        OverlayView { edges }
    }
}

/// One classified hub↔hub edge.
#[derive(Clone, Debug)]
pub struct OverlayEdge {
    /// Host name of one hub.
    pub a: String,
    /// Host name of the other hub.
    pub b: String,
    /// How the edge is realised.
    pub kind: EdgeKind,
}

/// The hub mesh as IbisDeploy's GUI would draw it (Fig 10, top-right).
#[derive(Clone, Debug)]
pub struct OverlayView {
    /// All hub pairs with their edge classification.
    pub edges: Vec<OverlayEdge>,
}

impl OverlayView {
    /// Render an ASCII rendition of the overlay.
    pub fn render(&self) -> String {
        let mut out = String::from("SmartSockets overlay:\n");
        for e in &self.edges {
            let marker = match e.kind {
                EdgeKind::Bidirectional => "<-->",
                EdgeKind::OneWay => "--->",
                EdgeKind::SshTunnel => "<=ssh=>",
                EdgeKind::Indirect => "~~~~",
            };
            out.push_str(&format!("  {} {} {}\n", e.a, marker, e.b));
        }
        out
    }

    /// Count edges of a kind.
    pub fn count(&self, kind: EdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jc_netsim::compute::CpuSpec;
    use jc_netsim::topology::HostSpec;
    use jc_netsim::{FirewallPolicy, SimConfig};

    fn jungle() -> (Sim, Vec<(SiteId, HostId)>) {
        let mut t = Topology::new();
        let open = t.add_site("open", "A'dam", FirewallPolicy::Open);
        let fw = t.add_site("firewalled", "Delft", FirewallPolicy::FirewalledInbound);
        let nat = t.add_site("nat", "Leiden", FirewallPolicy::Nat);
        t.add_link(open, fw, SimDuration::from_millis(1), 10.0, "l1");
        t.add_link(open, nat, SimDuration::from_millis(1), 10.0, "l2");
        t.add_link(fw, nat, SimDuration::from_millis(1), 10.0, "l3");
        let h_open = t.add_host(HostSpec::node("fs-open", open, CpuSpec::generic()).as_front_end());
        let h_fw = t.add_host(HostSpec::node("fs-fw", fw, CpuSpec::generic()).as_front_end());
        let h_nat = t.add_host(HostSpec::node("fs-nat", nat, CpuSpec::generic()).as_front_end());
        let placements = vec![(open, h_open), (fw, h_fw), (nat, h_nat)];
        (Sim::new(t, SimConfig::default()), placements)
    }

    #[test]
    fn deploy_and_converge() {
        let (mut sim, placements) = jungle();
        let overlay = Overlay::deploy(&mut sim, &placements, SimDuration::from_millis(20), 30);
        sim.run_to_quiescence(1_000_000);
        assert!(overlay.converged(), "gossip should converge");
    }

    #[test]
    fn view_classifies_edges() {
        let (mut sim, placements) = jungle();
        let overlay = Overlay::deploy(&mut sim, &placements, SimDuration::from_millis(20), 1);
        sim.run_to_quiescence(10_000);
        let view = overlay.view(sim.topology());
        // open<->fw: open can't dial in, fw can dial out => OneWay
        // open<->nat: OneWay; fw<->nat: no direction works; front-ends
        // present => SshTunnel
        assert_eq!(view.count(EdgeKind::OneWay), 2, "{}", view.render());
        assert_eq!(view.count(EdgeKind::SshTunnel), 1, "{}", view.render());
    }

    #[test]
    fn relay_route_endpoints() {
        let (mut sim, placements) = jungle();
        let overlay = Overlay::deploy(&mut sim, &placements, SimDuration::from_millis(20), 1);
        let r = overlay.relay_route(placements[1].0, placements[2].0);
        assert_eq!(r.len(), 2);
        let same = overlay.relay_route(placements[0].0, placements[0].0);
        assert_eq!(same.len(), 1);
    }

    #[test]
    fn single_hub_overlay_is_trivially_converged() {
        let (mut sim, placements) = jungle();
        let overlay = Overlay::deploy(&mut sim, &placements[..1], SimDuration::from_millis(20), 1);
        sim.run_to_quiescence(10_000);
        assert!(overlay.converged());
    }
}
