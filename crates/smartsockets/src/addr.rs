//! Virtual addresses: location-independent endpoint names.

use jc_netsim::HostId;
use std::fmt;

/// A virtual socket address: a host plus a port number.
///
/// Real SmartSockets addresses also embed cluster and hub hints; here the
/// simulator's [`HostId`] already identifies the machine, and the hub hint
/// is resolved through the [`crate::Overlay`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtualAddress {
    /// The machine.
    pub host: HostId,
    /// Port on that machine.
    pub port: u16,
}

impl VirtualAddress {
    /// Construct an address.
    pub fn new(host: HostId, port: u16) -> VirtualAddress {
        VirtualAddress { host, port }
    }
}

impl fmt::Debug for VirtualAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vsock://h{}:{}", self.host.0, self.port)
    }
}

impl fmt::Display for VirtualAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vsock://h{}:{}", self.host.0, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let a = VirtualAddress::new(HostId(3), 8080);
        assert_eq!(a.to_string(), "vsock://h3:8080");
    }

    #[test]
    fn ordering_by_host_then_port() {
        let a = VirtualAddress::new(HostId(1), 9);
        let b = VirtualAddress::new(HostId(2), 1);
        assert!(a < b);
    }
}
