//! Virtual sockets: planned connections over the jungle.
//!
//! A [`ConnectionPlan`] decides — from the firewall policies along the path
//! and the deployed hub overlay — *how* a connection between two endpoints
//! is realised, and what its setup cost is. A [`VirtualSocket`] then sends
//! data along the planned path: directly, or as [`Relay`] envelopes through
//! the hub chain.

use crate::addr::VirtualAddress;
use crate::hub::{HubMsg, Relay};
use crate::overlay::Overlay;
use crate::stats::ConnectionStats;
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{ActorId, Connectivity, Ctx, SimDuration, Topology};
use std::any::Any;

/// How the connection is realised.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PathKind {
    /// Plain direct connection.
    Direct,
    /// Reverse connection setup (hub-mediated control, then direct data).
    Reverse,
    /// All data relayed through the hub chain.
    Relayed {
        /// Hub actors on the path, in forwarding order.
        via: Vec<ActorId>,
    },
    /// No way to reach the target (no physical route, or relay needed but
    /// no hubs deployed).
    Failed,
}

/// A planned connection between two endpoints.
#[derive(Clone, Debug)]
pub struct ConnectionPlan {
    /// Local endpoint.
    pub from: VirtualAddress,
    /// Remote endpoint.
    pub to: VirtualAddress,
    /// How data will flow.
    pub kind: PathKind,
    /// Modeled connection-establishment latency (handshakes, reverse
    /// requests, hub registration).
    pub setup_latency: SimDuration,
}

impl ConnectionPlan {
    /// Plan a connection from `from` to `to` given the topology and the
    /// deployed overlay. Mirrors SmartSockets' strategy order:
    /// direct → reverse → relay.
    pub fn plan(
        topo: &mut Topology,
        overlay: Option<&Overlay>,
        from: VirtualAddress,
        to: VirtualAddress,
    ) -> ConnectionPlan {
        let one_way = |topo: &mut Topology| {
            topo.path_latency(from.host, to.host).unwrap_or(SimDuration::ZERO)
        };
        match topo.connectivity(from.host, to.host) {
            Connectivity::Direct => {
                // One round trip of connection setup (SYN + ACK).
                let lat = one_way(topo);
                ConnectionPlan { from, to, kind: PathKind::Direct, setup_latency: lat * 2 }
            }
            Connectivity::ReverseOnly => {
                // The reverse request travels via the overlay to the target,
                // which then dials back (another RTT). Without hubs the
                // reverse request cannot be delivered.
                if overlay.is_none() {
                    return ConnectionPlan {
                        from,
                        to,
                        kind: PathKind::Failed,
                        setup_latency: SimDuration::ZERO,
                    };
                }
                let lat = one_way(topo);
                ConnectionPlan { from, to, kind: PathKind::Reverse, setup_latency: lat * 4 }
            }
            Connectivity::RelayOnly => {
                let Some(overlay) = overlay else {
                    return ConnectionPlan {
                        from,
                        to,
                        kind: PathKind::Failed,
                        setup_latency: SimDuration::ZERO,
                    };
                };
                let fs = topo.host(from.host).site;
                let ts = topo.host(to.host).site;
                let route = overlay.relay_route(fs, ts);
                if route.is_empty() {
                    return ConnectionPlan {
                        from,
                        to,
                        kind: PathKind::Failed,
                        setup_latency: SimDuration::ZERO,
                    };
                }
                let lat = one_way(topo);
                ConnectionPlan {
                    from,
                    to,
                    kind: PathKind::Relayed { via: route.iter().map(|h| h.actor).collect() },
                    setup_latency: lat * 2,
                }
            }
            Connectivity::Unreachable => ConnectionPlan {
                from,
                to,
                kind: PathKind::Failed,
                setup_latency: SimDuration::ZERO,
            },
        }
    }

    /// Record this plan's outcome into connection statistics.
    pub fn record(&self, stats: &mut ConnectionStats) {
        match &self.kind {
            PathKind::Direct => stats.direct += 1,
            PathKind::Reverse => stats.reverse += 1,
            PathKind::Relayed { .. } => stats.relayed += 1,
            PathKind::Failed => stats.failed += 1,
        }
    }

    /// Did planning succeed?
    pub fn is_usable(&self) -> bool {
        self.kind != PathKind::Failed
    }
}

/// An established virtual connection to a remote actor.
pub struct VirtualSocket {
    plan: ConnectionPlan,
    /// The destination actor messages are delivered to.
    pub remote_actor: ActorId,
    /// Bytes sent so far.
    pub bytes_sent: u64,
    /// Messages sent so far.
    pub messages_sent: u64,
}

impl VirtualSocket {
    /// Wrap a plan and its destination actor. Panics on unusable plans —
    /// callers must check [`ConnectionPlan::is_usable`] first (mirroring a
    /// connect() error).
    pub fn new(plan: ConnectionPlan, remote_actor: ActorId) -> VirtualSocket {
        assert!(plan.is_usable(), "cannot open socket on failed plan");
        VirtualSocket { plan, remote_actor, bytes_sent: 0, messages_sent: 0 }
    }

    /// The plan this socket follows.
    pub fn plan(&self) -> &ConnectionPlan {
        &self.plan
    }

    /// Send a payload of simulated size `bytes`: directly, or wrapped in
    /// [`Relay`] envelopes through the planned hub chain.
    pub fn send(&mut self, ctx: &mut Ctx<'_>, bytes: u64, class: TrafficClass, payload: impl Any) {
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        match &self.plan.kind {
            PathKind::Direct | PathKind::Reverse => {
                ctx.send_net(self.remote_actor, bytes, class, payload);
            }
            PathKind::Relayed { via } => {
                let mut chain = via.clone();
                let first = chain.remove(0);
                ctx.send_net(
                    first,
                    bytes,
                    class,
                    HubMsg::Forward(Relay {
                        to_actor: self.remote_actor,
                        to_addr: self.plan.to,
                        bytes,
                        class,
                        inner: Box::new(payload),
                        via: chain,
                    }),
                );
            }
            PathKind::Failed => unreachable!("checked in constructor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jc_netsim::compute::CpuSpec;
    use jc_netsim::topology::HostSpec;
    use jc_netsim::{FirewallPolicy, HostId, Sim, SimConfig};

    fn topo3() -> (Topology, Vec<HostId>, Vec<jc_netsim::SiteId>) {
        let mut t = Topology::new();
        let a = t.add_site("A", "", FirewallPolicy::Open);
        let b = t.add_site("B", "", FirewallPolicy::FirewalledInbound);
        let c = t.add_site("C", "", FirewallPolicy::Nat);
        t.add_link(a, b, SimDuration::from_millis(5), 1.0, "ab");
        t.add_link(a, c, SimDuration::from_millis(5), 1.0, "ac");
        t.add_link(b, c, SimDuration::from_millis(5), 1.0, "bc");
        let ha = t.add_host(HostSpec::node("ha", a, CpuSpec::generic()).as_front_end());
        let hb = t.add_host(HostSpec::node("hb", b, CpuSpec::generic()).as_front_end());
        let hc = t.add_host(HostSpec::node("hc", c, CpuSpec::generic()).as_front_end());
        (t, vec![ha, hb, hc], vec![a, b, c])
    }

    #[test]
    fn plans_follow_strategy_order() {
        let (mut t, h, _) = topo3();
        let a = VirtualAddress::new(h[0], 1);
        let b = VirtualAddress::new(h[1], 1);
        // a -> b is firewalled at b: reverse (overlay present but unused for
        // latency here). Fake overlay via None => reverse becomes Failed.
        let p = ConnectionPlan::plan(&mut t, None, a, b);
        assert_eq!(p.kind, PathKind::Failed);
        // b -> a outbound works: direct.
        let p = ConnectionPlan::plan(&mut t, None, b, a);
        assert_eq!(p.kind, PathKind::Direct);
        assert_eq!(p.setup_latency, SimDuration::from_millis(10));
    }

    #[test]
    fn relay_plan_and_delivery() {
        struct Sink(std::rc::Rc<std::cell::Cell<u32>>);
        impl jc_netsim::Actor for Sink {
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: jc_netsim::Msg) {
                if let Ok((_, v)) = crate::hub::unwrap_message::<u32>(msg) {
                    self.0.set(v);
                }
            }
        }
        struct Sender {
            sock: Option<VirtualSocket>,
        }
        impl jc_netsim::Actor for Sender {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: jc_netsim::Msg) {
                if let Some(s) = self.sock.as_mut() {
                    s.send(ctx, 512, TrafficClass::Ipl, 7u32);
                }
            }
        }

        let (t, h, sites) = topo3();
        let mut sim = Sim::new(t, SimConfig::default());
        let overlay = Overlay::deploy(
            &mut sim,
            &[(sites[0], h[0]), (sites[1], h[1]), (sites[2], h[2])],
            SimDuration::from_millis(10),
            3,
        );
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let sink = sim.add_actor(h[2], Box::new(Sink(got.clone())));
        // b (firewalled) -> c (NAT): relay only.
        let from = VirtualAddress::new(h[1], 5);
        let to = VirtualAddress::new(h[2], 5);
        let plan = ConnectionPlan::plan(sim.topology(), Some(&overlay), from, to);
        assert!(matches!(plan.kind, PathKind::Relayed { .. }), "{plan:?}");
        let sock = VirtualSocket::new(plan, sink);
        let sender = sim.add_actor(h[1], Box::new(Sender { sock: Some(sock) }));
        sim.post(sender, (), SimDuration::ZERO);
        sim.run_to_quiescence(100_000);
        assert_eq!(got.get(), 7);
    }

    #[test]
    fn reverse_plan_with_overlay() {
        let (t, h, sites) = topo3();
        let mut sim = Sim::new(t, SimConfig::default());
        let overlay = Overlay::deploy(
            &mut sim,
            &[(sites[0], h[0]), (sites[1], h[1])],
            SimDuration::from_millis(10),
            2,
        );
        let from = VirtualAddress::new(h[0], 2);
        let to = VirtualAddress::new(h[1], 2);
        let plan = ConnectionPlan::plan(sim.topology(), Some(&overlay), from, to);
        assert_eq!(plan.kind, PathKind::Reverse);
        // 4 one-way latencies of 5ms
        assert_eq!(plan.setup_latency, SimDuration::from_millis(20));
    }

    #[test]
    fn stats_record_plan_kinds() {
        let (mut t, h, _) = topo3();
        let mut stats = ConnectionStats::default();
        let a = VirtualAddress::new(h[0], 1);
        let b = VirtualAddress::new(h[1], 1);
        ConnectionPlan::plan(&mut t, None, b, a).record(&mut stats);
        ConnectionPlan::plan(&mut t, None, a, b).record(&mut stats);
        assert_eq!(stats.direct, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.total(), 2);
    }
}
