//! # jc-smartsockets — robust connectivity for the jungle
//!
//! Reproduction of SmartSockets (Maassen & Bal, HPDC'07; §3 of the paper):
//! a socket-like layer that transparently solves the connectivity problems
//! of Jungle Computing Systems — firewalls, NATs and non-routed internal
//! networks — using an overlay network of *hubs*.
//!
//! Three connection strategies, tried in order:
//!
//! 1. **Direct** — plain connection setup; works between open sites.
//! 2. **Reverse** — when the target is behind a firewall that admits no
//!    inbound connections, a *reverse connection request* is routed to the
//!    target through the hub overlay; the target then dials back out
//!    through its firewall (outbound traffic is typically allowed).
//! 3. **Relay** — when both ends are fire-walled/NATed, data permanently
//!    flows through the hub overlay.
//!
//! Hubs run on well-connected machines (cluster front-ends) and find each
//! other by anti-entropy gossip ([`hub::HubActor`]). The overlay view used
//! by the IbisDeploy GUI (Fig 10: "Red lines denote ssh tunnels
//! automatically setup, while arrows denote that a connection was only
//! possible in one direction") is rendered from [`overlay::OverlayView`].
//!
//! Connection *establishment* is planned analytically from the topology and
//! charged its modeled setup latency ([`socket::ConnectionPlan`]); data
//! *relay* genuinely flows through hub actors in the event loop. This split
//! keeps the higher layers (IPL) free of handshake state machines while
//! still exercising relay routing, gossip and failure behaviour in the
//! simulator.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod addr;
pub mod hub;
pub mod overlay;
pub mod socket;
pub mod stats;

pub use addr::VirtualAddress;
pub use hub::{HubActor, HubInfo, HubMsg, Relay};
pub use overlay::{EdgeKind, Overlay, OverlayView};
pub use socket::{ConnectionPlan, PathKind, VirtualSocket};
pub use stats::ConnectionStats;
