//! Compute devices: CPUs and GPUs with calibrated throughput.
//!
//! Kernel performance is modeled as `flops / sustained_gflops`, plus a
//! host↔device transfer charge for GPUs. The calibration constants for the
//! paper's hardware (Intel Core2 quad, GeForce 9600GT, Tesla C2050) live in
//! `jc-core::perfmodel`; this module only defines the mechanics.

use crate::time::SimDuration;

/// CPU description.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"Intel Core2 Q6600"`.
    pub model: String,
    /// Number of cores.
    pub cores: u32,
    /// Sustained double-precision GFLOP/s *per core* on the paper's kernels
    /// (not peak; calibrated).
    pub gflops_per_core: f64,
}

impl CpuSpec {
    /// Construct a CPU spec.
    pub fn new(model: impl Into<String>, cores: u32, gflops_per_core: f64) -> CpuSpec {
        assert!(cores > 0 && gflops_per_core > 0.0);
        CpuSpec { model: model.into(), cores, gflops_per_core }
    }

    /// A nondescript 4-core CPU for tests.
    pub fn generic() -> CpuSpec {
        CpuSpec::new("generic-x86", 4, 2.0)
    }

    /// Total sustained GFLOP/s with perfect scaling over `n` cores
    /// (capped at the core count).
    pub fn gflops(&self, n: u32) -> f64 {
        self.gflops_per_core * n.min(self.cores) as f64
    }
}

/// GPU description.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"NVIDIA Tesla C2050"`.
    pub model: String,
    /// Sustained GFLOP/s on the paper's kernels (calibrated).
    pub gflops: f64,
    /// Host↔device transfer bandwidth, GiB/s (PCIe generation dependent).
    pub pcie_gibps: f64,
    /// Fixed kernel-launch overhead per invocation.
    pub launch_overhead: SimDuration,
}

impl GpuSpec {
    /// Construct a GPU spec.
    pub fn new(model: impl Into<String>, gflops: f64, pcie_gibps: f64) -> GpuSpec {
        assert!(gflops > 0.0 && pcie_gibps > 0.0);
        GpuSpec {
            model: model.into(),
            gflops,
            pcie_gibps,
            launch_overhead: SimDuration::from_micros(20),
        }
    }
}

/// A device a kernel can be placed on.
#[derive(Clone, Debug, PartialEq)]
pub enum Device {
    /// Run on `threads` CPU cores of the host.
    Cpu {
        /// Number of cores used.
        threads: u32,
    },
    /// Run on GPU number `index` of the host.
    Gpu {
        /// Index into [`crate::HostSpec::gpus`].
        index: usize,
    },
}

/// Compute the virtual duration of a kernel of `flops` floating-point
/// operations on `device` of a host with the given CPU/GPUs, transferring
/// `io_bytes` across the host↔device boundary (GPU only).
pub fn kernel_time(
    cpu: &CpuSpec,
    gpus: &[GpuSpec],
    device: &Device,
    flops: f64,
    io_bytes: u64,
) -> SimDuration {
    assert!(flops >= 0.0, "negative flops");
    match device {
        Device::Cpu { threads } => {
            let gf = cpu.gflops(*threads);
            SimDuration::from_secs_f64(flops / (gf * 1e9))
        }
        Device::Gpu { index } => {
            let gpu = gpus.get(*index).expect("host has no such GPU");
            let compute = flops / (gpu.gflops * 1e9);
            let transfer = io_bytes as f64 / (gpu.pcie_gibps * 1024.0 * 1024.0 * 1024.0);
            gpu.launch_overhead + SimDuration::from_secs_f64(compute + transfer)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_scales_with_cores() {
        let cpu = CpuSpec::new("test", 4, 1.0); // 1 GFLOP/s per core
        let one = kernel_time(&cpu, &[], &Device::Cpu { threads: 1 }, 1e9, 0);
        let four = kernel_time(&cpu, &[], &Device::Cpu { threads: 4 }, 1e9, 0);
        assert_eq!(one.as_secs_f64(), 1.0);
        assert_eq!(four.as_secs_f64(), 0.25);
    }

    #[test]
    fn thread_count_capped_at_cores() {
        let cpu = CpuSpec::new("test", 2, 1.0);
        let t = kernel_time(&cpu, &[], &Device::Cpu { threads: 64 }, 1e9, 0);
        assert_eq!(t.as_secs_f64(), 0.5);
    }

    #[test]
    fn gpu_includes_transfer_and_launch() {
        let cpu = CpuSpec::generic();
        let gpu = GpuSpec::new("test-gpu", 100.0, 1.0); // 100 GFLOP/s, 1 GiB/s
        let t = kernel_time(&cpu, &[gpu], &Device::Gpu { index: 0 }, 100e9, 1 << 30);
        // 1 s compute + 1 s transfer + 20 us launch
        assert!((t.as_secs_f64() - 2.00002).abs() < 1e-4, "t = {t}");
    }

    #[test]
    #[should_panic]
    fn missing_gpu_panics() {
        let cpu = CpuSpec::generic();
        let _ = kernel_time(&cpu, &[], &Device::Gpu { index: 0 }, 1.0, 0);
    }
}
