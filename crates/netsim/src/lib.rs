//! # jc-netsim — a deterministic discrete-event simulator of a Jungle Computing System
//!
//! The paper's evaluation ran on physical infrastructure we do not have: the
//! DAS-4 multi-cluster system, the Little Green Machine GPU cluster, a laptop
//! at SC11 in Seattle, and 1G/10G lightpaths between them. This crate is the
//! substitute substrate: a discrete-event simulation of *hosts* grouped into
//! *sites*, connected by *links* with latency and bandwidth, guarded by
//! *firewall/NAT policies*, and equipped with *compute devices* (CPU cores
//! and GPUs) and *batch queues*.
//!
//! Everything above this crate — SmartSockets hubs, the IPL registry, GAT
//! adapters, the Ibis daemon and worker proxies — runs as [`Actor`]s inside
//! the event loop, executing their real protocol logic over the simulated
//! transport. A single-threaded engine plus seeded RNG makes every run
//! bit-for-bit reproducible, which the test suite exploits.
//!
//! ## Model summary
//!
//! * **Time** — virtual nanoseconds ([`SimTime`]); the engine pops events in
//!   (time, sequence) order so simultaneous events are deterministic.
//! * **Message transfer** — latency is the sum over the route's links;
//!   bandwidth cost is `bytes / bottleneck`; each link additionally keeps a
//!   `busy_until` horizon so heavy transfers serialize (store-and-forward is
//!   *not* modeled; the route is treated as a cut-through pipe, which is the
//!   right granularity for the paper's per-iteration message sizes).
//! * **Connectivity** — inbound connections to a firewalled/NATed site fail;
//!   outbound always succeed. SmartSockets' reverse-connection setup and hub
//!   relays (crate `jc-smartsockets`) are driven by exactly this check.
//! * **Compute** — [`compute::Device`] turns a floating-point operation count
//!   into virtual time; GPUs add a host↔device transfer charge.
//! * **Batch queues** — [`batch::BatchQueue`] models PBS/SGE-style node
//!   reservation with FIFO scheduling, walltime limits and reservation
//!   expiry (which kills jobs — the fault the paper says its prototype
//!   cannot yet survive).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod actor;
pub mod batch;
pub mod compute;
pub mod engine;
pub mod metrics;
pub mod time;
pub mod topology;

pub use actor::{Actor, ActorId, Msg};
pub use engine::{Ctx, Sim, SimConfig};
pub use time::{SimDuration, SimTime};
pub use topology::{
    Connectivity, FirewallPolicy, HostId, HostSpec, LinkId, LinkSpec, SiteId, Topology,
};
