//! Virtual time: nanosecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A virtual instant, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A virtual duration, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole nanoseconds.
    pub const fn from_nanos(n: u64) -> SimDuration {
        SimDuration(n)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds; panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

fn fmt_nanos(n: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if n >= 1_000_000_000 {
        write!(f, "{:.3}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        write!(f, "{:.3}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        write!(f, "{:.3}us", n as f64 / 1e3)
    } else {
        write!(f, "{n}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t + SimDuration::from_secs(1)).since(t), SimDuration::from_secs(1));
    }

    #[test]
    fn sub_saturates() {
        let a = SimTime(10);
        let b = SimTime(20);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration(10));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
