//! Batch-queue scheduler model (PBS/SGE-style).
//!
//! Grid resources in the jungle "will have to be reserved" (§2). The GAT
//! adapters submit jobs through a [`BatchQueue`]: a FIFO scheduler over a
//! fixed pool of nodes, with walltime limits. When a reservation expires
//! the job is killed — the exact fault mode the paper's prototype could not
//! recover from (§5: "If a reservation ends for a resource, and the worker
//! is killed by the scheduler, we cannot recover from this fault").

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Identifies a submitted batch job.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BatchJobId(pub u64);

/// State of a batch job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchJobState {
    /// Waiting in the queue for nodes.
    Queued,
    /// Running on its nodes.
    Running {
        /// When the job started.
        started: SimTime,
        /// When the reservation expires (job killed at this time).
        deadline: SimTime,
    },
    /// Finished voluntarily before the deadline.
    Completed,
    /// Killed by the scheduler at reservation expiry.
    KilledByScheduler,
    /// Cancelled by the user.
    Cancelled,
}

#[derive(Clone, Debug)]
struct BatchJob {
    id: BatchJobId,
    nodes: u32,
    walltime: SimDuration,
    state: BatchJobState,
}

/// What changed after [`BatchQueue::advance`] / other mutations; consumers
/// (GAT adapters) translate these into job-status callbacks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchEvent {
    /// Job left the queue and started on its nodes.
    Started(BatchJobId),
    /// Job was killed because its walltime expired.
    Killed(BatchJobId),
}

/// A FIFO batch scheduler over `total_nodes` identical nodes.
pub struct BatchQueue {
    total_nodes: u32,
    free_nodes: u32,
    queue: VecDeque<BatchJobId>,
    jobs: Vec<BatchJob>,
    default_walltime: SimDuration,
}

impl BatchQueue {
    /// Create a queue over a node pool.
    pub fn new(total_nodes: u32) -> BatchQueue {
        assert!(total_nodes > 0);
        BatchQueue {
            total_nodes,
            free_nodes: total_nodes,
            queue: VecDeque::new(),
            jobs: Vec::new(),
            default_walltime: SimDuration::from_secs(15 * 60),
        }
    }

    /// Nodes in the pool.
    pub fn total_nodes(&self) -> u32 {
        self.total_nodes
    }

    /// Currently free nodes.
    pub fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Submit a job needing `nodes` nodes for at most `walltime` (None uses
    /// the site default). Returns the id; call [`BatchQueue::advance`] to
    /// let it start.
    pub fn submit(&mut self, nodes: u32, walltime: Option<SimDuration>) -> BatchJobId {
        assert!(nodes > 0 && nodes <= self.total_nodes, "job larger than machine");
        let id = BatchJobId(self.jobs.len() as u64);
        self.jobs.push(BatchJob {
            id,
            nodes,
            walltime: walltime.unwrap_or(self.default_walltime),
            state: BatchJobState::Queued,
        });
        self.queue.push_back(id);
        id
    }

    /// Current state of a job.
    pub fn state(&self, id: BatchJobId) -> BatchJobState {
        self.jobs[id.0 as usize].state
    }

    /// Queue position of a job (0 = head), if queued.
    pub fn queue_position(&self, id: BatchJobId) -> Option<usize> {
        self.queue.iter().position(|&j| j == id)
    }

    /// Mark a running job as finished voluntarily, freeing its nodes.
    pub fn complete(&mut self, id: BatchJobId) {
        let job = &mut self.jobs[id.0 as usize];
        if let BatchJobState::Running { .. } = job.state {
            job.state = BatchJobState::Completed;
            self.free_nodes += job.nodes;
        }
    }

    /// Cancel a job (queued or running).
    pub fn cancel(&mut self, id: BatchJobId) {
        let job = &mut self.jobs[id.0 as usize];
        match job.state {
            BatchJobState::Queued => {
                job.state = BatchJobState::Cancelled;
                self.queue.retain(|&j| j != id);
            }
            BatchJobState::Running { .. } => {
                job.state = BatchJobState::Cancelled;
                self.free_nodes += job.nodes;
            }
            _ => {}
        }
    }

    /// Advance the scheduler to time `now`: kill expired reservations and
    /// start queued jobs (strict FIFO — a big job at the head blocks smaller
    /// ones behind it, like a conservative PBS configuration).
    pub fn advance(&mut self, now: SimTime) -> Vec<BatchEvent> {
        let mut events = Vec::new();
        // Reservation expiry.
        for job in &mut self.jobs {
            if let BatchJobState::Running { deadline, .. } = job.state {
                if now >= deadline {
                    job.state = BatchJobState::KilledByScheduler;
                    self.free_nodes += job.nodes;
                    events.push(BatchEvent::Killed(job.id));
                }
            }
        }
        // FIFO start.
        while let Some(&head) = self.queue.front() {
            let nodes = self.jobs[head.0 as usize].nodes;
            if nodes > self.free_nodes {
                break;
            }
            self.queue.pop_front();
            self.free_nodes -= nodes;
            let wall = self.jobs[head.0 as usize].walltime;
            self.jobs[head.0 as usize].state =
                BatchJobState::Running { started: now, deadline: now + wall };
            events.push(BatchEvent::Started(head));
        }
        events
    }

    /// Earliest future time at which [`BatchQueue::advance`] could change
    /// something (the next reservation deadline), for event scheduling.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.jobs
            .iter()
            .filter_map(|j| match j.state {
                BatchJobState::Running { deadline, .. } => Some(deadline),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_start_and_completion() {
        let mut q = BatchQueue::new(4);
        let a = q.submit(2, None);
        let b = q.submit(2, None);
        let c = q.submit(2, None);
        let ev = q.advance(SimTime::ZERO);
        assert_eq!(ev, vec![BatchEvent::Started(a), BatchEvent::Started(b)]);
        assert_eq!(q.state(c), BatchJobState::Queued);
        assert_eq!(q.queue_position(c), Some(0));
        q.complete(a);
        let ev = q.advance(SimTime(1));
        assert_eq!(ev, vec![BatchEvent::Started(c)]);
    }

    #[test]
    fn big_job_blocks_head_of_queue() {
        let mut q = BatchQueue::new(4);
        let a = q.submit(3, None);
        let big = q.submit(4, None);
        let small = q.submit(1, None);
        q.advance(SimTime::ZERO);
        assert_eq!(
            q.state(a),
            BatchJobState::Running {
                started: SimTime::ZERO,
                deadline: SimTime::ZERO + SimDuration::from_secs(900)
            }
        );
        // strict FIFO: small cannot jump over big
        assert_eq!(q.state(big), BatchJobState::Queued);
        assert_eq!(q.state(small), BatchJobState::Queued);
        assert_eq!(q.free_nodes(), 1);
    }

    #[test]
    fn reservation_expiry_kills_job() {
        let mut q = BatchQueue::new(2);
        let a = q.submit(2, Some(SimDuration::from_secs(10)));
        q.advance(SimTime::ZERO);
        assert_eq!(q.next_deadline(), Some(SimTime(10_000_000_000)));
        let ev = q.advance(SimTime(10_000_000_000));
        assert_eq!(ev, vec![BatchEvent::Killed(a)]);
        assert_eq!(q.state(a), BatchJobState::KilledByScheduler);
        assert_eq!(q.free_nodes(), 2);
    }

    #[test]
    fn cancel_queued_and_running() {
        let mut q = BatchQueue::new(2);
        let a = q.submit(2, None);
        let b = q.submit(1, None);
        q.advance(SimTime::ZERO);
        q.cancel(b); // queued
        assert_eq!(q.state(b), BatchJobState::Cancelled);
        q.cancel(a); // running
        assert_eq!(q.state(a), BatchJobState::Cancelled);
        assert_eq!(q.free_nodes(), 2);
    }

    #[test]
    #[should_panic]
    fn oversized_job_rejected() {
        let mut q = BatchQueue::new(2);
        q.submit(3, None);
    }
}
