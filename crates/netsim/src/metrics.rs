//! Traffic and load accounting for the monitoring views (Figs 10 & 11).
//!
//! The SC11 demonstration visualized, per site: IPL traffic (blue), MPI
//! traffic (orange), machine load (red bars) and memory usage (blue bars).
//! This module collects the counters those views are rendered from.

use crate::time::SimDuration;
use crate::topology::{HostId, LinkId};
use std::collections::HashMap;

/// Traffic class, used to separate middleware traffic in the visualization.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Wide-area IPL messages (daemon ↔ proxies).
    Ipl,
    /// Intra-worker MPI traffic.
    Mpi,
    /// SmartSockets control traffic (hub gossip, connection setup).
    Control,
    /// File staging (GAT pre/post-stage).
    Staging,
    /// Anything else.
    Other,
}

impl TrafficClass {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Ipl => "IPL",
            TrafficClass::Mpi => "MPI",
            TrafficClass::Control => "CTRL",
            TrafficClass::Staging => "STAGE",
            TrafficClass::Other => "OTHER",
        }
    }
}

/// Per-link, per-class byte and message counters plus per-host busy time.
#[derive(Default)]
pub struct Metrics {
    link_bytes: HashMap<(LinkId, TrafficClass), u64>,
    link_messages: HashMap<(LinkId, TrafficClass), u64>,
    host_busy: HashMap<HostId, SimDuration>,
    host_mem_used_mib: HashMap<HostId, u64>,
    messages_sent: u64,
    messages_dropped: u64,
}

impl Metrics {
    /// Record a message crossing a link.
    pub fn record_link(&mut self, link: LinkId, class: TrafficClass, bytes: u64) {
        *self.link_bytes.entry((link, class)).or_default() += bytes;
        *self.link_messages.entry((link, class)).or_default() += 1;
    }

    /// Record a sent message (any route).
    pub fn record_send(&mut self) {
        self.messages_sent += 1;
    }

    /// Record a message dropped because its destination host was down.
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Add busy (computing) time to a host, for the load bars.
    pub fn add_host_busy(&mut self, host: HostId, d: SimDuration) {
        *self.host_busy.entry(host).or_default() += d;
    }

    /// Set the memory-in-use figure for a host.
    pub fn set_host_memory(&mut self, host: HostId, mib: u64) {
        self.host_mem_used_mib.insert(host, mib);
    }

    /// Total bytes over a link for a class.
    pub fn link_bytes(&self, link: LinkId, class: TrafficClass) -> u64 {
        self.link_bytes.get(&(link, class)).copied().unwrap_or(0)
    }

    /// Total bytes over a link, all classes.
    pub fn link_bytes_total(&self, link: LinkId) -> u64 {
        self.link_bytes.iter().filter(|((l, _), _)| *l == link).map(|(_, b)| *b).sum()
    }

    /// Message count over a link for a class.
    pub fn link_messages(&self, link: LinkId, class: TrafficClass) -> u64 {
        self.link_messages.get(&(link, class)).copied().unwrap_or(0)
    }

    /// Accumulated busy time for a host.
    pub fn host_busy(&self, host: HostId) -> SimDuration {
        self.host_busy.get(&host).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Memory-in-use for a host (MiB), if reported.
    pub fn host_memory_mib(&self, host: HostId) -> Option<u64> {
        self.host_mem_used_mib.get(&host).copied()
    }

    /// Load of a host over a window: busy / window, clamped to [0, 1].
    pub fn host_load(&self, host: HostId, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        (self.host_busy(host).as_secs_f64() / window.as_secs_f64()).min(1.0)
    }

    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages dropped (destination down).
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Iterate (link, class, bytes) triples, deterministically sorted.
    pub fn link_traffic(&self) -> Vec<(LinkId, TrafficClass, u64)> {
        let mut v: Vec<_> = self.link_bytes.iter().map(|(&(l, c), &b)| (l, c, b)).collect();
        v.sort_by_key(|&(l, c, _)| (l, c.label()));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        let l = LinkId(0);
        m.record_link(l, TrafficClass::Ipl, 100);
        m.record_link(l, TrafficClass::Ipl, 50);
        m.record_link(l, TrafficClass::Mpi, 25);
        assert_eq!(m.link_bytes(l, TrafficClass::Ipl), 150);
        assert_eq!(m.link_messages(l, TrafficClass::Ipl), 2);
        assert_eq!(m.link_bytes_total(l), 175);
    }

    #[test]
    fn host_load_is_fraction_of_window() {
        let mut m = Metrics::default();
        let h = HostId(3);
        m.add_host_busy(h, SimDuration::from_secs(2));
        assert!((m.host_load(h, SimDuration::from_secs(4)) - 0.5).abs() < 1e-12);
        assert_eq!(m.host_load(h, SimDuration::ZERO), 0.0);
        // load clamps at 1
        assert_eq!(m.host_load(h, SimDuration::from_secs(1)), 1.0);
    }

    #[test]
    fn traffic_listing_sorted() {
        let mut m = Metrics::default();
        m.record_link(LinkId(1), TrafficClass::Mpi, 10);
        m.record_link(LinkId(0), TrafficClass::Ipl, 20);
        let t = m.link_traffic();
        assert_eq!(t[0].0, LinkId(0));
        assert_eq!(t[1].0, LinkId(1));
    }
}
