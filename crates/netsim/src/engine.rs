//! The discrete-event engine: event queue, actor dispatch, message
//! transfer, failure injection.

use crate::actor::{Actor, ActorId, EngineNotice, Msg};
use crate::compute::{kernel_time, Device};
use crate::metrics::{Metrics, TrafficClass};
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed; every run with the same seed and inputs is identical.
    pub seed: u64,
    /// Relative latency jitter in [0, 1): each transfer's latency is scaled
    /// by `1 + U(-jitter, jitter)`. Zero (the default) keeps tests exact.
    pub latency_jitter: f64,
    /// Record a human-readable dispatch trace (for call-sequence tests and
    /// the Fig 7 bridge trace).
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig { seed: 42, latency_jitter: 0.0, trace: false }
    }
}

enum EventKind {
    Deliver { to: ActorId, msg: Msg },
    Crash { host: HostId },
    Restore { host: HostId },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Everything the engine owns *except* the actor objects themselves, so an
/// actor can be mutably borrowed while its `Ctx` mutates the rest.
struct Inner {
    topo: Topology,
    clock: SimTime,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    metrics: Metrics,
    rng: StdRng,
    cfg: SimConfig,
    actor_host: Vec<HostId>,
    actor_alive: Vec<bool>,
    actor_names: Vec<String>,
    host_down: Vec<bool>,
    watchers: HashMap<HostId, Vec<ActorId>>,
    pending_actors: Vec<(ActorId, HostId, Box<dyn Actor>)>,
    link_busy_until: HashMap<crate::topology::LinkId, SimTime>,
    trace: Vec<String>,
}

impl Inner {
    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }

    /// Compute delivery time and account traffic for a message of `bytes`
    /// from the host of `from` to the host of `to`.
    fn transfer(
        &mut self,
        from_host: HostId,
        to_host: HostId,
        bytes: u64,
        class: TrafficClass,
    ) -> SimDuration {
        let now = self.clock;
        if from_host == to_host {
            let lat = self.topo.loopback_latency;
            let bw = self.topo.loopback_gbps * 1e9 / 8.0; // bytes/s
            return lat + SimDuration::from_secs_f64(bytes as f64 / bw);
        }
        let sa = self.topo.host(from_host).site;
        let sb = self.topo.host(to_host).site;
        let route = self
            .topo
            .route(sa, sb)
            .expect("transfer over unreachable route; callers must check connectivity");
        let mut latency = SimDuration::ZERO;
        let mut bottleneck_gbps = f64::INFINITY;
        let mut queue_delay = SimDuration::ZERO;
        if route.is_empty() {
            latency = self.topo.intra_site_latency(sa);
            bottleneck_gbps = self.topo.intra_site_gbps(sa);
        } else {
            for l in &route {
                let spec = self.topo.link(*l).clone();
                latency += spec.latency;
                bottleneck_gbps = bottleneck_gbps.min(spec.bandwidth_gbps);
                self.metrics.record_link(*l, class, bytes);
                // serialization: the link is busy for our bytes after any
                // already queued transfer finishes
                let busy = self.link_busy_until.entry(*l).or_insert(now);
                if *busy > now {
                    queue_delay = queue_delay.max(*busy - now);
                }
            }
        }
        let serialize = SimDuration::from_secs_f64(bytes as f64 / (bottleneck_gbps * 1e9 / 8.0));
        // update busy horizons
        for l in &route {
            let spec_bw = self.topo.link(*l).bandwidth_gbps;
            let occupied = SimDuration::from_secs_f64(bytes as f64 / (spec_bw * 1e9 / 8.0));
            let start = now + queue_delay;
            let entry = self.link_busy_until.entry(*l).or_insert(now);
            *entry = start + occupied;
        }
        let mut total = queue_delay + latency + serialize;
        if self.cfg.latency_jitter > 0.0 {
            use rand::Rng;
            let j = self.rng.gen_range(-self.cfg.latency_jitter..self.cfg.latency_jitter);
            total = SimDuration::from_secs_f64(total.as_secs_f64() * (1.0 + j));
        }
        total
    }
}

/// The simulator: topology + event queue + actors.
pub struct Sim {
    inner: Inner,
    actors: Vec<Option<Box<dyn Actor>>>,
}

impl Sim {
    /// Create a simulator over a topology.
    pub fn new(topo: Topology, cfg: SimConfig) -> Sim {
        let host_down = vec![false; topo.host_count()];
        Sim {
            inner: Inner {
                topo,
                clock: SimTime::ZERO,
                queue: BinaryHeap::new(),
                seq: 0,
                metrics: Metrics::default(),
                rng: StdRng::seed_from_u64(cfg.seed),
                cfg,
                actor_host: Vec::new(),
                actor_alive: Vec::new(),
                actor_names: Vec::new(),
                host_down,
                watchers: HashMap::new(),
                pending_actors: Vec::new(),
                link_busy_until: HashMap::new(),
                trace: Vec::new(),
            },
            actors: Vec::new(),
        }
    }

    /// Install an actor on a host; runs its `on_start` immediately.
    pub fn add_actor(&mut self, host: HostId, actor: Box<dyn Actor>) -> ActorId {
        let id = self.install(host, actor);
        self.start_actor(id);
        self.install_pending();
        id
    }

    fn install(&mut self, host: HostId, actor: Box<dyn Actor>) -> ActorId {
        assert!((host.0 as usize) < self.inner.host_down.len(), "unknown host");
        let id = ActorId(self.actors.len() as u32);
        self.inner.actor_host.push(host);
        self.inner.actor_alive.push(true);
        self.inner.actor_names.push(actor.name());
        self.actors.push(Some(actor));
        id
    }

    fn start_actor(&mut self, id: ActorId) {
        let mut a = self.actors[id.0 as usize].take().expect("actor busy");
        {
            let mut ctx = Ctx { inner: &mut self.inner, self_id: id };
            a.on_start(&mut ctx);
        }
        self.actors[id.0 as usize] = Some(a);
    }

    fn install_pending(&mut self) {
        while !self.inner.pending_actors.is_empty() {
            let pend = std::mem::take(&mut self.inner.pending_actors);
            for (id, host, actor) in pend {
                debug_assert_eq!(id.0 as usize, self.actors.len());
                let real = self.install(host, actor);
                debug_assert_eq!(real, id);
                self.start_actor(id);
            }
        }
    }

    /// Schedule an initial message to an actor.
    pub fn post(&mut self, to: ActorId, payload: impl Any, after: SimDuration) {
        let time = self.inner.clock + after;
        self.inner.push_event(time, EventKind::Deliver { to, msg: Msg::new(None, payload) });
    }

    /// Schedule a host crash at an absolute time.
    pub fn crash_host_at(&mut self, host: HostId, at: SimTime) {
        self.inner.push_event(at, EventKind::Crash { host });
    }

    /// Schedule a host restore at an absolute time: the node comes back
    /// up *empty* — actors that died in the crash stay dead; a recovery
    /// layer re-places fresh ones (see `jc_core`'s failover demo).
    pub fn restore_host_at(&mut self, host: HostId, at: SimTime) {
        self.inner.push_event(at, EventKind::Restore { host });
    }

    /// Restore a host immediately (failure-recovery injection).
    pub fn restore_host_now(&mut self, host: HostId) {
        self.restore(host);
    }

    /// Is a host currently down?
    pub fn host_is_down(&self, host: HostId) -> bool {
        self.inner.host_down[host.0 as usize]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.clock
    }

    /// Topology access.
    pub fn topology(&mut self) -> &mut Topology {
        &mut self.inner.topo
    }

    /// Metrics access.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Split borrow for the monitoring views: mutable topology (routing
    /// queries mutate the route cache) plus shared metrics.
    pub fn monitor_parts(&mut self) -> (&mut Topology, &Metrics) {
        (&mut self.inner.topo, &self.inner.metrics)
    }

    /// Dispatch trace (empty unless `cfg.trace`).
    pub fn trace(&self) -> &[String] {
        &self.inner.trace
    }

    /// Is the queue empty?
    pub fn is_idle(&self) -> bool {
        self.inner.queue.is_empty()
    }

    /// Run until the event queue is empty or `max_events` dispatches have
    /// happened. Returns the number of dispatches.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            if !self.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Run until virtual time `t` (events at exactly `t` included).
    /// Returns the number of dispatches.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        let mut n = 0;
        loop {
            match self.inner.queue.peek() {
                Some(Reverse(e)) if e.time <= t => {
                    self.step();
                    n += 1;
                }
                _ => break,
            }
        }
        if self.inner.clock < t {
            self.inner.clock = t;
        }
        n
    }

    /// Pop and dispatch one event. Returns false when idle.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.inner.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.inner.clock, "time went backwards");
        self.inner.clock = ev.time;
        match ev.kind {
            EventKind::Deliver { to, msg } => self.deliver(to, msg),
            EventKind::Crash { host } => self.crash(host),
            EventKind::Restore { host } => self.restore(host),
        }
        self.install_pending();
        true
    }

    fn deliver(&mut self, to: ActorId, msg: Msg) {
        let idx = to.0 as usize;
        if idx >= self.actors.len() || !self.inner.actor_alive[idx] {
            self.inner.metrics.record_drop();
            return;
        }
        if self.inner.cfg.trace {
            let entry = format!(
                "{} -> {} [{}]",
                self.inner.clock,
                self.inner.actor_names[idx],
                msg.from
                    .map(|f| self.inner.actor_names[f.0 as usize].clone())
                    .unwrap_or_else(|| "timer".into())
            );
            self.inner.trace.push(entry);
        }
        let mut a = self.actors[idx].take().expect("re-entrant dispatch");
        {
            let mut ctx = Ctx { inner: &mut self.inner, self_id: to };
            a.handle(&mut ctx, msg);
        }
        self.actors[idx] = Some(a);
    }

    fn crash(&mut self, host: HostId) {
        if self.inner.host_down[host.0 as usize] {
            return;
        }
        self.inner.host_down[host.0 as usize] = true;
        // Final notice to local actors, then mark dead.
        let locals: Vec<ActorId> = (0..self.actors.len())
            .filter(|&i| self.inner.actor_host[i] == host && self.inner.actor_alive[i])
            .map(|i| ActorId(i as u32))
            .collect();
        for id in &locals {
            self.deliver(*id, Msg::new(None, EngineNotice::HostCrashed));
            self.inner.actor_alive[id.0 as usize] = false;
        }
        // Notify watchers elsewhere.
        if let Some(watchers) = self.inner.watchers.get(&host).cloned() {
            for w in watchers {
                if self.inner.actor_alive.get(w.0 as usize).copied().unwrap_or(false) {
                    self.deliver(w, Msg::new(None, EngineNotice::WatchedHostCrashed(host)));
                }
            }
        }
    }

    /// Bring a crashed host back up, empty: deliveries to it succeed
    /// again, but its dead actors stay dead (their state went with the
    /// node — a recovery layer places fresh actors and restores model
    /// state from a checkpoint).
    fn restore(&mut self, host: HostId) {
        self.inner.host_down[host.0 as usize] = false;
    }
}

/// The capabilities an actor gets while handling a message.
pub struct Ctx<'a> {
    inner: &'a mut Inner,
    self_id: ActorId,
}

impl<'a> Ctx<'a> {
    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.clock
    }

    /// Host this actor runs on.
    pub fn host(&self) -> HostId {
        self.inner.actor_host[self.self_id.0 as usize]
    }

    /// Host a given actor runs on.
    pub fn host_of(&self, a: ActorId) -> HostId {
        self.inner.actor_host[a.0 as usize]
    }

    /// Topology (routing, connectivity checks).
    pub fn topo(&mut self) -> &mut Topology {
        &mut self.inner.topo
    }

    /// Deterministic RNG for protocol randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner.rng
    }

    /// Metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.inner.metrics
    }

    /// Send `payload` of `bytes` simulated size to another actor over the
    /// network, tagged with a traffic class. Delivery is scheduled after the
    /// modeled transfer time; if the destination host is already down, the
    /// sender gets an [`EngineNotice::DeliveryFailed`] instead.
    pub fn send_net(&mut self, to: ActorId, bytes: u64, class: TrafficClass, payload: impl Any) {
        self.inner.metrics.record_send();
        let from_host = self.host();
        let to_host = self.inner.actor_host[to.0 as usize];
        if self.inner.host_down[to_host.0 as usize] {
            let t = self.inner.clock + self.inner.topo.loopback_latency;
            let me = self.self_id;
            self.inner.push_event(
                t,
                EventKind::Deliver {
                    to: me,
                    msg: Msg::new(None, EngineNotice::DeliveryFailed { to }),
                },
            );
            self.inner.metrics.record_drop();
            return;
        }
        let d = self.inner.transfer(from_host, to_host, bytes, class);
        let t = self.inner.clock + d;
        let from = Some(self.self_id);
        self.inner.push_event(
            t,
            EventKind::Deliver { to, msg: Msg { from, payload: Box::new(payload) } },
        );
    }

    /// Schedule a message to self after a delay (a timer).
    pub fn schedule_self(&mut self, after: SimDuration, payload: impl Any) {
        let t = self.inner.clock + after;
        let me = self.self_id;
        self.inner.push_event(t, EventKind::Deliver { to: me, msg: Msg::new(None, payload) });
    }

    /// Schedule a message to another actor after a delay without modeling
    /// network transfer (engine-internal coordination; use sparingly).
    pub fn schedule_for(&mut self, to: ActorId, after: SimDuration, payload: impl Any) {
        let t = self.inner.clock + after;
        self.inner
            .push_event(t, EventKind::Deliver { to, msg: Msg::new(Some(self.self_id), payload) });
    }

    /// Model a kernel execution on this actor's host: returns the modeled
    /// duration, charges host busy time, and can be combined with
    /// [`Ctx::schedule_self`] to signal completion.
    pub fn compute(&mut self, device: &Device, flops: f64, io_bytes: u64) -> SimDuration {
        let host = self.host();
        let spec = self.inner.topo.host(host).clone();
        let d = kernel_time(&spec.cpu, &spec.gpus, device, flops, io_bytes);
        self.inner.metrics.add_host_busy(host, d);
        d
    }

    /// Subscribe to crash notifications for a host.
    pub fn watch_host(&mut self, host: HostId) {
        self.inner.watchers.entry(host).or_default().push(self.self_id);
    }

    /// Spawn a new actor on a host. The actor is installed (and `on_start`
    /// runs) right after the current handler returns, at the same virtual
    /// time.
    pub fn spawn(&mut self, host: HostId, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId((self.inner.actor_host.len() + self.inner.pending_actors.len()) as u32);
        self.inner.pending_actors.push((id, host, actor));
        id
    }

    /// Is a host down?
    pub fn host_is_down(&self, host: HostId) -> bool {
        self.inner.host_down[host.0 as usize]
    }

    /// Is an actor still alive?
    pub fn actor_alive(&self, a: ActorId) -> bool {
        self.inner.actor_alive.get(a.0 as usize).copied().unwrap_or(false)
    }

    /// Crash a host now (failure injection from inside the simulation).
    pub fn crash_host(&mut self, host: HostId, after: SimDuration) {
        let t = self.inner.clock + after;
        self.inner.push_event(t, EventKind::Crash { host });
    }

    /// Terminate an actor: it stops receiving deliveries. No-op for
    /// actors spawned in this same handler invocation (still pending
    /// install).
    pub fn kill_actor(&mut self, a: ActorId) {
        if let Some(alive) = self.inner.actor_alive.get_mut(a.0 as usize) {
            *alive = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::CpuSpec;
    use crate::topology::{FirewallPolicy, HostSpec};

    struct Echo {
        got: Vec<u32>,
        reply_to: Option<ActorId>,
    }

    impl Actor for Echo {
        fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
            if let Ok((_, v)) = msg.downcast::<u32>() {
                self.got.push(v);
                if let Some(peer) = self.reply_to {
                    ctx.send_net(peer, 100, TrafficClass::Other, v + 1);
                }
            }
        }
        fn name(&self) -> String {
            "echo".into()
        }
    }

    fn sim_with_two_hosts() -> (Sim, HostId, HostId) {
        let mut t = Topology::new();
        let a = t.add_site("A", "", FirewallPolicy::Open);
        let b = t.add_site("B", "", FirewallPolicy::Open);
        t.add_link(a, b, SimDuration::from_millis(10), 1.0, "wan");
        let ha = t.add_host(HostSpec::node("a0", a, CpuSpec::generic()));
        let hb = t.add_host(HostSpec::node("b0", b, CpuSpec::generic()));
        (Sim::new(t, SimConfig::default()), ha, hb)
    }

    #[test]
    fn message_takes_latency_plus_serialization() {
        let (mut sim, ha, hb) = sim_with_two_hosts();
        let a = sim.add_actor(ha, Box::new(Echo { got: vec![], reply_to: None }));
        let b = sim.add_actor(hb, Box::new(Echo { got: vec![], reply_to: Some(a) }));
        sim.post(b, 7u32, SimDuration::ZERO);
        sim.run_to_quiescence(100);
        // b got 7 at ~0, replied 8 to a after one WAN hop (10 ms + tiny)
        assert!(sim.now().as_secs_f64() > 0.010);
        assert!(sim.now().as_secs_f64() < 0.012);
    }

    #[test]
    fn ping_pong_is_deterministic() {
        let run = || {
            let (mut sim, ha, hb) = sim_with_two_hosts();
            let a = sim.add_actor(ha, Box::new(Echo { got: vec![], reply_to: None }));
            let b = sim.add_actor(hb, Box::new(Echo { got: vec![], reply_to: Some(a) }));
            sim.post(b, 1u32, SimDuration::ZERO);
            sim.run_to_quiescence(100);
            sim.now().as_nanos()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn restored_host_accepts_fresh_actors() {
        let (mut sim, ha, hb) = sim_with_two_hosts();
        let a = sim.add_actor(ha, Box::new(Echo { got: vec![], reply_to: None }));
        let _b = sim.add_actor(hb, Box::new(Echo { got: vec![], reply_to: Some(a) }));
        sim.crash_host_at(hb, SimTime(1));
        sim.run_to_quiescence(100);
        assert!(sim.host_is_down(hb));
        sim.restore_host_now(hb);
        assert!(!sim.host_is_down(hb));
        // the node is back but empty; a freshly placed actor serves again
        let b2 = sim.add_actor(hb, Box::new(Echo { got: vec![], reply_to: Some(a) }));
        sim.post(b2, 5u32, SimDuration::ZERO);
        sim.run_to_quiescence(100);
        // b2 echoed back to a over the WAN: one 10 ms hop elapsed
        assert!(sim.now().as_secs_f64() > 0.010, "{:?}", sim.now());
    }

    #[test]
    fn crash_drops_messages_and_notifies_watcher() {
        struct Watcher {
            saw_crash: bool,
            target: HostId,
        }
        impl Actor for Watcher {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.watch_host(self.target);
            }
            fn handle(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
                if let Ok((_, EngineNotice::WatchedHostCrashed(_))) = msg.downcast::<EngineNotice>()
                {
                    self.saw_crash = true;
                }
            }
        }
        let (mut sim, ha, hb) = sim_with_two_hosts();
        let _w = sim.add_actor(ha, Box::new(Watcher { saw_crash: false, target: hb }));
        let e = sim.add_actor(hb, Box::new(Echo { got: vec![], reply_to: None }));
        sim.crash_host_at(hb, SimTime(1));
        sim.post(e, 9u32, SimDuration::from_secs(1));
        sim.run_to_quiescence(100);
        assert_eq!(sim.metrics().messages_dropped(), 1);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut sim, _, _) = sim_with_two_hosts();
        sim.run_until(SimTime(5_000));
        assert_eq!(sim.now(), SimTime(5_000));
    }

    #[test]
    fn compute_charges_busy_time() {
        struct Cruncher;
        impl Actor for Cruncher {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                let d = ctx.compute(&Device::Cpu { threads: 1 }, 2.0e9, 0);
                assert_eq!(d.as_secs_f64(), 1.0); // generic cpu: 2 GFLOP/s/core
            }
        }
        let (mut sim, ha, _) = sim_with_two_hosts();
        let c = sim.add_actor(ha, Box::new(Cruncher));
        sim.post(c, (), SimDuration::ZERO);
        sim.run_to_quiescence(10);
        assert_eq!(sim.metrics().host_busy(ha).as_secs_f64(), 1.0);
    }

    #[test]
    fn spawn_from_handler_installs_actor() {
        struct Spawner {
            child_host: HostId,
        }
        struct Child;
        impl Actor for Child {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule_self(SimDuration::from_secs(1), 42u32);
            }
            fn handle(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
        }
        impl Actor for Spawner {
            fn handle(&mut self, ctx: &mut Ctx<'_>, _msg: Msg) {
                ctx.spawn(self.child_host, Box::new(Child));
            }
        }
        let (mut sim, ha, hb) = sim_with_two_hosts();
        let s = sim.add_actor(ha, Box::new(Spawner { child_host: hb }));
        sim.post(s, (), SimDuration::ZERO);
        sim.run_to_quiescence(10);
        assert_eq!(sim.now(), SimTime(1_000_000_000));
    }
}
