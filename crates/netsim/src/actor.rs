//! Actors: the unit of concurrency inside the simulated jungle.
//!
//! Every protocol participant — a SmartSockets hub, an IPL registry, a GAT
//! broker, an Ibis daemon, a worker proxy — is an [`Actor`] pinned to a
//! simulated host. Actors communicate exclusively by messages scheduled
//! through the engine, which is what makes runs deterministic.

use crate::engine::Ctx;
use std::any::Any;
use std::fmt;

/// Identifies an actor inside one [`crate::Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

impl fmt::Debug for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A message delivered to an actor.
///
/// The payload is dynamically typed: each layer of the stack defines its own
/// message enums and downcasts on receipt (the same role Java serialization
/// plays in the real Ibis). `from` is `None` for self-scheduled timers and
/// engine notifications.
pub struct Msg {
    /// Sending actor, if any.
    pub from: Option<ActorId>,
    /// Opaque payload; receivers downcast to their protocol type.
    pub payload: Box<dyn Any>,
}

impl Msg {
    /// Build a message with a payload.
    pub fn new(from: Option<ActorId>, payload: impl Any) -> Msg {
        Msg { from, payload: Box::new(payload) }
    }

    /// Try to take the payload as a `T`, returning the message back on
    /// type mismatch so callers can try another protocol.
    pub fn downcast<T: Any>(self) -> Result<(Option<ActorId>, T), Msg> {
        let Msg { from, payload } = self;
        match payload.downcast::<T>() {
            Ok(p) => Ok((from, *p)),
            Err(payload) => Err(Msg { from, payload }),
        }
    }

    /// Peek at the payload type without consuming.
    pub fn is<T: Any>(&self) -> bool {
        self.payload.is::<T>()
    }
}

impl fmt::Debug for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Msg{{from: {:?}}}", self.from)
    }
}

/// Engine-generated notifications actors may receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineNotice {
    /// The host this actor is placed on has crashed; the actor will receive
    /// no further messages after this one.
    HostCrashed,
    /// A host somewhere in the jungle crashed (delivered to actors that
    /// subscribed via [`Ctx::watch_host`]).
    WatchedHostCrashed(crate::topology::HostId),
    /// A previously sent reliable message could not be delivered because the
    /// destination host is down.
    DeliveryFailed {
        /// The actor the message was addressed to.
        to: ActorId,
    },
}

/// A simulation participant.
pub trait Actor {
    /// Handle one message. `ctx` provides the clock, message sending,
    /// timers, compute-time accounting and topology queries.
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg);

    /// Called once when the actor is installed; default does nothing.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Human-readable name for traces and the monitoring views.
    fn name(&self) -> String {
        "<actor>".to_string()
    }
}
