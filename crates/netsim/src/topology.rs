//! Sites, hosts, links, firewall policies and routing.

use crate::compute::{CpuSpec, GpuSpec};
use crate::time::SimDuration;
use std::collections::{BinaryHeap, HashMap};

/// Identifies a site (an administrative domain: a cluster, a cloud, a
/// laptop's home network...).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// Identifies a host within the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifies a link within the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Connectivity restrictions of a site — the reason SmartSockets exists.
///
/// The paper (§2): "Resources, especially clusters and supercomputers, are
/// usually not designed with communication to the outside world in mind,
/// resulting in non-routed networks, firewalls, NATs, and other restrictions".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FirewallPolicy {
    /// All connections allowed in both directions.
    #[default]
    Open,
    /// Inbound connection setup is refused; outbound connections work.
    /// (Typical stateful firewall.)
    FirewalledInbound,
    /// Behind a NAT: no inbound connections, and the site's hosts are not
    /// addressable from outside at all (only outbound + relays work).
    Nat,
    /// Compute nodes are on a non-routed internal network; only the
    /// designated front-end host is reachable from outside.
    NonRoutedInternal,
}

/// Description of a site.
#[derive(Clone, Debug)]
pub struct SiteSpec {
    /// Human-readable name, e.g. `"DAS-4 (VU)"`.
    pub name: String,
    /// Connectivity policy applied to inbound connection setup.
    pub firewall: FirewallPolicy,
    /// Geographic label for the monitoring map (e.g. `"Amsterdam, NL"`).
    pub location: String,
}

/// Description of a host.
#[derive(Clone, Debug)]
pub struct HostSpec {
    /// Host name, e.g. `"node042"` or `"fs0.das4.cs.vu.nl"`.
    pub name: String,
    /// Site the host belongs to.
    pub site: SiteId,
    /// CPU description.
    pub cpu: CpuSpec,
    /// Installed accelerators.
    pub gpus: Vec<GpuSpec>,
    /// Memory in GiB (used by the monitoring views).
    pub memory_gib: u32,
    /// True if this host is the site's front-end (reachable under
    /// [`FirewallPolicy::NonRoutedInternal`], and the canonical place to run
    /// a SmartSockets hub).
    pub front_end: bool,
}

impl HostSpec {
    /// Convenience constructor for an ordinary compute node.
    pub fn node(name: impl Into<String>, site: SiteId, cpu: CpuSpec) -> HostSpec {
        HostSpec {
            name: name.into(),
            site,
            cpu,
            gpus: Vec::new(),
            memory_gib: 24,
            front_end: false,
        }
    }

    /// Add a GPU.
    pub fn with_gpu(mut self, gpu: GpuSpec) -> HostSpec {
        self.gpus.push(gpu);
        self
    }

    /// Mark as front-end.
    pub fn as_front_end(mut self) -> HostSpec {
        self.front_end = true;
        self
    }

    /// Set memory size.
    pub fn with_memory_gib(mut self, m: u32) -> HostSpec {
        self.memory_gib = m;
        self
    }
}

/// A bidirectional link between two sites (or a site-internal fabric when
/// both endpoints are the same site).
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: SiteId,
    /// Other endpoint.
    pub b: SiteId,
    /// One-way latency.
    pub latency: SimDuration,
    /// Bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
    /// Label for reporting, e.g. `"transatlantic 1G lightpath"`.
    pub label: String,
}

/// Result of a connectivity check between two hosts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Connectivity {
    /// A direct connection can be set up.
    Direct,
    /// Direct setup fails, but the target can connect *back* to the source
    /// (the SmartSockets "reverse connection request" works).
    ReverseOnly,
    /// Neither direction works directly; traffic must be relayed via hubs.
    RelayOnly,
    /// The hosts are not connected by any path.
    Unreachable,
}

/// The static description of the jungle: sites, hosts and links, plus
/// latency-weighted shortest-path routing.
#[derive(Default)]
pub struct Topology {
    sites: Vec<SiteSpec>,
    hosts: Vec<HostSpec>,
    links: Vec<LinkSpec>,
    adj: HashMap<SiteId, Vec<(SiteId, LinkId)>>,
    route_cache: HashMap<(SiteId, SiteId), Option<Vec<LinkId>>>,
    /// Loopback parameters used for same-host messages: the daemon↔worker
    /// loopback socket of §5 ("over 8 Gbit/second even on a modest laptop").
    pub loopback_latency: SimDuration,
    /// Loopback bandwidth (gigabit/s).
    pub loopback_gbps: f64,
}

impl Topology {
    /// Empty topology with paper-faithful loopback defaults.
    pub fn new() -> Topology {
        Topology {
            loopback_latency: SimDuration::from_micros(15),
            loopback_gbps: 9.0,
            ..Default::default()
        }
    }

    /// Add a site, returning its id.
    pub fn add_site(
        &mut self,
        name: impl Into<String>,
        location: impl Into<String>,
        firewall: FirewallPolicy,
    ) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(SiteSpec { name: name.into(), firewall, location: location.into() });
        id
    }

    /// Add a host, returning its id.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        assert!((spec.site.0 as usize) < self.sites.len(), "unknown site");
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(spec);
        id
    }

    /// Add a link between two sites.
    pub fn add_link(
        &mut self,
        a: SiteId,
        b: SiteId,
        latency: SimDuration,
        bandwidth_gbps: f64,
        label: impl Into<String>,
    ) -> LinkId {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkSpec { a, b, latency, bandwidth_gbps, label: label.into() });
        self.adj.entry(a).or_default().push((b, id));
        self.adj.entry(b).or_default().push((a, id));
        self.route_cache.clear();
        id
    }

    /// Site lookup.
    pub fn site(&self, id: SiteId) -> &SiteSpec {
        &self.sites[id.0 as usize]
    }

    /// Host lookup.
    pub fn host(&self, id: HostId) -> &HostSpec {
        &self.hosts[id.0 as usize]
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.0 as usize]
    }

    /// All sites.
    pub fn sites(&self) -> impl Iterator<Item = (SiteId, &SiteSpec)> {
        self.sites.iter().enumerate().map(|(i, s)| (SiteId(i as u32), s))
    }

    /// All hosts.
    pub fn hosts(&self) -> impl Iterator<Item = (HostId, &HostSpec)> {
        self.hosts.iter().enumerate().map(|(i, h)| (HostId(i as u32), h))
    }

    /// All links.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &LinkSpec)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Hosts of a site.
    pub fn hosts_of(&self, site: SiteId) -> Vec<HostId> {
        self.hosts().filter(|(_, h)| h.site == site).map(|(id, _)| id).collect()
    }

    /// The front-end host of a site, if one is designated.
    pub fn front_end_of(&self, site: SiteId) -> Option<HostId> {
        self.hosts().find(|(_, h)| h.site == site && h.front_end).map(|(id, _)| id)
    }

    /// Latency-weighted shortest route between two sites, as a list of link
    /// ids. `None` if unreachable. Same-site routes are the empty list.
    pub fn route(&mut self, from: SiteId, to: SiteId) -> Option<Vec<LinkId>> {
        if from == to {
            return Some(Vec::new());
        }
        if let Some(cached) = self.route_cache.get(&(from, to)) {
            return cached.clone();
        }
        let result = self.dijkstra(from, to);
        self.route_cache.insert((from, to), result.clone());
        result
    }

    fn dijkstra(&self, from: SiteId, to: SiteId) -> Option<Vec<LinkId>> {
        // Dijkstra over sites with latency weights. Sizes are tiny (tens of
        // sites), so a BinaryHeap with lazy deletion is plenty.
        let mut dist: HashMap<SiteId, u64> = HashMap::new();
        let mut prev: HashMap<SiteId, (SiteId, LinkId)> = HashMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, SiteId)>> = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(std::cmp::Reverse((0, from)));
        while let Some(std::cmp::Reverse((d, s))) = heap.pop() {
            if s == to {
                break;
            }
            if d > *dist.get(&s).unwrap_or(&u64::MAX) {
                continue;
            }
            for &(next, link) in self.adj.get(&s).into_iter().flatten() {
                let nd = d + self.links[link.0 as usize].latency.as_nanos().max(1);
                if nd < *dist.get(&next).unwrap_or(&u64::MAX) {
                    dist.insert(next, nd);
                    prev.insert(next, (s, link));
                    heap.push(std::cmp::Reverse((nd, next)));
                }
            }
        }
        if !prev.contains_key(&to) {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, link) = prev[&cur];
            path.push(link);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// One-way latency of the route between two hosts (loopback latency for
    /// the same host, internal-fabric for the same site).
    pub fn path_latency(&mut self, from: HostId, to: HostId) -> Option<SimDuration> {
        if from == to {
            return Some(self.loopback_latency);
        }
        let (sa, sb) = (self.host(from).site, self.host(to).site);
        let route = self.route(sa, sb)?;
        let mut total = SimDuration::ZERO;
        if route.is_empty() {
            // same site: charge one internal hop if a self-link exists,
            // otherwise a fixed small fabric latency.
            total = self.intra_site_latency(sa);
        } else {
            for l in &route {
                total += self.link(*l).latency;
            }
        }
        Some(total)
    }

    /// Latency of the site-internal fabric: a self-link's latency if one was
    /// declared, else 50 µs (typical cluster interconnect).
    pub fn intra_site_latency(&self, site: SiteId) -> SimDuration {
        self.links
            .iter()
            .find(|l| l.a == site && l.b == site)
            .map(|l| l.latency)
            .unwrap_or(SimDuration::from_micros(50))
    }

    /// Bandwidth (gbps) of the site-internal fabric: self-link if declared,
    /// else 10 Gbit/s.
    pub fn intra_site_gbps(&self, site: SiteId) -> f64 {
        self.links
            .iter()
            .find(|l| l.a == site && l.b == site)
            .map(|l| l.bandwidth_gbps)
            .unwrap_or(10.0)
    }

    /// Can `from` open a connection *to* `to`? Applies the destination
    /// site's firewall policy, and the source's NAT for the reverse check.
    pub fn connectivity(&mut self, from: HostId, to: HostId) -> Connectivity {
        let (fh, th) = (self.host(from).clone(), self.host(to).clone());
        if from == to || fh.site == th.site {
            return Connectivity::Direct;
        }
        if self.route(fh.site, th.site).is_none() {
            return Connectivity::Unreachable;
        }
        let inbound_ok = |policy: FirewallPolicy, host: &HostSpec| match policy {
            FirewallPolicy::Open => true,
            FirewallPolicy::FirewalledInbound | FirewallPolicy::Nat => false,
            FirewallPolicy::NonRoutedInternal => host.front_end,
        };
        let to_policy = self.site(th.site).firewall;
        let from_policy = self.site(fh.site).firewall;
        if inbound_ok(to_policy, &th) {
            Connectivity::Direct
        } else if inbound_ok(from_policy, &fh) {
            // The target can call back to us: reverse connection setup.
            Connectivity::ReverseOnly
        } else {
            Connectivity::RelayOnly
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::CpuSpec;

    fn two_site_topo(policy_b: FirewallPolicy) -> (Topology, HostId, HostId) {
        let mut t = Topology::new();
        let a = t.add_site("A", "here", FirewallPolicy::Open);
        let b = t.add_site("B", "there", policy_b);
        t.add_link(a, b, SimDuration::from_millis(5), 1.0, "wan");
        let ha = t.add_host(HostSpec::node("a0", a, CpuSpec::generic()));
        let hb = t.add_host(HostSpec::node("b0", b, CpuSpec::generic()));
        (t, ha, hb)
    }

    #[test]
    fn open_sites_connect_directly() {
        let (mut t, ha, hb) = two_site_topo(FirewallPolicy::Open);
        assert_eq!(t.connectivity(ha, hb), Connectivity::Direct);
        assert_eq!(t.connectivity(hb, ha), Connectivity::Direct);
    }

    #[test]
    fn firewall_forces_reverse_setup() {
        let (mut t, ha, hb) = two_site_topo(FirewallPolicy::FirewalledInbound);
        assert_eq!(t.connectivity(ha, hb), Connectivity::ReverseOnly);
        // outbound from behind the firewall still works
        assert_eq!(t.connectivity(hb, ha), Connectivity::Direct);
    }

    #[test]
    fn two_firewalls_need_relay() {
        let mut t = Topology::new();
        let a = t.add_site("A", "x", FirewallPolicy::Nat);
        let b = t.add_site("B", "y", FirewallPolicy::FirewalledInbound);
        t.add_link(a, b, SimDuration::from_millis(5), 1.0, "wan");
        let ha = t.add_host(HostSpec::node("a0", a, CpuSpec::generic()));
        let hb = t.add_host(HostSpec::node("b0", b, CpuSpec::generic()));
        assert_eq!(t.connectivity(ha, hb), Connectivity::RelayOnly);
    }

    #[test]
    fn non_routed_exposes_only_front_end() {
        let mut t = Topology::new();
        let a = t.add_site("A", "x", FirewallPolicy::Open);
        let b = t.add_site("B", "y", FirewallPolicy::NonRoutedInternal);
        t.add_link(a, b, SimDuration::from_millis(5), 1.0, "wan");
        let ha = t.add_host(HostSpec::node("a0", a, CpuSpec::generic()));
        let fe = t.add_host(HostSpec::node("fs0", b, CpuSpec::generic()).as_front_end());
        let node = t.add_host(HostSpec::node("b1", b, CpuSpec::generic()));
        assert_eq!(t.connectivity(ha, fe), Connectivity::Direct);
        assert_eq!(t.connectivity(ha, node), Connectivity::ReverseOnly);
        assert_eq!(t.front_end_of(b), Some(fe));
    }

    #[test]
    fn routing_prefers_low_latency() {
        let mut t = Topology::new();
        let a = t.add_site("A", "", FirewallPolicy::Open);
        let b = t.add_site("B", "", FirewallPolicy::Open);
        let c = t.add_site("C", "", FirewallPolicy::Open);
        let slow = t.add_link(a, c, SimDuration::from_millis(100), 10.0, "direct-slow");
        let l1 = t.add_link(a, b, SimDuration::from_millis(5), 1.0, "hop1");
        let l2 = t.add_link(b, c, SimDuration::from_millis(5), 1.0, "hop2");
        assert_eq!(t.route(a, c).unwrap(), vec![l1, l2]);
        let _ = slow;
    }

    #[test]
    fn unreachable_site() {
        let mut t = Topology::new();
        let a = t.add_site("A", "", FirewallPolicy::Open);
        let b = t.add_site("B", "", FirewallPolicy::Open);
        let ha = t.add_host(HostSpec::node("a0", a, CpuSpec::generic()));
        let hb = t.add_host(HostSpec::node("b0", b, CpuSpec::generic()));
        assert_eq!(t.connectivity(ha, hb), Connectivity::Unreachable);
        assert_eq!(t.route(a, b), None);
    }

    #[test]
    fn same_host_latency_is_loopback() {
        let (mut t, ha, _) = two_site_topo(FirewallPolicy::Open);
        assert_eq!(t.path_latency(ha, ha), Some(t.loopback_latency));
    }
}
