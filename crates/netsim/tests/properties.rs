//! Property-based tests for the jungle simulator: routing sanity,
//! connectivity symmetry, event-order determinism.

use jc_netsim::compute::CpuSpec;
use jc_netsim::topology::HostSpec;
use jc_netsim::{Connectivity, FirewallPolicy, SimDuration, Topology};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = FirewallPolicy> {
    prop_oneof![
        Just(FirewallPolicy::Open),
        Just(FirewallPolicy::FirewalledInbound),
        Just(FirewallPolicy::Nat),
        Just(FirewallPolicy::NonRoutedInternal),
    ]
}

/// Build a random jungle: `n` sites in a connected random tree plus some
/// extra edges, one or two hosts per site.
fn arb_jungle() -> impl Strategy<Value = (Vec<FirewallPolicy>, Vec<(usize, usize)>, u64)> {
    (2usize..8).prop_flat_map(|n| {
        let policies = proptest::collection::vec(arb_policy(), n);
        // tree edges: parent of node i (i>=1) is in [0, i)
        let parents = proptest::collection::vec(0usize..usize::MAX, n - 1);
        (policies, parents, any::<u64>()).prop_map(move |(p, parents, seed)| {
            let edges: Vec<(usize, usize)> =
                parents.iter().enumerate().map(|(i, &raw)| (i + 1, raw % (i + 1))).collect();
            (p, edges, seed)
        })
    })
}

fn build(
    policies: &[FirewallPolicy],
    edges: &[(usize, usize)],
) -> (Topology, Vec<jc_netsim::HostId>) {
    let mut t = Topology::new();
    let sites: Vec<_> =
        policies.iter().enumerate().map(|(i, &p)| t.add_site(format!("S{i}"), "", p)).collect();
    for &(a, b) in edges {
        t.add_link(sites[a], sites[b], SimDuration::from_millis(5), 1.0, "e");
    }
    let hosts: Vec<_> = sites
        .iter()
        .map(|&s| t.add_host(HostSpec::node("h", s, CpuSpec::generic()).as_front_end()))
        .collect();
    (t, hosts)
}

proptest! {
    /// In a connected jungle every pair of hosts is at least relay-reachable:
    /// SmartSockets can always fall back to hub routing, so "Unreachable"
    /// must only occur when no physical path exists.
    #[test]
    fn connected_jungle_is_never_unreachable((policies, edges, _seed) in arb_jungle()) {
        let (mut t, hosts) = build(&policies, &edges);
        for &a in &hosts {
            for &b in &hosts {
                prop_assert_ne!(t.connectivity(a, b), Connectivity::Unreachable);
            }
        }
    }

    /// Direct connectivity implies the reverse direction is at least
    /// ReverseOnly-capable (if A can dial B, then B asking A to dial back
    /// works by construction).
    #[test]
    fn reverse_of_direct_is_never_relay((policies, edges, _seed) in arb_jungle()) {
        let (mut t, hosts) = build(&policies, &edges);
        for &a in &hosts {
            for &b in &hosts {
                if a == b { continue; }
                if t.connectivity(a, b) == Connectivity::Direct {
                    let back = t.connectivity(b, a);
                    prop_assert!(
                        back == Connectivity::Direct || back == Connectivity::ReverseOnly,
                        "a->b direct but b->a = {:?}", back
                    );
                }
            }
        }
    }

    /// Open sites on both ends always yield Direct in both directions.
    #[test]
    fn open_to_open_is_direct(edges in proptest::collection::vec((1usize..6, 0usize..6), 1..6)) {
        let n = 7;
        let policies = vec![FirewallPolicy::Open; n];
        let tree: Vec<(usize, usize)> = (1..n).map(|i| (i, (i - 1) / 2)).collect();
        let mut all = tree;
        for (a, b) in edges {
            if a < n && b < n && a != b { all.push((a, b)); }
        }
        let (mut t, hosts) = build(&policies, &all);
        for &a in &hosts {
            for &b in &hosts {
                prop_assert_eq!(t.connectivity(a, b), Connectivity::Direct);
            }
        }
    }

    /// Route latency is symmetric (links are bidirectional with equal cost).
    #[test]
    fn path_latency_symmetric((policies, edges, _seed) in arb_jungle()) {
        let (mut t, hosts) = build(&policies, &edges);
        for &a in &hosts {
            for &b in &hosts {
                let ab = t.path_latency(a, b);
                let ba = t.path_latency(b, a);
                prop_assert_eq!(ab.map(|d| d.as_nanos()), ba.map(|d| d.as_nanos()));
            }
        }
    }
}
