//! Process-level failover: real `jungle-worker` processes, a real
//! SIGKILL, a real respawn — the deploy half of the fault-tolerance
//! story (the in-process/bitwise half lives in the workspace-root
//! `failover` test).

use jc_amuse::channel::Channel;
use jc_amuse::shard::{ShardSupervisor, ShardedChannel};
use jc_amuse::worker::{Request, Response};
use jc_amuse::ModelState;
use jc_deploy::supervise::{ProcessSupervisor, WorkerSpec};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_jungle-worker")
}

#[test]
fn supervisor_spawns_connects_and_shuts_down_cleanly() {
    let specs = vec![
        WorkerSpec::new(worker_bin(), "coupling").with_shard(0, 2),
        WorkerSpec::new(worker_bin(), "coupling").with_shard(1, 2),
    ];
    let mut sup = ProcessSupervisor::new(specs, 0);
    let shards = sup.spawn_all().expect("launch worker processes");
    let mut pool = ShardedChannel::with_counts(shards, Vec::new());
    let r = pool.call(Request::Ping);
    assert!(matches!(r, Response::Ok { .. }), "{r:?}");
    let r = pool.call(Request::ComputeKick {
        targets: vec![[0.0; 3]; 5],
        source_pos: vec![[0.0, 0.0, 1.0]],
        source_mass: vec![1.0],
    });
    match r {
        Response::Accelerations { acc, .. } => assert_eq!(acc.len(), 5),
        other => panic!("{other:?}"),
    }
    drop(pool); // Stop frames end the server sessions
    sup.shutdown_all(); // reaps whatever is left, no SIGKILL needed
}

#[test]
fn killed_worker_process_is_respawned_and_reloads_state() {
    let specs = vec![WorkerSpec::new(worker_bin(), "gravity")];
    let mut sup = ProcessSupervisor::new(specs, 2);
    let mut shards = sup.spawn_all().expect("launch worker process");
    let mut ch = shards.remove(0);

    // grab the authoritative state, then murder the process (SIGKILL —
    // the jungle's native signal)
    let state = match ch.call(Request::SaveState) {
        Response::State(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(matches!(state, ModelState::Gravity { .. }));
    let addr = sup.addr(0).expect("address recorded");
    sup.kill(0);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while std::net::TcpStream::connect(addr).is_ok() {
        assert!(std::time::Instant::now() < deadline, "listener still alive after kill");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // the channel is now dead and cannot heal itself
    assert!(matches!(ch.call(Request::Ping), Response::Error(_)));
    assert!(!ch.heal());

    // the supervisor delivers a fresh process; LoadState re-establishes
    // the exact pre-kill state
    let mut fresh = sup.respawn(0).expect("respawn budget available");
    assert!(matches!(fresh.call(Request::Ping), Response::Ok { .. }));
    let r = fresh.call(Request::LoadState(state.clone()));
    assert!(matches!(r, Response::Ok { .. }), "{r:?}");
    match fresh.call(Request::SaveState) {
        Response::State(back) => assert_eq!(format!("{back:?}"), format!("{state:?}")),
        other => panic!("{other:?}"),
    }
    drop(fresh);
    drop(ch);
    sup.shutdown_all();
}
