//! Worker-process supervision: respawn dead `jungle-worker`s.
//!
//! The jungle assumption is that workers die — nodes are reclaimed,
//! reservations expire, links drop (the paper's §5 names fault
//! tolerance as the main open problem). This module is the deploy
//! layer's answer: a [`ProcessSupervisor`] owns the launch recipe
//! ([`WorkerSpec`]) for each shard of a pool and implements
//! [`jc_amuse::ShardSupervisor`], so a
//! [`jc_amuse::ShardedChannel`] whose worker process dies gets a fresh
//! process and a fresh [`SocketChannel`] to it — the coupler then
//! restores model state from its last checkpoint and replays
//! (see `jc_amuse::bridge::Bridge::iteration_recovering`).
//!
//! Rendezvous is file-based: workers are launched with
//! `--bind 127.0.0.1:0 --port-file PATH` and write their ephemeral
//! address to `PATH`; the supervisor polls that file instead of parsing
//! stdout, so the child's output stays free for logs.

use jc_amuse::channel::Channel;
use jc_amuse::reactor::{Reactor, ReactorChannel};
use jc_amuse::shard::ShardSupervisor;
use jc_amuse::SocketChannel;
use std::cell::RefCell;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The launch recipe for one worker process — everything
/// `jungle-worker` needs to rebuild the same initial conditions.
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// Path to the `jungle-worker` binary.
    pub binary: PathBuf,
    /// `--model` value (gravity / hydro / coupling / octgrav / stellar).
    pub model: String,
    /// `--stars` (cluster initial conditions; must match the coupler).
    pub stars: usize,
    /// `--gas`.
    pub gas: usize,
    /// `--gas-fraction`.
    pub gas_fraction: f64,
    /// `--seed`.
    pub seed: u64,
    /// `--shard I/K`, if the worker serves one slice of a pool.
    pub shard: Option<(usize, usize)>,
    /// `--gpu`.
    pub gpu: bool,
}

impl WorkerSpec {
    /// A spec with the `jungle-worker` defaults for the cluster knobs.
    pub fn new(binary: impl Into<PathBuf>, model: impl Into<String>) -> WorkerSpec {
        WorkerSpec {
            binary: binary.into(),
            model: model.into(),
            stars: 48,
            gas: 192,
            gas_fraction: 0.5,
            seed: 42,
            shard: None,
            gpu: false,
        }
    }

    /// Serve shard `i` of `k`.
    pub fn with_shard(mut self, i: usize, k: usize) -> WorkerSpec {
        self.shard = Some((i, k));
        self
    }

    fn command(&self, port_file: &Path) -> Command {
        let mut c = Command::new(&self.binary);
        c.arg("--model")
            .arg(&self.model)
            .arg("--bind")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(port_file)
            .arg("--stars")
            .arg(self.stars.to_string())
            .arg("--gas")
            .arg(self.gas.to_string())
            .arg("--gas-fraction")
            .arg(self.gas_fraction.to_string())
            .arg("--seed")
            .arg(self.seed.to_string());
        if let Some((i, k)) = self.shard {
            c.arg("--shard").arg(format!("{i}/{k}"));
        }
        if self.gpu {
            c.arg("--gpu");
        }
        c.stdin(Stdio::null()).stdout(Stdio::null()).stderr(Stdio::inherit());
        c
    }
}

/// One supervised slot: the running child (if any) and its last known
/// address.
struct Slot {
    child: Option<Child>,
    addr: Option<SocketAddr>,
}

/// Launches, reconnects, respawns and reaps `jungle-worker` processes —
/// the [`ShardSupervisor`] a production pool plugs into its
/// [`jc_amuse::ShardedChannel`].
pub struct ProcessSupervisor {
    specs: Vec<WorkerSpec>,
    slots: Vec<Slot>,
    /// Respawns still allowed (decremented per respawn; launch via
    /// [`ProcessSupervisor::spawn_all`] is free).
    budget: u32,
    /// How long to wait for a freshly launched worker's port file.
    pub startup_timeout: Duration,
    port_dir: PathBuf,
    /// Process-unique supervisor token, part of every rendezvous path:
    /// two supervisors in one process (parallel tests) must never read
    /// each other's port files.
    token: u64,
    /// When set, every channel handed out (initial launch and respawn
    /// alike) is a [`ReactorChannel`] registered on this shared event
    /// loop instead of a blocking [`SocketChannel`], so a
    /// [`jc_amuse::ShardedChannel`] over the pool fans out pipelined.
    reactor: Option<Rc<RefCell<Reactor>>>,
    /// When set, every channel handed out carries this retry policy
    /// (in-place resend of transient faults, optional per-request
    /// deadline) — the service layer's warm pools lease channels that
    /// must already know how to ride out a flaky link.
    retry: Option<jc_amuse::chaos::RetryPolicy>,
}

static NEXT_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl ProcessSupervisor {
    /// A supervisor over one spec per shard, allowed `max_respawns`
    /// replacement launches in total.
    pub fn new(specs: Vec<WorkerSpec>, max_respawns: u32) -> ProcessSupervisor {
        let slots = specs.iter().map(|_| Slot { child: None, addr: None }).collect();
        ProcessSupervisor {
            specs,
            slots,
            budget: max_respawns,
            startup_timeout: Duration::from_secs(10),
            port_dir: std::env::temp_dir(),
            token: NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            reactor: None,
            retry: None,
        }
    }

    /// Hand out channels armed with `retry` (applies to
    /// [`ProcessSupervisor::spawn_all`] and every later respawn alike).
    pub fn with_retry(mut self, retry: jc_amuse::chaos::RetryPolicy) -> ProcessSupervisor {
        self.retry = Some(retry);
        self
    }

    /// Hand out event-driven [`ReactorChannel`]s on `reactor` instead
    /// of blocking [`SocketChannel`]s. Applies to [`spawn_all`] and to
    /// every later [`ShardSupervisor::respawn`], so a healed pool stays
    /// on the same transport it started on.
    ///
    /// [`spawn_all`]: ProcessSupervisor::spawn_all
    pub fn with_reactor(mut self, reactor: Rc<RefCell<Reactor>>) -> ProcessSupervisor {
        self.reactor = Some(reactor);
        self
    }

    /// The last known address of shard `i`'s worker.
    pub fn addr(&self, i: usize) -> Option<SocketAddr> {
        self.slots.get(i).and_then(|s| s.addr)
    }

    /// Per-slot rendezvous path, unique per (pid, supervisor, slot).
    /// Deleted before every launch, so a respawn never reads a stale
    /// address from the previous incarnation.
    fn port_file(&self, i: usize) -> PathBuf {
        self.port_dir.join(format!("jungle-worker-{}-{}-{i}.port", std::process::id(), self.token))
    }

    /// Launch one worker process and connect to it over whichever
    /// transport this supervisor is configured for.
    fn launch(&mut self, i: usize) -> io::Result<Box<dyn Channel>> {
        let port_file = self.port_file(i);
        let _ = std::fs::remove_file(&port_file);
        let child = self.specs[i].command(&port_file).spawn()?;
        self.slots[i].child = Some(child);
        let deadline = Instant::now() + self.startup_timeout;
        let addr: SocketAddr = loop {
            match std::fs::read_to_string(&port_file) {
                Ok(s) if !s.trim().is_empty() => match s.trim().parse() {
                    Ok(a) => break a,
                    Err(e) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad port file {s:?}: {e}"),
                        ))
                    }
                },
                _ => {
                    if Instant::now() > deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "worker did not write its port file",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        let _ = std::fs::remove_file(&port_file);
        self.slots[i].addr = Some(addr);
        let name = format!("{}-{i}", self.specs[i].model);
        match &self.reactor {
            Some(r) => {
                let mut ch = ReactorChannel::connect(r, addr, name)?;
                if let Some(p) = &self.retry {
                    ch = ch.with_retry(*p);
                }
                Ok(Box::new(ch))
            }
            None => {
                let mut ch = SocketChannel::connect(addr, name)?;
                if let Some(p) = &self.retry {
                    ch = ch.with_retry(*p);
                }
                Ok(Box::new(ch))
            }
        }
    }

    /// Launch every worker and return one connected channel per spec
    /// (in spec order) — the initial pool for a
    /// [`jc_amuse::ShardedChannel`].
    pub fn spawn_all(&mut self) -> io::Result<Vec<Box<dyn Channel>>> {
        let mut out: Vec<Box<dyn Channel>> = Vec::with_capacity(self.specs.len());
        for i in 0..self.specs.len() {
            out.push(self.launch(i)?);
        }
        Ok(out)
    }

    /// Reap slot `i`'s child (kill if still running).
    fn reap(&mut self, i: usize) {
        if let Some(mut child) = self.slots[i].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Failure injection: SIGKILL worker `i` (no clean shutdown, no
    /// reply to the coupler — a node crash as the jungle delivers it).
    /// The slot stays eligible for [`ShardSupervisor::respawn`].
    pub fn kill(&mut self, i: usize) {
        self.reap(i);
        self.slots[i].addr = None;
    }

    /// Seeded failure injection: let a
    /// [`jc_amuse::chaos::FaultPlan`] pick this round's victim (or
    /// nobody) and [`ProcessSupervisor::kill`] it. Returns the slot
    /// killed, so a soak harness can log which worker the plan took
    /// down. The same `(seed, round)` always kills the same slot —
    /// process-level chaos replays exactly like transport-level chaos.
    pub fn chaos_kill(&mut self, plan: &jc_amuse::chaos::FaultPlan, round: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let victim = plan.victim(round, self.slots.len());
        self.kill(victim);
        Some(victim)
    }

    /// Ask every live worker to shut down cleanly
    /// ([`jc_amuse::worker::Request::Shutdown`] over a fresh
    /// connection), then wait for the processes — deterministic
    /// teardown instead of `SIGKILL`.
    pub fn shutdown_all(&mut self) {
        for i in 0..self.slots.len() {
            if let Some(addr) = self.slots[i].addr {
                let _ = SocketChannel::shutdown_worker(addr);
            }
            if let Some(mut child) = self.slots[i].child.take() {
                // the server exited on Shutdown; wait() must not hang,
                // but kill as a backstop for workers that never bound
                let done = child.try_wait().ok().flatten().is_some();
                if !done {
                    let deadline = Instant::now() + Duration::from_secs(5);
                    loop {
                        match child.try_wait() {
                            Ok(Some(_)) => break,
                            _ if Instant::now() > deadline => {
                                let _ = child.kill();
                                let _ = child.wait();
                                break;
                            }
                            _ => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                }
            }
        }
    }
}

impl Drop for ProcessSupervisor {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

impl ShardSupervisor for ProcessSupervisor {
    fn respawn(&mut self, shard: usize) -> Option<Box<dyn Channel>> {
        if shard >= self.specs.len() || self.budget == 0 {
            return None;
        }
        self.reap(shard);
        match self.launch(shard) {
            Ok(ch) => {
                // only a delivered replacement spends the budget — a
                // failed launch must not eat future respawns
                self.budget -= 1;
                Some(ch)
            }
            Err(e) => {
                eprintln!(
                    "supervisor: respawn of {} shard {shard} failed: {e}",
                    self.specs[shard].model
                );
                None
            }
        }
    }
}
