//! jungle-worker — serve one model kernel over TCP.
//!
//! The standalone worker process of the AMUSE deployment story: a
//! coupler (the Bridge) connects with a `SocketChannel` and drives the
//! kernel over the binary wire protocol. One process serves one worker;
//! a sharded pool is K processes plus `--shard i/K` so each holds its
//! contiguous slice of the particle range (the same split rule
//! `ShardedChannel` scatters with).
//!
//! ```text
//! jungle-worker --model gravity   --bind 127.0.0.1:7001
//! jungle-worker --model coupling  --bind 127.0.0.1:7002
//! jungle-worker --model stellar   --bind 127.0.0.1:7003 --shard 0/2
//! jungle-worker --model stellar   --bind 127.0.0.1:7004 --shard 1/2
//! ```
//!
//! Options:
//!
//! * `--model gravity|hydro|coupling|octgrav|stellar` — which kernel
//! * `--bind ADDR:PORT` — listen address (port 0 picks an ephemeral
//!   port; the chosen address is printed on stdout)
//! * `--stars N --gas N --gas-fraction F --seed S` — the embedded
//!   cluster the worker's initial conditions come from (defaults
//!   48/192/0.5/42); every worker of one simulation must use the same
//!   values or the coupler's particle counts will not line up
//! * `--shard I/K` — serve only the I-th of K contiguous particle
//!   ranges (gravity: stars, hydro: gas, stellar: the IMF slice;
//!   coupling is stateless and ignores it)
//! * `--gpu` — pick the GPU-personality kernels (PhiGRAPE-GPU/Octgrav)
//! * `--port-file PATH` — write the bound address to `PATH` once
//!   listening (the supervisor's rendezvous; stdout stays for logs)
//! * `--restarts N` — after a serve error (not a clean Stop/Shutdown),
//!   rebuild the worker from its initial conditions and serve again, up
//!   to N times — in-place self-healing for transient faults; the
//!   coupler is expected to restore model state from a checkpoint

use jc_amuse::worker::{CouplingWorker, GravityWorker, HydroWorker, ModelWorker, StellarWorker};
use jc_amuse::{shard, EmbeddedCluster, WorkerServer};
use jc_nbody::Backend;

struct Args {
    model: String,
    bind: String,
    stars: usize,
    gas: usize,
    gas_fraction: f64,
    seed: u64,
    shard: Option<(usize, usize)>,
    gpu: bool,
    port_file: Option<String>,
    restarts: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: jungle-worker --model gravity|hydro|coupling|octgrav|stellar \
         [--bind ADDR:PORT] [--stars N] [--gas N] [--gas-fraction F] [--seed S] \
         [--shard I/K] [--gpu] [--port-file PATH] [--restarts N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        model: String::new(),
        bind: "127.0.0.1:0".to_string(),
        stars: 48,
        gas: 192,
        gas_fraction: 0.5,
        seed: 42,
        shard: None,
        gpu: false,
        port_file: None,
        restarts: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--model" => args.model = value(),
            "--bind" => args.bind = value(),
            "--stars" => args.stars = value().parse().unwrap_or_else(|_| usage()),
            "--gas" => args.gas = value().parse().unwrap_or_else(|_| usage()),
            "--gas-fraction" => args.gas_fraction = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--shard" => {
                let v = value();
                let (i, k) = v.split_once('/').unwrap_or_else(|| usage());
                let (i, k): (usize, usize) = match (i.parse(), k.parse()) {
                    (Ok(i), Ok(k)) if k > 0 && i < k => (i, k),
                    _ => usage(),
                };
                args.shard = Some((i, k));
            }
            "--gpu" => args.gpu = true,
            "--port-file" => args.port_file = Some(value()),
            "--restarts" => args.restarts = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.model.is_empty() {
        usage();
    }
    args
}

/// `[start, end)` of shard `i` under the `ShardedChannel` split rule.
fn shard_range(total: usize, shard: Option<(usize, usize)>) -> (usize, usize) {
    match shard {
        None => (0, total),
        Some((i, k)) => {
            let counts = shard::partition(total, k);
            let start: usize = counts[..i].iter().sum();
            (start, start + counts[i])
        }
    }
}

fn build_worker(args: &Args) -> Box<dyn ModelWorker> {
    let cluster = EmbeddedCluster::build(args.stars, args.gas, args.gas_fraction, args.seed);
    match args.model.as_str() {
        "gravity" => {
            let (a, b) = shard_range(cluster.stars.len(), args.shard);
            let backend = if args.gpu { Backend::GpuModel } else { Backend::CpuParallel };
            Box::new(GravityWorker::new(cluster.stars.slice(a, b), backend))
        }
        "hydro" => {
            let (a, b) = shard_range(cluster.gas.len(), args.shard);
            Box::new(HydroWorker::new(cluster.gas.slice(a, b)))
        }
        "coupling" => Box::new(CouplingWorker::fi()),
        "octgrav" => Box::new(CouplingWorker::octgrav()),
        "stellar" => {
            let (a, b) = shard_range(cluster.star_masses_msun.len(), args.shard);
            Box::new(StellarWorker::new(cluster.star_masses_msun[a..b].to_vec(), 0.02))
        }
        _ => usage(),
    }
}

fn main() {
    let args = parse_args();
    let mut worker = build_worker(&args);
    let server = match WorkerServer::bind(&args.bind as &str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jungle-worker: cannot bind {}: {e}", args.bind);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("listener address");
    let shard_note = match args.shard {
        Some((i, k)) => format!(" shard {i}/{k}"),
        None => String::new(),
    };
    println!("jungle-worker serving {}{} ({}) on {addr}", args.model, shard_note, worker.name());
    if let Some(path) = &args.port_file {
        // rendezvous for ProcessSupervisor: the address, nothing else
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("jungle-worker: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    // self-healing serve loop: a serve *error* (transient I/O fault)
    // rebuilds the worker from its initial conditions and listens again
    // on the same socket; a clean Stop/Shutdown always exits
    let mut restarts_left = args.restarts;
    loop {
        match server.serve(worker.as_mut()) {
            Ok(()) => break,
            Err(e) if restarts_left > 0 => {
                restarts_left -= 1;
                eprintln!(
                    "jungle-worker: serve failed ({e}); restarting worker \
                     ({restarts_left} restart(s) left)"
                );
                worker = build_worker(&args);
            }
            Err(e) => {
                eprintln!("jungle-worker: serve failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("jungle-worker: stop requested, shutting down");
}
