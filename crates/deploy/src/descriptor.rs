//! Grid, application and experiment description files.
//!
//! These are the "small number of simple configuration files" IbisDeploy is
//! driven by. The JSON schema is kept close to what a user would actually
//! write: resources with locations, middleware lists, node counts and
//! optional GPUs; links with latency and bandwidth. Parsing goes through
//! the self-contained [`crate::json`] module and reports malformed input
//! with a field path instead of panicking.

use crate::json::{self, Value};
use std::fmt;

/// Why a descriptor failed to parse or validate.
#[derive(Clone, Debug, PartialEq)]
pub enum DescriptorError {
    /// The input was not valid JSON.
    Syntax(json::JsonError),
    /// The JSON was well-formed but did not match the schema.
    Schema {
        /// Where in the document, e.g. `resources[1].gpus[0].gflops`.
        path: String,
        /// What was wrong there.
        message: String,
    },
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::Syntax(e) => write!(f, "{e}"),
            DescriptorError::Schema { path, message } => {
                write!(f, "invalid descriptor at `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for DescriptorError {}

fn schema_err<T>(path: &str, message: impl Into<String>) -> Result<T, DescriptorError> {
    Err(DescriptorError::Schema { path: path.to_string(), message: message.into() })
}

/// Fetch a required field.
fn required<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a Value, DescriptorError> {
    match v.get(key) {
        Some(f) => Ok(f),
        None => schema_err(path, format!("missing required field `{key}`")),
    }
}

fn get_string(v: &Value, path: &str, key: &str) -> Result<String, DescriptorError> {
    let f = required(v, path, key)?;
    match f.as_str() {
        Some(s) => Ok(s.to_string()),
        None => schema_err(
            &format!("{path}.{key}"),
            format!("expected a string, found {}", f.type_name()),
        ),
    }
}

fn get_string_or(
    v: &Value,
    path: &str,
    key: &str,
    default: &str,
) -> Result<String, DescriptorError> {
    match v.get(key) {
        None => Ok(default.to_string()),
        Some(f) => match f.as_str() {
            Some(s) => Ok(s.to_string()),
            None => schema_err(
                &format!("{path}.{key}"),
                format!("expected a string, found {}", f.type_name()),
            ),
        },
    }
}

fn get_f64(v: &Value, path: &str, key: &str) -> Result<f64, DescriptorError> {
    let f = required(v, path, key)?;
    match f.as_f64() {
        Some(n) if n.is_finite() => Ok(n),
        Some(_) => schema_err(&format!("{path}.{key}"), "number must be finite"),
        None => schema_err(
            &format!("{path}.{key}"),
            format!("expected a number, found {}", f.type_name()),
        ),
    }
}

fn get_f64_or(v: &Value, path: &str, key: &str, default: f64) -> Result<f64, DescriptorError> {
    if v.get(key).is_none() {
        return Ok(default);
    }
    get_f64(v, path, key)
}

fn get_uint(v: &Value, path: &str, key: &str) -> Result<u64, DescriptorError> {
    let n = get_f64(v, path, key)?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return schema_err(
            &format!("{path}.{key}"),
            format!("expected a non-negative integer, found {n}"),
        );
    }
    Ok(n as u64)
}

fn get_uint_or(v: &Value, path: &str, key: &str, default: u64) -> Result<u64, DescriptorError> {
    if v.get(key).is_none() {
        return Ok(default);
    }
    get_uint(v, path, key)
}

fn get_u32(v: &Value, path: &str, key: &str) -> Result<u32, DescriptorError> {
    let n = get_uint(v, path, key)?;
    u32::try_from(n).map_err(|_| DescriptorError::Schema {
        path: format!("{path}.{key}"),
        message: format!("{n} is out of range (max {})", u32::MAX),
    })
}

fn get_u32_or(v: &Value, path: &str, key: &str, default: u32) -> Result<u32, DescriptorError> {
    if v.get(key).is_none() {
        return Ok(default);
    }
    get_u32(v, path, key)
}

fn get_bool_or(v: &Value, path: &str, key: &str, default: bool) -> Result<bool, DescriptorError> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => match f.as_bool() {
            Some(b) => Ok(b),
            None => schema_err(
                &format!("{path}.{key}"),
                format!("expected a boolean, found {}", f.type_name()),
            ),
        },
    }
}

fn as_object<'a>(v: &'a Value, path: &str) -> Result<&'a Value, DescriptorError> {
    if v.as_object().is_some() {
        Ok(v)
    } else {
        schema_err(path, format!("expected an object, found {}", v.type_name()))
    }
}

/// One GPU installed in every node of a resource.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuEntry {
    /// Marketing name (e.g. `"GeForce 9600GT"`).
    pub model: String,
    /// Sustained GFLOP/s on the target kernels.
    pub gflops: f64,
    /// Host↔device bandwidth, GiB/s.
    pub pcie_gibps: f64,
}

fn default_pcie() -> f64 {
    4.0
}

impl GpuEntry {
    fn from_value(v: &Value, path: &str) -> Result<GpuEntry, DescriptorError> {
        as_object(v, path)?;
        let gflops = get_f64(v, path, "gflops")?;
        if gflops <= 0.0 {
            return schema_err(&format!("{path}.gflops"), "GPU GFLOP/s must be positive");
        }
        Ok(GpuEntry {
            model: get_string(v, path, "model")?,
            gflops,
            pcie_gibps: get_f64_or(v, path, "pcie_gibps", default_pcie())?,
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("model".into(), Value::String(self.model.clone())),
            ("gflops".into(), Value::Number(self.gflops)),
            ("pcie_gibps".into(), Value::Number(self.pcie_gibps)),
        ])
    }
}

/// A resource in the user's grid file.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceEntry {
    /// Resource name, e.g. `"DAS-4 (VU)"`.
    pub name: String,
    /// Geographic label, e.g. `"Amsterdam, NL"`.
    pub location: String,
    /// Firewall policy: `"open"`, `"firewalled"`, `"nat"`, `"internal"`.
    pub firewall: String,
    /// Number of compute nodes (0 = client machine / stand-alone host).
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Sustained GFLOP/s per core.
    pub gflops_per_core: f64,
    /// GPUs per node (empty = none).
    pub gpus: Vec<GpuEntry>,
    /// Installed middleware: `"ssh"`, `"pbs"`, `"sge"`, `"globus"`,
    /// `"zorilla"`, `"local"`.
    pub middlewares: Vec<String>,
    /// Whether IbisDeploy should start a SmartSockets hub here.
    pub hub: bool,
    /// Is this the user's client machine (where the coupler runs)?
    pub client: bool,
    /// Intra-site fabric latency in microseconds.
    pub fabric_latency_us: u64,
    /// Intra-site fabric bandwidth in Gbit/s.
    pub fabric_gbps: f64,
    /// Memory per node in GiB.
    pub memory_gib: u32,
}

const FIREWALL_POLICIES: [&str; 4] = ["open", "firewalled", "nat", "internal"];

impl ResourceEntry {
    fn from_value(v: &Value, path: &str) -> Result<ResourceEntry, DescriptorError> {
        as_object(v, path)?;
        let firewall = get_string_or(v, path, "firewall", "open")?;
        if !FIREWALL_POLICIES.contains(&firewall.as_str()) {
            return schema_err(
                &format!("{path}.firewall"),
                format!(
                    "unknown firewall policy `{firewall}` (expected one of {})",
                    FIREWALL_POLICIES.join(", ")
                ),
            );
        }
        let gpus = match v.get("gpus") {
            None => Vec::new(),
            Some(g) => match g.as_array() {
                Some(items) => items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| GpuEntry::from_value(item, &format!("{path}.gpus[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?,
                None => {
                    return schema_err(
                        &format!("{path}.gpus"),
                        format!("expected an array, found {}", g.type_name()),
                    )
                }
            },
        };
        let middlewares = match v.get("middlewares") {
            None => Vec::new(),
            Some(m) => match m.as_array() {
                Some(items) => items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| {
                        item.as_str().map(str::to_string).ok_or_else(|| DescriptorError::Schema {
                            path: format!("{path}.middlewares[{i}]"),
                            message: format!("expected a string, found {}", item.type_name()),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                None => {
                    return schema_err(
                        &format!("{path}.middlewares"),
                        format!("expected an array, found {}", m.type_name()),
                    )
                }
            },
        };
        Ok(ResourceEntry {
            name: get_string(v, path, "name")?,
            location: get_string(v, path, "location")?,
            firewall,
            nodes: get_u32(v, path, "nodes")?,
            cores_per_node: get_u32_or(v, path, "cores_per_node", 4)?,
            gflops_per_core: get_f64_or(v, path, "gflops_per_core", 2.0)?,
            gpus,
            middlewares,
            hub: get_bool_or(v, path, "hub", true)?,
            client: get_bool_or(v, path, "client", false)?,
            fabric_latency_us: get_uint_or(v, path, "fabric_latency_us", 50)?,
            fabric_gbps: get_f64_or(v, path, "fabric_gbps", 10.0)?,
            memory_gib: get_u32_or(v, path, "memory_gib", 24)?,
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            ("location".into(), Value::String(self.location.clone())),
            ("firewall".into(), Value::String(self.firewall.clone())),
            ("nodes".into(), Value::Number(self.nodes as f64)),
            ("cores_per_node".into(), Value::Number(self.cores_per_node as f64)),
            ("gflops_per_core".into(), Value::Number(self.gflops_per_core)),
            ("gpus".into(), Value::Array(self.gpus.iter().map(GpuEntry::to_value).collect())),
            (
                "middlewares".into(),
                Value::Array(self.middlewares.iter().map(|m| Value::String(m.clone())).collect()),
            ),
            ("hub".into(), Value::Bool(self.hub)),
            ("client".into(), Value::Bool(self.client)),
            ("fabric_latency_us".into(), Value::Number(self.fabric_latency_us as f64)),
            ("fabric_gbps".into(), Value::Number(self.fabric_gbps)),
            ("memory_gib".into(), Value::Number(self.memory_gib as f64)),
        ])
    }
}

/// A wide-area link between two named resources.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkEntry {
    /// One endpoint (resource name).
    pub a: String,
    /// Other endpoint (resource name).
    pub b: String,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth in Gbit/s.
    pub gbps: f64,
    /// Label, e.g. `"transatlantic 1G lightpath"`.
    pub label: String,
}

impl LinkEntry {
    fn from_value(v: &Value, path: &str) -> Result<LinkEntry, DescriptorError> {
        as_object(v, path)?;
        let latency_ms = get_f64(v, path, "latency_ms")?;
        if latency_ms < 0.0 {
            return schema_err(&format!("{path}.latency_ms"), "latency cannot be negative");
        }
        let gbps = get_f64(v, path, "gbps")?;
        if gbps <= 0.0 {
            return schema_err(&format!("{path}.gbps"), "bandwidth must be positive");
        }
        Ok(LinkEntry {
            a: get_string(v, path, "a")?,
            b: get_string(v, path, "b")?,
            latency_ms,
            gbps,
            label: get_string_or(v, path, "label", "")?,
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("a".into(), Value::String(self.a.clone())),
            ("b".into(), Value::String(self.b.clone())),
            ("latency_ms".into(), Value::Number(self.latency_ms)),
            ("gbps".into(), Value::Number(self.gbps)),
            ("label".into(), Value::String(self.label.clone())),
        ])
    }
}

/// The user's grid file: everything they have access to.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct GridDescription {
    /// Resources.
    pub resources: Vec<ResourceEntry>,
    /// Wide-area links.
    pub links: Vec<LinkEntry>,
}

impl GridDescription {
    /// Parse from JSON and validate cross-references (duplicate resource
    /// names, links to unknown resources, self-links).
    pub fn from_json(s: &str) -> Result<GridDescription, DescriptorError> {
        let root = json::parse(s).map_err(DescriptorError::Syntax)?;
        as_object(&root, "$")?;
        let resources = match required(&root, "$", "resources")?.as_array() {
            Some(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| ResourceEntry::from_value(item, &format!("resources[{i}]")))
                .collect::<Result<Vec<_>, _>>()?,
            None => return schema_err("resources", "expected an array"),
        };
        let links = match root.get("links") {
            None => Vec::new(),
            Some(l) => match l.as_array() {
                Some(items) => items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| LinkEntry::from_value(item, &format!("links[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?,
                None => return schema_err("links", "expected an array"),
            },
        };
        let grid = GridDescription { resources, links };
        grid.validate()?;
        Ok(grid)
    }

    /// Cross-reference checks shared by [`Self::from_json`] and callers
    /// constructing descriptions programmatically.
    pub fn validate(&self) -> Result<(), DescriptorError> {
        if self.resources.is_empty() {
            return schema_err("resources", "a grid needs at least one resource");
        }
        for (i, r) in self.resources.iter().enumerate() {
            if r.name.is_empty() {
                return schema_err(&format!("resources[{i}].name"), "name cannot be empty");
            }
            if self.resources[..i].iter().any(|other| other.name == r.name) {
                return schema_err(
                    &format!("resources[{i}].name"),
                    format!("duplicate resource name `{}`", r.name),
                );
            }
            // Programmatically built descriptions get the same numeric
            // sanity guarantees as parsed ones.
            if !r.gflops_per_core.is_finite() || r.gflops_per_core <= 0.0 {
                return schema_err(
                    &format!("resources[{i}].gflops_per_core"),
                    "must be a positive finite number",
                );
            }
            if !r.fabric_gbps.is_finite() || r.fabric_gbps <= 0.0 {
                return schema_err(
                    &format!("resources[{i}].fabric_gbps"),
                    "must be a positive finite number",
                );
            }
            for (j, g) in r.gpus.iter().enumerate() {
                if !g.gflops.is_finite() || g.gflops <= 0.0 {
                    return schema_err(
                        &format!("resources[{i}].gpus[{j}].gflops"),
                        "must be a positive finite number",
                    );
                }
            }
        }
        if self.resources.iter().filter(|r| r.client).count() > 1 {
            return schema_err("resources", "at most one resource may be marked `client`");
        }
        for (i, l) in self.links.iter().enumerate() {
            for end in [&l.a, &l.b] {
                if self.resource(end).is_none() {
                    return schema_err(
                        &format!("links[{i}]"),
                        format!(
                            "link endpoint `{end}` does not name a resource (known: {})",
                            self.resources
                                .iter()
                                .map(|r| r.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    );
                }
            }
            if l.a == l.b {
                return schema_err(
                    &format!("links[{i}]"),
                    format!("link connects `{}` to itself", l.a),
                );
            }
            if !l.latency_ms.is_finite() || l.latency_ms < 0.0 {
                return schema_err(
                    &format!("links[{i}].latency_ms"),
                    "must be a non-negative finite number",
                );
            }
            if !l.gbps.is_finite() || l.gbps <= 0.0 {
                return schema_err(&format!("links[{i}].gbps"), "must be a positive finite number");
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        Value::Object(vec![
            (
                "resources".into(),
                Value::Array(self.resources.iter().map(ResourceEntry::to_value).collect()),
            ),
            ("links".into(), Value::Array(self.links.iter().map(LinkEntry::to_value).collect())),
        ])
        .to_pretty()
    }

    /// The client entry (the machine the user sits at).
    pub fn client(&self) -> Option<&ResourceEntry> {
        self.resources.iter().find(|r| r.client)
    }

    /// Look up a resource by name.
    pub fn resource(&self, name: &str) -> Option<&ResourceEntry> {
        self.resources.iter().find(|r| r.name == name)
    }
}

/// What to run: one model worker (the paper's step 4: "Add a property to
/// each worker created in the simulation script to specify the channel
/// used (ibis), as well as the name of the resource, and the number of
/// nodes required for this worker").
#[derive(Clone, Debug, PartialEq)]
pub struct ApplicationDescription {
    /// Worker name (e.g. `"gadget"`).
    pub name: String,
    /// Resource to run on.
    pub resource: String,
    /// Nodes required.
    pub nodes: u32,
    /// Processes per node.
    pub processes_per_node: u32,
    /// Input staging volume in bytes.
    pub stage_in_bytes: u64,
    /// Use the GPU kernel if the resource has one.
    pub use_gpu: bool,
}

impl ApplicationDescription {
    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<ApplicationDescription, DescriptorError> {
        let v = json::parse(s).map_err(DescriptorError::Syntax)?;
        ApplicationDescription::from_value(&v, "$")
    }

    fn from_value(v: &Value, path: &str) -> Result<ApplicationDescription, DescriptorError> {
        as_object(v, path)?;
        Ok(ApplicationDescription {
            name: get_string(v, path, "name")?,
            resource: get_string(v, path, "resource")?,
            nodes: get_u32(v, path, "nodes")?,
            processes_per_node: get_u32_or(v, path, "processes_per_node", 1)?,
            stage_in_bytes: get_uint_or(v, path, "stage_in_bytes", 0)?,
            use_gpu: get_bool_or(v, path, "use_gpu", false)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "resources": [
            {"name": "laptop", "location": "Seattle, WA, USA", "nodes": 0,
             "client": true, "middlewares": ["local"]},
            {"name": "DAS-4 (VU)", "location": "Amsterdam, NL",
             "nodes": 8, "cores_per_node": 8,
             "middlewares": ["pbs", "ssh"], "firewall": "firewalled",
             "gpus": [{"model": "GTX480", "gflops": 150.0}]}
        ],
        "links": [
            {"a": "laptop", "b": "DAS-4 (VU)", "latency_ms": 45.0,
             "gbps": 1.0, "label": "transatlantic 1G lightpath"}
        ]
    }"#;

    /// The grid used by `tests/jungle_stack.rs`.
    const JUNGLE_GRID: &str = r#"{
        "resources": [
            {"name": "laptop", "location": "Seattle, WA, USA", "nodes": 1,
             "client": true, "middlewares": ["local"], "firewall": "firewalled"},
            {"name": "VU", "location": "Amsterdam, NL", "nodes": 4,
             "middlewares": ["pbs", "ssh"], "firewall": "open"},
            {"name": "LGM", "location": "Leiden, NL", "nodes": 2,
             "middlewares": ["sge"], "firewall": "nat",
             "gpus": [{"model": "Tesla C2050", "gflops": 300.0}]}
        ],
        "links": [
            {"a": "laptop", "b": "VU", "latency_ms": 45.0, "gbps": 1.0,
             "label": "transatlantic"},
            {"a": "VU", "b": "LGM", "latency_ms": 1.0, "gbps": 10.0}
        ]
    }"#;

    #[test]
    fn parse_sample_grid() {
        let g = GridDescription::from_json(SAMPLE).unwrap();
        assert_eq!(g.resources.len(), 2);
        assert_eq!(g.client().unwrap().name, "laptop");
        let das = g.resource("DAS-4 (VU)").unwrap();
        assert_eq!(das.nodes, 8);
        assert_eq!(das.gpus[0].model, "GTX480");
        assert_eq!(das.gpus[0].pcie_gibps, 4.0); // default applied
        assert!(das.hub); // default applied
        assert_eq!(g.links[0].label, "transatlantic 1G lightpath");
    }

    #[test]
    fn json_round_trip() {
        let g = GridDescription::from_json(SAMPLE).unwrap();
        let again = GridDescription::from_json(&g.to_json()).unwrap();
        assert_eq!(g, again);
    }

    #[test]
    fn application_description_defaults() {
        let a = ApplicationDescription::from_json(
            r#"{"name": "sse", "resource": "DAS-4 (VU)", "nodes": 1}"#,
        )
        .unwrap();
        assert_eq!(a.processes_per_node, 1);
        assert!(!a.use_gpu);
    }

    #[test]
    fn jungle_stack_grid_parses() {
        let g = GridDescription::from_json(JUNGLE_GRID).unwrap();
        assert_eq!(g.resources.len(), 3);
        assert_eq!(g.links.len(), 2);
        assert_eq!(g.resource("LGM").unwrap().gpus[0].gflops, 300.0);
    }

    #[test]
    fn malformed_json_reports_position_not_panic() {
        let err = GridDescription::from_json("{\"resources\": [{\"name\": }]}").unwrap_err();
        match err {
            DescriptorError::Syntax(e) => assert!(e.to_string().contains("line 1"), "{e}"),
            other => panic!("expected syntax error, got {other}"),
        }
    }

    #[test]
    fn missing_required_field_names_the_path() {
        // second resource lacks `location`
        let bad = r#"{"resources": [
            {"name": "a", "location": "x", "nodes": 1},
            {"name": "b", "nodes": 2}
        ]}"#;
        let err = GridDescription::from_json(bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("resources[1]"), "{msg}");
        assert!(msg.contains("location"), "{msg}");
    }

    #[test]
    fn wrong_type_is_rejected_with_both_types_named() {
        let bad = r#"{"resources": [{"name": "a", "location": "x", "nodes": "many"}]}"#;
        let msg = GridDescription::from_json(bad).unwrap_err().to_string();
        assert!(msg.contains("nodes"), "{msg}");
        assert!(msg.contains("number") && msg.contains("string"), "{msg}");
    }

    #[test]
    fn link_to_unknown_resource_is_rejected() {
        let bad = r#"{
            "resources": [{"name": "a", "location": "x", "nodes": 1}],
            "links": [{"a": "a", "b": "ghost", "latency_ms": 1.0, "gbps": 1.0}]
        }"#;
        let msg = GridDescription::from_json(bad).unwrap_err().to_string();
        assert!(msg.contains("links[0]"), "{msg}");
        assert!(msg.contains("ghost"), "{msg}");
    }

    #[test]
    fn self_link_and_duplicate_names_are_rejected() {
        let dup = r#"{"resources": [
            {"name": "a", "location": "x", "nodes": 1},
            {"name": "a", "location": "y", "nodes": 2}
        ]}"#;
        assert!(GridDescription::from_json(dup).unwrap_err().to_string().contains("duplicate"));
        let selfy = r#"{
            "resources": [{"name": "a", "location": "x", "nodes": 1}],
            "links": [{"a": "a", "b": "a", "latency_ms": 1.0, "gbps": 1.0}]
        }"#;
        assert!(GridDescription::from_json(selfy).unwrap_err().to_string().contains("itself"));
    }

    #[test]
    fn empty_resources_are_rejected() {
        let msg = GridDescription::from_json(r#"{"resources": []}"#).unwrap_err().to_string();
        assert!(msg.contains("at least one resource"), "{msg}");
    }

    #[test]
    fn out_of_range_counts_are_rejected_not_truncated() {
        // 2^32 must not wrap to nodes == 0
        let bad = r#"{"resources": [{"name": "a", "location": "x", "nodes": 4294967296}]}"#;
        let msg = GridDescription::from_json(bad).unwrap_err().to_string();
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn programmatic_non_finite_values_fail_validate() {
        let mut g = GridDescription::from_json(JUNGLE_GRID).unwrap();
        g.links[0].gbps = f64::NAN;
        let msg = g.validate().unwrap_err().to_string();
        assert!(msg.contains("links[0].gbps"), "{msg}");
    }

    #[test]
    fn negative_bandwidth_and_fractional_nodes_are_rejected() {
        let neg = r#"{
            "resources": [
                {"name": "a", "location": "x", "nodes": 1},
                {"name": "b", "location": "y", "nodes": 1}
            ],
            "links": [{"a": "a", "b": "b", "latency_ms": 1.0, "gbps": -2.0}]
        }"#;
        assert!(GridDescription::from_json(neg).unwrap_err().to_string().contains("gbps"));
        let frac = r#"{"resources": [{"name": "a", "location": "x", "nodes": 1.5}]}"#;
        assert!(GridDescription::from_json(frac).unwrap_err().to_string().contains("integer"));
    }
}
