//! Grid, application and experiment description files.
//!
//! These are the "small number of simple configuration files" IbisDeploy is
//! driven by. The JSON schema is kept close to what a user would actually
//! write: resources with locations, middleware lists, node counts and
//! optional GPUs; links with latency and bandwidth.

use serde::{Deserialize, Serialize};

/// One GPU installed in every node of a resource.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct GpuEntry {
    /// Marketing name (e.g. `"GeForce 9600GT"`).
    pub model: String,
    /// Sustained GFLOP/s on the target kernels.
    pub gflops: f64,
    /// Host↔device bandwidth, GiB/s.
    #[serde(default = "default_pcie")]
    pub pcie_gibps: f64,
}

fn default_pcie() -> f64 {
    4.0
}

/// A resource in the user's grid file.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ResourceEntry {
    /// Resource name, e.g. `"DAS-4 (VU)"`.
    pub name: String,
    /// Geographic label, e.g. `"Amsterdam, NL"`.
    pub location: String,
    /// Firewall policy: `"open"`, `"firewalled"`, `"nat"`, `"internal"`.
    #[serde(default = "default_firewall")]
    pub firewall: String,
    /// Number of compute nodes (0 = client machine / stand-alone host).
    pub nodes: u32,
    /// Cores per node.
    #[serde(default = "default_cores")]
    pub cores_per_node: u32,
    /// Sustained GFLOP/s per core.
    #[serde(default = "default_gflops")]
    pub gflops_per_core: f64,
    /// GPUs per node (empty = none).
    #[serde(default)]
    pub gpus: Vec<GpuEntry>,
    /// Installed middleware: `"ssh"`, `"pbs"`, `"sge"`, `"globus"`,
    /// `"zorilla"`, `"local"`.
    #[serde(default)]
    pub middlewares: Vec<String>,
    /// Whether IbisDeploy should start a SmartSockets hub here.
    #[serde(default = "default_true")]
    pub hub: bool,
    /// Is this the user's client machine (where the coupler runs)?
    #[serde(default)]
    pub client: bool,
    /// Intra-site fabric latency in microseconds.
    #[serde(default = "default_fabric_us")]
    pub fabric_latency_us: u64,
    /// Intra-site fabric bandwidth in Gbit/s.
    #[serde(default = "default_fabric_gbps")]
    pub fabric_gbps: f64,
    /// Memory per node in GiB.
    #[serde(default = "default_mem")]
    pub memory_gib: u32,
}

fn default_firewall() -> String {
    "open".into()
}
fn default_cores() -> u32 {
    4
}
fn default_gflops() -> f64 {
    2.0
}
fn default_true() -> bool {
    true
}
fn default_fabric_us() -> u64 {
    50
}
fn default_fabric_gbps() -> f64 {
    10.0
}
fn default_mem() -> u32 {
    24
}

/// A wide-area link between two named resources.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct LinkEntry {
    /// One endpoint (resource name).
    pub a: String,
    /// Other endpoint (resource name).
    pub b: String,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth in Gbit/s.
    pub gbps: f64,
    /// Label, e.g. `"transatlantic 1G lightpath"`.
    #[serde(default)]
    pub label: String,
}

/// The user's grid file: everything they have access to.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Default)]
pub struct GridDescription {
    /// Resources.
    pub resources: Vec<ResourceEntry>,
    /// Wide-area links.
    pub links: Vec<LinkEntry>,
}

impl GridDescription {
    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<GridDescription, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("grid description serializes")
    }

    /// The client entry (the machine the user sits at).
    pub fn client(&self) -> Option<&ResourceEntry> {
        self.resources.iter().find(|r| r.client)
    }

    /// Look up a resource by name.
    pub fn resource(&self, name: &str) -> Option<&ResourceEntry> {
        self.resources.iter().find(|r| r.name == name)
    }
}

/// What to run: one model worker (the paper's step 4: "Add a property to
/// each worker created in the simulation script to specify the channel
/// used (ibis), as well as the name of the resource, and the number of
/// nodes required for this worker").
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ApplicationDescription {
    /// Worker name (e.g. `"gadget"`).
    pub name: String,
    /// Resource to run on.
    pub resource: String,
    /// Nodes required.
    pub nodes: u32,
    /// Processes per node.
    #[serde(default = "default_ppn")]
    pub processes_per_node: u32,
    /// Input staging volume in bytes.
    #[serde(default)]
    pub stage_in_bytes: u64,
    /// Use the GPU kernel if the resource has one.
    #[serde(default)]
    pub use_gpu: bool,
}

fn default_ppn() -> u32 {
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "resources": [
            {"name": "laptop", "location": "Seattle, WA, USA", "nodes": 0,
             "client": true, "middlewares": ["local"]},
            {"name": "DAS-4 (VU)", "location": "Amsterdam, NL",
             "nodes": 8, "cores_per_node": 8,
             "middlewares": ["pbs", "ssh"], "firewall": "firewalled",
             "gpus": [{"model": "GTX480", "gflops": 150.0}]}
        ],
        "links": [
            {"a": "laptop", "b": "DAS-4 (VU)", "latency_ms": 45.0,
             "gbps": 1.0, "label": "transatlantic 1G lightpath"}
        ]
    }"#;

    #[test]
    fn parse_sample_grid() {
        let g = GridDescription::from_json(SAMPLE).unwrap();
        assert_eq!(g.resources.len(), 2);
        assert_eq!(g.client().unwrap().name, "laptop");
        let das = g.resource("DAS-4 (VU)").unwrap();
        assert_eq!(das.nodes, 8);
        assert_eq!(das.gpus[0].model, "GTX480");
        assert_eq!(das.gpus[0].pcie_gibps, 4.0); // default applied
        assert!(das.hub); // default applied
        assert_eq!(g.links[0].label, "transatlantic 1G lightpath");
    }

    #[test]
    fn json_round_trip() {
        let g = GridDescription::from_json(SAMPLE).unwrap();
        let again = GridDescription::from_json(&g.to_json()).unwrap();
        assert_eq!(g, again);
    }

    #[test]
    fn application_description_defaults() {
        let a: ApplicationDescription = serde_json::from_str(
            r#"{"name": "sse", "resource": "DAS-4 (VU)", "nodes": 1}"#,
        )
        .unwrap();
        assert_eq!(a.processes_per_node, 1);
        assert!(!a.use_gpu);
    }
}
