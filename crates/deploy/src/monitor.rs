//! Text renditions of the IbisDeploy GUI panels (Figs 10 & 11).
//!
//! The SC11 demonstration showed four views: the resource map (resources on
//! a map of the Netherlands), the job list, the SmartSockets overlay, and a
//! 3D traffic visualization with per-site load (red) and memory (blue) bars
//! where "IPL traffic is shown in blue, while MPI traffic is shown in
//! orange". This module renders all four as plain text so examples and
//! benches can print them.

use jc_gat::{GatRealm, JobState};
use jc_netsim::metrics::{Metrics, TrafficClass};
use jc_netsim::{SimDuration, Topology};
use jc_smartsockets::OverlayView;

/// One row of the job table.
#[derive(Clone, Debug)]
pub struct JobRow {
    /// Worker/job name.
    pub name: String,
    /// Resource it was submitted to.
    pub resource: String,
    /// Nodes in use.
    pub nodes: u32,
    /// Current state.
    pub state: JobState,
}

/// Collects the pieces the dashboard renders from.
pub struct MonitorView<'a> {
    /// The world's topology.
    pub topo: &'a mut Topology,
    /// Traffic and load counters.
    pub metrics: &'a Metrics,
    /// Window over which host load is averaged.
    pub window: SimDuration,
}

impl<'a> MonitorView<'a> {
    /// Fig 10, top-left: available resources grouped by location.
    pub fn render_resource_map(&mut self, realm: &GatRealm) -> String {
        let mut out = String::from("Resources:\n");
        for name in realm.names() {
            let r = realm.resource(&name).expect("listed");
            let site = self.topo.site(r.site);
            out.push_str(&format!(
                "  [{}] {} — {} node(s), middleware head present\n",
                site.location,
                name,
                r.nodes.len()
            ));
        }
        out
    }

    /// Fig 10, bottom half: the job table.
    pub fn render_jobs(&self, jobs: &[JobRow]) -> String {
        let mut out = String::from("Jobs:\n");
        out.push_str(&format!("  {:<18} {:<16} {:>5}  {}\n", "NAME", "RESOURCE", "NODES", "STATE"));
        for j in jobs {
            out.push_str(&format!(
                "  {:<18} {:<16} {:>5}  {:?}\n",
                j.name, j.resource, j.nodes, j.state
            ));
        }
        out
    }

    /// Fig 10, top-right: the overlay (delegates to SmartSockets).
    pub fn render_overlay(&self, view: &OverlayView) -> String {
        view.render()
    }

    /// Fig 11: traffic per WAN link (IPL blue / MPI orange in the paper;
    /// here labeled columns) plus load/memory bars per host.
    pub fn render_traffic(&mut self) -> String {
        let mut out = String::from("Link traffic (bytes):\n");
        out.push_str(&format!(
            "  {:<34} {:>12} {:>12} {:>12} {:>12}\n",
            "LINK", "IPL", "MPI", "CTRL", "STAGE"
        ));
        let links: Vec<(jc_netsim::LinkId, String)> = self
            .topo
            .links()
            .map(|(id, l)| {
                let label =
                    if l.label.is_empty() { format!("link{}", id.0) } else { l.label.clone() };
                (id, label)
            })
            .collect();
        for (id, label) in links {
            let ipl = self.metrics.link_bytes(id, TrafficClass::Ipl);
            let mpi = self.metrics.link_bytes(id, TrafficClass::Mpi);
            let ctl = self.metrics.link_bytes(id, TrafficClass::Control);
            let stg = self.metrics.link_bytes(id, TrafficClass::Staging);
            if ipl + mpi + ctl + stg == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<34} {:>12} {:>12} {:>12} {:>12}\n",
                label, ipl, mpi, ctl, stg
            ));
        }
        out.push_str("Host load (red) / memory (blue):\n");
        let hosts: Vec<(jc_netsim::HostId, String, u32)> =
            self.topo.hosts().map(|(id, h)| (id, h.name.clone(), h.memory_gib)).collect();
        for (id, name, mem_gib) in hosts {
            let load = self.metrics.host_load(id, self.window);
            if load == 0.0 && self.metrics.host_memory_mib(id).is_none() {
                continue;
            }
            let bar_len = (load * 20.0).round() as usize;
            let mem = self
                .metrics
                .host_memory_mib(id)
                .map(|m| format!("{m} MiB/{mem_gib} GiB"))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "  {:<24} load [{:<20}] {:>5.1}%  mem {}\n",
                name,
                "#".repeat(bar_len),
                load * 100.0,
                mem
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jc_netsim::compute::CpuSpec;
    use jc_netsim::topology::HostSpec;
    use jc_netsim::{FirewallPolicy, Sim, SimConfig};

    #[test]
    fn render_views_contain_expected_rows() {
        let mut topo = Topology::new();
        let s = topo.add_site("VU", "Amsterdam", FirewallPolicy::Open);
        let link = topo.add_link(s, s, SimDuration::from_micros(50), 10.0, "VU fabric");
        let h = topo.add_host(HostSpec::node("fs.VU", s, CpuSpec::generic()).as_front_end());
        let mut sim = Sim::new(topo, SimConfig::default());
        let mut realm = GatRealm::new();
        realm.install(&mut sim, "VU", s, h, vec![h], vec![jc_gat::MiddlewareKind::Ssh]);

        // fabricate some metrics
        let mut metrics = Metrics::default();
        metrics.record_link(link, TrafficClass::Ipl, 4096);
        metrics.record_link(link, TrafficClass::Mpi, 1024);
        metrics.add_host_busy(h, SimDuration::from_secs(5));
        metrics.set_host_memory(h, 2048);

        let mut view = MonitorView {
            topo: sim.topology(),
            metrics: &metrics,
            window: SimDuration::from_secs(10),
        };
        let map = view.render_resource_map(&realm);
        assert!(map.contains("[Amsterdam] VU"), "{map}");

        let jobs = view.render_jobs(&[JobRow {
            name: "gadget".into(),
            resource: "VU".into(),
            nodes: 8,
            state: JobState::Running,
        }]);
        assert!(jobs.contains("gadget") && jobs.contains("Running"), "{jobs}");

        let traffic = view.render_traffic();
        assert!(traffic.contains("VU fabric"), "{traffic}");
        assert!(traffic.contains("4096"), "{traffic}");
        assert!(traffic.contains("50.0%"), "{traffic}");
        assert!(traffic.contains("2048 MiB"), "{traffic}");
    }
}
