//! Minimal JSON support for the descriptor files.
//!
//! The build environment has no crates.io access, so instead of serde
//! the descriptors use this self-contained JSON tree: a recursive
//! descent parser with line/column error reporting and a pretty
//! printer whose output round-trips through the parser. Object key
//! order is preserved so serialization is deterministic.

use std::fmt;

/// A parsed JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like serde_json's default).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short name for the node's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Pretty-print with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&format_number(*n)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; like serde_json, emit null. The
        // descriptor layer validates finiteness before serializing, so
        // this is a last-resort guard against unparseable output.
        "null".to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{:.1}", n)
    } else {
        format!("{}", n)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its position in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON syntax error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { src: input, bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("unexpected trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    /// The input as text — kept alongside `bytes` so multi-byte
    /// characters can be decoded by slicing at a known char boundary
    /// instead of `from_utf8_unchecked`.
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError { message: message.into(), line, column }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{}`{}",
                b as char,
                match self.peek() {
                    Some(got) => format!(", found `{}`", got as char),
                    None => ", found end of input".to_string(),
                }
            )))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected object key (a string)"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate object key `{key}`")));
            }
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the descriptor
                            // files; reject them rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character. `pos` always sits on
                    // a char boundary (it only advances by ASCII steps
                    // or whole `len_utf8` amounts), so the text slice
                    // is valid and this needs no unsafe.
                    let c = self.src[self.pos..].chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.error("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        // Strict JSON grammar: int = "0" | [1-9][0-9]*; optional frac
        // (at least one digit) and exponent (at least one digit).
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_len = self.pos - int_digits_start;
        if int_len == 0 {
            return Err(self.error("number is missing its integer part"));
        }
        if int_len > 1 && self.bytes[int_digits_start] == b'0' {
            return Err(self.error("numbers may not have leading zeros"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("number is missing digits after the decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("number is missing its exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn round_trips_pretty_output() {
        let src = r#"{"name": "DAS-4 (VU)", "nodes": 8, "ratio": 0.25, "tags": [], "ok": true}"#;
        let v = parse(src).unwrap();
        let again = parse(&v.to_pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("object key"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage_and_duplicates() {
        assert!(parse("{} x").unwrap_err().message.contains("trailing"));
        assert!(parse(r#"{"a": 1, "a": 2}"#).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn rejects_malformed_numbers_and_escapes() {
        for bad in ["[01]", "[1.]", "[-.5]", "[.5]", "[1e]", "[-]", r#"["\u+041"]"#, r#"["\ux"]"#] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
        // valid forms still accepted
        assert_eq!(parse("[0.5]").unwrap().as_array().unwrap()[0].as_f64(), Some(0.5));
        assert_eq!(parse("[1e3]").unwrap().as_array().unwrap()[0].as_f64(), Some(1000.0));
        assert_eq!(parse(r#"["A"]"#).unwrap().as_array().unwrap()[0].as_str(), Some("A"));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_pretty(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_pretty(), "null");
    }
}
