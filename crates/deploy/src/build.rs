//! Turn a grid description into a running simulated world.

use crate::descriptor::{GridDescription, ResourceEntry};
use jc_gat::{GatRealm, MiddlewareKind};
use jc_netsim::compute::{CpuSpec, GpuSpec};
use jc_netsim::topology::{HostSpec, SiteId};
use jc_netsim::{FirewallPolicy, HostId, Sim, SimConfig, SimDuration, Topology};
use jc_smartsockets::Overlay;
use std::collections::HashMap;
use std::rc::Rc;

/// Error building a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A link references an unknown resource name.
    UnknownResource(String),
    /// A middleware string is not recognized.
    UnknownMiddleware(String),
    /// A firewall string is not recognized.
    UnknownFirewall(String),
    /// The grid has no resources.
    EmptyGrid,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownResource(r) => write!(f, "link references unknown resource {r:?}"),
            BuildError::UnknownMiddleware(m) => write!(f, "unknown middleware {m:?}"),
            BuildError::UnknownFirewall(p) => write!(f, "unknown firewall policy {p:?}"),
            BuildError::EmptyGrid => write!(f, "grid description has no resources"),
        }
    }
}

impl std::error::Error for BuildError {}

fn parse_firewall(s: &str) -> Result<FirewallPolicy, BuildError> {
    Ok(match s {
        "open" => FirewallPolicy::Open,
        "firewalled" => FirewallPolicy::FirewalledInbound,
        "nat" => FirewallPolicy::Nat,
        "internal" => FirewallPolicy::NonRoutedInternal,
        other => return Err(BuildError::UnknownFirewall(other.to_string())),
    })
}

fn parse_middleware(s: &str) -> Result<MiddlewareKind, BuildError> {
    Ok(match s {
        "local" => MiddlewareKind::Local,
        "ssh" => MiddlewareKind::Ssh,
        "sge" => MiddlewareKind::Sge,
        "pbs" => MiddlewareKind::Pbs,
        "globus" => MiddlewareKind::Globus,
        "zorilla" => MiddlewareKind::Zorilla,
        other => return Err(BuildError::UnknownMiddleware(other.to_string())),
    })
}

/// Per-resource placement produced by the builder.
#[derive(Clone, Debug)]
pub struct PlacedResource {
    /// The site.
    pub site: SiteId,
    /// Front-end host (hub + middleware actor live here).
    pub front_end: HostId,
    /// Compute node hosts.
    pub nodes: Vec<HostId>,
}

/// A deployed world: simulator + realm + overlay, ready for the Ibis
/// daemon (jc-core) to start workers in.
pub struct Deployment {
    /// The simulator.
    pub sim: Sim,
    /// GAT resources, one per grid entry with nodes > 0.
    pub realm: GatRealm,
    /// The SmartSockets overlay (hubs already deployed and gossiping).
    pub overlay: Rc<Overlay>,
    /// Resource name → placement.
    pub placements: HashMap<String, PlacedResource>,
    /// The client machine's host (where the coupler and daemon run).
    pub client_host: HostId,
    /// The grid description this world was built from.
    pub grid: GridDescription,
}

impl Deployment {
    /// Build a deployment from a grid description.
    ///
    /// Every resource becomes a site with a front-end host plus `nodes`
    /// compute hosts; links become WAN links; a hub is started on every
    /// front-end with `hub: true`; a GAT middleware actor is installed for
    /// every resource with at least one middleware.
    pub fn build(grid: GridDescription, cfg: SimConfig) -> Result<Deployment, BuildError> {
        if grid.resources.is_empty() {
            return Err(BuildError::EmptyGrid);
        }
        let mut topo = Topology::new();
        let mut sites: HashMap<String, SiteId> = HashMap::new();
        let mut placements: HashMap<String, PlacedResource> = HashMap::new();
        let mut client_host = None;

        for r in &grid.resources {
            let policy = parse_firewall(&r.firewall)?;
            let site = topo.add_site(r.name.clone(), r.location.clone(), policy);
            sites.insert(r.name.clone(), site);
            // intra-site fabric
            topo.add_link(
                site,
                site,
                SimDuration::from_micros(r.fabric_latency_us),
                r.fabric_gbps,
                format!("{} fabric", r.name),
            );
            let front_end = topo.add_host(
                HostSpec::node(format!("fs.{}", r.name), site, cpu_of(r))
                    .with_memory_gib(r.memory_gib)
                    .as_front_end(),
            );
            let mut nodes = Vec::with_capacity(r.nodes as usize);
            for i in 0..r.nodes {
                let mut spec = HostSpec::node(format!("{}.n{i:03}", r.name), site, cpu_of(r))
                    .with_memory_gib(r.memory_gib);
                for g in &r.gpus {
                    spec = spec.with_gpu(GpuSpec::new(g.model.clone(), g.gflops, g.pcie_gibps));
                }
                nodes.push(topo.add_host(spec));
            }
            if r.client {
                // the client machine itself can host workers too (the
                // "local desktop" scenarios): treat the front-end as its
                // only node when nodes == 0
                client_host = Some(front_end);
            }
            placements.insert(r.name.clone(), PlacedResource { site, front_end, nodes });
        }

        for l in &grid.links {
            let a = *sites.get(&l.a).ok_or_else(|| BuildError::UnknownResource(l.a.clone()))?;
            let b = *sites.get(&l.b).ok_or_else(|| BuildError::UnknownResource(l.b.clone()))?;
            topo.add_link(
                a,
                b,
                SimDuration::from_secs_f64(l.latency_ms / 1e3),
                l.gbps,
                l.label.clone(),
            );
        }

        let mut sim = Sim::new(topo, cfg);

        // Hubs: client first (it seeds the overlay), then every hub=true
        // resource.
        let mut hub_placements: Vec<(SiteId, HostId)> = Vec::new();
        let ordered: Vec<&ResourceEntry> = {
            let mut v: Vec<&ResourceEntry> = grid.resources.iter().collect();
            v.sort_by_key(|r| !r.client); // client first
            v
        };
        for r in &ordered {
            if r.hub {
                let p = &placements[&r.name];
                hub_placements.push((p.site, p.front_end));
            }
        }
        let overlay =
            Rc::new(Overlay::deploy(&mut sim, &hub_placements, SimDuration::from_millis(100), 20));

        // GAT brokers.
        let mut realm = GatRealm::new();
        for r in &grid.resources {
            if r.middlewares.is_empty() {
                continue;
            }
            let kinds =
                r.middlewares.iter().map(|m| parse_middleware(m)).collect::<Result<Vec<_>, _>>()?;
            let p = &placements[&r.name];
            // client machines with no separate nodes run jobs on the
            // front-end itself (the "local" adapter case)
            let nodes = if p.nodes.is_empty() { vec![p.front_end] } else { p.nodes.clone() };
            realm.install(&mut sim, r.name.clone(), p.site, p.front_end, nodes, kinds);
        }

        let client_host =
            client_host.unwrap_or_else(|| placements[&grid.resources[0].name].front_end);
        Ok(Deployment { sim, realm, overlay, placements, client_host, grid })
    }

    /// Let the overlay gossip converge (runs the sim until idle or `max`
    /// events); returns whether full hub membership was reached.
    pub fn converge_overlay(&mut self, max_events: u64) -> bool {
        self.sim.run_to_quiescence(max_events);
        self.overlay.converged()
    }
}

fn cpu_of(r: &ResourceEntry) -> CpuSpec {
    CpuSpec::new(format!("{} cpu", r.name), r.cores_per_node, r.gflops_per_core)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GridDescription {
        GridDescription::from_json(
            r#"{
            "resources": [
                {"name": "laptop", "location": "Seattle", "nodes": 0,
                 "client": true, "middlewares": ["local"]},
                {"name": "VU", "location": "Amsterdam", "nodes": 4,
                 "middlewares": ["pbs", "ssh"], "firewall": "firewalled"},
                {"name": "LGM", "location": "Leiden", "nodes": 2,
                 "middlewares": ["sge"],
                 "gpus": [{"model": "Tesla C2050", "gflops": 500.0}]}
            ],
            "links": [
                {"a": "laptop", "b": "VU", "latency_ms": 45.0, "gbps": 1.0},
                {"a": "VU", "b": "LGM", "latency_ms": 1.0, "gbps": 10.0}
            ]
        }"#,
        )
        .unwrap()
    }

    #[test]
    fn build_creates_sites_hosts_and_brokers() {
        let mut d = Deployment::build(sample(), SimConfig::default()).unwrap();
        assert_eq!(d.placements.len(), 3);
        assert_eq!(d.placements["VU"].nodes.len(), 4);
        assert_eq!(d.realm.names(), vec!["LGM", "VU", "laptop"]);
        // GPU nodes got their GPUs
        let lgm_node = d.placements["LGM"].nodes[0];
        assert_eq!(d.sim.topology().host(lgm_node).gpus[0].model, "Tesla C2050");
        // client host identified
        let ch = d.client_host;
        assert!(d.sim.topology().host(ch).name.contains("laptop"));
    }

    #[test]
    fn overlay_converges_after_build() {
        let mut d = Deployment::build(sample(), SimConfig::default()).unwrap();
        assert!(d.converge_overlay(10_000_000), "hub gossip converges");
    }

    #[test]
    fn unknown_link_endpoint_is_error() {
        let mut g = sample();
        g.links.push(crate::descriptor::LinkEntry {
            a: "VU".into(),
            b: "nonexistent".into(),
            latency_ms: 1.0,
            gbps: 1.0,
            label: String::new(),
        });
        match Deployment::build(g, SimConfig::default()) {
            Err(BuildError::UnknownResource(r)) => assert_eq!(r, "nonexistent"),
            Err(other) => panic!("{other:?}"),
            Ok(_) => panic!("build unexpectedly succeeded"),
        }
    }

    #[test]
    fn unknown_middleware_is_error() {
        let mut g = sample();
        g.resources[1].middlewares.push("slurm".into());
        assert!(matches!(
            Deployment::build(g, SimConfig::default()),
            Err(BuildError::UnknownMiddleware(_))
        ));
    }

    #[test]
    fn empty_grid_is_error() {
        let err = Deployment::build(GridDescription::default(), SimConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, BuildError::EmptyGrid);
    }
}
