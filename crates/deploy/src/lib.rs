//! # jc-deploy — IbisDeploy: zero-effort deployment into the jungle
//!
//! Reproduction of IbisDeploy (§3 of the paper): *"a library for deploying
//! applications in the Jungle, targeted specifically at end-users.
//! IbisDeploy can be configured using a small number of simple
//! configuration files, or with an optional GUI."*
//!
//! * [`descriptor`] — the configuration files: a *grid description* (the
//!   resources a user has access to, their locations, middlewares,
//!   firewalls and the links between them) and *application/experiment
//!   descriptions*. They serialize to JSON via the built-in [`json`]
//!   module (no external dependencies), and malformed input is rejected
//!   with a field path instead of a panic.
//! * [`build`] — turns a grid description into a running simulated world:
//!   topology, SmartSockets hub per resource ("IbisDeploy automatically
//!   starts the hubs required by SmartSockets on each resource used"), and
//!   one GAT middleware actor per resource.
//! * [`monitor`] — text renditions of the IbisDeploy GUI panels shown in
//!   Figs 10 and 11: the resource map, the job table, the hub overlay and
//!   the per-link traffic visualization with load/memory bars.
//! * [`supervise`] — worker-process supervision beyond the paper: launch
//!   recipes for `jungle-worker` processes and a
//!   [`supervise::ProcessSupervisor`] that respawns dead shards for the
//!   fault-tolerant bridge (the §5 open problem).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unreachable_pub)]

pub mod build;
pub mod descriptor;
pub mod json;
pub mod monitor;
pub mod supervise;

pub use build::Deployment;
pub use descriptor::{
    ApplicationDescription, DescriptorError, GridDescription, LinkEntry, ResourceEntry,
};
pub use monitor::{JobRow, MonitorView};
pub use supervise::{ProcessSupervisor, WorkerSpec};
