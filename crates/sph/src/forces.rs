//! SPH pressure forces, artificial viscosity and the energy equation.
//!
//! The force pass gathers from the per-particle neighbour lists cached by
//! the density pass ([`crate::density::SphScratch`]) instead of re-querying
//! the grid at the global maximum smoothing length, and writes into a
//! caller-owned [`HydroRates`] — allocation-free in steady state.

use crate::density::SphScratch;
use crate::kernel::grad_w;
use crate::particles::GasParticles;

/// Monaghan viscosity α.
const ALPHA: f64 = 1.0;
/// Monaghan viscosity β.
const BETA: f64 = 2.0;

/// Hydrodynamic accelerations and energy derivatives. Reused across steps
/// by [`hydro_rates_into`]; the vectors keep their capacity.
#[derive(Default)]
pub struct HydroRates {
    /// dv/dt per particle.
    pub acc: Vec<[f64; 3]>,
    /// du/dt per particle.
    pub du: Vec<f64>,
    /// Pairwise interactions performed (cost model).
    pub interactions: u64,
    /// Maximum signal speed seen (for the Courant condition).
    pub v_signal_max: f64,
}

impl HydroRates {
    /// Empty rates (no allocation until first use).
    pub fn new() -> HydroRates {
        HydroRates::default()
    }
}

/// Compute SPH rates for the current state (densities must be fresh).
/// Convenience wrapper over [`hydro_rates_into`] with temporary buffers.
pub fn hydro_rates(gas: &GasParticles) -> HydroRates {
    let mut scratch = SphScratch::new();
    scratch.cache_neighbors(gas);
    let mut out = HydroRates::new();
    hydro_rates_into(gas, &mut scratch, &mut out);
    out
}

/// Compute SPH rates into `out`, gathering from the per-particle
/// neighbour lists cached in `scratch`. The cache is refreshed lazily
/// from the grid the density pass built (lengths validated once per
/// call: the grid must have been built for this particle count by
/// [`crate::density::compute_density_with`] or
/// [`SphScratch::cache_neighbors`]).
///
/// Symmetrized Monaghan form: both sides of a pair use the h-averaged
/// kernel gradient, so momentum is conserved to round-off (property-tested
/// in this crate's test suite).
pub fn hydro_rates_into(gas: &GasParticles, scratch: &mut SphScratch, out: &mut HydroRates) {
    let n = gas.len();
    out.acc.clear();
    out.acc.resize(n, [0.0; 3]);
    out.du.clear();
    out.du.resize(n, 0.0);
    out.interactions = 0;
    out.v_signal_max = 0.0;
    if n == 0 {
        return;
    }
    scratch.ensure_cache(gas);
    let scratch = &*scratch;
    let threads = scratch.threads_for(n);
    let one = |i: usize, acc: &mut [f64; 3], du: &mut f64| -> (u64, f64) {
        let pi = gas.pressure(i);
        let ci = gas.sound_speed(i);
        let rhoi = gas.rho[i].max(1e-12);
        let pos = &gas.pos;
        let mut vsig: f64 = ci;
        let mut inter = 0u64;
        for &j32 in scratch.neighbors(i) {
            let j = j32 as usize;
            if j == i {
                continue;
            }
            let dx = [pos[i][0] - pos[j][0], pos[i][1] - pos[j][1], pos[i][2] - pos[j][2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
            let h_ij = 0.5 * (gas.h[i] + gas.h[j]);
            if r2 >= h_ij * h_ij || r2 == 0.0 {
                continue;
            }
            inter += 1;
            let r = r2.sqrt();
            let dv = [
                gas.vel[i][0] - gas.vel[j][0],
                gas.vel[i][1] - gas.vel[j][1],
                gas.vel[i][2] - gas.vel[j][2],
            ];
            let vr = dv[0] * dx[0] + dv[1] * dx[1] + dv[2] * dx[2];
            let rhoj = gas.rho[j].max(1e-12);
            let pj = gas.pressure(j);
            // artificial viscosity
            let mut visc = 0.0;
            if vr < 0.0 {
                let cj = gas.sound_speed(j);
                let mu = h_ij * vr / (r2 + 0.01 * h_ij * h_ij);
                let c_mean = 0.5 * (ci + cj);
                let rho_mean = 0.5 * (rhoi + rhoj);
                visc = (-ALPHA * c_mean * mu + BETA * mu * mu) / rho_mean;
                vsig = vsig.max(c_mean - mu);
            }
            let gw = grad_w(dx, r, h_ij);
            let coeff = pi / (rhoi * rhoi) + pj / (rhoj * rhoj) + visc;
            let mj = gas.mass[j];
            for k in 0..3 {
                acc[k] -= mj * coeff * gw[k];
            }
            *du += 0.5 * mj * coeff * (dv[0] * gw[0] + dv[1] * gw[1] + dv[2] * gw[2]);
        }
        (inter, vsig)
    };
    if threads <= 1 {
        let mut inter = 0u64;
        let mut vsig = 0.0f64;
        for i in 0..n {
            let (it, vs) = one(i, &mut out.acc[i], &mut out.du[i]);
            inter += it;
            vsig = vsig.max(vs);
        }
        out.interactions = inter;
        out.v_signal_max = vsig;
    } else {
        let chunk = n.div_ceil(threads);
        let (inter, vsig) = std::thread::scope(|s| {
            let mut acc_rest = out.acc.as_mut_slice();
            let mut du_rest = out.du.as_mut_slice();
            let mut start = 0usize;
            let mut handles = Vec::with_capacity(threads);
            while !acc_rest.is_empty() {
                let take = chunk.min(acc_rest.len());
                let (ac, ar) = acc_rest.split_at_mut(take);
                acc_rest = ar;
                let (dc, dr) = du_rest.split_at_mut(take);
                du_rest = dr;
                let s0 = start;
                start += take;
                handles.push(s.spawn(move || {
                    let mut inter = 0u64;
                    let mut vsig = 0.0f64;
                    for (k, (a, d)) in ac.iter_mut().zip(dc.iter_mut()).enumerate() {
                        let (it, vs) = one(s0 + k, a, d);
                        inter += it;
                        vsig = vsig.max(vs);
                    }
                    (inter, vsig)
                }));
            }
            let mut inter = 0u64;
            let mut vsig = 0.0f64;
            for t in handles {
                let (it, vs) = t.join().expect("hydro worker panicked");
                inter += it;
                vsig = vsig.max(vs);
            }
            (inter, vsig)
        });
        out.interactions = inter;
        out.v_signal_max = vsig;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{compute_density, compute_density_with};
    use crate::particles::plummer_gas;

    #[test]
    fn pressure_forces_conserve_momentum() {
        let mut gas = plummer_gas(300, 1.0, 7);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let mut ptot = [0.0f64; 3];
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 {
                ptot[k] += m * a[k];
            }
        }
        let scale: f64 = rates
            .acc
            .iter()
            .zip(&gas.mass)
            .map(|(a, m)| m * (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .sum();
        for k in 0..3 {
            assert!(
                ptot[k].abs() < 1e-9 * scale.max(1.0),
                "momentum leak {ptot:?} (scale {scale})"
            );
        }
    }

    #[test]
    fn compressed_gas_pushes_outwards() {
        // Two particles approaching: viscosity + pressure must repel.
        let mut gas = GasParticles::new();
        gas.push(1.0, [-0.02, 0.0, 0.0], [0.5, 0.0, 0.0], 1.0);
        gas.push(1.0, [0.02, 0.0, 0.0], [-0.5, 0.0, 0.0], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert!(rates.acc[0][0] < 0.0, "left particle pushed left: {:?}", rates.acc);
        assert!(rates.acc[1][0] > 0.0);
        // approaching shocked pair heats up
        assert!(rates.du[0] > 0.0 && rates.du[1] > 0.0, "{:?}", rates.du);
    }

    #[test]
    fn isolated_particle_feels_nothing() {
        let mut gas = GasParticles::new();
        gas.push(1.0, [0.0; 3], [0.0; 3], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert_eq!(rates.acc[0], [0.0; 3]);
        assert_eq!(rates.du[0], 0.0);
    }

    #[test]
    fn signal_speed_at_least_sound_speed() {
        let mut gas = plummer_gas(100, 1.0, 9);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let max_c = (0..gas.len()).map(|i| gas.sound_speed(i)).fold(0.0f64, f64::max);
        assert!(rates.v_signal_max >= max_c * 0.999);
    }

    #[test]
    fn cached_path_matches_standalone_pair_set() {
        // the density-built cache and a standalone cache_neighbors cache
        // use different grid cells but must accept the same physical pairs
        let mut gas = plummer_gas(500, 1.0, 13);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut cached = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut cached);
        let standalone = hydro_rates(&gas);
        assert_eq!(cached.interactions, standalone.interactions);
        for (a, b) in cached.acc.iter().zip(&standalone.acc) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() <= 1e-12 * a[k].abs().max(1.0), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale neighbour grid")]
    fn stale_cache_is_rejected() {
        let mut gas = plummer_gas(50, 1.0, 3);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        gas.push(1.0, [0.0; 3], [0.0; 3], 1.0); // grid now stale
        let mut out = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut out);
    }

    #[test]
    fn rates_buffers_are_reused() {
        let mut gas = plummer_gas(200, 1.0, 15);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut out = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut out);
        let cap = out.acc.capacity();
        hydro_rates_into(&gas, &mut scratch, &mut out);
        assert_eq!(out.acc.capacity(), cap, "acc buffer reallocated");
        assert_eq!(out.acc.len(), gas.len());
    }
}
