//! SPH pressure forces, artificial viscosity and the energy equation.
//!
//! The force pass gathers from the per-particle neighbour lists cached by
//! the density pass ([`crate::density::SphScratch`]) instead of re-querying
//! the grid at the global maximum smoothing length, and writes into a
//! caller-owned [`HydroRates`] — allocation-free in steady state.

use crate::density::SphScratch;
use crate::kernel::grad_w;
use crate::particles::GasParticles;
use jc_compute::par;
use jc_compute::soa::{reduce_lanes, LANES};

/// Monaghan viscosity α.
const ALPHA: f64 = 1.0;
/// Monaghan viscosity β.
const BETA: f64 = 2.0;

/// Hydrodynamic accelerations and energy derivatives. Reused across steps
/// by [`hydro_rates_into`]; the vectors keep their capacity.
#[derive(Default)]
pub struct HydroRates {
    /// dv/dt per particle.
    pub acc: Vec<[f64; 3]>,
    /// du/dt per particle.
    pub du: Vec<f64>,
    /// Pairwise interactions performed (cost model).
    pub interactions: u64,
    /// Maximum signal speed seen (for the Courant condition).
    pub v_signal_max: f64,
}

impl HydroRates {
    /// Empty rates (no allocation until first use).
    pub fn new() -> HydroRates {
        HydroRates::default()
    }
}

/// Compute SPH rates for the current state (densities must be fresh).
/// Convenience wrapper over [`hydro_rates_into`] with temporary buffers.
pub fn hydro_rates(gas: &GasParticles) -> HydroRates {
    let mut scratch = SphScratch::new();
    scratch.cache_neighbors(gas);
    let mut out = HydroRates::new();
    hydro_rates_into(gas, &mut scratch, &mut out);
    out
}

/// Compute SPH rates into `out`, gathering from the per-particle
/// neighbour lists cached in `scratch`. The cache is refreshed lazily
/// from the grid the density pass built (lengths validated once per
/// call: the grid must have been built for this particle count by
/// [`crate::density::compute_density_with`] or
/// [`SphScratch::cache_neighbors`]).
///
/// Symmetrized Monaghan form: both sides of a pair use the h-averaged
/// kernel gradient, so momentum is conserved to round-off (property-tested
/// in this crate's test suite).
// jc-lint: no-alloc
pub fn hydro_rates_into(gas: &GasParticles, scratch: &mut SphScratch, out: &mut HydroRates) {
    let n = gas.len();
    out.acc.clear();
    out.acc.resize(n, [0.0; 3]);
    out.du.clear();
    out.du.resize(n, 0.0);
    out.interactions = 0;
    out.v_signal_max = 0.0;
    if n == 0 {
        return;
    }
    scratch.ensure_cache(gas);
    if scratch.simd {
        scratch.soa.fill_all(gas);
    }
    let simd = scratch.simd;
    let threads = scratch.threads_for(n);
    let (soa, nbr_off, nbr_idx, scratch_bufs) = scratch.force_view();
    let nbrs = |i: usize| &nbr_idx[nbr_off[i] as usize..nbr_off[i + 1] as usize];
    let one = |i: usize, acc: &mut [f64; 3], du: &mut f64| -> (u64, f64) {
        let pi = gas.pressure(i);
        let ci = gas.sound_speed(i);
        let rhoi = gas.rho[i].max(1e-12);
        let pos = &gas.pos;
        let mut vsig: f64 = ci;
        let mut inter = 0u64;
        for &j32 in nbrs(i) {
            let j = j32 as usize;
            if j == i {
                continue;
            }
            let dx = [pos[i][0] - pos[j][0], pos[i][1] - pos[j][1], pos[i][2] - pos[j][2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
            let h_ij = 0.5 * (gas.h[i] + gas.h[j]);
            if r2 >= h_ij * h_ij || r2 == 0.0 {
                continue;
            }
            inter += 1;
            let r = r2.sqrt();
            let dv = [
                gas.vel[i][0] - gas.vel[j][0],
                gas.vel[i][1] - gas.vel[j][1],
                gas.vel[i][2] - gas.vel[j][2],
            ];
            let vr = dv[0] * dx[0] + dv[1] * dx[1] + dv[2] * dx[2];
            let rhoj = gas.rho[j].max(1e-12);
            let pj = gas.pressure(j);
            // artificial viscosity
            let mut visc = 0.0;
            if vr < 0.0 {
                let cj = gas.sound_speed(j);
                let mu = h_ij * vr / (r2 + 0.01 * h_ij * h_ij);
                let c_mean = 0.5 * (ci + cj);
                let rho_mean = 0.5 * (rhoi + rhoj);
                visc = (-ALPHA * c_mean * mu + BETA * mu * mu) / rho_mean;
                vsig = vsig.max(c_mean - mu);
            }
            let gw = grad_w(dx, r, h_ij);
            let coeff = pi / (rhoi * rhoi) + pj / (rhoj * rhoj) + visc;
            let mj = gas.mass[j];
            for k in 0..3 {
                acc[k] -= mj * coeff * gw[k];
            }
            *du += 0.5 * mj * coeff * (dv[0] * gw[0] + dv[1] * gw[1] + dv[2] * gw[2]);
        }
        (inter, vsig)
    };
    // per-worker compaction buffers for the SoA path (reused across
    // calls; scalar workers carry them untouched)
    // jc-lint: allow(no-alloc): Vec::new is the resize_with element factory — empty Vecs don't allocate
    scratch_bufs.resize_with(threads, Vec::new);
    let (inter, vsig) = par::chunked(
        threads,
        (out.acc.as_mut_slice(), out.du.as_mut_slice()),
        scratch_bufs,
        (0u64, 0.0f64),
        |s0, (ac, dc): (&mut [[f64; 3]], &mut [f64]), buf| {
            let mut inter = 0u64;
            let mut vsig = 0.0f64;
            for (k, (a, d)) in ac.iter_mut().zip(dc.iter_mut()).enumerate() {
                let i = s0 + k;
                let (it, vs) =
                    if simd { hydro_one_simd(i, soa, nbrs(i), buf, a, d) } else { one(i, a, d) };
                inter += it;
                vsig = vsig.max(vs);
            }
            (inter, vsig)
        },
        |(i1, v1), (i2, v2)| (i1 + i2, v1.max(v2)),
    );
    out.interactions = inter;
    out.v_signal_max = vsig;
}

/// One particle's rates gathered [`LANES`] wide through the cached
/// neighbour list, reading the SoA gas columns
/// ([`crate::density::SphScratch::simd`]).
///
/// Two phases. The *filter* pass runs the cheap part of the scalar pair
/// predicate (`r² < h_ij²`, non-self, non-coincident) over the whole
/// cached list and compacts the surviving `(j, r²)` pairs into the
/// per-worker buffer — the cached lists are built at the conservative
/// `(h_i + h_max)/2` radius, so most candidates die here without ever
/// touching a `sqrt` or a division. The *interaction* pass then runs
/// the expensive pair math [`LANES`] wide over actives only: the
/// viscosity branch becomes a select on `vr < 0` and the spline
/// gradient evaluates both pieces and selects by `q`. Accumulation is
/// lane-wise with the fixed [`reduce_lanes`] reduction — bitwise stable
/// run to run, equal to the scalar path only to rounding. The
/// interaction count and `v_signal_max` match the scalar path
/// *exactly* (same predicate, same signal-speed values,
/// order-independent max).
fn hydro_one_simd(
    i: usize,
    soa: &crate::density::GasSoa,
    nbr: &[u32],
    buf: &mut Vec<crate::density::Candidate>,
    acc: &mut [f64; 3],
    du: &mut f64,
) -> (u64, f64) {
    let (px, py, pz) = (soa.pos.x.as_slice(), soa.pos.y.as_slice(), soa.pos.z.as_slice());
    let (vx, vy, vz) = (soa.vel.x.as_slice(), soa.vel.y.as_slice(), soa.vel.z.as_slice());
    let (m, h) = (soa.m.as_slice(), soa.h.as_slice());
    let (rho, pres, cs) = (soa.rho.as_slice(), soa.pres.as_slice(), soa.cs.as_slice());
    let (pix, piy, piz) = (px[i], py[i], pz[i]);
    let (vix, viy, viz) = (vx[i], vy[i], vz[i]);
    let hi = h[i];
    let ci = cs[i];
    let rhoi = rho[i].max(1e-12);
    let pi_rho2 = pres[i] / (rhoi * rhoi);
    // filter: compact the active pairs (preserving list order)
    buf.clear();
    for &j32 in nbr {
        let j = j32 as usize;
        let dx = pix - px[j];
        let dy = piy - py[j];
        let dz = piz - pz[j];
        let r2 = dx * dx + dy * dy + dz * dz;
        let h_ij = 0.5 * (hi + h[j]);
        if r2 < h_ij * h_ij && r2 != 0.0 && j != i {
            buf.push((j32, r2));
        }
    }
    let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
    let mut dul = [0.0f64; LANES];
    let mut vsigl = [ci; LANES];
    macro_rules! lane {
        ($l:expr, $cand:expr) => {{
            let l = $l;
            let (j32, r2) = $cand;
            let j = j32 as usize;
            let dx = pix - px[j];
            let dy = piy - py[j];
            let dz = piz - pz[j];
            let h_ij = 0.5 * (hi + h[j]);
            let r = r2.sqrt();
            let dvx = vix - vx[j];
            let dvy = viy - vy[j];
            let dvz = viz - vz[j];
            let vr = dvx * dx + dvy * dy + dvz * dz;
            let rhoj = rho[j].max(1e-12);
            // artificial viscosity as a select on approach
            let cj = cs[j];
            let mu = h_ij * vr / (r2 + 0.01 * h_ij * h_ij);
            let c_mean = 0.5 * (ci + cj);
            let rho_mean = 0.5 * (rhoi + rhoj);
            let visc_full = (-ALPHA * c_mean * mu + BETA * mu * mu) / rho_mean;
            let approaching = vr < 0.0;
            let visc = if approaching { visc_full } else { 0.0 };
            let vsig_cand = if approaching { c_mean - mu } else { ci };
            // cubic-spline gradient, both pieces evaluated and selected
            let sigma_h = 8.0 / (std::f64::consts::PI * h_ij * h_ij * h_ij) / h_ij;
            let q = r / h_ij;
            let t = 1.0 - q;
            let near = -12.0 * q + 18.0 * q * q;
            let far = -6.0 * t * t;
            let piece = if q < 0.5 { near } else { far };
            let dwr_over_r = sigma_h * piece / r;
            let coeff = pi_rho2 + pres[j] / (rhoj * rhoj) + visc;
            let scale = m[j] * coeff * dwr_over_r;
            axl[l] -= scale * dx;
            ayl[l] -= scale * dy;
            azl[l] -= scale * dz;
            dul[l] += 0.5 * scale * vr;
            vsigl[l] = vsigl[l].max(vsig_cand);
        }};
    }
    let batches = buf.len() / LANES;
    for b in 0..batches {
        let o = b * LANES;
        let batch: &[crate::density::Candidate; LANES] = buf[o..o + LANES].try_into().unwrap();
        for (l, cand) in batch.iter().enumerate() {
            lane!(l, *cand);
        }
    }
    for (l, &cand) in buf[batches * LANES..].iter().enumerate() {
        lane!(l, cand);
    }
    acc[0] = reduce_lanes(axl);
    acc[1] = reduce_lanes(ayl);
    acc[2] = reduce_lanes(azl);
    *du = reduce_lanes(dul);
    let vsig = vsigl[0].max(vsigl[1]).max(vsigl[2]).max(vsigl[3]);
    (buf.len() as u64, vsig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{compute_density, compute_density_with};
    use crate::particles::plummer_gas;

    #[test]
    fn pressure_forces_conserve_momentum() {
        let mut gas = plummer_gas(300, 1.0, 7);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let mut ptot = [0.0f64; 3];
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 {
                ptot[k] += m * a[k];
            }
        }
        let scale: f64 = rates
            .acc
            .iter()
            .zip(&gas.mass)
            .map(|(a, m)| m * (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .sum();
        for k in 0..3 {
            assert!(
                ptot[k].abs() < 1e-9 * scale.max(1.0),
                "momentum leak {ptot:?} (scale {scale})"
            );
        }
    }

    #[test]
    fn compressed_gas_pushes_outwards() {
        // Two particles approaching: viscosity + pressure must repel.
        let mut gas = GasParticles::new();
        gas.push(1.0, [-0.02, 0.0, 0.0], [0.5, 0.0, 0.0], 1.0);
        gas.push(1.0, [0.02, 0.0, 0.0], [-0.5, 0.0, 0.0], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert!(rates.acc[0][0] < 0.0, "left particle pushed left: {:?}", rates.acc);
        assert!(rates.acc[1][0] > 0.0);
        // approaching shocked pair heats up
        assert!(rates.du[0] > 0.0 && rates.du[1] > 0.0, "{:?}", rates.du);
    }

    #[test]
    fn isolated_particle_feels_nothing() {
        let mut gas = GasParticles::new();
        gas.push(1.0, [0.0; 3], [0.0; 3], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert_eq!(rates.acc[0], [0.0; 3]);
        assert_eq!(rates.du[0], 0.0);
    }

    #[test]
    fn signal_speed_at_least_sound_speed() {
        let mut gas = plummer_gas(100, 1.0, 9);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let max_c = (0..gas.len()).map(|i| gas.sound_speed(i)).fold(0.0f64, f64::max);
        assert!(rates.v_signal_max >= max_c * 0.999);
    }

    #[test]
    fn cached_path_matches_standalone_pair_set() {
        // the density-built cache and a standalone cache_neighbors cache
        // use different grid cells but must accept the same physical pairs
        let mut gas = plummer_gas(500, 1.0, 13);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut cached = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut cached);
        let standalone = hydro_rates(&gas);
        assert_eq!(cached.interactions, standalone.interactions);
        for (a, b) in cached.acc.iter().zip(&standalone.acc) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() <= 1e-12 * a[k].abs().max(1.0), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale neighbour grid")]
    fn stale_cache_is_rejected() {
        let mut gas = plummer_gas(50, 1.0, 3);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        gas.push(1.0, [0.0; 3], [0.0; 3], 1.0); // grid now stale
        let mut out = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut out);
    }

    #[test]
    fn simd_forces_match_scalar_within_tolerance() {
        let mut gas = plummer_gas(900, 1.0, 13);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut scalar = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut scalar);
        // same densities, same cached neighbour lists — only the gather
        // kernel changes
        scratch.simd = true;
        let mut simd = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut simd);
        assert_eq!(scalar.interactions, simd.interactions, "pair predicate diverged");
        assert_eq!(
            scalar.v_signal_max.to_bits(),
            simd.v_signal_max.to_bits(),
            "signal speeds diverged: {} vs {}",
            scalar.v_signal_max,
            simd.v_signal_max
        );
        let scale: f64 = scalar
            .acc
            .iter()
            .map(|a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .fold(0.0, f64::max)
            .max(1.0);
        for (i, (a, b)) in simd.acc.iter().zip(&scalar.acc).enumerate() {
            for k in 0..3 {
                assert!(
                    (a[k] - b[k]).abs() <= 1e-11 * scale,
                    "acc[{i}][{k}]: {} vs {}",
                    a[k],
                    b[k]
                );
            }
        }
        for (i, (a, b)) in simd.du.iter().zip(&scalar.du).enumerate() {
            assert!((a - b).abs() <= 1e-11 * b.abs().max(1.0), "du[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn simd_forces_conserve_momentum() {
        let mut gas = plummer_gas(400, 1.0, 7);
        let mut scratch = crate::density::SphScratch::new();
        scratch.simd = true;
        compute_density_with(&mut gas, &mut scratch);
        let mut rates = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut rates);
        let mut ptot = [0.0f64; 3];
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 {
                ptot[k] += m * a[k];
            }
        }
        let scale: f64 = rates
            .acc
            .iter()
            .zip(&gas.mass)
            .map(|(a, m)| m * (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .sum();
        for k in 0..3 {
            assert!(ptot[k].abs() < 1e-9 * scale.max(1.0), "momentum leak {ptot:?}");
        }
    }

    #[test]
    fn rates_buffers_are_reused() {
        let mut gas = plummer_gas(200, 1.0, 15);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut out = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut out);
        let cap = out.acc.capacity();
        hydro_rates_into(&gas, &mut scratch, &mut out);
        assert_eq!(out.acc.capacity(), cap, "acc buffer reallocated");
        assert_eq!(out.acc.len(), gas.len());
    }
}
