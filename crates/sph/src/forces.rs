//! SPH pressure forces, artificial viscosity and the energy equation.

use crate::density::NeighborGrid;
use crate::kernel::grad_w;
use crate::particles::GasParticles;
use rayon::prelude::*;

/// Monaghan viscosity α.
const ALPHA: f64 = 1.0;
/// Monaghan viscosity β.
const BETA: f64 = 2.0;

/// Hydrodynamic accelerations and energy derivatives.
pub struct HydroRates {
    /// dv/dt per particle.
    pub acc: Vec<[f64; 3]>,
    /// du/dt per particle.
    pub du: Vec<f64>,
    /// Pairwise interactions performed (cost model).
    pub interactions: u64,
    /// Maximum signal speed seen (for the Courant condition).
    pub v_signal_max: f64,
}

/// Compute SPH rates for the current state (densities must be fresh).
///
/// Symmetrized Monaghan form: both sides of a pair use the h-averaged
/// kernel gradient, so momentum is conserved to round-off (property-tested
/// in this crate's test suite).
pub fn hydro_rates(gas: &GasParticles) -> HydroRates {
    let n = gas.len();
    if n == 0 {
        return HydroRates { acc: vec![], du: vec![], interactions: 0, v_signal_max: 0.0 };
    }
    let h_max = gas.h.iter().cloned().fold(0.0f64, f64::max).max(1e-6);
    let grid = NeighborGrid::build(&gas.pos, h_max);
    let pos = &gas.pos;
    let results: Vec<([f64; 3], f64, u64, f64)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let pi = gas.pressure(i);
            let ci = gas.sound_speed(i);
            let rhoi = gas.rho[i].max(1e-12);
            let mut acc = [0.0f64; 3];
            let mut du = 0.0f64;
            let mut vsig: f64 = ci;
            // search within the largest possible pair support
            let nbr = grid.within(pos, &pos[i], h_max.max(gas.h[i]));
            let mut inter = 0u64;
            for &j32 in &nbr {
                let j = j32 as usize;
                if j == i {
                    continue;
                }
                let dx = [pos[i][0] - pos[j][0], pos[i][1] - pos[j][1], pos[i][2] - pos[j][2]];
                let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
                let h_ij = 0.5 * (gas.h[i] + gas.h[j]);
                if r2 >= h_ij * h_ij || r2 == 0.0 {
                    continue;
                }
                inter += 1;
                let r = r2.sqrt();
                let dv = [
                    gas.vel[i][0] - gas.vel[j][0],
                    gas.vel[i][1] - gas.vel[j][1],
                    gas.vel[i][2] - gas.vel[j][2],
                ];
                let vr = dv[0] * dx[0] + dv[1] * dx[1] + dv[2] * dx[2];
                let rhoj = gas.rho[j].max(1e-12);
                let pj = gas.pressure(j);
                // artificial viscosity
                let mut visc = 0.0;
                if vr < 0.0 {
                    let cj = gas.sound_speed(j);
                    let mu = h_ij * vr / (r2 + 0.01 * h_ij * h_ij);
                    let c_mean = 0.5 * (ci + cj);
                    let rho_mean = 0.5 * (rhoi + rhoj);
                    visc = (-ALPHA * c_mean * mu + BETA * mu * mu) / rho_mean;
                    vsig = vsig.max(c_mean - mu);
                }
                let gw = grad_w(dx, r, h_ij);
                let coeff = pi / (rhoi * rhoi) + pj / (rhoj * rhoj) + visc;
                let mj = gas.mass[j];
                for k in 0..3 {
                    acc[k] -= mj * coeff * gw[k];
                }
                du += 0.5 * mj * coeff * (dv[0] * gw[0] + dv[1] * gw[1] + dv[2] * gw[2]);
            }
            (acc, du, inter, vsig)
        })
        .collect();
    let mut acc = Vec::with_capacity(n);
    let mut du = Vec::with_capacity(n);
    let mut interactions = 0;
    let mut v_signal_max = 0.0f64;
    for (a, d, i, v) in results {
        acc.push(a);
        du.push(d);
        interactions += i;
        v_signal_max = v_signal_max.max(v);
    }
    HydroRates { acc, du, interactions, v_signal_max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::compute_density;
    use crate::particles::plummer_gas;

    #[test]
    fn pressure_forces_conserve_momentum() {
        let mut gas = plummer_gas(300, 1.0, 7);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let mut ptot = [0.0f64; 3];
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 {
                ptot[k] += m * a[k];
            }
        }
        let scale: f64 = rates
            .acc
            .iter()
            .zip(&gas.mass)
            .map(|(a, m)| m * (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .sum();
        for k in 0..3 {
            assert!(
                ptot[k].abs() < 1e-9 * scale.max(1.0),
                "momentum leak {ptot:?} (scale {scale})"
            );
        }
    }

    #[test]
    fn compressed_gas_pushes_outwards() {
        // Two particles approaching: viscosity + pressure must repel.
        let mut gas = GasParticles::new();
        gas.push(1.0, [-0.02, 0.0, 0.0], [0.5, 0.0, 0.0], 1.0);
        gas.push(1.0, [0.02, 0.0, 0.0], [-0.5, 0.0, 0.0], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert!(rates.acc[0][0] < 0.0, "left particle pushed left: {:?}", rates.acc);
        assert!(rates.acc[1][0] > 0.0);
        // approaching shocked pair heats up
        assert!(rates.du[0] > 0.0 && rates.du[1] > 0.0, "{:?}", rates.du);
    }

    #[test]
    fn isolated_particle_feels_nothing() {
        let mut gas = GasParticles::new();
        gas.push(1.0, [0.0; 3], [0.0; 3], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert_eq!(rates.acc[0], [0.0; 3]);
        assert_eq!(rates.du[0], 0.0);
    }

    #[test]
    fn signal_speed_at_least_sound_speed() {
        let mut gas = plummer_gas(100, 1.0, 9);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let max_c = (0..gas.len()).map(|i| gas.sound_speed(i)).fold(0.0f64, f64::max);
        assert!(rates.v_signal_max >= max_c * 0.999);
    }
}
