//! SPH pressure forces, artificial viscosity and the energy equation.
//!
//! The force pass gathers from the per-particle neighbour lists cached by
//! the density pass ([`crate::density::SphScratch`]) instead of re-querying
//! the grid at the global maximum smoothing length, and writes into a
//! caller-owned [`HydroRates`] — allocation-free in steady state.

use crate::density::{PairCols, SphScratch};
use crate::kernel::grad_w;
use crate::particles::GasParticles;
use jc_compute::par;
use jc_compute::soa::{reduce_lanes, LANES};

/// Monaghan viscosity α.
const ALPHA: f64 = 1.0;
/// Monaghan viscosity β.
const BETA: f64 = 2.0;

/// Hydrodynamic accelerations and energy derivatives. Reused across steps
/// by [`hydro_rates_into`]; the vectors keep their capacity.
#[derive(Default)]
pub struct HydroRates {
    /// dv/dt per particle.
    pub acc: Vec<[f64; 3]>,
    /// du/dt per particle.
    pub du: Vec<f64>,
    /// Pairwise interactions performed (cost model).
    pub interactions: u64,
    /// Maximum signal speed seen (for the Courant condition).
    pub v_signal_max: f64,
}

impl HydroRates {
    /// Empty rates (no allocation until first use).
    pub fn new() -> HydroRates {
        HydroRates::default()
    }
}

/// Compute SPH rates for the current state (densities must be fresh).
/// Convenience wrapper over [`hydro_rates_into`] with temporary buffers.
pub fn hydro_rates(gas: &GasParticles) -> HydroRates {
    let mut scratch = SphScratch::new();
    scratch.cache_neighbors(gas);
    let mut out = HydroRates::new();
    hydro_rates_into(gas, &mut scratch, &mut out);
    out
}

/// Compute SPH rates into `out`, gathering from the per-particle
/// neighbour lists cached in `scratch`. The cache is refreshed lazily
/// from the grid the density pass built (lengths validated once per
/// call: the grid must have been built for this particle count by
/// [`crate::density::compute_density_with`] or
/// [`SphScratch::cache_neighbors`]).
///
/// Symmetrized Monaghan form: both sides of a pair use the h-averaged
/// kernel gradient, so momentum is conserved to round-off (property-tested
/// in this crate's test suite).
// jc-lint: no-alloc
pub fn hydro_rates_into(gas: &GasParticles, scratch: &mut SphScratch, out: &mut HydroRates) {
    let n = gas.len();
    out.acc.clear();
    out.acc.resize(n, [0.0; 3]);
    out.du.clear();
    out.du.resize(n, 0.0);
    out.interactions = 0;
    out.v_signal_max = 0.0;
    if n == 0 {
        return;
    }
    scratch.ensure_cache(gas);
    if scratch.simd {
        scratch.soa.fill_all(gas);
    }
    let simd = scratch.simd;
    let threads = scratch.threads_for(n);
    let (soa, nbr_off, nbr_idx, scratch_pairs) = scratch.force_view();
    let nbrs = |i: usize| &nbr_idx[nbr_off[i] as usize..nbr_off[i + 1] as usize];
    let one = |i: usize, acc: &mut [f64; 3], du: &mut f64| -> (u64, f64) {
        let pi = gas.pressure(i);
        let ci = gas.sound_speed(i);
        let rhoi = gas.rho[i].max(1e-12);
        let pos = &gas.pos;
        let mut vsig: f64 = ci;
        let mut inter = 0u64;
        for &j32 in nbrs(i) {
            let j = j32 as usize;
            if j == i {
                continue;
            }
            let dx = [pos[i][0] - pos[j][0], pos[i][1] - pos[j][1], pos[i][2] - pos[j][2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
            let h_ij = 0.5 * (gas.h[i] + gas.h[j]);
            if r2 >= h_ij * h_ij || r2 == 0.0 {
                continue;
            }
            inter += 1;
            let r = r2.sqrt();
            let dv = [
                gas.vel[i][0] - gas.vel[j][0],
                gas.vel[i][1] - gas.vel[j][1],
                gas.vel[i][2] - gas.vel[j][2],
            ];
            let vr = dv[0] * dx[0] + dv[1] * dx[1] + dv[2] * dx[2];
            let rhoj = gas.rho[j].max(1e-12);
            let pj = gas.pressure(j);
            // artificial viscosity
            let mut visc = 0.0;
            if vr < 0.0 {
                let cj = gas.sound_speed(j);
                let mu = h_ij * vr / (r2 + 0.01 * h_ij * h_ij);
                let c_mean = 0.5 * (ci + cj);
                let rho_mean = 0.5 * (rhoi + rhoj);
                visc = (-ALPHA * c_mean * mu + BETA * mu * mu) / rho_mean;
                vsig = vsig.max(c_mean - mu);
            }
            let gw = grad_w(dx, r, h_ij);
            let coeff = pi / (rhoi * rhoi) + pj / (rhoj * rhoj) + visc;
            let mj = gas.mass[j];
            for k in 0..3 {
                acc[k] -= mj * coeff * gw[k];
            }
            *du += 0.5 * mj * coeff * (dv[0] * gw[0] + dv[1] * gw[1] + dv[2] * gw[2]);
        }
        (inter, vsig)
    };
    // per-worker staged-pair columns for the SoA path (reused across
    // calls; scalar workers carry them untouched)
    // jc-lint: allow(no-alloc): PairCols::default is the resize_with element factory — empty columns don't allocate
    scratch_pairs.resize_with(threads, PairCols::default);
    let (inter, vsig) = par::chunked(
        threads,
        (out.acc.as_mut_slice(), out.du.as_mut_slice()),
        scratch_pairs,
        (0u64, 0.0f64),
        |s0, (ac, dc): (&mut [[f64; 3]], &mut [f64]), cols| {
            let mut inter = 0u64;
            let mut vsig = 0.0f64;
            for (k, (a, d)) in ac.iter_mut().zip(dc.iter_mut()).enumerate() {
                let i = s0 + k;
                let (it, vs) =
                    if simd { hydro_one_simd(i, soa, nbrs(i), cols, a, d) } else { one(i, a, d) };
                inter += it;
                vsig = vsig.max(vs);
            }
            (inter, vsig)
        },
        |(i1, v1), (i2, v2)| (i1 + i2, v1.max(v2)),
    );
    out.interactions = inter;
    out.v_signal_max = vsig;
}

/// Per-target scalars shared by the staged-pair evaluators.
struct TargetCtx {
    /// Velocity of particle `i`.
    vi: [f64; 3],
    /// Sound speed of particle `i`.
    ci: f64,
    /// Clamped density of particle `i`.
    rhoi: f64,
    /// `P_i / ρ_i²`, hoisted out of the pair loop.
    pi_rho2: f64,
}

/// One particle's rates on the SoA path
/// ([`crate::density::SphScratch::simd`]).
///
/// Two phases, each dispatched once per list to the widest instruction
/// set the CPU offers. The *filter* pass runs the pair predicate
/// (`r² < h_ij²`, non-coincident) over the whole cached list — the
/// lists are built at the conservative `(h_i + h_max)/2` radius, so
/// under a percent of candidates typically survive and this sweep
/// dominates the pass. Each candidate probe is one packed
/// [`crate::density::FiltRow`] load (the split SoA columns would cost
/// four lines); the vector filters batch 4 or 8 candidates per
/// iteration with the predicate as a compare mask, and stage the
/// survivors' `(j, dx, dy, dz, r², h_ij)` — values the predicate
/// already computed — as parallel columns in the per-worker
/// [`PairCols`]. The *interaction* pass ([`eval_pair_cols`]) then runs
/// the expensive pair math over actives only: staged columns come back
/// as sequential vector loads, per-neighbour values as single-line
/// [`crate::density::EvalRow`] reads (prefetched at staging time), the
/// viscosity branch becomes a select on `vr < 0`, and the spline
/// gradient evaluates both pieces and selects by `q`. Accumulation is
/// lane-wise with the fixed [`reduce_lanes`] reduction — bitwise stable
/// run to run and across dispatch tiers, equal to the scalar path only
/// to rounding. The interaction count and `v_signal_max` match the
/// scalar path *exactly* (same predicate, same signal-speed values,
/// order-independent max).
fn hydro_one_simd(
    i: usize,
    soa: &crate::density::GasSoa,
    nbr: &[u32],
    cols: &mut PairCols,
    acc: &mut [f64; 3],
    du: &mut f64,
) -> (u64, f64) {
    let filt = soa.filt.as_slice();
    let evalr = soa.evalr.as_slice();
    let fi = filt[i];
    // filter: stage the active pairs (preserving list order), dispatched
    // to the widest filter the CPU offers — the cached lists are built
    // at the conservative `(h_i + h_max)/2` radius, so under 1% of
    // candidates survive and the sweep dominates the whole force pass.
    cols.clear();
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx512f") && std::arch::is_x86_feature_detected!("avx2")
    {
        // SAFETY: gated on runtime AVX-512F + AVX2 detection.
        unsafe { filter_stage_avx512(i, fi, filt, evalr, nbr, cols) };
    } else if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: gated on runtime AVX2 detection.
        unsafe { filter_stage_avx2(i, fi, filt, evalr, nbr, cols) };
    } else {
        filter_stage_scalar(i, fi, filt, evalr, nbr, cols);
    }
    #[cfg(not(target_arch = "x86_64"))]
    filter_stage_scalar(i, fi, filt, evalr, nbr, cols);
    let ei = &evalr[i];
    let rhoi = ei.rho.max(1e-12);
    let ctx =
        TargetCtx { vi: [ei.vx, ei.vy, ei.vz], ci: ei.cs, rhoi, pi_rho2: ei.pres / (rhoi * rhoi) };
    let vsig = eval_pair_cols(cols, &ctx, soa, acc, du);
    (cols.len() as u64, vsig)
}

/// Portable filter phase of [`hydro_one_simd`]: one packed
/// [`crate::density::FiltRow`] probe per candidate (prefetched `PF`
/// candidates ahead); each accepted pair prefetches its
/// [`crate::density::EvalRow`] so the interaction pass finds the line
/// resident. The `j != i` clause is redundant with `r2 != 0.0` (a
/// self-pair has zero separation) but kept so this reference predicate
/// reads exactly like the scalar path's.
fn filter_stage_scalar(
    i: usize,
    fi: crate::density::FiltRow,
    filt: &[crate::density::FiltRow],
    evalr: &[crate::density::EvalRow],
    nbr: &[u32],
    cols: &mut PairCols,
) {
    let (pix, piy, piz, hi) = (fi.x, fi.y, fi.z, fi.h);
    const PF: usize = 16;
    let last = nbr.len().saturating_sub(1);
    for (k, &j32) in nbr.iter().enumerate() {
        prefetch_row(filt, nbr[(k + PF).min(last)] as usize);
        let j = j32 as usize;
        let f = &filt[j];
        let dx = pix - f.x;
        let dy = piy - f.y;
        let dz = piz - f.z;
        let r2 = dx * dx + dy * dy + dz * dz;
        let h_ij = 0.5 * (hi + f.h);
        if r2 < h_ij * h_ij && r2 != 0.0 && j != i {
            prefetch_row(evalr, j);
            cols.push(j32, dx, dy, dz, r2, h_ij);
        }
    }
}

/// AVX2 filter phase of [`hydro_one_simd`]: four candidates per
/// iteration. Each candidate's packed [`crate::density::FiltRow`] is
/// one 32-byte vector load; a 4×4 transpose turns the four rows into
/// `x/y/z/h` lane vectors, the predicate becomes a compare mask, and
/// with under 1% acceptance the movemask is almost always zero — the
/// staging spill is the rare path. Produces bitwise-identical staged
/// columns to [`filter_stage_scalar`] in the same order (elementwise
/// IEEE ops; a self-pair fails `r2 != 0` exactly as it fails `j != i`).
// SAFETY: `#[target_feature(enable = "avx2")]` makes this fn unsafe to
// call; the only call site is gated on `is_x86_feature_detected!("avx2")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn filter_stage_avx2(
    i: usize,
    fi: crate::density::FiltRow,
    filt: &[crate::density::FiltRow],
    evalr: &[crate::density::EvalRow],
    nbr: &[u32],
    cols: &mut PairCols,
) {
    use std::arch::x86_64::*;
    let n = nbr.len();
    let batches = n / LANES;
    // SAFETY: every candidate index in `nbr` is a valid particle index
    // (the grid stages only in-range indices), so the row loads stay in
    // bounds of `filt`; spills target local stack arrays; prefetches
    // are pure hints. The AVX2 intrinsics are available per the
    // `#[target_feature]` contract discharged at the gated call site.
    unsafe {
        let pixv = _mm256_set1_pd(fi.x);
        let piyv = _mm256_set1_pd(fi.y);
        let pizv = _mm256_set1_pd(fi.z);
        let hiv = _mm256_set1_pd(fi.h);
        let halfv = _mm256_set1_pd(0.5);
        let zerov = _mm256_setzero_pd();
        for b in 0..batches {
            let o = b * LANES;
            if o + 2 * LANES <= n {
                // pull the next batch's rows while this one transposes
                for l in 0..LANES {
                    prefetch_row(filt, nbr[o + LANES + l] as usize);
                }
            }
            let j0 = nbr[o] as usize;
            let j1 = nbr[o + 1] as usize;
            let j2 = nbr[o + 2] as usize;
            let j3 = nbr[o + 3] as usize;
            let r0 = _mm256_loadu_pd(filt.as_ptr().add(j0) as *const f64);
            let r1 = _mm256_loadu_pd(filt.as_ptr().add(j1) as *const f64);
            let r2r = _mm256_loadu_pd(filt.as_ptr().add(j2) as *const f64);
            let r3 = _mm256_loadu_pd(filt.as_ptr().add(j3) as *const f64);
            let t0 = _mm256_unpacklo_pd(r0, r1); // x0 x1 z0 z1
            let t1 = _mm256_unpackhi_pd(r0, r1); // y0 y1 h0 h1
            let t2 = _mm256_unpacklo_pd(r2r, r3); // x2 x3 z2 z3
            let t3 = _mm256_unpackhi_pd(r2r, r3); // y2 y3 h2 h3
            let xv = _mm256_permute2f128_pd::<0x20>(t0, t2);
            let yv = _mm256_permute2f128_pd::<0x20>(t1, t3);
            let zv = _mm256_permute2f128_pd::<0x31>(t0, t2);
            let hv = _mm256_permute2f128_pd::<0x31>(t1, t3);
            let dx = _mm256_sub_pd(pixv, xv);
            let dy = _mm256_sub_pd(piyv, yv);
            let dz = _mm256_sub_pd(pizv, zv);
            let r2v = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                _mm256_mul_pd(dz, dz),
            );
            let h_ij = _mm256_mul_pd(halfv, _mm256_add_pd(hiv, hv));
            let mask = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LT_OQ>(r2v, _mm256_mul_pd(h_ij, h_ij)),
                _mm256_cmp_pd::<_CMP_NEQ_OQ>(r2v, zerov),
            );
            let mbits = _mm256_movemask_pd(mask);
            if mbits != 0 {
                let mut dxl = [0.0f64; LANES];
                let mut dyl = [0.0f64; LANES];
                let mut dzl = [0.0f64; LANES];
                let mut r2l = [0.0f64; LANES];
                let mut hl = [0.0f64; LANES];
                _mm256_storeu_pd(dxl.as_mut_ptr(), dx);
                _mm256_storeu_pd(dyl.as_mut_ptr(), dy);
                _mm256_storeu_pd(dzl.as_mut_ptr(), dz);
                _mm256_storeu_pd(r2l.as_mut_ptr(), r2v);
                _mm256_storeu_pd(hl.as_mut_ptr(), h_ij);
                for l in 0..LANES {
                    if mbits & (1 << l) != 0 {
                        let j32 = nbr[o + l];
                        prefetch_row(evalr, j32 as usize);
                        cols.push(j32, dxl[l], dyl[l], dzl[l], r2l[l], hl[l]);
                    }
                }
            }
        }
        // leftover candidates: the scalar predicate, verbatim
        let (pix, piy, piz, hi) = (fi.x, fi.y, fi.z, fi.h);
        for &j32 in &nbr[batches * LANES..] {
            let j = j32 as usize;
            let f = &filt[j];
            let dx = pix - f.x;
            let dy = piy - f.y;
            let dz = piz - f.z;
            let r2 = dx * dx + dy * dy + dz * dz;
            let h_ij = 0.5 * (hi + f.h);
            if r2 < h_ij * h_ij && r2 != 0.0 && j != i {
                prefetch_row(evalr, j);
                cols.push(j32, dx, dy, dz, r2, h_ij);
            }
        }
    }
}

/// AVX-512 filter phase of [`hydro_one_simd`]: eight candidates per
/// iteration — the 8-wide shape of [`filter_stage_avx2`] (two 4×4 row
/// transposes widened into ZMM lanes, the predicate as a native 8-bit
/// compare mask). Elementwise IEEE ops at any width are exact, so the
/// staged columns stay bitwise identical to [`filter_stage_scalar`]'s,
/// in the same order.
// SAFETY: `#[target_feature(enable = "avx512f,avx2")]` makes this fn
// unsafe to call; the only call site is gated on runtime detection of
// both features.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx2")]
unsafe fn filter_stage_avx512(
    i: usize,
    fi: crate::density::FiltRow,
    filt: &[crate::density::FiltRow],
    evalr: &[crate::density::EvalRow],
    nbr: &[u32],
    cols: &mut PairCols,
) {
    use std::arch::x86_64::*;
    const W: usize = 2 * LANES;
    let n = nbr.len();
    let groups = n / W;
    // SAFETY: every candidate index in `nbr` is a valid particle index
    // (the grid stages only in-range indices), so the row loads stay in
    // bounds of `filt`; spills target local stack arrays; prefetches
    // are pure hints. The AVX-512/AVX2 intrinsics are available per the
    // `#[target_feature]` contract discharged at the gated call site.
    unsafe {
        let pixv = _mm512_set1_pd(fi.x);
        let piyv = _mm512_set1_pd(fi.y);
        let pizv = _mm512_set1_pd(fi.z);
        let hiv = _mm512_set1_pd(fi.h);
        let halfv = _mm512_set1_pd(0.5);
        let zerov = _mm512_setzero_pd();
        for g in 0..groups {
            let o = g * W;
            if o + 2 * W <= n {
                // pull the next group's rows while this one transposes
                for l in 0..W {
                    prefetch_row(filt, nbr[o + W + l] as usize);
                }
            }
            // transpose rows 0..4 and 4..8 into x/y/z/h quads, then
            // widen each pair of quads into one ZMM register
            let mut quads = [_mm256_setzero_pd(); 8];
            for half in 0..2 {
                let j0 = nbr[o + 4 * half] as usize;
                let j1 = nbr[o + 4 * half + 1] as usize;
                let j2 = nbr[o + 4 * half + 2] as usize;
                let j3 = nbr[o + 4 * half + 3] as usize;
                let r0 = _mm256_loadu_pd(filt.as_ptr().add(j0) as *const f64);
                let r1 = _mm256_loadu_pd(filt.as_ptr().add(j1) as *const f64);
                let r2r = _mm256_loadu_pd(filt.as_ptr().add(j2) as *const f64);
                let r3 = _mm256_loadu_pd(filt.as_ptr().add(j3) as *const f64);
                let t0 = _mm256_unpacklo_pd(r0, r1); // x0 x1 z0 z1
                let t1 = _mm256_unpackhi_pd(r0, r1); // y0 y1 h0 h1
                let t2 = _mm256_unpacklo_pd(r2r, r3); // x2 x3 z2 z3
                let t3 = _mm256_unpackhi_pd(r2r, r3); // y2 y3 h2 h3
                quads[4 * half] = _mm256_permute2f128_pd::<0x20>(t0, t2);
                quads[4 * half + 1] = _mm256_permute2f128_pd::<0x20>(t1, t3);
                quads[4 * half + 2] = _mm256_permute2f128_pd::<0x31>(t0, t2);
                quads[4 * half + 3] = _mm256_permute2f128_pd::<0x31>(t1, t3);
            }
            let xv = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(quads[0]), quads[4]);
            let yv = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(quads[1]), quads[5]);
            let zv = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(quads[2]), quads[6]);
            let hv = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(quads[3]), quads[7]);
            let dx = _mm512_sub_pd(pixv, xv);
            let dy = _mm512_sub_pd(piyv, yv);
            let dz = _mm512_sub_pd(pizv, zv);
            let r2v = _mm512_add_pd(
                _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)),
                _mm512_mul_pd(dz, dz),
            );
            let h_ij = _mm512_mul_pd(halfv, _mm512_add_pd(hiv, hv));
            let mbits = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(r2v, _mm512_mul_pd(h_ij, h_ij))
                & _mm512_cmp_pd_mask::<_CMP_NEQ_OQ>(r2v, zerov);
            if mbits != 0 {
                let mut dxl = [0.0f64; W];
                let mut dyl = [0.0f64; W];
                let mut dzl = [0.0f64; W];
                let mut r2l = [0.0f64; W];
                let mut hl = [0.0f64; W];
                _mm512_storeu_pd(dxl.as_mut_ptr(), dx);
                _mm512_storeu_pd(dyl.as_mut_ptr(), dy);
                _mm512_storeu_pd(dzl.as_mut_ptr(), dz);
                _mm512_storeu_pd(r2l.as_mut_ptr(), r2v);
                _mm512_storeu_pd(hl.as_mut_ptr(), h_ij);
                for l in 0..W {
                    if mbits & (1 << l) != 0 {
                        let j32 = nbr[o + l];
                        prefetch_row(evalr, j32 as usize);
                        cols.push(j32, dxl[l], dyl[l], dzl[l], r2l[l], hl[l]);
                    }
                }
            }
        }
        // leftover candidates: the scalar predicate, verbatim
        let (pix, piy, piz, hi) = (fi.x, fi.y, fi.z, fi.h);
        for &j32 in &nbr[groups * W..] {
            let j = j32 as usize;
            let f = &filt[j];
            let dx = pix - f.x;
            let dy = piy - f.y;
            let dz = piz - f.z;
            let r2 = dx * dx + dy * dy + dz * dz;
            let h_ij = 0.5 * (hi + f.h);
            if r2 < h_ij * h_ij && r2 != 0.0 && j != i {
                prefetch_row(evalr, j);
                cols.push(j32, dx, dy, dz, r2, h_ij);
            }
        }
    }
}

/// Hint the cache to pull `rows[i]` (a pure hint: no-op off x86_64,
/// never faults, `i` is always in bounds here).
#[inline(always)]
fn prefetch_row<T>(rows: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `i` is in bounds of `rows`, so the address is valid to
    // form; prefetch itself is a hint and cannot fault.
    unsafe {
        std::arch::x86_64::_mm_prefetch(
            rows.as_ptr().add(i) as *const i8,
            std::arch::x86_64::_MM_HINT_T0,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (rows, i);
}

/// Evaluate the staged active pairs for one target, dispatched once per
/// list to the widest available instruction set (see [`hydro_one_simd`];
/// the AVX-512 and AVX2 clones and the portable body execute the
/// identical IEEE operation sequence, so results are
/// machine-independent). Returns the target's signal-speed maximum.
fn eval_pair_cols(
    cols: &PairCols,
    ctx: &TargetCtx,
    soa: &crate::density::GasSoa,
    acc: &mut [f64; 3],
    du: &mut f64,
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            // SAFETY: the avx512 clone is only reached when the CPU
            // reports both features at runtime.
            return unsafe { eval_pair_cols_avx512(cols, ctx, soa, acc, du) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 clone is only reached when the CPU
            // reports the feature at runtime.
            return unsafe { eval_pair_cols_avx2(cols, ctx, soa, acc, du) };
        }
    }
    eval_pair_cols_body(cols, ctx, soa, acc, du)
}

/// Portable [`LANES`]-wide staged-pair evaluation (the non-AVX fallback
/// of [`eval_pair_cols`]) — same operation sequence as the hardware
/// clones, narrower vectors.
#[inline(always)]
fn eval_pair_cols_body(
    cols: &PairCols,
    ctx: &TargetCtx,
    soa: &crate::density::GasSoa,
    acc: &mut [f64; 3],
    du: &mut f64,
) -> f64 {
    let evalr = soa.evalr.as_slice();
    let [vix, viy, viz] = ctx.vi;
    let (ci, rhoi, pi_rho2) = (ctx.ci, ctx.rhoi, ctx.pi_rho2);
    let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
    let mut dul = [0.0f64; LANES];
    let mut vsigl = [ci; LANES];
    macro_rules! lane {
        ($l:expr, $p:expr) => {{
            let l = $l;
            let p = $p;
            let e = &evalr[cols.j[p] as usize];
            let dx = cols.dx[p];
            let dy = cols.dy[p];
            let dz = cols.dz[p];
            let r2 = cols.r2[p];
            let h_ij = cols.h[p];
            let r = r2.sqrt();
            let dvx = vix - e.vx;
            let dvy = viy - e.vy;
            let dvz = viz - e.vz;
            let vr = dvx * dx + dvy * dy + dvz * dz;
            let rhoj = e.rho.max(1e-12);
            // artificial viscosity as a select on approach
            let cj = e.cs;
            let mu = h_ij * vr / (r2 + 0.01 * h_ij * h_ij);
            let c_mean = 0.5 * (ci + cj);
            let rho_mean = 0.5 * (rhoi + rhoj);
            let visc_full = (-ALPHA * c_mean * mu + BETA * mu * mu) / rho_mean;
            let approaching = vr < 0.0;
            let visc = if approaching { visc_full } else { 0.0 };
            let vsig_cand = if approaching { c_mean - mu } else { ci };
            // cubic-spline gradient, both pieces evaluated and selected
            let sigma_h = 8.0 / (std::f64::consts::PI * h_ij * h_ij * h_ij) / h_ij;
            let q = r / h_ij;
            let t = 1.0 - q;
            let near = -12.0 * q + 18.0 * q * q;
            let far = -6.0 * t * t;
            let piece = if q < 0.5 { near } else { far };
            let dwr_over_r = sigma_h * piece / r;
            let coeff = pi_rho2 + e.pres / (rhoj * rhoj) + visc;
            let scale = e.m * coeff * dwr_over_r;
            axl[l] -= scale * dx;
            ayl[l] -= scale * dy;
            azl[l] -= scale * dz;
            dul[l] += 0.5 * scale * vr;
            vsigl[l] = vsigl[l].max(vsig_cand);
        }};
    }
    let n = cols.len();
    let batches = n / LANES;
    for b in 0..batches {
        let o = b * LANES;
        for l in 0..LANES {
            lane!(l, o + l);
        }
    }
    for l in 0..n - batches * LANES {
        lane!(l, batches * LANES + l);
    }
    acc[0] = reduce_lanes(axl);
    acc[1] = reduce_lanes(ayl);
    acc[2] = reduce_lanes(azl);
    *du = reduce_lanes(dul);
    vsigl[0].max(vsigl[1]).max(vsigl[2]).max(vsigl[3])
}

/// AVX2 implementation of [`eval_pair_cols_body`]: four staged pairs per
/// iteration — sequential column loads for the pre-staged geometry, and
/// the per-neighbour values packed lane-wise from the single-line
/// [`crate::density::EvalRow`]s (prefetched by the filter phase; four
/// resident lines per batch, where per-column gathers cost 28),
/// branches as blends. Every operation is elementwise and in the
/// portable body's exact order, so results are bitwise identical to it.
// SAFETY: `#[target_feature(enable = "avx2")]` makes this fn unsafe to
// call; the only call site is gated on `is_x86_feature_detected!("avx2")`,
// so the AVX2 instructions are never executed on a CPU without them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn eval_pair_cols_avx2(
    cols: &PairCols,
    ctx: &TargetCtx,
    soa: &crate::density::GasSoa,
    acc: &mut [f64; 3],
    du: &mut f64,
) -> f64 {
    use std::arch::x86_64::*;
    let evalr = soa.evalr.as_slice();
    let n = cols.len();
    let batches = n / LANES;
    // SAFETY: column loads read indices `o .. o + 3` with
    // `o = b * LANES` and `b < n / LANES`, in bounds of every column
    // (all columns share length `n`); row indices come from `cols.j`,
    // which stages only valid particle indices, so they index `evalr`
    // in bounds (checked indexing regardless); the `storeu` spills
    // target local stack arrays. The AVX2 intrinsics are available per
    // the `#[target_feature]` contract discharged at the
    // detection-gated call site.
    unsafe {
        let zero = _mm256_setzero_pd();
        let half = _mm256_set1_pd(0.5);
        let onev = _mm256_set1_pd(1.0);
        let c001 = _mm256_set1_pd(0.01);
        let eight = _mm256_set1_pd(8.0);
        let piv = _mm256_set1_pd(std::f64::consts::PI);
        let neg_alpha = _mm256_set1_pd(-ALPHA);
        let betav = _mm256_set1_pd(BETA);
        let neg12 = _mm256_set1_pd(-12.0);
        let p18 = _mm256_set1_pd(18.0);
        let neg6 = _mm256_set1_pd(-6.0);
        let rho_floor = _mm256_set1_pd(1e-12);
        let civ = _mm256_set1_pd(ctx.ci);
        let rhoiv = _mm256_set1_pd(ctx.rhoi);
        let pi_rho2v = _mm256_set1_pd(ctx.pi_rho2);
        let vixv = _mm256_set1_pd(ctx.vi[0]);
        let viyv = _mm256_set1_pd(ctx.vi[1]);
        let vizv = _mm256_set1_pd(ctx.vi[2]);
        let mut axv = zero;
        let mut ayv = zero;
        let mut azv = zero;
        let mut duv = zero;
        let mut vsigv = civ;
        for b in 0..batches {
            let o = b * LANES;
            let e0 = &evalr[cols.j[o] as usize];
            let e1 = &evalr[cols.j[o + 1] as usize];
            let e2 = &evalr[cols.j[o + 2] as usize];
            let e3 = &evalr[cols.j[o + 3] as usize];
            let dx = _mm256_loadu_pd(cols.dx.as_ptr().add(o));
            let dy = _mm256_loadu_pd(cols.dy.as_ptr().add(o));
            let dz = _mm256_loadu_pd(cols.dz.as_ptr().add(o));
            let r2 = _mm256_loadu_pd(cols.r2.as_ptr().add(o));
            let hv = _mm256_loadu_pd(cols.h.as_ptr().add(o));
            let r = _mm256_sqrt_pd(r2);
            let dvx = _mm256_sub_pd(vixv, _mm256_set_pd(e3.vx, e2.vx, e1.vx, e0.vx));
            let dvy = _mm256_sub_pd(viyv, _mm256_set_pd(e3.vy, e2.vy, e1.vy, e0.vy));
            let dvz = _mm256_sub_pd(vizv, _mm256_set_pd(e3.vz, e2.vz, e1.vz, e0.vz));
            let vr = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(dvx, dx), _mm256_mul_pd(dvy, dy)),
                _mm256_mul_pd(dvz, dz),
            );
            let rhoj = _mm256_max_pd(_mm256_set_pd(e3.rho, e2.rho, e1.rho, e0.rho), rho_floor);
            let cj = _mm256_set_pd(e3.cs, e2.cs, e1.cs, e0.cs);
            let mu = _mm256_div_pd(
                _mm256_mul_pd(hv, vr),
                _mm256_add_pd(r2, _mm256_mul_pd(_mm256_mul_pd(c001, hv), hv)),
            );
            let c_mean = _mm256_mul_pd(half, _mm256_add_pd(civ, cj));
            let rho_mean = _mm256_mul_pd(half, _mm256_add_pd(rhoiv, rhoj));
            let visc_full = _mm256_div_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(_mm256_mul_pd(neg_alpha, c_mean), mu),
                    _mm256_mul_pd(_mm256_mul_pd(betav, mu), mu),
                ),
                rho_mean,
            );
            let approaching = _mm256_cmp_pd::<_CMP_LT_OQ>(vr, zero);
            let visc = _mm256_blendv_pd(zero, visc_full, approaching);
            let vsig_cand = _mm256_blendv_pd(civ, _mm256_sub_pd(c_mean, mu), approaching);
            let sigma_h = _mm256_div_pd(
                _mm256_div_pd(eight, _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(piv, hv), hv), hv)),
                hv,
            );
            let q = _mm256_div_pd(r, hv);
            let t = _mm256_sub_pd(onev, q);
            let near =
                _mm256_add_pd(_mm256_mul_pd(neg12, q), _mm256_mul_pd(_mm256_mul_pd(p18, q), q));
            let far = _mm256_mul_pd(_mm256_mul_pd(neg6, t), t);
            let piece = _mm256_blendv_pd(far, near, _mm256_cmp_pd::<_CMP_LT_OQ>(q, half));
            let dwr_over_r = _mm256_div_pd(_mm256_mul_pd(sigma_h, piece), r);
            let coeff = _mm256_add_pd(
                _mm256_add_pd(
                    pi_rho2v,
                    _mm256_div_pd(
                        _mm256_set_pd(e3.pres, e2.pres, e1.pres, e0.pres),
                        _mm256_mul_pd(rhoj, rhoj),
                    ),
                ),
                visc,
            );
            let scale = _mm256_mul_pd(
                _mm256_mul_pd(_mm256_set_pd(e3.m, e2.m, e1.m, e0.m), coeff),
                dwr_over_r,
            );
            axv = _mm256_sub_pd(axv, _mm256_mul_pd(scale, dx));
            ayv = _mm256_sub_pd(ayv, _mm256_mul_pd(scale, dy));
            azv = _mm256_sub_pd(azv, _mm256_mul_pd(scale, dz));
            duv = _mm256_add_pd(duv, _mm256_mul_pd(_mm256_mul_pd(half, scale), vr));
            vsigv = _mm256_max_pd(vsigv, vsig_cand);
        }
        let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
        let mut dul = [0.0f64; LANES];
        let mut vsigl = [0.0f64; LANES];
        _mm256_storeu_pd(axl.as_mut_ptr(), axv);
        _mm256_storeu_pd(ayl.as_mut_ptr(), ayv);
        _mm256_storeu_pd(azl.as_mut_ptr(), azv);
        _mm256_storeu_pd(dul.as_mut_ptr(), duv);
        _mm256_storeu_pd(vsigl.as_mut_ptr(), vsigv);
        eval_pair_cols_tail(
            cols,
            ctx,
            soa,
            batches * LANES,
            &mut axl,
            &mut ayl,
            &mut azl,
            &mut dul,
            &mut vsigl,
        );
        acc[0] = reduce_lanes(axl);
        acc[1] = reduce_lanes(ayl);
        acc[2] = reduce_lanes(azl);
        *du = reduce_lanes(dul);
        vsigl[0].max(vsigl[1]).max(vsigl[2]).max(vsigl[3])
    }
}

/// Scalar tail of the staged-pair evaluators: pairs `o ..` (fewer than
/// [`LANES`]) folded into the spilled lane accumulators with the exact
/// lane arithmetic of [`eval_pair_cols_body`]. Shared by the AVX2 and
/// AVX-512 clones so the tail is written (and audited) once.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn eval_pair_cols_tail(
    cols: &PairCols,
    ctx: &TargetCtx,
    soa: &crate::density::GasSoa,
    o: usize,
    axl: &mut [f64; LANES],
    ayl: &mut [f64; LANES],
    azl: &mut [f64; LANES],
    dul: &mut [f64; LANES],
    vsigl: &mut [f64; LANES],
) {
    let evalr = soa.evalr.as_slice();
    let [vix, viy, viz] = ctx.vi;
    let (ci, rhoi, pi_rho2) = (ctx.ci, ctx.rhoi, ctx.pi_rho2);
    for l in 0..cols.len() - o {
        let p = o + l;
        let e = &evalr[cols.j[p] as usize];
        let dx = cols.dx[p];
        let dy = cols.dy[p];
        let dz = cols.dz[p];
        let r2 = cols.r2[p];
        let h_ij = cols.h[p];
        let r = r2.sqrt();
        let dvx = vix - e.vx;
        let dvy = viy - e.vy;
        let dvz = viz - e.vz;
        let vr = dvx * dx + dvy * dy + dvz * dz;
        let rhoj = e.rho.max(1e-12);
        let cj = e.cs;
        let mu = h_ij * vr / (r2 + 0.01 * h_ij * h_ij);
        let c_mean = 0.5 * (ci + cj);
        let rho_mean = 0.5 * (rhoi + rhoj);
        let visc_full = (-ALPHA * c_mean * mu + BETA * mu * mu) / rho_mean;
        let approaching = vr < 0.0;
        let visc = if approaching { visc_full } else { 0.0 };
        let vsig_cand = if approaching { c_mean - mu } else { ci };
        let sigma_h = 8.0 / (std::f64::consts::PI * h_ij * h_ij * h_ij) / h_ij;
        let q = r / h_ij;
        let t = 1.0 - q;
        let near = -12.0 * q + 18.0 * q * q;
        let far = -6.0 * t * t;
        let piece = if q < 0.5 { near } else { far };
        let dwr_over_r = sigma_h * piece / r;
        let coeff = pi_rho2 + e.pres / (rhoj * rhoj) + visc;
        let scale = e.m * coeff * dwr_over_r;
        axl[l] -= scale * dx;
        ayl[l] -= scale * dy;
        azl[l] -= scale * dz;
        dul[l] += 0.5 * scale * vr;
        vsigl[l] = vsigl[l].max(vsig_cand);
    }
}

/// AVX-512 implementation of [`eval_pair_cols_body`]: eight staged pairs
/// per iteration with 8-wide elementwise math, the per-neighbour values
/// packed lane-wise from single-line [`crate::density::EvalRow`]s.
/// Accumulation stays [`LANES`]-wide and *sequential* (low half, then
/// high half of every 8-wide product), reproducing the portable body's
/// exact batch order — elementwise IEEE ops give the same result at any
/// vector width, so all dispatch tiers stay bitwise identical. A
/// leftover 4-batch is evaluated via the AVX2 clone's shape; the last
/// `< LANES` pairs via the shared scalar tail.
// SAFETY: `#[target_feature(enable = "avx512f,avx2")]` makes this fn
// unsafe to call; the only call site is gated on runtime detection of
// both features, so the instructions are never executed on a CPU
// without them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx2")]
unsafe fn eval_pair_cols_avx512(
    cols: &PairCols,
    ctx: &TargetCtx,
    soa: &crate::density::GasSoa,
    acc: &mut [f64; 3],
    du: &mut f64,
) -> f64 {
    use std::arch::x86_64::*;
    let evalr = soa.evalr.as_slice();
    let n = cols.len();
    let groups = n / (2 * LANES);
    // SAFETY: column loads read indices `o .. o + 7` with
    // `o = g * 2 * LANES` and `g < n / (2 * LANES)`, in bounds of every
    // column (all columns share length `n`); row indices come from
    // `cols.j`, which stages only valid particle indices, so they index
    // `evalr` in bounds (checked indexing regardless); the `storeu`
    // spills target local stack arrays. The AVX-512/AVX2 intrinsics are
    // available per the `#[target_feature]` contract discharged at the
    // detection-gated call site.
    unsafe {
        let zero8 = _mm512_setzero_pd();
        let half8 = _mm512_set1_pd(0.5);
        let one8 = _mm512_set1_pd(1.0);
        let c001_8 = _mm512_set1_pd(0.01);
        let eight8 = _mm512_set1_pd(8.0);
        let pi8 = _mm512_set1_pd(std::f64::consts::PI);
        let neg_alpha8 = _mm512_set1_pd(-ALPHA);
        let beta8 = _mm512_set1_pd(BETA);
        let neg12_8 = _mm512_set1_pd(-12.0);
        let p18_8 = _mm512_set1_pd(18.0);
        let neg6_8 = _mm512_set1_pd(-6.0);
        let rho_floor8 = _mm512_set1_pd(1e-12);
        let ci8 = _mm512_set1_pd(ctx.ci);
        let rhoi8 = _mm512_set1_pd(ctx.rhoi);
        let pi_rho2_8 = _mm512_set1_pd(ctx.pi_rho2);
        let vix8 = _mm512_set1_pd(ctx.vi[0]);
        let viy8 = _mm512_set1_pd(ctx.vi[1]);
        let viz8 = _mm512_set1_pd(ctx.vi[2]);
        let mut axv = _mm256_setzero_pd();
        let mut ayv = _mm256_setzero_pd();
        let mut azv = _mm256_setzero_pd();
        let mut duv = _mm256_setzero_pd();
        let mut vsigv = _mm256_set1_pd(ctx.ci);
        for g in 0..groups {
            let o = g * 2 * LANES;
            let e: [&crate::density::EvalRow; 8] = [
                &evalr[cols.j[o] as usize],
                &evalr[cols.j[o + 1] as usize],
                &evalr[cols.j[o + 2] as usize],
                &evalr[cols.j[o + 3] as usize],
                &evalr[cols.j[o + 4] as usize],
                &evalr[cols.j[o + 5] as usize],
                &evalr[cols.j[o + 6] as usize],
                &evalr[cols.j[o + 7] as usize],
            ];
            macro_rules! pack8 {
                ($f:ident) => {
                    _mm512_set_pd(
                        e[7].$f, e[6].$f, e[5].$f, e[4].$f, e[3].$f, e[2].$f, e[1].$f, e[0].$f,
                    )
                };
            }
            let dx = _mm512_loadu_pd(cols.dx.as_ptr().add(o));
            let dy = _mm512_loadu_pd(cols.dy.as_ptr().add(o));
            let dz = _mm512_loadu_pd(cols.dz.as_ptr().add(o));
            let r2 = _mm512_loadu_pd(cols.r2.as_ptr().add(o));
            let hv = _mm512_loadu_pd(cols.h.as_ptr().add(o));
            let r = _mm512_sqrt_pd(r2);
            let dvx = _mm512_sub_pd(vix8, pack8!(vx));
            let dvy = _mm512_sub_pd(viy8, pack8!(vy));
            let dvz = _mm512_sub_pd(viz8, pack8!(vz));
            let vr = _mm512_add_pd(
                _mm512_add_pd(_mm512_mul_pd(dvx, dx), _mm512_mul_pd(dvy, dy)),
                _mm512_mul_pd(dvz, dz),
            );
            let rhoj = _mm512_max_pd(pack8!(rho), rho_floor8);
            let cj = pack8!(cs);
            let mu = _mm512_div_pd(
                _mm512_mul_pd(hv, vr),
                _mm512_add_pd(r2, _mm512_mul_pd(_mm512_mul_pd(c001_8, hv), hv)),
            );
            let c_mean = _mm512_mul_pd(half8, _mm512_add_pd(ci8, cj));
            let rho_mean = _mm512_mul_pd(half8, _mm512_add_pd(rhoi8, rhoj));
            let visc_full = _mm512_div_pd(
                _mm512_add_pd(
                    _mm512_mul_pd(_mm512_mul_pd(neg_alpha8, c_mean), mu),
                    _mm512_mul_pd(_mm512_mul_pd(beta8, mu), mu),
                ),
                rho_mean,
            );
            let approaching = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(vr, zero8);
            let visc = _mm512_mask_blend_pd(approaching, zero8, visc_full);
            let vsig_cand = _mm512_mask_blend_pd(approaching, ci8, _mm512_sub_pd(c_mean, mu));
            let sigma_h = _mm512_div_pd(
                _mm512_div_pd(eight8, _mm512_mul_pd(_mm512_mul_pd(_mm512_mul_pd(pi8, hv), hv), hv)),
                hv,
            );
            let q = _mm512_div_pd(r, hv);
            let t = _mm512_sub_pd(one8, q);
            let near =
                _mm512_add_pd(_mm512_mul_pd(neg12_8, q), _mm512_mul_pd(_mm512_mul_pd(p18_8, q), q));
            let far = _mm512_mul_pd(_mm512_mul_pd(neg6_8, t), t);
            let piece = _mm512_mask_blend_pd(_mm512_cmp_pd_mask::<_CMP_LT_OQ>(q, half8), far, near);
            let dwr_over_r = _mm512_div_pd(_mm512_mul_pd(sigma_h, piece), r);
            let coeff = _mm512_add_pd(
                _mm512_add_pd(pi_rho2_8, _mm512_div_pd(pack8!(pres), _mm512_mul_pd(rhoj, rhoj))),
                visc,
            );
            let scale = _mm512_mul_pd(_mm512_mul_pd(pack8!(m), coeff), dwr_over_r);
            let px = _mm512_mul_pd(scale, dx);
            let py = _mm512_mul_pd(scale, dy);
            let pz = _mm512_mul_pd(scale, dz);
            let pu = _mm512_mul_pd(_mm512_mul_pd(half8, scale), vr);
            // Two sequential 4-wide folds — the portable batch order.
            axv = _mm256_sub_pd(axv, _mm512_castpd512_pd256(px));
            axv = _mm256_sub_pd(axv, _mm512_extractf64x4_pd::<1>(px));
            ayv = _mm256_sub_pd(ayv, _mm512_castpd512_pd256(py));
            ayv = _mm256_sub_pd(ayv, _mm512_extractf64x4_pd::<1>(py));
            azv = _mm256_sub_pd(azv, _mm512_castpd512_pd256(pz));
            azv = _mm256_sub_pd(azv, _mm512_extractf64x4_pd::<1>(pz));
            duv = _mm256_add_pd(duv, _mm512_castpd512_pd256(pu));
            duv = _mm256_add_pd(duv, _mm512_extractf64x4_pd::<1>(pu));
            vsigv = _mm256_max_pd(vsigv, _mm512_castpd512_pd256(vsig_cand));
            vsigv = _mm256_max_pd(vsigv, _mm512_extractf64x4_pd::<1>(vsig_cand));
        }
        let mut o = groups * 2 * LANES;
        if n - o >= LANES {
            // One leftover full batch, evaluated 4-wide: same op
            // sequence as the AVX2 clone (and the portable body).
            let zero = _mm256_setzero_pd();
            let half = _mm256_set1_pd(0.5);
            let onev = _mm256_set1_pd(1.0);
            let c001 = _mm256_set1_pd(0.01);
            let eight = _mm256_set1_pd(8.0);
            let piv = _mm256_set1_pd(std::f64::consts::PI);
            let neg_alpha = _mm256_set1_pd(-ALPHA);
            let betav = _mm256_set1_pd(BETA);
            let neg12 = _mm256_set1_pd(-12.0);
            let p18 = _mm256_set1_pd(18.0);
            let neg6 = _mm256_set1_pd(-6.0);
            let rho_floor = _mm256_set1_pd(1e-12);
            let civ = _mm256_set1_pd(ctx.ci);
            let rhoiv = _mm256_set1_pd(ctx.rhoi);
            let pi_rho2v = _mm256_set1_pd(ctx.pi_rho2);
            let vixv = _mm256_set1_pd(ctx.vi[0]);
            let viyv = _mm256_set1_pd(ctx.vi[1]);
            let vizv = _mm256_set1_pd(ctx.vi[2]);
            let e0 = &evalr[cols.j[o] as usize];
            let e1 = &evalr[cols.j[o + 1] as usize];
            let e2 = &evalr[cols.j[o + 2] as usize];
            let e3 = &evalr[cols.j[o + 3] as usize];
            let dx = _mm256_loadu_pd(cols.dx.as_ptr().add(o));
            let dy = _mm256_loadu_pd(cols.dy.as_ptr().add(o));
            let dz = _mm256_loadu_pd(cols.dz.as_ptr().add(o));
            let r2 = _mm256_loadu_pd(cols.r2.as_ptr().add(o));
            let hv = _mm256_loadu_pd(cols.h.as_ptr().add(o));
            let r = _mm256_sqrt_pd(r2);
            let dvx = _mm256_sub_pd(vixv, _mm256_set_pd(e3.vx, e2.vx, e1.vx, e0.vx));
            let dvy = _mm256_sub_pd(viyv, _mm256_set_pd(e3.vy, e2.vy, e1.vy, e0.vy));
            let dvz = _mm256_sub_pd(vizv, _mm256_set_pd(e3.vz, e2.vz, e1.vz, e0.vz));
            let vr = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(dvx, dx), _mm256_mul_pd(dvy, dy)),
                _mm256_mul_pd(dvz, dz),
            );
            let rhoj = _mm256_max_pd(_mm256_set_pd(e3.rho, e2.rho, e1.rho, e0.rho), rho_floor);
            let cj = _mm256_set_pd(e3.cs, e2.cs, e1.cs, e0.cs);
            let mu = _mm256_div_pd(
                _mm256_mul_pd(hv, vr),
                _mm256_add_pd(r2, _mm256_mul_pd(_mm256_mul_pd(c001, hv), hv)),
            );
            let c_mean = _mm256_mul_pd(half, _mm256_add_pd(civ, cj));
            let rho_mean = _mm256_mul_pd(half, _mm256_add_pd(rhoiv, rhoj));
            let visc_full = _mm256_div_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(_mm256_mul_pd(neg_alpha, c_mean), mu),
                    _mm256_mul_pd(_mm256_mul_pd(betav, mu), mu),
                ),
                rho_mean,
            );
            let approaching = _mm256_cmp_pd::<_CMP_LT_OQ>(vr, zero);
            let visc = _mm256_blendv_pd(zero, visc_full, approaching);
            let vsig_cand = _mm256_blendv_pd(civ, _mm256_sub_pd(c_mean, mu), approaching);
            let sigma_h = _mm256_div_pd(
                _mm256_div_pd(eight, _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(piv, hv), hv), hv)),
                hv,
            );
            let q = _mm256_div_pd(r, hv);
            let t = _mm256_sub_pd(onev, q);
            let near =
                _mm256_add_pd(_mm256_mul_pd(neg12, q), _mm256_mul_pd(_mm256_mul_pd(p18, q), q));
            let far = _mm256_mul_pd(_mm256_mul_pd(neg6, t), t);
            let piece = _mm256_blendv_pd(far, near, _mm256_cmp_pd::<_CMP_LT_OQ>(q, half));
            let dwr_over_r = _mm256_div_pd(_mm256_mul_pd(sigma_h, piece), r);
            let coeff = _mm256_add_pd(
                _mm256_add_pd(
                    pi_rho2v,
                    _mm256_div_pd(
                        _mm256_set_pd(e3.pres, e2.pres, e1.pres, e0.pres),
                        _mm256_mul_pd(rhoj, rhoj),
                    ),
                ),
                visc,
            );
            let scale = _mm256_mul_pd(
                _mm256_mul_pd(_mm256_set_pd(e3.m, e2.m, e1.m, e0.m), coeff),
                dwr_over_r,
            );
            axv = _mm256_sub_pd(axv, _mm256_mul_pd(scale, dx));
            ayv = _mm256_sub_pd(ayv, _mm256_mul_pd(scale, dy));
            azv = _mm256_sub_pd(azv, _mm256_mul_pd(scale, dz));
            duv = _mm256_add_pd(duv, _mm256_mul_pd(_mm256_mul_pd(half, scale), vr));
            vsigv = _mm256_max_pd(vsigv, vsig_cand);
            o += LANES;
        }
        let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
        let mut dul = [0.0f64; LANES];
        let mut vsigl = [0.0f64; LANES];
        _mm256_storeu_pd(axl.as_mut_ptr(), axv);
        _mm256_storeu_pd(ayl.as_mut_ptr(), ayv);
        _mm256_storeu_pd(azl.as_mut_ptr(), azv);
        _mm256_storeu_pd(dul.as_mut_ptr(), duv);
        _mm256_storeu_pd(vsigl.as_mut_ptr(), vsigv);
        eval_pair_cols_tail(cols, ctx, soa, o, &mut axl, &mut ayl, &mut azl, &mut dul, &mut vsigl);
        acc[0] = reduce_lanes(axl);
        acc[1] = reduce_lanes(ayl);
        acc[2] = reduce_lanes(azl);
        *du = reduce_lanes(dul);
        vsigl[0].max(vsigl[1]).max(vsigl[2]).max(vsigl[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{compute_density, compute_density_with};
    use crate::particles::plummer_gas;

    #[test]
    fn pressure_forces_conserve_momentum() {
        let mut gas = plummer_gas(300, 1.0, 7);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let mut ptot = [0.0f64; 3];
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 {
                ptot[k] += m * a[k];
            }
        }
        let scale: f64 = rates
            .acc
            .iter()
            .zip(&gas.mass)
            .map(|(a, m)| m * (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .sum();
        for k in 0..3 {
            assert!(
                ptot[k].abs() < 1e-9 * scale.max(1.0),
                "momentum leak {ptot:?} (scale {scale})"
            );
        }
    }

    #[test]
    fn compressed_gas_pushes_outwards() {
        // Two particles approaching: viscosity + pressure must repel.
        let mut gas = GasParticles::new();
        gas.push(1.0, [-0.02, 0.0, 0.0], [0.5, 0.0, 0.0], 1.0);
        gas.push(1.0, [0.02, 0.0, 0.0], [-0.5, 0.0, 0.0], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert!(rates.acc[0][0] < 0.0, "left particle pushed left: {:?}", rates.acc);
        assert!(rates.acc[1][0] > 0.0);
        // approaching shocked pair heats up
        assert!(rates.du[0] > 0.0 && rates.du[1] > 0.0, "{:?}", rates.du);
    }

    #[test]
    fn isolated_particle_feels_nothing() {
        let mut gas = GasParticles::new();
        gas.push(1.0, [0.0; 3], [0.0; 3], 1.0);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        assert_eq!(rates.acc[0], [0.0; 3]);
        assert_eq!(rates.du[0], 0.0);
    }

    #[test]
    fn signal_speed_at_least_sound_speed() {
        let mut gas = plummer_gas(100, 1.0, 9);
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let max_c = (0..gas.len()).map(|i| gas.sound_speed(i)).fold(0.0f64, f64::max);
        assert!(rates.v_signal_max >= max_c * 0.999);
    }

    #[test]
    fn cached_path_matches_standalone_pair_set() {
        // the density-built cache and a standalone cache_neighbors cache
        // use different grid cells but must accept the same physical pairs
        let mut gas = plummer_gas(500, 1.0, 13);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut cached = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut cached);
        let standalone = hydro_rates(&gas);
        assert_eq!(cached.interactions, standalone.interactions);
        for (a, b) in cached.acc.iter().zip(&standalone.acc) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() <= 1e-12 * a[k].abs().max(1.0), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale neighbour grid")]
    fn stale_cache_is_rejected() {
        let mut gas = plummer_gas(50, 1.0, 3);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        gas.push(1.0, [0.0; 3], [0.0; 3], 1.0); // grid now stale
        let mut out = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut out);
    }

    #[test]
    fn simd_forces_match_scalar_within_tolerance() {
        let mut gas = plummer_gas(900, 1.0, 13);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut scalar = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut scalar);
        // same densities, same cached neighbour lists — only the gather
        // kernel changes
        scratch.simd = true;
        let mut simd = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut simd);
        assert_eq!(scalar.interactions, simd.interactions, "pair predicate diverged");
        assert_eq!(
            scalar.v_signal_max.to_bits(),
            simd.v_signal_max.to_bits(),
            "signal speeds diverged: {} vs {}",
            scalar.v_signal_max,
            simd.v_signal_max
        );
        let scale: f64 = scalar
            .acc
            .iter()
            .map(|a| (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .fold(0.0, f64::max)
            .max(1.0);
        for (i, (a, b)) in simd.acc.iter().zip(&scalar.acc).enumerate() {
            for k in 0..3 {
                assert!(
                    (a[k] - b[k]).abs() <= 1e-11 * scale,
                    "acc[{i}][{k}]: {} vs {}",
                    a[k],
                    b[k]
                );
            }
        }
        for (i, (a, b)) in simd.du.iter().zip(&scalar.du).enumerate() {
            assert!((a - b).abs() <= 1e-11 * b.abs().max(1.0), "du[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn staged_eval_dispatch_tiers_match_portable_body_bitwise() {
        // Per-particle neighbour lists give every length class (8-wide
        // groups, leftover 4-batches, scalar tails). The dispatched
        // evaluator (widest tier the CPU offers) must be bitwise
        // identical to the portable body on identical staged columns.
        let mut gas = plummer_gas(700, 1.0, 11);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        scratch.ensure_cache(&gas);
        scratch.soa.fill_all(&gas);
        let (soa, nbr_off, nbr_idx, _) = scratch.force_view();
        let mut cols = PairCols::default();
        for i in 0..gas.len() {
            let nbr = &nbr_idx[nbr_off[i] as usize..nbr_off[i + 1] as usize];
            let (mut a1, mut d1) = ([0.0f64; 3], 0.0f64);
            let (_, vs1) = hydro_one_simd(i, soa, nbr, &mut cols, &mut a1, &mut d1);
            let rhoi = soa.rho.as_slice()[i].max(1e-12);
            let ctx = TargetCtx {
                vi: [soa.vel.x.as_slice()[i], soa.vel.y.as_slice()[i], soa.vel.z.as_slice()[i]],
                ci: soa.cs.as_slice()[i],
                rhoi,
                pi_rho2: soa.pres.as_slice()[i] / (rhoi * rhoi),
            };
            let (mut a2, mut d2) = ([0.0f64; 3], 0.0f64);
            let vs2 = eval_pair_cols_body(&cols, &ctx, soa, &mut a2, &mut d2);
            assert_eq!(a1, a2, "acc tier divergence at i={i} ({} pairs)", cols.len());
            assert_eq!(d1.to_bits(), d2.to_bits(), "du tier divergence at i={i}");
            assert_eq!(vs1.to_bits(), vs2.to_bits(), "vsig tier divergence at i={i}");
        }
    }

    #[test]
    fn filter_dispatch_tiers_match_scalar_filter_bitwise() {
        // The vector filters (4- and 8-wide, wherever the CPU offers
        // them) must stage exactly the pairs the scalar reference
        // predicate stages — same set, same order, same bits in every
        // column. Neighbour lists of every length class exercise the
        // group/batch/tail splits.
        let mut gas = plummer_gas(700, 1.0, 23);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        scratch.ensure_cache(&gas);
        scratch.soa.fill_all(&gas);
        let (soa, nbr_off, nbr_idx, _) = scratch.force_view();
        let filt = soa.filt.as_slice();
        let evalr = soa.evalr.as_slice();
        let mut reference = PairCols::default();
        let mut dispatched = PairCols::default();
        for i in 0..gas.len() {
            let nbr = &nbr_idx[nbr_off[i] as usize..nbr_off[i + 1] as usize];
            reference.clear();
            filter_stage_scalar(i, filt[i], filt, evalr, nbr, &mut reference);
            for width in ["avx2", "avx512"] {
                #[cfg(target_arch = "x86_64")]
                {
                    dispatched.clear();
                    if width == "avx2" && std::arch::is_x86_feature_detected!("avx2") {
                        // SAFETY: gated on runtime AVX2 detection.
                        unsafe { filter_stage_avx2(i, filt[i], filt, evalr, nbr, &mut dispatched) };
                    } else if width == "avx512"
                        && std::arch::is_x86_feature_detected!("avx512f")
                        && std::arch::is_x86_feature_detected!("avx2")
                    {
                        // SAFETY: gated on runtime AVX-512F + AVX2 detection.
                        unsafe {
                            filter_stage_avx512(i, filt[i], filt, evalr, nbr, &mut dispatched)
                        };
                    } else {
                        continue;
                    }
                    assert_eq!(reference.j, dispatched.j, "{width} staged set at i={i}");
                    for (a, b) in [
                        (&reference.dx, &dispatched.dx),
                        (&reference.dy, &dispatched.dy),
                        (&reference.dz, &dispatched.dz),
                        (&reference.r2, &dispatched.r2),
                        (&reference.h, &dispatched.h),
                    ] {
                        assert_eq!(a.len(), b.len());
                        for (x, y) in a.iter().zip(b.iter()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "{width} column bits at i={i}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn simd_forces_conserve_momentum() {
        let mut gas = plummer_gas(400, 1.0, 7);
        let mut scratch = crate::density::SphScratch::new();
        scratch.simd = true;
        compute_density_with(&mut gas, &mut scratch);
        let mut rates = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut rates);
        let mut ptot = [0.0f64; 3];
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 {
                ptot[k] += m * a[k];
            }
        }
        let scale: f64 = rates
            .acc
            .iter()
            .zip(&gas.mass)
            .map(|(a, m)| m * (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt())
            .sum();
        for k in 0..3 {
            assert!(ptot[k].abs() < 1e-9 * scale.max(1.0), "momentum leak {ptot:?}");
        }
    }

    #[test]
    fn rates_buffers_are_reused() {
        let mut gas = plummer_gas(200, 1.0, 15);
        let mut scratch = crate::density::SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        let mut out = HydroRates::new();
        hydro_rates_into(&gas, &mut scratch, &mut out);
        let cap = out.acc.capacity();
        hydro_rates_into(&gas, &mut scratch, &mut out);
        assert_eq!(out.acc.capacity(), cap, "acc buffer reallocated");
        assert_eq!(out.acc.len(), gas.len());
    }
}
