//! Neighbour search (cell grid) and adaptive density estimation.

use crate::kernel::w;
use crate::particles::GasParticles;
use rayon::prelude::*;
use std::collections::HashMap;

/// A uniform cell grid for fixed-radius neighbour queries.
pub struct NeighborGrid {
    cell: f64,
    map: HashMap<(i32, i32, i32), Vec<u32>>,
}

impl NeighborGrid {
    /// Build over positions with the given cell size.
    pub fn build(pos: &[[f64; 3]], cell: f64) -> NeighborGrid {
        assert!(cell > 0.0);
        let mut map: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        for (i, p) in pos.iter().enumerate() {
            map.entry(Self::key(p, cell)).or_default().push(i as u32);
        }
        NeighborGrid { cell, map }
    }

    fn key(p: &[f64; 3], cell: f64) -> (i32, i32, i32) {
        ((p[0] / cell).floor() as i32, (p[1] / cell).floor() as i32, (p[2] / cell).floor() as i32)
    }

    /// Indices of particles within `radius` of `center` (inclusive of the
    /// querying particle if it lies in range).
    pub fn within(&self, pos: &[[f64; 3]], center: &[f64; 3], radius: f64) -> Vec<u32> {
        let r = (radius / self.cell).ceil() as i32;
        let (cx, cy, cz) = Self::key(center, self.cell);
        let r2 = radius * radius;
        let mut out = Vec::new();
        for dx in -r..=r {
            for dy in -r..=r {
                for dz in -r..=r {
                    if let Some(bucket) = self.map.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &i in bucket {
                            let p = &pos[i as usize];
                            let d = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
                            if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= r2 {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Desired neighbour count (Gadget's `DesNumNgb` is 64 in 3D by default;
/// we use 32 because our test problems are small).
pub const N_NEIGHBORS: usize = 32;

/// Maximum h-adaptation iterations per density pass.
const H_ITERS: usize = 4;

/// Compute densities with adaptive smoothing lengths. Each particle's `h`
/// is adapted so roughly [`N_NEIGHBORS`] particles fall inside it.
/// Returns the total number of neighbour interactions (for the cost
/// model).
pub fn compute_density(gas: &mut GasParticles) -> u64 {
    let n = gas.len();
    if n == 0 {
        return 0;
    }
    // initial guess for h from the mean interparticle spacing
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in &gas.pos {
        for k in 0..3 {
            lo[k] = lo[k].min(p[k]);
            hi[k] = hi[k].max(p[k]);
        }
    }
    let vol = (hi[0] - lo[0]).max(1e-6) * (hi[1] - lo[1]).max(1e-6) * (hi[2] - lo[2]).max(1e-6);
    // floor by the bounding-box diagonal so sparse/degenerate sets (a pair
    // of particles on a line, say) still reach each other after adaptation
    let diag = ((hi[0] - lo[0]).powi(2) + (hi[1] - lo[1]).powi(2) + (hi[2] - lo[2]).powi(2))
        .sqrt()
        .max(1e-6);
    let h_mean =
        (vol / n as f64 * N_NEIGHBORS as f64).cbrt().max(diag / (n as f64).cbrt()).max(1e-6);
    for h in &mut gas.h {
        if *h <= 0.0 || !h.is_finite() {
            *h = h_mean;
        }
    }
    let grid = NeighborGrid::build(&gas.pos, h_mean.max(1e-6));
    let pos = &gas.pos;
    let mass = &gas.mass;
    let results: Vec<(f64, f64, u64)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut h = gas.h[i].min(h_mean * 8.0).max(h_mean * 0.05);
            let mut rho = 0.0;
            let mut inter = 0u64;
            for _ in 0..H_ITERS {
                let nbr = grid.within(pos, &pos[i], h);
                inter += nbr.len() as u64;
                let found = nbr.len().max(1);
                if found as f64 > 0.8 * N_NEIGHBORS as f64
                    && (found as f64) < 1.3 * N_NEIGHBORS as f64
                {
                    rho = sum_density(&nbr, pos, mass, &pos[i], h);
                    break;
                }
                // adapt towards the target count
                h *= (N_NEIGHBORS as f64 / found as f64).cbrt().clamp(0.5, 2.0);
                h = h.clamp(h_mean * 0.05, h_mean * 8.0);
                rho = sum_density(&grid.within(pos, &pos[i], h), pos, mass, &pos[i], h);
            }
            if rho <= 0.0 {
                // lone particle: density of itself
                rho = mass[i] * w(0.0, h);
            }
            (rho, h, inter)
        })
        .collect();
    let mut total = 0;
    for (i, (rho, h, inter)) in results.into_iter().enumerate() {
        gas.rho[i] = rho;
        gas.h[i] = h;
        total += inter;
    }
    total
}

fn sum_density(nbr: &[u32], pos: &[[f64; 3]], mass: &[f64], c: &[f64; 3], h: f64) -> f64 {
    let mut rho = 0.0;
    for &j in nbr {
        let p = &pos[j as usize];
        let d = [p[0] - c[0], p[1] - c[1], p[2] - c[2]];
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        rho += mass[j as usize] * w(r, h);
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform lattice of unit-mass particles: density must come out near
    /// the analytic value n/V.
    #[test]
    fn uniform_lattice_density() {
        let mut gas = GasParticles::new();
        let n_side = 8;
        let spacing = 1.0 / n_side as f64;
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    gas.push(
                        1.0,
                        [i as f64 * spacing, j as f64 * spacing, k as f64 * spacing],
                        [0.0; 3],
                        1.0,
                    );
                }
            }
        }
        compute_density(&mut gas);
        let expected = 1.0 / (spacing * spacing * spacing); // mass density
                                                            // check an interior particle (index of center-ish particle)
        let mid = (n_side / 2 * n_side * n_side + n_side / 2 * n_side + n_side / 2) as usize;
        let rel = (gas.rho[mid] - expected).abs() / expected;
        assert!(rel < 0.15, "rho = {} vs {expected}", gas.rho[mid]);
    }

    #[test]
    fn neighbor_counts_near_target() {
        let gas = {
            let mut g = crate::particles::plummer_gas(1000, 1.0, 3);
            compute_density(&mut g);
            g
        };
        // check neighbor count within h for a sample of interior particles
        let grid = NeighborGrid::build(&gas.pos, 0.1);
        let mut ok = 0;
        let mut total = 0;
        for i in (0..gas.len()).step_by(50) {
            let r = (gas.pos[i][0].powi(2) + gas.pos[i][1].powi(2) + gas.pos[i][2].powi(2)).sqrt();
            if r > 1.0 {
                continue; // halo particles can be starved
            }
            let cnt = grid.within(&gas.pos, &gas.pos[i], gas.h[i]).len();
            total += 1;
            if (N_NEIGHBORS / 3..=N_NEIGHBORS * 3).contains(&cnt) {
                ok += 1;
            }
        }
        assert!(ok * 10 >= total * 7, "{ok}/{total} particles near target count");
    }

    #[test]
    fn grid_within_finds_all_in_radius() {
        let pos = vec![[0.0, 0.0, 0.0], [0.05, 0.0, 0.0], [0.2, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let grid = NeighborGrid::build(&pos, 0.1);
        let mut got = grid.within(&pos, &[0.0, 0.0, 0.0], 0.1);
        got.sort();
        assert_eq!(got, vec![0, 1]);
        let all = grid.within(&pos, &[0.0, 0.0, 0.0], 2.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn empty_gas_is_fine() {
        let mut gas = GasParticles::new();
        assert_eq!(compute_density(&mut gas), 0);
    }
}
