//! Adaptive density estimation over the CSR neighbour grid.
//!
//! The hot path is allocation-free in steady state: the grid, the
//! per-thread candidate buffers and the cached per-particle neighbour
//! lists all live in a [`SphScratch`] owned by the caller and are reused
//! across steps. Results are bitwise-identical to the pre-refactor
//! HashMap-grid pass (`crate::legacy`): same cell decomposition, same
//! candidate visit order, same accumulation order.

use crate::grid::CsrGrid;
use crate::kernel::w;
use crate::particles::GasParticles;
use jc_compute::par;
use jc_compute::soa::{reduce_lanes, AlignedF64, Soa3, LANES};

/// Desired neighbour count (Gadget's `DesNumNgb` is 64 in 3D by default;
/// we use 32 because our test problems are small).
pub const N_NEIGHBORS: usize = 32;

/// Maximum h-adaptation iterations per density pass.
pub(crate) const H_ITERS: usize = 4;

/// Minimum particles per worker thread before fanning out.
const PAR_GRAIN: usize = 64;

/// Candidate buffer entry: (particle index, squared distance).
pub(crate) type Candidate = (u32, f64);

/// Per-worker staged active-pair columns for the force pass's SoA path:
/// the filter phase writes each surviving pair's index and the values
/// its predicate already computed (`dx, dy, dz, r², h_ij`) as parallel
/// columns, so the interaction phase reads them back with sequential
/// vector loads instead of re-gathering positions and re-deriving the
/// separation — only the velocity/thermodynamic columns still need
/// gathers. Reused across calls (allocation-free once warm).
#[derive(Default)]
pub(crate) struct PairCols {
    /// Neighbour index of each active pair.
    pub(crate) j: Vec<u32>,
    /// Separation `pos[i] - pos[j]`, one column per component.
    pub(crate) dx: Vec<f64>,
    /// See [`PairCols::dx`].
    pub(crate) dy: Vec<f64>,
    /// See [`PairCols::dx`].
    pub(crate) dz: Vec<f64>,
    /// Squared pair distance (always `> 0`: staged pairs are
    /// pre-filtered).
    pub(crate) r2: Vec<f64>,
    /// Symmetrized smoothing length `(h_i + h_j) / 2`.
    pub(crate) h: Vec<f64>,
}

impl PairCols {
    /// Staged pair count.
    pub(crate) fn len(&self) -> usize {
        self.j.len()
    }

    /// Drop all staged pairs, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.j.clear();
        self.dx.clear();
        self.dy.clear();
        self.dz.clear();
        self.r2.clear();
        self.h.clear();
    }

    /// Stage one accepted pair.
    #[inline(always)]
    pub(crate) fn push(&mut self, j: u32, dx: f64, dy: f64, dz: f64, r2: f64, h_ij: f64) {
        self.j.push(j);
        self.dx.push(dx);
        self.dy.push(dy);
        self.dz.push(dz);
        self.r2.push(r2);
        self.h.push(h_ij);
    }
}

/// One packed filter row: everything the pair predicate reads for a
/// candidate (`x, y, z, h`), 32-byte aligned so a random candidate
/// probe touches exactly one cache line. The force pass's filter phase
/// is bound by these probes — through the split SoA columns each
/// candidate costs four lines, which made the "SIMD" path slower than
/// the scalar AoS walk it replaces.
#[derive(Clone, Copy, Default)]
#[repr(C, align(32))]
pub(crate) struct FiltRow {
    pub(crate) x: f64,
    pub(crate) y: f64,
    pub(crate) z: f64,
    pub(crate) h: f64,
}

/// One packed interaction row: everything the pair evaluator reads for
/// an accepted neighbour (`vx, vy, vz, rho, pres, cs, m`), padded to
/// exactly one 64-byte cache line. Replaces seven per-column gathers
/// (seven lines) with a single line per accepted pair.
#[derive(Clone, Copy, Default)]
#[repr(C, align(64))]
pub(crate) struct EvalRow {
    pub(crate) vx: f64,
    pub(crate) vy: f64,
    pub(crate) vz: f64,
    pub(crate) rho: f64,
    pub(crate) pres: f64,
    pub(crate) cs: f64,
    pub(crate) m: f64,
    pub(crate) _pad: f64,
}

/// SoA mirror of the gas columns the batched kernels gather through the
/// cached neighbour lists: positions/velocities plus the per-particle
/// scalars (mass, smoothing length, density, pressure, sound speed),
/// and the packed per-particle [`FiltRow`]/[`EvalRow`] lines the force
/// pass probes by neighbour index. Owned by [`SphScratch`] and refilled
/// in place — allocation-free once capacity is warm.
#[derive(Default)]
pub(crate) struct GasSoa {
    pub(crate) pos: Soa3,
    pub(crate) vel: Soa3,
    pub(crate) m: AlignedF64,
    pub(crate) h: AlignedF64,
    pub(crate) rho: AlignedF64,
    pub(crate) pres: AlignedF64,
    pub(crate) cs: AlignedF64,
    /// Packed predicate inputs, indexed by particle.
    pub(crate) filt: Vec<FiltRow>,
    /// Packed evaluator inputs, indexed by particle.
    pub(crate) evalr: Vec<EvalRow>,
}

impl GasSoa {
    /// Refill the mass column only (all the density pass gathers).
    fn fill_mass(&mut self, gas: &GasParticles) {
        self.m.copy_from(&gas.mass);
    }

    /// Refill every column (the force pass gathers them all; densities
    /// must be fresh so pressure/sound speed are current).
    pub(crate) fn fill_all(&mut self, gas: &GasParticles) {
        let n = gas.len();
        self.pos.fill_from(&gas.pos);
        self.vel.fill_from(&gas.vel);
        self.m.copy_from(&gas.mass);
        self.h.copy_from(&gas.h);
        self.rho.copy_from(&gas.rho);
        self.pres.resize(n);
        self.cs.resize(n);
        let (pres, cs) = (self.pres.as_mut_slice(), self.cs.as_mut_slice());
        for i in 0..n {
            pres[i] = gas.pressure(i);
            cs[i] = gas.sound_speed(i);
        }
        self.filt.clear();
        self.evalr.clear();
        self.filt.reserve(n);
        self.evalr.reserve(n);
        for i in 0..n {
            self.filt.push(FiltRow {
                x: gas.pos[i][0],
                y: gas.pos[i][1],
                z: gas.pos[i][2],
                h: gas.h[i],
            });
            self.evalr.push(EvalRow {
                vx: gas.vel[i][0],
                vy: gas.vel[i][1],
                vz: gas.vel[i][2],
                rho: gas.rho[i],
                pres: pres[i],
                cs: cs[i],
                m: gas.mass[i],
                _pad: 0.0,
            });
        }
    }
}

/// Reusable scratch for the SPH kernels: the CSR grid, per-thread
/// candidate buffers, and the cached per-particle neighbour lists that
/// [`crate::forces::hydro_rates_into`] consumes.
///
/// Ownership contract: the caller owns the scratch and keeps it across
/// steps; [`compute_density_with`] (re)builds the grid each call and
/// marks the neighbour cache stale; `hydro_rates_into` refreshes the
/// cache lazily from that grid, validating once per call that the grid
/// was built for the current particle count.
pub struct SphScratch {
    /// Worker-thread cap: 0 = auto (one per core or the `JC_THREADS`
    /// override, subject to a minimum grain), 1 = strictly sequential.
    /// The sequential path performs zero heap allocations in steady
    /// state; parallel runs allocate only thread-spawn bookkeeping.
    pub max_threads: usize,
    /// Select the SIMD-friendly SoA compute path: density sums and force
    /// gathers run [`LANES`] wide over aligned SoA gas columns with the
    /// fixed [`reduce_lanes`] reduction order, and the density pass skips
    /// the legacy-order candidate re-sort. Results are bitwise stable
    /// from run to run (any thread count) but match the scalar path only
    /// to rounding — the scalar path stays the bitwise-pinned reference.
    pub simd: bool,
    pub(crate) grid: CsrGrid,
    /// Cached-neighbour CSR offsets (`n + 1` entries) and indices. List
    /// `i` holds every particle within `(h[i] + max(h))/2` of particle
    /// `i`, which covers every symmetrized pair support `h_ij`.
    nbr_off: Vec<u32>,
    nbr_idx: Vec<u32>,
    /// One candidate buffer per worker thread.
    bufs: Vec<Vec<Candidate>>,
    /// Per-worker staging areas for the cache fill (one grid query per
    /// particle: ids staged here, then memcpy'd into `nbr_idx`).
    stage: Vec<Vec<u32>>,
    /// Scratch copy of `h` for the median cell-size estimate.
    h_tmp: Vec<f64>,
    /// Per-particle legacy-grid sort keys: the adaptation runs on a finer
    /// grid than the legacy pass, so the final density sum re-sorts its
    /// candidates into the legacy visit order (coarse cell, then index)
    /// to stay bitwise-reproducible.
    sort_key: Vec<u128>,
    /// Particle count the neighbour cache was built for.
    cached_n: usize,
    /// Particle count the grid was built for.
    grid_for: usize,
    /// SoA gas mirror for the SIMD gather paths.
    pub(crate) soa: GasSoa,
    /// Per-worker staged active-pair columns for the force pass's SoA
    /// path (see [`PairCols`]).
    pairs: Vec<PairCols>,
}

impl Default for SphScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SphScratch {
    /// Empty scratch (no allocation until first use).
    pub fn new() -> SphScratch {
        SphScratch {
            max_threads: 0,
            simd: false,
            grid: CsrGrid::new(),
            nbr_off: Vec::new(),
            nbr_idx: Vec::new(),
            bufs: Vec::new(),
            stage: Vec::new(),
            h_tmp: Vec::new(),
            sort_key: Vec::new(),
            cached_n: usize::MAX,
            grid_for: usize::MAX,
            soa: GasSoa::default(),
            pairs: Vec::new(),
        }
    }

    /// Worker count for a problem of size `n` (shared by the density,
    /// cache-fill and force passes) — the workspace-wide policy from
    /// [`jc_compute::par::threads_for`]. Core detection is lazy and the
    /// explicit cap wins over `JC_THREADS`, so the sequential mode
    /// (`max_threads == 1`) never touches the (allocating) auto
    /// detection.
    pub(crate) fn threads_for(&self, n: usize) -> usize {
        par::threads_for(n, self.max_threads, PAR_GRAIN)
    }

    /// Cached neighbour list of particle `i` (the force pass reads the
    /// CSR arrays directly through [`SphScratch::force_view`]).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn neighbors(&self, i: usize) -> &[u32] {
        &self.nbr_idx[self.nbr_off[i] as usize..self.nbr_off[i + 1] as usize]
    }

    /// Split-borrow view for the force pass: the SoA columns and the
    /// cached-neighbour CSR arrays (shared) plus the per-worker staged
    /// active-pair columns (exclusive — the density pass never touches
    /// them; its own candidate buffers stay private to it).
    pub(crate) fn force_view(&mut self) -> (&GasSoa, &[u32], &[u32], &mut Vec<PairCols>) {
        (&self.soa, &self.nbr_off, &self.nbr_idx, &mut self.pairs)
    }

    /// Particle count the neighbour cache is valid for (`None` if never
    /// built).
    pub fn cached_for(&self) -> Option<usize> {
        (self.cached_n != usize::MAX).then_some(self.cached_n)
    }

    /// Total cached neighbour entries.
    pub fn cached_neighbor_entries(&self) -> usize {
        self.nbr_idx.len()
    }

    /// Build the neighbour cache for `gas` without re-adapting smoothing
    /// lengths (for callers that computed densities separately; the
    /// Gadget path gets the cache for free from [`compute_density_with`]).
    pub fn cache_neighbors(&mut self, gas: &GasParticles) {
        let n = gas.len();
        if n == 0 {
            self.nbr_off.clear();
            self.nbr_off.push(0);
            self.nbr_idx.clear();
            self.cached_n = 0;
            return;
        }
        let mean_h = (gas.h.iter().sum::<f64>() / n as f64).max(1e-6);
        self.grid.build_into(&gas.pos, mean_h);
        self.grid_for = n;
        self.fill_neighbor_cache(&gas.pos, &gas.h);
    }

    /// Ensure the neighbour cache is current for `gas`, filling it from
    /// the grid the density pass built (the force pass's entry point).
    /// Panics if the grid itself is stale — the caller must run
    /// [`compute_density_with`] (or [`SphScratch::cache_neighbors`])
    /// for this particle set first.
    pub(crate) fn ensure_cache(&mut self, gas: &GasParticles) {
        let n = gas.len();
        if self.cached_n == n {
            return;
        }
        assert_eq!(
            self.grid_for, n,
            "stale neighbour grid: run compute_density_with (or cache_neighbors) for this gas first"
        );
        self.fill_neighbor_cache(&gas.pos, &gas.h);
    }

    /// Fill `nbr_off`/`nbr_idx` from the already-built grid: list `i`
    /// holds neighbours within `(h[i] + h_max)/2`, which contains every
    /// pair with `r < h_ij` regardless of which side is larger. One grid
    /// query per particle: each worker stages its chunk's ids in a
    /// reusable buffer and records the per-particle counts, then the
    /// stages are concatenated into the CSR arrays.
    fn fill_neighbor_cache(&mut self, pos: &[[f64; 3]], h: &[f64]) {
        let n = pos.len();
        let h_max = h.iter().cloned().fold(0.0f64, f64::max).max(1e-6);
        let threads = self.threads_for(n);
        let grid = &self.grid;
        self.nbr_off.clear();
        self.nbr_off.resize(n + 1, 0);
        self.stage.resize_with(threads, Vec::new);
        for stage in &mut self.stage {
            stage.clear(); // a previous call may have used more workers
        }
        let counts = &mut self.nbr_off[1..];
        par::chunked(
            threads,
            counts,
            &mut self.stage,
            (),
            |s0, cc: &mut [u32], stage| {
                stage.clear();
                for (k, c) in cc.iter_mut().enumerate() {
                    let i = s0 + k;
                    let before = stage.len();
                    grid.for_each_within(pos, &pos[i], 0.5 * (h[i] + h_max), |j, _| stage.push(j));
                    *c = (stage.len() - before) as u32;
                }
            },
            |(), ()| (),
        );
        for i in 1..=n {
            self.nbr_off[i] += self.nbr_off[i - 1];
        }
        // stages are in ascending-chunk order: concatenation is the CSR
        // index array
        self.nbr_idx.clear();
        for stage in &self.stage {
            self.nbr_idx.extend_from_slice(stage);
        }
        debug_assert_eq!(self.nbr_idx.len(), self.nbr_off[n] as usize);
        self.cached_n = n;
    }
}

/// Mean-interparticle-spacing smoothing length estimate (shared with the
/// legacy reference pass so both seed the adaptation identically).
pub(crate) fn h_mean_of(pos: &[[f64; 3]]) -> f64 {
    let n = pos.len();
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in pos {
        for k in 0..3 {
            lo[k] = lo[k].min(p[k]);
            hi[k] = hi[k].max(p[k]);
        }
    }
    let vol = (hi[0] - lo[0]).max(1e-6) * (hi[1] - lo[1]).max(1e-6) * (hi[2] - lo[2]).max(1e-6);
    // floor by the bounding-box diagonal so sparse/degenerate sets (a pair
    // of particles on a line, say) still reach each other after adaptation
    let diag = ((hi[0] - lo[0]).powi(2) + (hi[1] - lo[1]).powi(2) + (hi[2] - lo[2]).powi(2))
        .sqrt()
        .max(1e-6);
    (vol / n as f64 * N_NEIGHBORS as f64).cbrt().max(diag / (n as f64).cbrt()).max(1e-6)
}

/// Compute densities with adaptive smoothing lengths (temporary scratch;
/// prefer [`compute_density_with`] on a hot path).
pub fn compute_density(gas: &mut GasParticles) -> u64 {
    compute_density_with(gas, &mut SphScratch::new())
}

/// Compute densities with adaptive smoothing lengths, reusing `scratch`.
/// Each particle's `h` is adapted so roughly [`N_NEIGHBORS`] particles
/// fall inside it. Marks the cached neighbour lists stale; the force pass
/// ([`crate::forces::hydro_rates_into`]) refreshes them lazily from the
/// grid built here. Returns the total number of neighbour interactions
/// of the adaptation (for the cost model).
// jc-lint: no-alloc
pub fn compute_density_with(gas: &mut GasParticles, scratch: &mut SphScratch) -> u64 {
    let n = gas.len();
    scratch.cached_n = usize::MAX;
    if n == 0 {
        scratch.nbr_off.clear();
        scratch.nbr_off.push(0);
        scratch.nbr_idx.clear();
        scratch.cached_n = 0;
        scratch.grid_for = 0;
        return 0;
    }
    let h_mean = h_mean_of(&gas.pos);
    for h in &mut gas.h {
        if *h <= 0.0 || !h.is_finite() {
            *h = h_mean;
        }
    }
    // The legacy pass gridded at cell = h_mean, a bbox-volume estimate
    // that a halo inflates far past the typical smoothing length, leaving
    // dense regions packed into a handful of cells. Grid at the median
    // incoming h instead (clamped to the legacy cell): candidate SETS —
    // and so neighbour counts, h trajectories and interaction totals —
    // are cell-size-independent, and the final density sums restore the
    // legacy accumulation order via the per-particle sort keys below.
    let cell_legacy = h_mean.max(1e-6);
    scratch.h_tmp.clear();
    scratch.h_tmp.extend_from_slice(&gas.h);
    let mid = scratch.h_tmp.len() / 2;
    let (_, median_h, _) = scratch.h_tmp.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let cell = median_h.clamp(cell_legacy / 16.0, cell_legacy).max(1e-6);
    scratch.grid.build_into(&gas.pos, cell);
    scratch.grid_for = n;
    let simd = scratch.simd;
    if simd {
        // the SoA path neither re-sorts candidates into legacy order nor
        // needs the keys — it gathers masses through the aligned column
        scratch.sort_key.clear();
        scratch.soa.fill_mass(gas);
    } else {
        scratch.sort_key.clear();
        scratch
            .sort_key
            .extend(gas.pos.iter().map(|p| CsrGrid::pack(CsrGrid::key(p, cell_legacy))));
    }
    let threads = scratch.threads_for(n);
    // jc-lint: allow(no-alloc): Vec::new is the resize_with element factory — empty Vecs don't allocate
    scratch.bufs.resize_with(threads, Vec::new);
    let GasParticles { pos, mass, rho, h, .. } = gas;
    let (pos, mass) = (&*pos, &*mass);
    let grid = &scratch.grid;
    let sort_key = &*scratch.sort_key;
    let soa_m = scratch.soa.m.as_slice();
    par::chunked(
        threads,
        (rho.as_mut_slice(), h.as_mut_slice()),
        &mut scratch.bufs,
        0u64,
        |s0, (rc, hc): (&mut [f64], &mut [f64]), buf| {
            let mut inter = 0u64;
            for (k, (r, hh)) in rc.iter_mut().zip(hc.iter_mut()).enumerate() {
                let (rv, hv, it) = if simd {
                    adapt_one_simd(s0 + k, pos, soa_m, grid, *hh, h_mean, buf)
                } else {
                    adapt_one(s0 + k, pos, mass, grid, sort_key, *hh, h_mean, buf)
                };
                *r = rv;
                *hh = hv;
                inter += it;
            }
            inter
        },
        |a, b| a + b,
    )
}

/// One particle's h-adaptation. Three departures from the legacy loop,
/// none observable in the results:
///
/// * where the legacy pass re-queries the grid for an unchanged `h` (the
///   post-adapt query is repeated verbatim at the top of the next
///   iteration, and a clamped adaptation can leave `h` in place), the
///   staged candidate buffer is reused;
/// * a shrinking `h` filters the buffer in order on the stored squared
///   distances instead of re-scanning the grid (the new candidate set is
///   a subset of the old one);
/// * the per-iteration density sums — all dead values except the last —
///   are dropped; the one surviving sum runs over the final buffer,
///   re-sorted into the legacy accumulation order (coarse legacy cell in
///   lexicographic order, then ascending index), term-for-term identical
///   to the pre-refactor pass.
#[allow(clippy::too_many_arguments)]
fn adapt_one(
    i: usize,
    pos: &[[f64; 3]],
    mass: &[f64],
    grid: &CsrGrid,
    sort_key: &[u128],
    h_in: f64,
    h_mean: f64,
    buf: &mut Vec<Candidate>,
) -> (f64, f64, u64) {
    let (h, inter) = adapt_h(i, pos, grid, h_in, h_mean, buf);
    buf.sort_unstable_by_key(|&(j, _)| (sort_key[j as usize], j));
    let mut rho = sum_density(buf, mass, h);
    if rho <= 0.0 {
        // lone particle: density of itself
        rho = mass[i] * w(0.0, h);
    }
    (rho, h, inter)
}

/// The shared h-adaptation trajectory: iterate `h` towards
/// [`N_NEIGHBORS`] candidates, leaving the final candidate set (in grid
/// visit order) in `buf`. Both density paths run exactly this loop —
/// the "identical adaptation trajectory" invariant the SoA tests pin is
/// this one function, not two synchronized copies. Returns the final
/// `h` and the interaction total.
fn adapt_h(
    i: usize,
    pos: &[[f64; 3]],
    grid: &CsrGrid,
    h_in: f64,
    h_mean: f64,
    buf: &mut Vec<Candidate>,
) -> (f64, u64) {
    let c = pos[i];
    let mut h = h_in.min(h_mean * 8.0).max(h_mean * 0.05);
    let mut inter = 0u64;
    let mut buf_h = f64::NAN; // the h the buffer currently holds
    for _ in 0..H_ITERS {
        if buf_h != h {
            fill_candidates(buf, grid, pos, &c, h);
            buf_h = h;
        }
        inter += buf.len() as u64;
        let found = buf.len().max(1);
        if found as f64 > 0.8 * N_NEIGHBORS as f64 && (found as f64) < 1.3 * N_NEIGHBORS as f64 {
            break;
        }
        // adapt towards the target count
        h *= (N_NEIGHBORS as f64 / found as f64).cbrt().clamp(0.5, 2.0);
        h = h.clamp(h_mean * 0.05, h_mean * 8.0);
        if buf_h != h {
            if h < buf_h {
                let r2 = h * h;
                buf.retain(|&(_, d2)| d2 <= r2);
            } else {
                fill_candidates(buf, grid, pos, &c, h);
            }
            buf_h = h;
        }
    }
    (h, inter)
}

#[inline]
fn fill_candidates(
    buf: &mut Vec<Candidate>,
    grid: &CsrGrid,
    pos: &[[f64; 3]],
    c: &[f64; 3],
    h: f64,
) {
    buf.clear();
    grid.for_each_within(pos, c, h, |j, d2| buf.push((j, d2)));
}

fn sum_density(buf: &[Candidate], mass: &[f64], h: f64) -> f64 {
    let mut rho = 0.0;
    for &(j, d2) in buf {
        rho += mass[j as usize] * w(d2.sqrt(), h);
    }
    rho
}

/// [`adapt_one`] for the SoA path ([`SphScratch::simd`]): the same
/// h-adaptation trajectory (identical candidate sets, counts and
/// interaction totals), but the final density sum runs [`LANES`] wide
/// over the aligned mass column in grid-candidate order — the legacy
/// re-sort (and the whole sort-key machinery) is skipped, since this
/// path is bound to the scalar reference by tolerance, not bitwise.
fn adapt_one_simd(
    i: usize,
    pos: &[[f64; 3]],
    mass: &[f64],
    grid: &CsrGrid,
    h_in: f64,
    h_mean: f64,
    buf: &mut Vec<Candidate>,
) -> (f64, f64, u64) {
    let (h, inter) = adapt_h(i, pos, grid, h_in, h_mean, buf);
    let mut rho = sum_density_lanes(buf, mass, h);
    if rho <= 0.0 {
        rho = mass[i] * w(0.0, h);
    }
    (rho, h, inter)
}

/// The [`LANES`]-wide cubic-spline density sum: candidates are consumed
/// in fixed batches (lane `l` takes candidate `o + l`, the tail lands in
/// lanes `0..tail`), the kernel is evaluated branch-free (both spline
/// pieces computed, selected by `q`), and the lane accumulators reduce
/// through [`reduce_lanes`]. The normalization `σ = 8/(π h³)` is
/// factored out of the sum — one of the roundings that separates this
/// path from the scalar reference.
fn sum_density_lanes(buf: &[Candidate], mass: &[f64], h: f64) -> f64 {
    let sigma = 8.0 / (std::f64::consts::PI * h * h * h);
    let inv_h = 1.0 / h;
    let mut lanes = [0.0f64; LANES];
    let batches = buf.len() / LANES;
    macro_rules! lane {
        ($l:expr, $cand:expr) => {{
            let (j, d2) = $cand;
            let q = d2.sqrt() * inv_h;
            let t = 1.0 - q;
            let near = 1.0 - 6.0 * q * q + 6.0 * q * q * q;
            let far = 2.0 * t * t * t;
            let val = if q < 0.5 {
                near
            } else if q < 1.0 {
                far
            } else {
                0.0
            };
            lanes[$l] += mass[j as usize] * val;
        }};
    }
    for b in 0..batches {
        let o = b * LANES;
        let batch: &[Candidate; LANES] = buf[o..o + LANES].try_into().unwrap();
        for l in 0..LANES {
            lane!(l, batch[l]);
        }
    }
    for (l, &cand) in buf[batches * LANES..].iter().enumerate() {
        lane!(l, cand);
    }
    sigma * reduce_lanes(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform lattice of unit-mass particles: density must come out near
    /// the analytic value n/V.
    #[test]
    fn uniform_lattice_density() {
        let mut gas = GasParticles::new();
        let n_side = 8;
        let spacing = 1.0 / n_side as f64;
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    gas.push(
                        1.0,
                        [i as f64 * spacing, j as f64 * spacing, k as f64 * spacing],
                        [0.0; 3],
                        1.0,
                    );
                }
            }
        }
        compute_density(&mut gas);
        let expected = 1.0 / (spacing * spacing * spacing); // mass density
                                                            // check an interior particle (index of center-ish particle)
        let mid = (n_side / 2 * n_side * n_side + n_side / 2 * n_side + n_side / 2) as usize;
        let rel = (gas.rho[mid] - expected).abs() / expected;
        assert!(rel < 0.15, "rho = {} vs {expected}", gas.rho[mid]);
    }

    #[test]
    fn neighbor_counts_near_target() {
        let gas = {
            let mut g = crate::particles::plummer_gas(1000, 1.0, 3);
            compute_density(&mut g);
            g
        };
        // check neighbor count within h for a sample of interior particles
        let grid = CsrGrid::build(&gas.pos, 0.1);
        let mut ok = 0;
        let mut total = 0;
        for i in (0..gas.len()).step_by(50) {
            let r = (gas.pos[i][0].powi(2) + gas.pos[i][1].powi(2) + gas.pos[i][2].powi(2)).sqrt();
            if r > 1.0 {
                continue; // halo particles can be starved
            }
            let cnt = grid.within(&gas.pos, &gas.pos[i], gas.h[i]).len();
            total += 1;
            if (N_NEIGHBORS / 3..=N_NEIGHBORS * 3).contains(&cnt) {
                ok += 1;
            }
        }
        assert!(ok * 10 >= total * 7, "{ok}/{total} particles near target count");
    }

    #[test]
    fn empty_gas_is_fine() {
        let mut gas = GasParticles::new();
        let mut scratch = SphScratch::new();
        assert_eq!(compute_density_with(&mut gas, &mut scratch), 0);
        assert_eq!(scratch.cached_for(), Some(0));
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let mut a = crate::particles::plummer_gas(300, 1.0, 5);
        let mut b = a.clone();
        let mut scratch = SphScratch::new();
        // warm the scratch on an unrelated set, then reuse
        let mut warm = crate::particles::plummer_gas(100, 1.0, 9);
        compute_density_with(&mut warm, &mut scratch);
        let ia = compute_density_with(&mut a, &mut scratch);
        let ib = compute_density(&mut b);
        assert_eq!(ia, ib);
        for i in 0..a.len() {
            assert_eq!(a.rho[i].to_bits(), b.rho[i].to_bits());
            assert_eq!(a.h[i].to_bits(), b.h[i].to_bits());
        }
    }

    #[test]
    fn simd_density_matches_scalar_within_tolerance() {
        let mut a = crate::particles::plummer_gas(1200, 1.0, 7);
        let mut b = a.clone();
        let mut scalar = SphScratch::new();
        let mut simd = SphScratch::new();
        simd.simd = true;
        let ia = compute_density_with(&mut a, &mut scalar);
        let ib = compute_density_with(&mut b, &mut simd);
        // the adaptation trajectory is shared: same candidate sets, same
        // h updates, same interaction totals — only the final sums differ
        assert_eq!(ia, ib, "SoA path changed the adaptation trajectory");
        for i in 0..a.len() {
            assert_eq!(a.h[i].to_bits(), b.h[i].to_bits(), "h[{i}] diverged");
            let rel = (a.rho[i] - b.rho[i]).abs() / a.rho[i].abs().max(1e-300);
            assert!(rel < 1e-12, "rho[{i}]: {} vs {} (rel {rel})", a.rho[i], b.rho[i]);
        }
    }

    #[test]
    fn simd_density_is_thread_count_invariant_and_stable() {
        let mut a = crate::particles::plummer_gas(1500, 1.0, 3);
        let mut b = a.clone();
        let mut c = a.clone();
        let mut seq = SphScratch::new();
        seq.simd = true;
        seq.max_threads = 1;
        let mut par8 = SphScratch::new();
        par8.simd = true;
        par8.max_threads = 8;
        let ia = compute_density_with(&mut a, &mut seq);
        let ib = compute_density_with(&mut b, &mut par8);
        let ic = compute_density_with(&mut c, &mut seq);
        assert_eq!(ia, ib);
        assert_eq!(ia, ic);
        for i in 0..a.len() {
            assert_eq!(a.rho[i].to_bits(), b.rho[i].to_bits(), "thread count changed rho[{i}]");
            assert_eq!(a.rho[i].to_bits(), c.rho[i].to_bits(), "rerun changed rho[{i}]");
        }
    }

    #[test]
    fn sequential_matches_parallel_bitwise() {
        let mut a = crate::particles::plummer_gas(1500, 1.0, 7);
        let mut b = a.clone();
        let mut seq = SphScratch::new();
        seq.max_threads = 1;
        let mut par = SphScratch::new();
        par.max_threads = 8;
        let ia = compute_density_with(&mut a, &mut seq);
        let ib = compute_density_with(&mut b, &mut par);
        assert_eq!(ia, ib);
        for i in 0..a.len() {
            assert_eq!(a.rho[i].to_bits(), b.rho[i].to_bits());
            assert_eq!(a.h[i].to_bits(), b.h[i].to_bits());
        }
        seq.ensure_cache(&a);
        par.ensure_cache(&b);
        assert_eq!(seq.cached_neighbor_entries(), par.cached_neighbor_entries());
        assert_eq!(seq.nbr_idx, par.nbr_idx, "cached lists diverge");
    }

    #[test]
    fn neighbor_cache_covers_pair_supports() {
        let mut gas = crate::particles::plummer_gas(400, 1.0, 11);
        let mut scratch = SphScratch::new();
        compute_density_with(&mut gas, &mut scratch);
        scratch.ensure_cache(&gas);
        assert_eq!(scratch.cached_for(), Some(gas.len()));
        let h_max = gas.h.iter().cloned().fold(0.0f64, f64::max);
        // every pair with r < h_ij must be present in i's cached list
        for i in (0..gas.len()).step_by(37) {
            let nbr = scratch.neighbors(i);
            for j in 0..gas.len() {
                let d = [
                    gas.pos[i][0] - gas.pos[j][0],
                    gas.pos[i][1] - gas.pos[j][1],
                    gas.pos[i][2] - gas.pos[j][2],
                ];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                let h_ij = 0.5 * (gas.h[i] + gas.h[j]);
                if r2 < h_ij * h_ij {
                    assert!(
                        nbr.contains(&(j as u32)),
                        "pair ({i},{j}) missing from cache (r={}, h_ij={h_ij}, h_max={h_max})",
                        r2.sqrt()
                    );
                }
            }
        }
    }
}
