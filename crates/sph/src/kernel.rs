//! The cubic-spline SPH kernel (Monaghan & Lattanzio 1985), 3D.

use std::f64::consts::PI;

/// Kernel value W(r, h). Normalized so ∫W dV = 1; compact support 2h...
/// Gadget convention: support radius = h, i.e. W(r ≥ h) = 0, with
/// σ = 8/(π h³).
pub fn w(r: f64, h: f64) -> f64 {
    debug_assert!(h > 0.0);
    let q = r / h;
    let sigma = 8.0 / (PI * h * h * h);
    if q < 0.5 {
        sigma * (1.0 - 6.0 * q * q + 6.0 * q * q * q)
    } else if q < 1.0 {
        sigma * 2.0 * (1.0 - q).powi(3)
    } else {
        0.0
    }
}

/// Radial derivative dW/dr.
pub fn dw_dr(r: f64, h: f64) -> f64 {
    debug_assert!(h > 0.0);
    let q = r / h;
    let sigma = 8.0 / (PI * h * h * h);
    if q < 0.5 {
        sigma / h * (-12.0 * q + 18.0 * q * q)
    } else if q < 1.0 {
        sigma / h * (-6.0 * (1.0 - q) * (1.0 - q))
    } else {
        0.0
    }
}

/// Kernel gradient ∇W evaluated for separation vector `dx` (pointing from
/// j to i), |dx| = r.
pub fn grad_w(dx: [f64; 3], r: f64, h: f64) -> [f64; 3] {
    if r <= 0.0 {
        return [0.0; 3];
    }
    let dwr = dw_dr(r, h);
    [dwr * dx[0] / r, dwr * dx[1] / r, dwr * dx[2] / r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalized() {
        // radial quadrature: ∫0^h W(r) 4πr² dr = 1
        let h = 1.3;
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..n {
            let r = (i as f64 + 0.5) / n as f64 * h;
            sum += w(r, h) * 4.0 * PI * r * r * (h / n as f64);
        }
        assert!((sum - 1.0).abs() < 1e-4, "norm = {sum}");
    }

    #[test]
    fn kernel_has_compact_support() {
        assert_eq!(w(1.0, 1.0), 0.0);
        assert_eq!(w(1.5, 1.0), 0.0);
        assert!(w(0.99, 1.0) >= 0.0);
        assert_eq!(dw_dr(1.01, 1.0), 0.0);
    }

    #[test]
    fn kernel_is_monotone_decreasing() {
        let h = 1.0;
        let mut last = w(0.0, h);
        for i in 1..100 {
            let r = i as f64 / 100.0;
            let now = w(r, h);
            assert!(now <= last + 1e-12, "W not monotone at r={r}");
            last = now;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 0.8;
        for &r in &[0.1, 0.3, 0.45, 0.6, 0.75] {
            let eps = 1e-6;
            let fd = (w(r + eps, h) - w(r - eps, h)) / (2.0 * eps);
            let an = dw_dr(r, h);
            assert!((fd - an).abs() < 1e-4 * an.abs().max(1.0), "r={r}: {fd} vs {an}");
        }
    }

    #[test]
    fn gradient_points_along_separation() {
        let g = grad_w([0.3, 0.0, 0.0], 0.3, 1.0);
        assert!(g[0] < 0.0, "attractive direction: {g:?}");
        assert_eq!(g[1], 0.0);
        let zero = grad_w([0.0, 0.0, 0.0], 0.0, 1.0);
        assert_eq!(zero, [0.0; 3]);
    }
}
