//! # jc-sph — Gadget-style smoothed-particle hydrodynamics
//!
//! Reproduction of the paper's gas-dynamics kernel: Gadget-2 (Springel
//! \[14\]), *"a CPU only model, written in C/MPI"*, run on 8 nodes of DAS-4
//! in the distributed experiments.
//!
//! The physics follows the standard SPH formulation Gadget uses:
//!
//! * cubic-spline kernel with adaptive smoothing lengths targeting a fixed
//!   neighbour count ([`kernel`], [`density`]);
//! * symmetrized pressure forces with Monaghan artificial viscosity and the
//!   adiabatic energy equation ([`forces`]);
//! * self-gravity through the shared Barnes–Hut tree (`jc-treegrav`);
//! * kick–drift–kick leapfrog with a global Courant-limited timestep
//!   ([`gadget::Gadget::evolve_model`]).
//!
//! [`mpi`] reproduces Gadget's *communication structure*: a slab domain
//! decomposition whose ranks exchange ghost particles and reduce the global
//! timestep every step. Ranks execute deterministically in-process; the
//! bytes they would push through MPI are counted exactly and handed to the
//! jungle performance model (the paper treats MPI as an opaque intra-worker
//! transport, so fidelity lives in the message pattern and volume, not in
//! wire-level concurrency).
//!
//! Supernova feedback for the embedded-cluster scenario enters through
//! [`gadget::Gadget::inject_energy`] — thermal energy dumped into the
//! neighbourhood of an exploding star, which is what eventually expels the
//! gas in Fig 6.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unreachable_pub)]

pub mod density;
pub mod forces;
pub mod gadget;
pub mod grid;
pub mod kernel;
pub mod legacy;
pub mod mpi;
pub mod particles;

pub use density::SphScratch;
pub use forces::HydroRates;
pub use gadget::Gadget;
pub use grid::CsrGrid;
pub use particles::GasParticles;
