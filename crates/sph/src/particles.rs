//! Gas particle storage (SoA) and initial conditions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adiabatic index of the gas (monatomic).
pub const GAMMA: f64 = 5.0 / 3.0;

/// A set of SPH gas particles in N-body units (G = 1).
#[derive(Clone, Debug, Default)]
pub struct GasParticles {
    /// Masses.
    pub mass: Vec<f64>,
    /// Positions.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
    /// Specific internal energies.
    pub u: Vec<f64>,
    /// Densities (computed).
    pub rho: Vec<f64>,
    /// Smoothing lengths (adapted).
    pub h: Vec<f64>,
}

impl GasParticles {
    /// Empty set.
    pub fn new() -> GasParticles {
        GasParticles::default()
    }

    /// Copy of the contiguous particle range `[start, end)` — the
    /// shard-worker slice (every column cut identically).
    pub fn slice(&self, start: usize, end: usize) -> GasParticles {
        GasParticles {
            mass: self.mass[start..end].to_vec(),
            pos: self.pos[start..end].to_vec(),
            vel: self.vel[start..end].to_vec(),
            u: self.u[start..end].to_vec(),
            rho: self.rho[start..end].to_vec(),
            h: self.h[start..end].to_vec(),
        }
    }

    /// Add a particle.
    pub fn push(&mut self, mass: f64, pos: [f64; 3], vel: [f64; 3], u: f64) {
        assert!(mass > 0.0 && u >= 0.0);
        self.mass.push(mass);
        self.pos.push(pos);
        self.vel.push(vel);
        self.u.push(u);
        self.rho.push(0.0);
        self.h.push(0.1);
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// Empty?
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Total gas mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Pressure of particle `i` (ideal gas): P = (γ-1) ρ u.
    pub fn pressure(&self, i: usize) -> f64 {
        (GAMMA - 1.0) * self.rho[i] * self.u[i]
    }

    /// Sound speed of particle `i`: c = sqrt(γ (γ-1) u).
    pub fn sound_speed(&self, i: usize) -> f64 {
        (GAMMA * (GAMMA - 1.0) * self.u[i]).sqrt()
    }

    /// Kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        self.mass
            .iter()
            .zip(&self.vel)
            .map(|(m, v)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Thermal energy.
    pub fn thermal_energy(&self) -> f64 {
        self.mass.iter().zip(&self.u).map(|(m, u)| m * u).sum()
    }
}

/// A Plummer-distributed gas sphere in approximate hydrostatic support:
/// the embedded-cluster initial condition ("young stars embedded in a
/// sphere of gas"). Thermal energy is set to a fraction of virial.
pub fn plummer_gas(n: usize, total_mass: f64, seed: u64) -> GasParticles {
    assert!(n > 0 && total_mass > 0.0);
    let a = 3.0 * std::f64::consts::PI / 16.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gas = GasParticles::new();
    let m = total_mass / n as f64;
    for _ in 0..n {
        let x: f64 = rng.gen_range(1e-10..1.0f64);
        let r = a / (x.powf(-2.0 / 3.0) - 1.0).sqrt();
        // clamp the rare far-out tail so the box stays compact
        let r = r.min(5.0);
        let z: f64 = rng.gen_range(-1.0..1.0f64);
        let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let s = (1.0 - z * z).sqrt();
        let pos = [r * s * phi.cos(), r * s * phi.sin(), r * z];
        // thermal support: u ~ |phi|/γ at the local radius, Plummer profile
        let u = (total_mass / (r * r + a * a).sqrt()) / GAMMA;
        gas.push(m, pos, [0.0; 3], u);
    }
    // recentre: the finite sample's centre of mass is not exactly 0
    let mt = gas.total_mass();
    let mut com = [0.0; 3];
    for (mm, p) in gas.mass.iter().zip(&gas.pos) {
        for k in 0..3 {
            com[k] += mm * p[k] / mt;
        }
    }
    for p in &mut gas.pos {
        for k in 0..3 {
            p[k] -= com[k];
        }
    }
    gas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_and_sound_speed() {
        let mut g = GasParticles::new();
        g.push(1.0, [0.0; 3], [0.0; 3], 1.5);
        g.rho[0] = 2.0;
        let p = g.pressure(0);
        assert!((p - (GAMMA - 1.0) * 2.0 * 1.5).abs() < 1e-12);
        assert!(g.sound_speed(0) > 0.0);
    }

    #[test]
    fn plummer_gas_mass_and_energy() {
        let g = plummer_gas(500, 2.0, 1);
        assert_eq!(g.len(), 500);
        assert!((g.total_mass() - 2.0).abs() < 1e-9);
        assert!(g.thermal_energy() > 0.0);
        assert_eq!(g.kinetic_energy(), 0.0, "starts at rest");
    }

    #[test]
    fn plummer_gas_is_centrally_concentrated() {
        let g = plummer_gas(2000, 1.0, 2);
        let inner = g.pos.iter().filter(|p| norm(p) < 0.5).count();
        let outer = g.pos.iter().filter(|p| norm(p) >= 2.0).count();
        assert!(inner > outer, "inner {inner} vs outer {outer}");
    }

    fn norm(p: &[f64; 3]) -> f64 {
        (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()
    }

    #[test]
    #[should_panic]
    fn nonpositive_mass_rejected() {
        let mut g = GasParticles::new();
        g.push(0.0, [0.0; 3], [0.0; 3], 1.0);
    }
}
