//! The Gadget model: leapfrog KDK over hydro + self-gravity.

use crate::density::{compute_density_with, SphScratch};
use crate::forces::{hydro_rates_into, HydroRates};
use crate::grid::CsrGrid;
use crate::particles::GasParticles;
use jc_treegrav::TreeGravity;

/// Courant factor.
const C_COURANT: f64 = 0.25;

/// The Gadget-equivalent SPH model.
pub struct Gadget {
    /// The gas.
    pub gas: GasParticles,
    gravity: TreeGravity,
    self_gravity: bool,
    time: f64,
    /// Accumulated modeled flops (density + forces + gravity).
    pub flops: f64,
    /// Steps taken.
    pub steps: u64,
    /// Reusable kernel scratch: CSR grid, candidate buffers, neighbour
    /// cache. Held across steps so the hot loop never allocates.
    scratch: SphScratch,
    rates: HydroRates,
    g_acc: Vec<[f64; 3]>,
    rates_valid: bool,
}

impl Gadget {
    /// New model over a gas set. Self-gravity on by default.
    pub fn new(gas: GasParticles) -> Gadget {
        Gadget {
            gas,
            gravity: TreeGravity::new(0.6, 0.05),
            self_gravity: true,
            time: 0.0,
            flops: 0.0,
            steps: 0,
            scratch: SphScratch::new(),
            rates: HydroRates::new(),
            g_acc: Vec::new(),
            rates_valid: false,
        }
    }

    /// Cap the kernel worker threads (1 = strictly sequential; the
    /// steady-state step then performs zero heap allocations).
    pub fn with_max_threads(mut self, threads: usize) -> Gadget {
        self.scratch.max_threads = threads;
        self.gravity.max_threads = threads;
        self
    }

    /// Toggle gas self-gravity (off for pure hydro tests).
    pub fn with_self_gravity(mut self, on: bool) -> Gadget {
        self.self_gravity = on;
        self
    }

    /// Current model time.
    pub fn model_time(&self) -> f64 {
        self.time
    }

    fn refresh_rates(&mut self) -> f64 {
        let n = self.gas.len();
        let inter_d = compute_density_with(&mut self.gas, &mut self.scratch);
        hydro_rates_into(&self.gas, &mut self.scratch, &mut self.rates);
        self.flops += inter_d as f64 * 30.0 + self.rates.interactions as f64 * 60.0;
        if self.self_gravity && n > 1 {
            self.gravity.accelerations_into(
                &self.gas.pos,
                &self.gas.pos,
                &self.gas.mass,
                &mut self.g_acc,
            );
            self.flops += self.gravity.last_flops();
            for (a, ga) in self.rates.acc.iter_mut().zip(&self.g_acc) {
                for k in 0..3 {
                    a[k] += ga[k];
                }
            }
        }
        self.rates_valid = true;
        self.rates.v_signal_max
    }

    fn timestep(&self, v_signal: f64) -> f64 {
        let mut dt: f64 = 5e-3; // cap
        for i in 0..self.gas.len() {
            let h = self.gas.h[i];
            let vs = v_signal.max(self.gas.sound_speed(i)).max(1e-8);
            dt = dt.min(C_COURANT * h / vs);
            let a = self.rates.acc[i];
            let an = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
            if an > 0.0 {
                dt = dt.min(C_COURANT * (h / an).sqrt());
            }
        }
        dt.max(1e-7)
    }

    /// Evolve to absolute time `t_end` (AMUSE `evolve_model`). Returns the
    /// number of KDK steps.
    pub fn evolve_model(&mut self, t_end: f64) -> u64 {
        assert!(t_end + 1e-15 >= self.time, "cannot integrate backwards");
        if self.gas.is_empty() {
            self.time = t_end;
            return 0;
        }
        let mut vsig = if self.rates_valid { 0.0 } else { self.refresh_rates() };
        let mut steps = 0;
        while self.time < t_end - 1e-12 {
            let dt = self.timestep(vsig.max(1e-8)).min(t_end - self.time);
            // kick (half) + drift
            for i in 0..self.gas.len() {
                for k in 0..3 {
                    self.gas.vel[i][k] += 0.5 * dt * self.rates.acc[i][k];
                    self.gas.pos[i][k] += dt * self.gas.vel[i][k];
                }
                self.gas.u[i] = (self.gas.u[i] + 0.5 * dt * self.rates.du[i]).max(1e-10);
            }
            // re-evaluate at the drifted state
            vsig = self.refresh_rates();
            // kick (half)
            for i in 0..self.gas.len() {
                for k in 0..3 {
                    self.gas.vel[i][k] += 0.5 * dt * self.rates.acc[i][k];
                }
                self.gas.u[i] = (self.gas.u[i] + 0.5 * dt * self.rates.du[i]).max(1e-10);
            }
            self.time += dt;
            steps += 1;
            self.steps += 1;
            assert!(steps < 10_000_000, "timestep collapse");
        }
        steps
    }

    /// Overwrite the gas state from a checkpoint: replace every particle
    /// column (including the adapted smoothing lengths `h`, which seed
    /// the next density iteration) and set the model clock, which may
    /// move backwards. Cached rates are discarded, so the next
    /// [`Gadget::evolve_model`] re-derives density/forces from the
    /// restored columns — bitwise-identical to an uninterrupted run at
    /// any point where the rates cache is already invalid (after a kick
    /// or feedback, i.e. every bridge iteration boundary).
    pub fn restore_state(&mut self, gas: GasParticles, time: f64) {
        self.gas = gas;
        self.time = time;
        self.rates_valid = false;
    }

    /// Apply external velocity kicks (BRIDGE coupling).
    pub fn kick(&mut self, dv: &[[f64; 3]]) {
        assert_eq!(dv.len(), self.gas.len());
        for (v, d) in self.gas.vel.iter_mut().zip(dv) {
            for k in 0..3 {
                v[k] += d[k];
            }
        }
        self.rates_valid = false;
    }

    /// Inject `energy` (specific-energy × mass units) thermally into the
    /// gas within `radius` of `center` — supernova feedback. Falls back to
    /// the nearest particle when none are in range. Returns the number of
    /// particles heated.
    pub fn inject_energy(&mut self, center: [f64; 3], radius: f64, energy: f64) -> usize {
        if self.gas.is_empty() || energy <= 0.0 {
            return 0;
        }
        let grid = CsrGrid::build(&self.gas.pos, radius.max(1e-6));
        let mut targets = grid.within(&self.gas.pos, &center, radius);
        if targets.is_empty() {
            // nearest particle
            let mut best = 0usize;
            let mut bd = f64::INFINITY;
            for (i, p) in self.gas.pos.iter().enumerate() {
                let d = (p[0] - center[0]).powi(2)
                    + (p[1] - center[1]).powi(2)
                    + (p[2] - center[2]).powi(2);
                if d < bd {
                    bd = d;
                    best = i;
                }
            }
            targets.push(best as u32);
        }
        let m_tot: f64 = targets.iter().map(|&i| self.gas.mass[i as usize]).sum();
        for &i in &targets {
            let i = i as usize;
            // mass-weighted share, converted to specific energy
            self.gas.u[i] += energy / m_tot;
        }
        self.rates_valid = false;
        targets.len()
    }

    /// Add gas mass at a position (stellar winds returning mass to the
    /// ISM). The new particle inherits the local velocity field (zero if
    /// the set is empty).
    pub fn add_mass(&mut self, pos: [f64; 3], mass: f64, u: f64) {
        self.gas.push(mass, pos, [0.0; 3], u.max(1e-10));
        self.rates_valid = false;
    }

    /// Total energy (kinetic + thermal; gravitational PE omitted — used
    /// for *relative* drift checks in pure-hydro mode).
    pub fn energy_kt(&self) -> f64 {
        self.gas.kinetic_energy() + self.gas.thermal_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::plummer_gas;

    #[test]
    fn static_uniform_gas_stays_put_briefly() {
        // A pressure-supported ball without gravity expands; with only a
        // short evolution the center of mass must not move.
        let gas = plummer_gas(200, 1.0, 11);
        let mut g = Gadget::new(gas).with_self_gravity(false);
        g.evolve_model(0.01);
        let mut com = [0.0; 3];
        for (m, p) in g.gas.mass.iter().zip(&g.gas.pos) {
            for k in 0..3 {
                com[k] += m * p[k];
            }
        }
        for c in com {
            assert!(c.abs() < 1e-3, "com drifted: {com:?}");
        }
        assert!(g.steps > 0);
    }

    #[test]
    fn hot_ball_expands() {
        let mut gas = plummer_gas(300, 1.0, 13);
        // superheat it
        for u in &mut gas.u {
            *u *= 50.0;
        }
        let r0 = mean_radius(&gas);
        let mut g = Gadget::new(gas).with_self_gravity(false);
        g.evolve_model(0.05);
        let r1 = mean_radius(&g.gas);
        assert!(r1 > r0 * 1.02, "expansion: {r0} -> {r1}");
    }

    #[test]
    fn energy_injection_heats_neighborhood() {
        let gas = plummer_gas(300, 1.0, 17);
        let mut g = Gadget::new(gas);
        let e0 = g.gas.thermal_energy();
        let heated = g.inject_energy([0.0, 0.0, 0.0], 0.3, 5.0);
        assert!(heated > 0);
        let e1 = g.gas.thermal_energy();
        assert!(e1 > e0 + 4.0, "thermal energy went {e0} -> {e1}");
    }

    #[test]
    fn injection_far_away_hits_nearest() {
        let gas = plummer_gas(50, 1.0, 19);
        let mut g = Gadget::new(gas);
        let heated = g.inject_energy([100.0, 0.0, 0.0], 0.01, 1.0);
        assert_eq!(heated, 1);
    }

    #[test]
    fn kick_and_add_mass() {
        let gas = plummer_gas(10, 1.0, 23);
        let mut g = Gadget::new(gas);
        let dv = vec![[0.1, 0.0, 0.0]; 10];
        g.kick(&dv);
        assert!(g.gas.kinetic_energy() > 0.0);
        g.add_mass([0.0; 3], 0.05, 0.5);
        assert_eq!(g.gas.len(), 11);
    }

    #[test]
    fn empty_model_fast_forwards() {
        let mut g = Gadget::new(GasParticles::new());
        assert_eq!(g.evolve_model(2.0), 0);
        assert_eq!(g.model_time(), 2.0);
    }

    fn mean_radius(gas: &GasParticles) -> f64 {
        gas.pos.iter().map(|p| (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt()).sum::<f64>()
            / gas.len() as f64
    }
}
