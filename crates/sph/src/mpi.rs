//! Gadget's MPI communication structure: slab decomposition, ghost
//! exchange, timestep reduction.
//!
//! The paper runs Gadget as an 8-node C/MPI job inside one worker. This
//! module reproduces that *communication pattern* so the jungle simulator
//! can charge the right intra-site traffic (the orange "MPI" lines of
//! Fig 11): a spatial slab decomposition along x, per-step exchange of
//! boundary (ghost) particles with slab neighbours, and an allreduce for
//! the global timestep. Ranks are evaluated deterministically in-process;
//! the bytes are exact, the wall-clock parallelism is left to the
//! performance model.

use crate::particles::GasParticles;

/// Bytes per particle on the wire: pos + vel + mass + u + h + rho as f64.
pub const BYTES_PER_PARTICLE: u64 = 9 * 8;

/// Bytes of one allreduce element.
pub const ALLREDUCE_BYTES: u64 = 8;

/// The slab decomposition of a gas set over `n_ranks` MPI ranks.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Number of ranks.
    pub n_ranks: u32,
    /// Slab boundaries in x: rank r owns `[cuts[r], cuts[r+1])`.
    pub cuts: Vec<f64>,
    /// Particle indices per rank.
    pub owned: Vec<Vec<u32>>,
}

/// Per-step communication statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommStats {
    /// Ghost bytes sent per step, summed over all ranks.
    pub ghost_bytes: u64,
    /// Ghost particles exchanged.
    pub ghost_particles: u64,
    /// Allreduce volume per step (2 log2(P) × element, the usual
    /// recursive-doubling cost) summed over ranks.
    pub allreduce_bytes: u64,
    /// Particles on the fullest rank (load balance indicator).
    pub max_rank_particles: u64,
}

impl Decomposition {
    /// Equal-count slab decomposition along x.
    pub fn build(gas: &GasParticles, n_ranks: u32) -> Decomposition {
        assert!(n_ranks > 0);
        let n = gas.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            gas.pos[a as usize][0].partial_cmp(&gas.pos[b as usize][0]).expect("NaN position")
        });
        let mut owned = vec![Vec::new(); n_ranks as usize];
        let mut cuts = Vec::with_capacity(n_ranks as usize + 1);
        cuts.push(f64::NEG_INFINITY);
        for (k, &i) in order.iter().enumerate() {
            let r = (k * n_ranks as usize / n.max(1)).min(n_ranks as usize - 1);
            owned[r].push(i);
        }
        for rank in owned.iter().take(n_ranks as usize).skip(1) {
            let x = rank.first().map(|&i| gas.pos[i as usize][0]).unwrap_or(f64::INFINITY);
            cuts.push(x);
        }
        cuts.push(f64::INFINITY);
        Decomposition { n_ranks, cuts, owned }
    }

    /// Communication statistics for one SPH step at the current state:
    /// every particle within `2 h` of a slab boundary is a ghost for the
    /// neighbouring rank.
    pub fn step_comm(&self, gas: &GasParticles) -> CommStats {
        let mut ghost_particles = 0u64;
        for r in 0..self.n_ranks as usize {
            for &i in &self.owned[r] {
                let x = gas.pos[i as usize][0];
                let reach = 2.0 * gas.h[i as usize];
                // left boundary (not for rank 0)
                if r > 0 && (x - self.cuts[r]).abs() < reach {
                    ghost_particles += 1;
                }
                // right boundary (not for the last rank)
                if r + 1 < self.n_ranks as usize && (self.cuts[r + 1] - x).abs() < reach {
                    ghost_particles += 1;
                }
            }
        }
        let p = self.n_ranks as f64;
        let allreduce =
            (2.0 * p.log2().ceil().max(0.0)) as u64 * ALLREDUCE_BYTES * self.n_ranks as u64;
        CommStats {
            ghost_bytes: ghost_particles * BYTES_PER_PARTICLE,
            ghost_particles,
            allreduce_bytes: allreduce,
            max_rank_particles: self.owned.iter().map(|v| v.len() as u64).max().unwrap_or(0),
        }
    }

    /// Per-rank particle counts.
    pub fn rank_sizes(&self) -> Vec<usize> {
        self.owned.iter().map(|v| v.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::compute_density;
    use crate::particles::plummer_gas;

    #[test]
    fn slabs_are_balanced() {
        let gas = plummer_gas(1000, 1.0, 31);
        let d = Decomposition::build(&gas, 8);
        let sizes = d.rank_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        for s in &sizes {
            assert!((120..=130).contains(s), "slab sizes {sizes:?}");
        }
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let mut gas = plummer_gas(500, 1.0, 37);
        compute_density(&mut gas);
        let d = Decomposition::build(&gas, 1);
        let c = d.step_comm(&gas);
        assert_eq!(c.ghost_bytes, 0);
        assert_eq!(c.max_rank_particles, 500);
    }

    #[test]
    fn ghost_volume_grows_with_ranks() {
        let mut gas = plummer_gas(2000, 1.0, 41);
        compute_density(&mut gas);
        let c2 = Decomposition::build(&gas, 2).step_comm(&gas);
        let c8 = Decomposition::build(&gas, 8).step_comm(&gas);
        assert!(c8.ghost_bytes > c2.ghost_bytes, "{c2:?} vs {c8:?}");
        assert!(c8.allreduce_bytes > c2.allreduce_bytes);
    }

    #[test]
    fn slab_ownership_respects_cuts() {
        let mut gas = plummer_gas(300, 1.0, 43);
        compute_density(&mut gas);
        let d = Decomposition::build(&gas, 4);
        for r in 0..4usize {
            for &i in &d.owned[r] {
                let x = gas.pos[i as usize][0];
                assert!(x >= d.cuts[r] && (x < d.cuts[r + 1] || r == 3));
            }
        }
    }

    #[test]
    fn empty_gas_decomposes() {
        let gas = GasParticles::new();
        let d = Decomposition::build(&gas, 4);
        assert_eq!(d.rank_sizes(), vec![0, 0, 0, 0]);
        let c = d.step_comm(&gas);
        assert_eq!(c.ghost_particles, 0);
    }
}
