//! The pre-CSR neighbour search and density pass, kept verbatim as the
//! measured baseline for `perfsuite` (the `sph_density_legacy` rows in
//! `BENCH_*.json`) and as the order-reference the CSR grid must reproduce
//! bitwise. Not used by any production code path.

// jc-lint: allow-file(determinism): frozen measured baseline — the HashMap
// is only ever read through `get` (cells are visited in fixed loop order
// and buckets hold insertion order), never iterated, so the hash seed
// cannot reach the densities. Kept verbatim so the perfsuite baseline
// rows stay comparable across history.

use crate::kernel::w;
use crate::particles::GasParticles;
use rayon::prelude::*;
use std::collections::HashMap;

/// A uniform cell grid for fixed-radius neighbour queries (HashMap of
/// per-cell `Vec`s; `within` allocates a fresh `Vec` per query).
pub struct NeighborGrid {
    cell: f64,
    map: HashMap<(i32, i32, i32), Vec<u32>>,
}

impl NeighborGrid {
    /// Build over positions with the given cell size.
    pub fn build(pos: &[[f64; 3]], cell: f64) -> NeighborGrid {
        assert!(cell > 0.0);
        let mut map: HashMap<(i32, i32, i32), Vec<u32>> = HashMap::new();
        for (i, p) in pos.iter().enumerate() {
            map.entry(Self::key(p, cell)).or_default().push(i as u32);
        }
        NeighborGrid { cell, map }
    }

    fn key(p: &[f64; 3], cell: f64) -> (i32, i32, i32) {
        ((p[0] / cell).floor() as i32, (p[1] / cell).floor() as i32, (p[2] / cell).floor() as i32)
    }

    /// Indices of particles within `radius` of `center` (inclusive of the
    /// querying particle if it lies in range).
    pub fn within(&self, pos: &[[f64; 3]], center: &[f64; 3], radius: f64) -> Vec<u32> {
        let r = (radius / self.cell).ceil() as i32;
        let (cx, cy, cz) = Self::key(center, self.cell);
        let r2 = radius * radius;
        let mut out = Vec::new();
        for dx in -r..=r {
            for dy in -r..=r {
                for dz in -r..=r {
                    if let Some(bucket) = self.map.get(&(cx + dx, cy + dy, cz + dz)) {
                        for &i in bucket {
                            let p = &pos[i as usize];
                            let d = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
                            if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= r2 {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// The pre-refactor adaptive density pass (allocating hot loop). Same
/// physics and same results as [`crate::density::compute_density`]; kept
/// only so the perf harness can measure the speedup against it.
pub fn compute_density(gas: &mut GasParticles) -> u64 {
    let n = gas.len();
    if n == 0 {
        return 0;
    }
    let h_mean = crate::density::h_mean_of(&gas.pos);
    for h in &mut gas.h {
        if *h <= 0.0 || !h.is_finite() {
            *h = h_mean;
        }
    }
    let grid = NeighborGrid::build(&gas.pos, h_mean.max(1e-6));
    let pos = &gas.pos;
    let mass = &gas.mass;
    let results: Vec<(f64, f64, u64)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut h = gas.h[i].min(h_mean * 8.0).max(h_mean * 0.05);
            let mut rho = 0.0;
            let mut inter = 0u64;
            for _ in 0..crate::density::H_ITERS {
                let nbr = grid.within(pos, &pos[i], h);
                inter += nbr.len() as u64;
                let found = nbr.len().max(1);
                if found as f64 > 0.8 * crate::density::N_NEIGHBORS as f64
                    && (found as f64) < 1.3 * crate::density::N_NEIGHBORS as f64
                {
                    rho = sum_density(&nbr, pos, mass, &pos[i], h);
                    break;
                }
                // adapt towards the target count
                h *= (crate::density::N_NEIGHBORS as f64 / found as f64).cbrt().clamp(0.5, 2.0);
                h = h.clamp(h_mean * 0.05, h_mean * 8.0);
                rho = sum_density(&grid.within(pos, &pos[i], h), pos, mass, &pos[i], h);
            }
            if rho <= 0.0 {
                // lone particle: density of itself
                rho = mass[i] * w(0.0, h);
            }
            (rho, h, inter)
        })
        .collect();
    let mut total = 0;
    for (i, (rho, h, inter)) in results.into_iter().enumerate() {
        gas.rho[i] = rho;
        gas.h[i] = h;
        total += inter;
    }
    total
}

fn sum_density(nbr: &[u32], pos: &[[f64; 3]], mass: &[f64], c: &[f64; 3], h: f64) -> f64 {
    let mut rho = 0.0;
    for &j in nbr {
        let p = &pos[j as usize];
        let d = [p[0] - c[0], p[1] - c[1], p[2] - c[2]];
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        rho += mass[j as usize] * w(r, h);
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_within_finds_all_in_radius() {
        let pos = vec![[0.0, 0.0, 0.0], [0.05, 0.0, 0.0], [0.2, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let grid = NeighborGrid::build(&pos, 0.1);
        let mut got = grid.within(&pos, &[0.0, 0.0, 0.0], 0.1);
        got.sort();
        assert_eq!(got, vec![0, 1]);
        let all = grid.within(&pos, &[0.0, 0.0, 0.0], 2.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn legacy_density_matches_csr_density_bitwise() {
        let mut a = crate::particles::plummer_gas(400, 1.0, 21);
        let mut b = a.clone();
        let ia = compute_density(&mut a);
        let ib = crate::density::compute_density(&mut b);
        assert_eq!(ia, ib, "interaction counts diverge");
        for i in 0..a.len() {
            assert_eq!(a.rho[i].to_bits(), b.rho[i].to_bits(), "rho[{i}]");
            assert_eq!(a.h[i].to_bits(), b.h[i].to_bits(), "h[{i}]");
        }
    }
}
