//! CSR-layout uniform cell grid for fixed-radius neighbour queries.
//!
//! Replaces the `HashMap<(i32,i32,i32), Vec<u32>>` grid: one flat particle
//! index array partitioned by cell, plus a per-cell offset table, built
//! with a counting sort. Queries are visitor-style (`for_each_within`) so
//! the steady-state hot path performs no heap allocation, and the candidate
//! scan is clamped to the grid's occupied-cell bounding box so pathological
//! query radii (`radius >> cell`) cost O(occupied cells), not O((2r+1)³).
//!
//! Cell decomposition and visit order are bit-compatible with the legacy
//! grid: cells are cubes of edge `cell`, keyed by `floor(p/cell)` per axis,
//! visited in lexicographic (x, y, z) order with ascending particle index
//! inside each cell — so density sums accumulate in the identical order
//! and reproduce the pre-refactor results bitwise (see `tests/golden.rs`).

/// Maximum dense-table cells per particle before falling back to the
/// sorted-key (sparse) layout. The table costs 4 bytes per cell and one
/// zeroing sweep per rebuild, so a generous budget is cheap, and the
/// density pass deliberately grids several cells per smoothing length.
const DENSE_CELL_BUDGET_PER_PARTICLE: usize = 256;
/// Dense-table floor so small sets still use the O(1)-lookup layout.
const DENSE_CELL_FLOOR: usize = 65536;

/// A uniform cell grid in CSR layout.
///
/// All backing buffers are reused across [`CsrGrid::build_into`] calls:
/// once warm, rebuilding over a same-sized particle set allocates nothing.
pub struct CsrGrid {
    cell: f64,
    /// Occupied-cell bounding box in cell coordinates (inclusive). When the
    /// grid is empty, `lo > hi`.
    lo: [i64; 3],
    hi: [i64; 3],
    /// Dense dims (`hi - lo + 1` per axis) when `dense`.
    dims: [usize; 3],
    dense: bool,
    /// Dense: `ncells + 1` offsets into `indices`, indexed by flat cell id.
    /// Sparse: `keys.len() + 1` offsets, aligned with `keys`.
    offsets: Vec<u32>,
    /// Sparse only: sorted packed cell keys of occupied cells.
    keys: Vec<u128>,
    /// Particle indices grouped by cell, ascending inside each cell.
    indices: Vec<u32>,
    /// Dense only: per-x-plane occupied y bounds (relative coords;
    /// `(u32::MAX, 0)` = empty plane). Lets queries skip empty planes and
    /// rows in O(1) instead of probing every cell of the scan box.
    plane_y: Vec<(u32, u32)>,
    /// Dense only: per-(x,y)-row occupied z bounds.
    row_z: Vec<(u32, u32)>,
    /// Build scratch: per-particle cell slot (dense flat id / sparse rank).
    slot_of: Vec<u32>,
    /// Build scratch for the sparse fallback: (packed key, particle).
    pairs: Vec<(u128, u32)>,
}

impl Default for CsrGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl CsrGrid {
    /// An empty grid (no allocation until the first build).
    pub fn new() -> CsrGrid {
        CsrGrid {
            cell: 1.0,
            lo: [1, 1, 1],
            hi: [0, 0, 0],
            dims: [0; 3],
            dense: true,
            offsets: Vec::new(),
            keys: Vec::new(),
            indices: Vec::new(),
            plane_y: Vec::new(),
            row_z: Vec::new(),
            slot_of: Vec::new(),
            pairs: Vec::new(),
        }
    }

    /// Convenience: build a fresh grid over positions.
    pub fn build(pos: &[[f64; 3]], cell: f64) -> CsrGrid {
        let mut g = CsrGrid::new();
        g.build_into(pos, cell);
        g
    }

    /// Cell edge length.
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Cell key of a position (identical to the legacy grid's keying).
    #[inline]
    pub(crate) fn key(p: &[f64; 3], cell: f64) -> [i64; 3] {
        [(p[0] / cell).floor() as i64, (p[1] / cell).floor() as i64, (p[2] / cell).floor() as i64]
    }

    #[inline]
    pub(crate) fn pack(k: [i64; 3]) -> u128 {
        // order-preserving 3×42-bit pack (sorted packed keys iterate in
        // lexicographic (x, y, z) order); keys derived from f64/cell stay
        // far inside ±2^41 for any physically meaningful configuration
        const BIAS: i64 = 1 << 41;
        const MASK: u128 = (1 << 42) - 1;
        let ux = ((k[0].clamp(-BIAS, BIAS - 1) + BIAS) as u128) & MASK;
        let uy = ((k[1].clamp(-BIAS, BIAS - 1) + BIAS) as u128) & MASK;
        let uz = ((k[2].clamp(-BIAS, BIAS - 1) + BIAS) as u128) & MASK;
        (ux << 84) | (uy << 42) | uz
    }

    #[inline]
    fn unpack(packed: u128) -> [i64; 3] {
        const BIAS: i64 = 1 << 41;
        const MASK: u128 = (1 << 42) - 1;
        [
            ((packed >> 84) & MASK) as i64 - BIAS,
            ((packed >> 42) & MASK) as i64 - BIAS,
            (packed & MASK) as i64 - BIAS,
        ]
    }

    /// Rebuild over `pos`, reusing all internal buffers (counting sort;
    /// no allocation once the buffers are warm).
    pub fn build_into(&mut self, pos: &[[f64; 3]], cell: f64) {
        assert!(cell > 0.0, "cell size must be positive");
        self.cell = cell;
        let n = pos.len();
        self.indices.clear();
        self.keys.clear();
        self.offsets.clear();
        if n == 0 {
            self.lo = [1, 1, 1];
            self.hi = [0, 0, 0];
            self.dims = [0; 3];
            self.dense = true;
            self.offsets.push(0);
            return;
        }
        // occupied-cell bounding box
        let mut lo = [i64::MAX; 3];
        let mut hi = [i64::MIN; 3];
        self.slot_of.clear();
        self.slot_of.reserve(n);
        for p in pos {
            let k = Self::key(p, cell);
            for a in 0..3 {
                lo[a] = lo[a].min(k[a]);
                hi[a] = hi[a].max(k[a]);
            }
        }
        self.lo = lo;
        self.hi = hi;
        let budget = n.saturating_mul(DENSE_CELL_BUDGET_PER_PARTICLE).max(DENSE_CELL_FLOOR);
        let span = |a: usize| (hi[a] - lo[a] + 1) as u128;
        let ncells = span(0).saturating_mul(span(1)).saturating_mul(span(2));
        // `slot_of` stores flat cell ids as u32, so the dense layout is
        // only valid while every id fits — beyond that (possible once the
        // per-particle budget admits > 2^32 cells) fall through to the
        // sparse sorted-key path instead of silently truncating ids.
        self.dense = ncells <= budget as u128 && ncells <= u32::MAX as u128;
        if self.dense {
            let ncells = ncells as usize;
            self.dims = [span(0) as usize, span(1) as usize, span(2) as usize];
            const EMPTY: (u32, u32) = (u32::MAX, 0);
            self.plane_y.clear();
            self.plane_y.resize(self.dims[0], EMPTY);
            self.row_z.clear();
            self.row_z.resize(self.dims[0] * self.dims[1], EMPTY);
            // counting sort: count, exclusive prefix, stable scatter
            self.offsets.resize(ncells + 1, 0);
            self.offsets.iter_mut().for_each(|c| *c = 0);
            for p in pos {
                let k = Self::key(p, cell);
                let (rx, ry, rz) =
                    ((k[0] - lo[0]) as u32, (k[1] - lo[1]) as u32, (k[2] - lo[2]) as u32);
                let plane = &mut self.plane_y[rx as usize];
                plane.0 = plane.0.min(ry);
                plane.1 = plane.1.max(ry);
                let row = &mut self.row_z[rx as usize * self.dims[1] + ry as usize];
                row.0 = row.0.min(rz);
                row.1 = row.1.max(rz);
                let id = self.flat_id(k);
                self.slot_of.push(id as u32);
                self.offsets[id + 1] += 1;
            }
            for c in 1..=ncells {
                self.offsets[c] += self.offsets[c - 1];
            }
            self.indices.resize(n, 0);
            // cursor pass: offsets[id] is the next write slot for cell id;
            // restore the table afterwards by shifting back one slot
            for (i, &slot) in self.slot_of.iter().enumerate() {
                let id = slot as usize;
                self.indices[self.offsets[id] as usize] = i as u32;
                self.offsets[id] += 1;
            }
            for c in (1..=ncells).rev() {
                self.offsets[c] = self.offsets[c - 1];
            }
            self.offsets[0] = 0;
        } else {
            // sparse fallback (pathological cell/extent ratios): sort
            // packed (key, index) pairs — unique indices make the order
            // total, so each cell's particles come out ascending
            self.dims = [0; 3];
            self.pairs.clear();
            self.pairs.reserve(n);
            for (i, p) in pos.iter().enumerate() {
                self.pairs.push((Self::pack(Self::key(p, cell)), i as u32));
            }
            self.pairs.sort_unstable();
            self.indices.resize(n, 0);
            for (at, &(k, i)) in self.pairs.iter().enumerate() {
                if self.keys.last() != Some(&k) {
                    self.keys.push(k);
                    self.offsets.push(at as u32);
                }
                self.indices[at] = i;
            }
            self.offsets.push(n as u32);
        }
    }

    #[inline]
    fn flat_id(&self, k: [i64; 3]) -> usize {
        let x = (k[0] - self.lo[0]) as usize;
        let y = (k[1] - self.lo[1]) as usize;
        let z = (k[2] - self.lo[2]) as usize;
        (x * self.dims[1] + y) * self.dims[2] + z
    }

    /// Index range into the flat index array for an occupied cell, or an
    /// empty range.
    #[inline]
    fn cell_range(&self, k: [i64; 3]) -> (usize, usize) {
        if self.dense {
            let id = self.flat_id(k);
            (self.offsets[id] as usize, self.offsets[id + 1] as usize)
        } else {
            match self.keys.binary_search(&Self::pack(k)) {
                Ok(slot) => (self.offsets[slot] as usize, self.offsets[slot + 1] as usize),
                Err(_) => (0, 0),
            }
        }
    }

    /// Visit every particle within `radius` of `center` (inclusive), as
    /// `f(index, squared distance)`. Visits cells in lexicographic (x, y,
    /// z) order and particles in ascending index inside each cell — the
    /// legacy grid's order — and performs no heap allocation. The cell
    /// scan is clamped to the occupied-cell bounding box, so an oversized
    /// radius degrades to a sweep of the occupied cells, never to
    /// `(2·radius/cell + 1)³` lookups.
    #[inline]
    pub fn for_each_within(
        &self,
        pos: &[[f64; 3]],
        center: &[f64; 3],
        radius: f64,
        mut f: impl FnMut(u32, f64),
    ) {
        if self.indices.is_empty() {
            return;
        }
        let r = (radius / self.cell).ceil() as i64;
        let c = Self::key(center, self.cell);
        let r2 = radius * radius;
        let (x0, x1) =
            (c[0].saturating_sub(r).max(self.lo[0]), c[0].saturating_add(r).min(self.hi[0]));
        let (y0, y1) =
            (c[1].saturating_sub(r).max(self.lo[1]), c[1].saturating_add(r).min(self.hi[1]));
        let (z0, z1) =
            (c[2].saturating_sub(r).max(self.lo[2]), c[2].saturating_add(r).min(self.hi[2]));
        if x0 > x1 || y0 > y1 || z0 > z1 {
            return;
        }
        // monomorphized per-cell scan: the candidate loop must inline into
        // the caller's closure (a `dyn` visitor here costs an indirect
        // call per candidate and defeats vectorization)
        #[inline(always)]
        fn scan<F: FnMut(u32, f64)>(
            indices: &[u32],
            pos: &[[f64; 3]],
            center: &[f64; 3],
            r2: f64,
            f: &mut F,
        ) {
            for &i in indices {
                let p = &pos[i as usize];
                let d = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
                let d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if d2 <= r2 {
                    f(i, d2);
                }
            }
        }
        // In the sparse layout the clamped box can still dwarf the
        // occupied-cell count; sweeping the sorted key list visits the
        // same cells in the same lexicographic order.
        let box_cells = (x1 - x0 + 1) as u128 * (y1 - y0 + 1) as u128 * (z1 - z0 + 1) as u128;
        if !self.dense && box_cells > self.keys.len() as u128 {
            for (slot, &packed) in self.keys.iter().enumerate() {
                let k = Self::unpack(packed);
                if k[0] < x0 || k[0] > x1 || k[1] < y0 || k[1] > y1 || k[2] < z0 || k[2] > z1 {
                    continue;
                }
                let (s, e) = (self.offsets[slot] as usize, self.offsets[slot + 1] as usize);
                scan(&self.indices[s..e], pos, center, r2, &mut f);
            }
            return;
        }
        if self.dense {
            // clamp each axis sweep to the occupied sub-ranges recorded at
            // build time — only empty cells are skipped, so the visit
            // order over occupied cells is unchanged
            for gx in x0..=x1 {
                let (pl, ph) = self.plane_y[(gx - self.lo[0]) as usize];
                if pl == u32::MAX {
                    continue;
                }
                let gy0 = y0.max(self.lo[1] + pl as i64);
                let gy1 = y1.min(self.lo[1] + ph as i64);
                for gy in gy0..=gy1 {
                    let row =
                        (gx - self.lo[0]) as usize * self.dims[1] + (gy - self.lo[1]) as usize;
                    let (rl, rh) = self.row_z[row];
                    if rl == u32::MAX {
                        continue;
                    }
                    let gz0 = z0.max(self.lo[2] + rl as i64);
                    let gz1 = z1.min(self.lo[2] + rh as i64);
                    for gz in gz0..=gz1 {
                        let (s, e) = self.cell_range([gx, gy, gz]);
                        scan(&self.indices[s..e], pos, center, r2, &mut f);
                    }
                }
            }
        } else {
            for gx in x0..=x1 {
                for gy in y0..=y1 {
                    for gz in z0..=z1 {
                        let (s, e) = self.cell_range([gx, gy, gz]);
                        scan(&self.indices[s..e], pos, center, r2, &mut f);
                    }
                }
            }
        }
    }

    /// Append the indices within `radius` of `center` to `out` (which is
    /// cleared first). Allocation-free once `out` is warm.
    pub fn collect_within(
        &self,
        pos: &[[f64; 3]],
        center: &[f64; 3],
        radius: f64,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        self.for_each_within(pos, center, radius, |i, _| out.push(i));
    }

    /// Convenience allocating query (compatibility with the legacy API).
    pub fn within(&self, pos: &[[f64; 3]], center: &[f64; 3], radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_within(pos, center, radius, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_all_in_radius() {
        let pos = vec![[0.0, 0.0, 0.0], [0.05, 0.0, 0.0], [0.2, 0.0, 0.0], [1.0, 1.0, 1.0]];
        let grid = CsrGrid::build(&pos, 0.1);
        let mut got = grid.within(&pos, &[0.0, 0.0, 0.0], 0.1);
        got.sort();
        assert_eq!(got, vec![0, 1]);
        let all = grid.within(&pos, &[0.0, 0.0, 0.0], 2.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn matches_legacy_grid_order() {
        // identical candidate sequence to the HashMap grid, including the
        // within-cell ascending-index order the density sums rely on
        let mut pos = Vec::new();
        let mut x = 5u64;
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for _ in 0..200 {
            pos.push([rnd(), rnd(), rnd()]);
        }
        let csr = CsrGrid::build(&pos, 0.17);
        let legacy = crate::legacy::NeighborGrid::build(&pos, 0.17);
        for probe in 0..20 {
            let c = pos[probe * 7];
            for &r in &[0.05, 0.17, 0.3, 5.0] {
                assert_eq!(csr.within(&pos, &c, r), legacy.within(&pos, &c, r), "r={r}");
            }
        }
    }

    #[test]
    fn oversized_radius_is_clamped_to_occupied_cells() {
        let pos = vec![[0.0; 3], [0.1, 0.0, 0.0]];
        let grid = CsrGrid::build(&pos, 1e-3);
        // radius/cell = 1e6: the scan must clamp to the occupied bbox
        // rather than visiting (2e6)^3 candidate cells
        let t0 = std::time::Instant::now();
        let got = grid.within(&pos, &[0.0; 3], 1_000.0);
        assert_eq!(got.len(), 2);
        assert!(t0.elapsed().as_secs_f64() < 1.0, "scan not clamped");
    }

    #[test]
    fn sparse_fallback_agrees_with_dense() {
        // huge extent relative to cell forces the sorted-key layout
        let mut pos = vec![[0.0; 3]; 0];
        for i in 0..64 {
            pos.push([i as f64 * 97.3, (i % 7) as f64 * 53.1, -(i as f64) * 11.0]);
        }
        let sparse = CsrGrid::build(&pos, 1e-4);
        let dense = CsrGrid::build(&pos, 100.0);
        for c in pos.iter().step_by(5) {
            let mut a = sparse.within(&pos, c, 60.0);
            let mut b = dense.within(&pos, c, 60.0);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rebuild_reuses_buffers() {
        let mut pos: Vec<[f64; 3]> = (0..500)
            .map(|i| {
                let t = i as f64 * 0.618;
                [t.sin(), t.cos(), (t * 0.5).sin()]
            })
            .collect();
        let mut grid = CsrGrid::new();
        grid.build_into(&pos, 0.2);
        let n0 = grid.within(&pos, &pos[0], 0.25).len();
        // move everything slightly and rebuild in place
        for p in &mut pos {
            p[0] += 1e-3;
        }
        grid.build_into(&pos, 0.2);
        let n1 = grid.within(&pos, &pos[0], 0.25).len();
        assert!(n0 > 0 && n1 > 0);
    }

    #[test]
    fn empty_grid_is_fine() {
        let grid = CsrGrid::build(&[], 1.0);
        assert!(grid.within(&[], &[0.0; 3], 10.0).is_empty());
    }
}
